"""Tests for the null-hypothesis tests on summary statistics."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.stats.descriptive import SampleStats, summarize
from repro.stats.hypothesis_tests import TestResult, means_differ, welch_t_test, z_test


def stats(n, mean, std):
    return SampleStats(n=n, mean=mean, std=std, minimum=0.0, maximum=0.0)


class TestWelch:
    def test_equal_means_not_rejected(self):
        rng = np.random.default_rng(0)
        a = summarize(rng.normal(3.0, 1.0, 100))
        b = summarize(rng.normal(3.0, 1.0, 100))
        assert not welch_t_test(a, b).reject_null(0.01)

    def test_distinct_means_rejected(self):
        a = stats(200, 10.0, 1.0)
        b = stats(200, 11.0, 1.0)
        assert welch_t_test(a, b).reject_null(0.001)

    def test_statistic_sign(self):
        t = welch_t_test(stats(50, 12.0, 1.0), stats(50, 10.0, 1.0))
        assert t.statistic > 0

    def test_matches_scipy_on_raw_data(self):
        from scipy import stats as sps

        rng = np.random.default_rng(1)
        x = rng.normal(0.0, 1.0, 60)
        y = rng.normal(0.4, 2.0, 45)
        ours = welch_t_test(summarize(x), summarize(y))
        ref = sps.ttest_ind(x, y, equal_var=False)
        assert ours.statistic == pytest.approx(ref.statistic, rel=1e-9)
        assert ours.pvalue == pytest.approx(ref.pvalue, rel=1e-6)

    def test_degenerate_identical_constants(self):
        t = welch_t_test(stats(10, 5.0, 0.0), stats(10, 5.0, 0.0))
        assert t.pvalue == 1.0

    def test_degenerate_distinct_constants(self):
        t = welch_t_test(stats(10, 5.0, 0.0), stats(10, 6.0, 0.0))
        assert t.pvalue == 0.0

    def test_needs_two_samples(self):
        with pytest.raises(ConfigError):
            welch_t_test(stats(1, 1.0, 0.1), stats(10, 1.0, 0.1))


class TestZTest:
    def test_matches_welch_for_large_n(self):
        a = stats(100_000, 5.0, 1.0)
        b = stats(100_000, 5.002, 1.0)
        assert z_test(a, b).pvalue == pytest.approx(
            welch_t_test(a, b).pvalue, rel=1e-3
        )

    def test_rejects_clear_difference(self):
        assert z_test(stats(1000, 1.0, 0.1), stats(1000, 2.0, 0.1)).reject_null()


class TestHelpers:
    def test_means_differ_welch(self):
        assert means_differ(stats(100, 1.0, 0.1), stats(100, 2.0, 0.1))

    def test_means_differ_z(self):
        assert means_differ(
            stats(100, 1.0, 0.1), stats(100, 2.0, 0.1), method="z"
        )

    def test_alpha_validated(self):
        result = TestResult(statistic=1.0, pvalue=0.5, dof=10, kind="welch-t")
        with pytest.raises(ConfigError):
            result.reject_null(alpha=2.0)
