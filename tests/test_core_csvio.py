"""Tests for CSV persistence and the LATEST naming convention."""

import numpy as np
import pytest

from repro.core.csvio import (
    pair_csv_name,
    parse_pair_csv_name,
    read_pair_csv,
    sanitize_hostname,
    write_campaign_csvs,
    write_pair_csv,
)
from repro.core.results import PairResult, SwitchingLatencyMeasurement
from repro.errors import MeasurementError


def _measurement(latency_s, gt=None):
    return SwitchingLatencyMeasurement(
        latency_s=latency_s,
        ts_acc=1.25,
        te_acc=1.25 + latency_s,
        n_valid_sm=8,
        window_iterations=400,
        ground_truth_s=gt,
        ground_truth_outlier=False,
    )


class TestNaming:
    def test_convention_fields(self):
        name = pair_csv_name(705.0, 1410.0, "karolina23", 2)
        assert name == "swlat_705_1410_karolina23_gpu2.csv"

    def test_fractional_frequencies(self):
        assert "swlat_1417.5_" in pair_csv_name(1417.5, 705.0, "h", 0)

    def test_memory_coordinate_field(self):
        name = pair_csv_name(705.0, 1410.0, "karolina23", 2, memory_mhz=810.0)
        assert name == "swlatm_705_1410_810_karolina23_gpu2.csv"
        assert parse_pair_csv_name(name) == (705.0, 1410.0, 810.0)

    def test_legacy_name_parses_without_memory(self):
        assert parse_pair_csv_name("swlat_705_1410_karolina23_gpu2.csv") == (
            705.0, 1410.0, None,
        )

    def test_legacy_mem_prefixed_hostname_not_misparsed(self):
        # A pre-extension archive whose (unsanitized) hostname starts with
        # "mem<digits>_" must not be mistaken for a memory-clock field:
        # only the swlatm_ prefix introduces one.
        assert parse_pair_csv_name("swlat_900_1200_mem5_node_gpu0.csv") == (
            900.0, 1200.0, None,
        )

    def test_grid_name_requires_memory_field(self):
        with pytest.raises(MeasurementError):
            parse_pair_csv_name("swlatm_705_1410_karolina23_gpu2.csv")

    def test_hostname_with_underscores_still_parses(self):
        name = pair_csv_name(705.0, 1410.0, "node_a_b", 0)
        # sanitization maps "_" to "-", so the field layout stays unambiguous
        assert parse_pair_csv_name(name) == (705.0, 1410.0, None)


class TestHostnameSanitization:
    def test_path_separators_removed(self):
        assert "/" not in sanitize_hostname("evil/../../etc")
        assert not sanitize_hostname("../../escape").startswith(".")

    def test_safe_hostname_untouched(self):
        assert sanitize_hostname("karolina23.it4i.cz") == "karolina23.it4i.cz"

    def test_empty_falls_back(self):
        assert sanitize_hostname("") == "host"
        assert sanitize_hostname("///") != ""

    def test_write_stays_inside_output_dir(self, tmp_path):
        pair = PairResult(
            init_mhz=705.0, target_mhz=1410.0,
            measurements=[_measurement(0.005)],
        )
        path = write_pair_csv(tmp_path, pair, "../../escape/attempt", 0)
        assert path.parent == tmp_path
        assert path.exists()

    def test_malformed_name_validated_on_read(self, tmp_path):
        bad = tmp_path / "swlat_705_notafreq_gpu0.csv"
        bad.write_text("latency_ms\n1.0\n")
        with pytest.raises(MeasurementError):
            read_pair_csv(bad)


class TestRoundTrip:
    def test_pair_roundtrip(self, small_a100_campaign, tmp_path):
        pair = next(small_a100_campaign.iter_measured())
        path = write_pair_csv(
            tmp_path, pair, small_a100_campaign.hostname, 0
        )
        assert path.exists()
        loaded = read_pair_csv(path)
        assert loaded.init_mhz == pair.init_mhz
        assert loaded.target_mhz == pair.target_mhz
        assert loaded.n_measurements == pair.n_measurements
        np.testing.assert_allclose(
            loaded.latencies_s(without_outliers=False),
            pair.latencies_s(without_outliers=False),
            rtol=1e-6,
        )

    def test_ground_truth_roundtrip(self, small_a100_campaign, tmp_path):
        pair = next(small_a100_campaign.iter_measured())
        path = write_pair_csv(tmp_path, pair, "h", 0)
        loaded = read_pair_csv(path)
        orig = pair.ground_truths_s(without_outliers=False)
        back = loaded.ground_truths_s(without_outliers=False)
        np.testing.assert_allclose(back, orig, rtol=1e-5)

    def test_bad_filename_rejected(self, tmp_path):
        bad = tmp_path / "whatever.csv"
        bad.write_text("latency_ms\n1.0\n")
        with pytest.raises(MeasurementError):
            read_pair_csv(bad)

    def test_outlier_labels_restored(self, small_a100_campaign, tmp_path):
        pair = next(
            p for p in small_a100_campaign.iter_measured()
            if p.outliers is not None
        )
        path = write_pair_csv(tmp_path, pair, "h", 0)
        loaded = read_pair_csv(path)
        assert loaded.outliers is not None
        np.testing.assert_array_equal(
            loaded.outliers.labels, pair.outliers.labels
        )
        np.testing.assert_array_equal(
            loaded.outliers.kept_mask, pair.outliers.kept_mask
        )
        # The docstring promise: outlier filtering works on the round trip.
        np.testing.assert_allclose(
            loaded.latencies_s(without_outliers=True),
            pair.latencies_s(without_outliers=True),
            rtol=1e-6,
        )

    def test_write_read_write_byte_stable(self, small_a100_campaign, tmp_path):
        for pair in small_a100_campaign.iter_measured():
            first = write_pair_csv(tmp_path / "a", pair, "h", 0)
            loaded = read_pair_csv(first)
            second = write_pair_csv(tmp_path / "b", loaded, "h", 0)
            assert first.name == second.name
            assert first.read_bytes() == second.read_bytes()

    def test_empty_pair_roundtrip(self, tmp_path):
        pair = PairResult(init_mhz=705.0, target_mhz=1410.0)
        first = write_pair_csv(tmp_path, pair, "h", 0)
        loaded = read_pair_csv(first)
        assert loaded.n_measurements == 0
        assert loaded.outliers is None
        second = write_pair_csv(tmp_path / "again", loaded, "h", 0)
        assert first.read_bytes() == second.read_bytes()

    def test_memory_coordinate_roundtrip(self, tmp_path):
        pair = PairResult(
            init_mhz=705.0, target_mhz=1410.0, memory_mhz=810.0,
            measurements=[_measurement(0.0052, gt=0.0051)],
        )
        path = write_pair_csv(tmp_path, pair, "h", 0)
        assert path.name.startswith("swlatm_705_1410_810_")
        loaded = read_pair_csv(path)
        assert loaded.memory_mhz == 810.0
        assert loaded.measurements[0].ground_truth_s == pytest.approx(
            0.0051, rel=1e-6
        )


class TestCampaignOutput:
    def test_all_pairs_written(self, small_a100_campaign, tmp_path):
        paths = write_campaign_csvs(tmp_path, small_a100_campaign)
        pair_files = [p for p in paths if p.name.startswith("swlat_")]
        assert len(pair_files) == small_a100_campaign.n_measured_pairs
        summary = [p for p in paths if p.name.startswith("summary_")]
        assert len(summary) == 1

    def test_summary_contents(self, small_a100_campaign, tmp_path):
        write_campaign_csvs(tmp_path, small_a100_campaign)
        summary = tmp_path / "summary_simnode01_gpu0.csv"
        lines = summary.read_text().strip().splitlines()
        assert lines[0].startswith("init_mhz,target_mhz,status")
        assert len(lines) == 1 + len(small_a100_campaign.pairs)

    def test_output_dir_config_writes(self, tmp_path):
        from repro import make_machine, run_campaign
        from tests.conftest import fast_config

        machine = make_machine("A100", seed=31)
        config = fast_config(
            (705.0, 1410.0),
            min_measurements=4,
            max_measurements=6,
            output_dir=str(tmp_path / "out"),
        )
        run_campaign(machine, config)
        files = list((tmp_path / "out").glob("*.csv"))
        assert len(files) >= 3  # two pairs + summary
