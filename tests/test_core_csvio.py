"""Tests for CSV persistence and the LATEST naming convention."""

import numpy as np
import pytest

from repro.core.csvio import (
    pair_csv_name,
    read_pair_csv,
    write_campaign_csvs,
    write_pair_csv,
)
from repro.errors import MeasurementError


class TestNaming:
    def test_convention_fields(self):
        name = pair_csv_name(705.0, 1410.0, "karolina23", 2)
        assert name == "swlat_705_1410_karolina23_gpu2.csv"

    def test_fractional_frequencies(self):
        assert "swlat_1417.5_" in pair_csv_name(1417.5, 705.0, "h", 0)


class TestRoundTrip:
    def test_pair_roundtrip(self, small_a100_campaign, tmp_path):
        pair = next(small_a100_campaign.iter_measured())
        path = write_pair_csv(
            tmp_path, pair, small_a100_campaign.hostname, 0
        )
        assert path.exists()
        loaded = read_pair_csv(path)
        assert loaded.init_mhz == pair.init_mhz
        assert loaded.target_mhz == pair.target_mhz
        assert loaded.n_measurements == pair.n_measurements
        np.testing.assert_allclose(
            loaded.latencies_s(without_outliers=False),
            pair.latencies_s(without_outliers=False),
            rtol=1e-6,
        )

    def test_ground_truth_roundtrip(self, small_a100_campaign, tmp_path):
        pair = next(small_a100_campaign.iter_measured())
        path = write_pair_csv(tmp_path, pair, "h", 0)
        loaded = read_pair_csv(path)
        orig = pair.ground_truths_s(without_outliers=False)
        back = loaded.ground_truths_s(without_outliers=False)
        np.testing.assert_allclose(back, orig, rtol=1e-5)

    def test_bad_filename_rejected(self, tmp_path):
        bad = tmp_path / "whatever.csv"
        bad.write_text("latency_ms\n1.0\n")
        with pytest.raises(MeasurementError):
            read_pair_csv(bad)


class TestCampaignOutput:
    def test_all_pairs_written(self, small_a100_campaign, tmp_path):
        paths = write_campaign_csvs(tmp_path, small_a100_campaign)
        pair_files = [p for p in paths if p.name.startswith("swlat_")]
        assert len(pair_files) == small_a100_campaign.n_measured_pairs
        summary = [p for p in paths if p.name.startswith("summary_")]
        assert len(summary) == 1

    def test_summary_contents(self, small_a100_campaign, tmp_path):
        write_campaign_csvs(tmp_path, small_a100_campaign)
        summary = tmp_path / "summary_simnode01_gpu0.csv"
        lines = summary.read_text().strip().splitlines()
        assert lines[0].startswith("init_mhz,target_mhz,status")
        assert len(lines) == 1 + len(small_a100_campaign.pairs)

    def test_output_dir_config_writes(self, tmp_path):
        from repro import make_machine, run_campaign
        from tests.conftest import fast_config

        machine = make_machine("A100", seed=31)
        config = fast_config(
            (705.0, 1410.0),
            min_measurements=4,
            max_measurements=6,
            output_dir=str(tmp_path / "out"),
        )
        run_campaign(machine, config)
        files = list((tmp_path / "out").glob("*.csv"))
        assert len(files) >= 3  # two pairs + summary
