"""Tests for phase 3: per-SM detection and confirmation (Algorithm 2)."""

import dataclasses

import numpy as np
import pytest

from repro.core.context import BenchContext
from repro.core.phase1 import run_phase1
from repro.core.phase2 import run_switch_benchmark
from repro.core.phase3 import (
    SmStatus,
    detection_band,
    evaluate_switch,
)
from repro.stats.descriptive import SampleStats
from tests.conftest import fast_config


@pytest.fixture(scope="module")
def prepared(a100_module_machine=None):
    """Phase-1 + one raw measurement, shared across this module's tests."""
    from repro.machine import make_machine

    machine = make_machine("A100", seed=404)
    bench = BenchContext(machine, fast_config((705.0, 1410.0)))
    phase1 = run_phase1(bench)
    raw = run_switch_benchmark(
        bench, 1410.0, 705.0, phase1.kernel, window_iterations=800
    )
    return bench, phase1, raw


class TestDetectionBand:
    def test_two_sigma_band(self, prepared):
        bench, phase1, raw = prepared
        stats = phase1.stats_for(705.0)
        lo, hi = detection_band(stats, bench.config)
        assert hi - lo == pytest.approx(4.0 * stats.std)

    def test_ci_band_much_narrower(self, prepared):
        bench, phase1, raw = prepared
        stats = phase1.stats_for(705.0)
        cfg_ci = dataclasses.replace(
            bench.config, detection_criterion="confidence-interval"
        )
        lo2, hi2 = detection_band(stats, bench.config)
        lo1, hi1 = detection_band(stats, cfg_ci)
        assert (hi1 - lo1) < (hi2 - lo2) / 10


class TestEvaluateSwitch:
    def test_successful_evaluation(self, prepared):
        bench, phase1, raw = prepared
        ev = evaluate_switch(raw, phase1.stats_for(705.0), bench.config)
        assert ev.ok
        assert ev.n_valid_sm > 0
        assert ev.latency_s > 0

    def test_latency_is_max_over_sms(self, prepared):
        bench, phase1, raw = prepared
        ev = evaluate_switch(raw, phase1.stats_for(705.0), bench.config)
        valid = ev.per_sm_latency_s[~np.isnan(ev.per_sm_latency_s)]
        assert ev.latency_s == pytest.approx(valid.max())

    def test_latency_close_to_ground_truth(self, prepared):
        bench, phase1, raw = prepared
        ev = evaluate_switch(raw, phase1.stats_for(705.0), bench.config)
        gt = raw.ground_truth_latency_s
        # Within one iteration duration plus timing slack.
        iter_s = phase1.kernel.iteration_duration_s(705.0)
        assert abs(ev.latency_s - gt) < 4 * iter_s + 1e-3

    def test_te_consistent(self, prepared):
        bench, phase1, raw = prepared
        ev = evaluate_switch(raw, phase1.stats_for(705.0), bench.config)
        assert ev.te_acc == pytest.approx(raw.ts_acc + ev.latency_s)

    def test_window_cut_no_detection(self, prepared):
        """Truncating the window before the transition must report a
        window problem, triggering the tool's 10x growth rule."""
        bench, phase1, raw = prepared
        # Keep only iterations that end before the transition completed.
        cut = raw.timestamps.starts[0] < (raw.ts_acc + 1e-3)
        n_keep = int(cut.sum())
        truncated = dataclasses.replace(
            raw,
            timestamps=type(raw.timestamps)(
                starts=raw.timestamps.starts[:, :n_keep],
                ends=raw.timestamps.ends[:, :n_keep],
            ),
        )
        ev = evaluate_switch(truncated, phase1.stats_for(705.0), bench.config)
        assert not ev.ok
        assert ev.window_too_short

    def test_wrong_target_stats_fail_confirmation(self, prepared):
        """If the 'target' stats describe a frequency the device never
        reaches, no SM may validate."""
        bench, phase1, raw = prepared
        wrong = phase1.stats_for(1410.0)  # device actually went to 705
        ev = evaluate_switch(raw, wrong, bench.config)
        assert not ev.ok

    def test_ci_criterion_starves(self):
        """Paper Sec. V-A: with many samples behind the target stats the
        CI band is narrower than the GPU timer tick, so (nearly) no
        iteration can be detected.

        Uses a target frequency whose iteration duration is NOT an integer
        number of timer ticks (at 975 MHz the 84600-cycle iteration takes
        86.77 us): quantized diffs are integers, the collapsed band around
        a non-integer mean contains none of them.  (At 705 MHz the duration
        is exactly 120 us and the CI criterion can succeed by accident —
        tick alignment, not statistics.)
        """
        from repro.machine import make_machine

        machine = make_machine("A100", seed=405)
        bench = BenchContext(machine, fast_config((975.0, 1410.0)))
        phase1 = run_phase1(bench)
        raw = run_switch_benchmark(
            bench, 1410.0, 975.0, phase1.kernel, window_iterations=800
        )
        cfg_ci = dataclasses.replace(
            bench.config, detection_criterion="confidence-interval"
        )
        stats = phase1.stats_for(975.0)
        lo, hi = detection_band(stats, cfg_ci)
        assert (hi - lo) < 2e-6  # below the 1 us timer granularity x2
        ev = evaluate_switch(raw, stats, cfg_ci)
        # Detection starves: nothing lands in the band on most SMs.
        n_detected = (ev.sm_status != int(SmStatus.NO_DETECTION)).sum()
        assert n_detected < raw.timestamps.n_sm / 2 or not ev.ok
        # The paper's criterion succeeds on the same data.
        assert evaluate_switch(raw, stats, bench.config).ok


class TestSmStatusBookkeeping:
    def test_status_array_complete(self, prepared):
        bench, phase1, raw = prepared
        ev = evaluate_switch(raw, phase1.stats_for(705.0), bench.config)
        assert ev.sm_status.shape == (raw.timestamps.n_sm,)
        assert set(np.unique(ev.sm_status)) <= {s.value for s in SmStatus}

    def test_detection_indices_valid(self, prepared):
        bench, phase1, raw = prepared
        ev = evaluate_switch(raw, phase1.stats_for(705.0), bench.config)
        ok = ev.sm_status == int(SmStatus.OK)
        assert (ev.detection_indices[ok] >= 0).all()


class TestSyntheticEvaluation:
    """Direct unit tests with hand-built timestamp matrices."""

    def _raw(self, starts, ends, ts_acc):
        from repro.core.phase2 import RawSwitchData
        from repro.gpusim.sm import DeviceTimestamps
        from repro.gpusim.thermal import ThrottleReasons

        return RawSwitchData(
            init_mhz=1000.0,
            target_mhz=500.0,
            sync=None,
            ts_cpu=0.0,
            ts_acc=ts_acc,
            timestamps=DeviceTimestamps(starts=starts, ends=ends),
            window_iterations=0,
            kernel=None,
            ground_truth=None,
            throttle_reasons=ThrottleReasons.NONE,
        )

    def _config(self):
        return fast_config((500.0, 1000.0), min_confirm_tail=5)

    def test_clean_synthetic_transition(self):
        # 100 iterations of 1 ms then 200 of 2 ms; switch call at t=0.05 s.
        durations = np.concatenate([np.full(100, 1e-3), np.full(200, 2e-3)])
        ends = np.cumsum(durations)[None, :]
        starts = ends - durations[None, :]
        target = SampleStats(n=5000, mean=2e-3, std=1e-5, minimum=0, maximum=1)
        ev = evaluate_switch(
            self._raw(starts, ends, 0.05), target, self._config()
        )
        assert ev.ok
        # First 2 ms iteration ends at 0.1 + 2e-3.
        assert ev.latency_s == pytest.approx(0.1 + 2e-3 - 0.05, rel=1e-6)

    def test_all_before_switch_reports_no_post(self):
        durations = np.full(50, 1e-3)
        ends = np.cumsum(durations)[None, :]
        starts = ends - durations[None, :]
        target = SampleStats(n=5000, mean=2e-3, std=1e-5, minimum=0, maximum=1)
        ev = evaluate_switch(
            self._raw(starts, ends, 10.0), target, self._config()
        )
        assert not ev.ok
        assert ev.reason == "no-post-switch-iterations"
        assert ev.window_too_short
