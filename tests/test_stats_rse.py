"""Tests for the RSE stopping rule (campaign termination policy)."""

import math

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.stats.rse import RseStoppingRule, relative_standard_error


class TestRelativeStandardError:
    def test_known_value(self):
        x = [10.0, 10.0, 10.0, 10.0]
        assert relative_standard_error(x) == 0.0

    def test_matches_definition(self):
        rng = np.random.default_rng(0)
        x = rng.normal(100.0, 5.0, 50)
        expected = (x.std(ddof=1) / np.sqrt(50)) / abs(x.mean())
        assert relative_standard_error(x) == pytest.approx(expected)

    def test_single_sample_inf(self):
        assert math.isinf(relative_standard_error([1.0]))

    def test_zero_mean_inf(self):
        assert math.isinf(relative_standard_error([-1.0, 1.0]))

    def test_decreases_with_n(self):
        rng = np.random.default_rng(1)
        x = rng.normal(10.0, 1.0, 1000)
        assert relative_standard_error(x[:900]) < relative_standard_error(x[:20])


class TestStoppingRule:
    def test_defaults_match_tool(self):
        rule = RseStoppingRule()
        assert rule.threshold == 0.05
        assert rule.check_every == 25

    def test_never_stops_below_min(self):
        rule = RseStoppingRule(threshold=0.5, min_measurements=10)
        assert not rule.should_stop([5.0] * 9)

    def test_stops_at_max(self):
        rule = RseStoppingRule(max_measurements=50)
        assert rule.should_stop(list(np.random.default_rng(0).normal(5, 5, 50)))

    def test_stops_on_tight_data_at_checkpoint(self):
        rule = RseStoppingRule(
            threshold=0.05, min_measurements=25, check_every=25
        )
        assert rule.should_stop([5.0 + 1e-6 * i for i in range(25)])

    def test_skips_between_checkpoints(self):
        rule = RseStoppingRule(
            threshold=0.5, min_measurements=25, check_every=25
        )
        # 30 is not a multiple of 25: no check, no stop.
        assert not rule.should_stop([5.0] * 30)

    def test_loose_data_keeps_going(self):
        rng = np.random.default_rng(2)
        rule = RseStoppingRule(threshold=0.001, min_measurements=25)
        values = list(rng.normal(10.0, 8.0, 25))
        assert not rule.should_stop(values)

    def test_invalid_threshold(self):
        with pytest.raises(ConfigError):
            RseStoppingRule(threshold=0.0)

    def test_max_below_min_rejected(self):
        with pytest.raises(ConfigError):
            RseStoppingRule(min_measurements=50, max_measurements=10)

    def test_min_too_small_rejected(self):
        with pytest.raises(ConfigError):
            RseStoppingRule(min_measurements=1)
