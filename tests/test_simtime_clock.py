"""Tests for virtual and hardware clocks."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ClockError
from repro.simtime.clock import HardwareClock, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now == 5.0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_advance_returns_new_time(self):
        clock = VirtualClock(1.0)
        assert clock.advance(2.0) == pytest.approx(3.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ClockError):
            VirtualClock().advance(-1e-9)

    def test_nan_advance_rejected(self):
        with pytest.raises(ClockError):
            VirtualClock().advance(float("nan"))

    def test_advance_to_forward(self):
        clock = VirtualClock()
        clock.advance_to(4.0)
        assert clock.now == 4.0

    def test_advance_to_past_is_noop(self):
        clock = VirtualClock(10.0)
        clock.advance_to(4.0)
        assert clock.now == 10.0


class TestHardwareClock:
    def test_identity_clock(self):
        clock = VirtualClock(3.0)
        hw = HardwareClock(clock)
        assert hw.read() == pytest.approx(3.0)

    def test_offset_applied(self):
        clock = VirtualClock(1.0)
        hw = HardwareClock(clock, offset=100.0)
        assert hw.read() == pytest.approx(101.0)

    def test_drift_applied(self):
        clock = VirtualClock(1000.0)
        hw = HardwareClock(clock, drift=1e-6)
        assert hw.read() == pytest.approx(1000.001)

    def test_quantization_floors(self):
        clock = VirtualClock(1.0000015)
        hw = HardwareClock(clock, granularity=1e-6)
        assert hw.read() == pytest.approx(1.000001)

    def test_monotonic_reads(self):
        clock = VirtualClock()
        hw = HardwareClock(clock, granularity=1e-6)
        values = []
        for _ in range(100):
            clock.advance(3.7e-7)
            values.append(hw.read())
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_convert_invert_roundtrip(self):
        clock = VirtualClock()
        hw = HardwareClock(clock, offset=42.0, drift=2e-6)
        t = 123.456
        assert hw.invert(hw.convert(t)) == pytest.approx(t, abs=1e-9)

    def test_convert_array_matches_scalar(self):
        clock = VirtualClock()
        hw = HardwareClock(clock, offset=7.0, drift=1e-6, granularity=1e-6)
        times = np.linspace(0.0, 2.0, 50)
        vec = hw.convert_array(times)
        scalars = np.array([hw.convert(t) for t in times])
        np.testing.assert_allclose(vec, scalars, rtol=0, atol=0)

    @given(
        offset=st.floats(-1e3, 1e3),
        drift=st.floats(-1e-5, 1e-5),
        t=st.floats(0.0, 1e5),
    )
    @settings(max_examples=60, deadline=None)
    def test_quantized_read_within_granularity(self, offset, drift, t):
        clock = VirtualClock(t)
        hw = HardwareClock(clock, offset=offset, drift=drift, granularity=1e-6)
        raw = (t) * (1.0 + drift) + offset
        value = hw.convert(t)
        # Floor quantization: value in (raw - granularity, raw], with a
        # small epsilon for float rounding at the interval edges.
        assert raw - 1e-6 - 1e-9 <= value <= raw + 1e-9

    @given(t=st.floats(0.0, 1e4), dt=st.floats(0.0, 1e3))
    @settings(max_examples=60, deadline=None)
    def test_convert_monotone(self, t, dt):
        clock = VirtualClock()
        hw = HardwareClock(clock, offset=5.0, drift=1e-6, granularity=1e-6)
        assert hw.convert(t + dt) >= hw.convert(t)
