"""Tests for the CUDA-like runtime layer and microbenchmark kernel."""

import pytest

from repro.cuda.kernel import MicrobenchmarkKernel
from repro.cuda.runtime import CudaContext
from repro.errors import ConfigError, CudaError
from repro.gpusim.spec import A100_SXM4


class TestMicrobenchmarkKernel:
    def test_sized_for_iteration_duration(self):
        k = MicrobenchmarkKernel.sized_for(
            A100_SXM4, iteration_duration_s=50e-6, total_duration_s=0.1
        )
        assert k.iteration_duration_s(A100_SXM4.max_sm_frequency_mhz) == (
            pytest.approx(50e-6)
        )
        assert k.n_iterations == 2000

    def test_duration_scales_inverse_frequency(self):
        k = MicrobenchmarkKernel(n_iterations=10, cycles_per_iteration=1e5)
        assert k.iteration_duration_s(500.0) == pytest.approx(
            2 * k.iteration_duration_s(1000.0)
        )

    def test_total_duration(self):
        k = MicrobenchmarkKernel(n_iterations=100, cycles_per_iteration=1e6)
        assert k.duration_s(1000.0) == pytest.approx(0.1)

    def test_scaled_grows_iteration_work(self):
        k = MicrobenchmarkKernel(n_iterations=100, cycles_per_iteration=1e5)
        grown = k.scaled(iteration_factor=2.0)
        assert grown.cycles_per_iteration == 2e5
        assert grown.n_iterations == 100

    def test_scaled_grows_length(self):
        k = MicrobenchmarkKernel(n_iterations=100, cycles_per_iteration=1e5)
        grown = k.scaled(length_factor=10.0)
        assert grown.n_iterations == 1000

    def test_rejects_tiny_iterations(self):
        with pytest.raises(ConfigError):
            MicrobenchmarkKernel(n_iterations=10, cycles_per_iteration=10.0)

    def test_rejects_zero_iterations(self):
        with pytest.raises(ConfigError):
            MicrobenchmarkKernel(n_iterations=0, cycles_per_iteration=1e5)

    def test_launch_spec_mirrors_fields(self):
        k = MicrobenchmarkKernel(
            n_iterations=10, cycles_per_iteration=1e5, sm_count=3, label="x"
        )
        spec = k.launch_spec()
        assert spec.n_iterations == 10
        assert spec.sm_count == 3
        assert spec.label == "x"


class TestCudaContext:
    @pytest.fixture
    def ctx(self, a100_machine) -> CudaContext:
        return a100_machine.cuda_context()

    def test_run_roundtrip(self, ctx):
        k = MicrobenchmarkKernel(
            n_iterations=100, cycles_per_iteration=1e5, sm_count=2
        )
        view = ctx.run(k)
        assert view.n_sm == 2
        assert view.n_iterations == 100

    def test_launch_costs_host_time(self, ctx, a100_machine):
        t0 = a100_machine.clock.now
        ctx.launch(
            MicrobenchmarkKernel(
                n_iterations=10, cycles_per_iteration=1e5, sm_count=1
            )
        )
        assert a100_machine.clock.now > t0

    def test_timestamps_before_sync_raises(self, ctx):
        launched = ctx.launch(
            MicrobenchmarkKernel(
                n_iterations=10, cycles_per_iteration=1e5, sm_count=1
            )
        )
        with pytest.raises(CudaError):
            ctx.timestamps(launched)

    def test_global_timer_monotonic(self, ctx):
        a = ctx.global_timer()
        b = ctx.global_timer()
        assert b >= a

    def test_global_timer_in_gpu_domain(self, ctx, a100_machine):
        device = a100_machine.device()
        value = ctx.global_timer()
        # GPU clock has a large power-on offset vs. host time.
        assert abs(value - a100_machine.clock.now) > 1.0 or device.gpu_clock.offset < 1.0

    def test_sm_count_property(self, ctx):
        assert ctx.sm_count == A100_SXM4.sm_count

    def test_diffs_positive(self, ctx):
        k = MicrobenchmarkKernel(
            n_iterations=200, cycles_per_iteration=1e5, sm_count=2
        )
        view = ctx.run(k)
        assert (view.diffs > 0).all()
