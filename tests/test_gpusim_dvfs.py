"""Tests for the DVFS clock-domain state machine."""

import numpy as np
import pytest

from repro.gpusim.dvfs import DvfsClockDomain
from repro.gpusim.latency_model import SwitchingLatencyModel
from repro.gpusim.arch_profiles import A100Profile
from repro.gpusim.spec import A100_SXM4


@pytest.fixture
def domain():
    rng = np.random.default_rng(5)
    model = SwitchingLatencyModel(A100Profile(), unit_seed=0, rng=rng)
    return DvfsClockDomain(A100_SXM4, model, rng, idle_timeout_s=0.05)


class TestIdleWake:
    def test_starts_idle(self, domain):
        assert domain.planned_freq_at(0.0) == A100_SXM4.idle_sm_frequency_mhz

    def test_request_while_idle_stores_setting(self, domain):
        rec = domain.request_locked_clocks(1095.0, 1.0)
        assert rec is None
        assert domain.locked_mhz == 1095.0
        # Frequency unchanged: still idle.
        assert domain.planned_freq_at(2.0) == A100_SXM4.idle_sm_frequency_mhz

    def test_kernel_start_wakes_to_locked(self, domain):
        domain.request_locked_clocks(1095.0, 1.0)
        rec = domain.notify_kernel_start(2.0)
        assert rec is not None and rec.kind == "wakeup"
        assert domain.planned_freq_at(rec.t_stable + 1e-9) == 1095.0

    def test_wake_without_lock_goes_nominal(self, domain):
        rec = domain.notify_kernel_start(2.0)
        assert rec.target_mhz == A100_SXM4.nominal_sm_frequency_mhz

    def test_idle_drop_after_timeout(self, domain):
        domain.request_locked_clocks(1095.0, 1.0)
        rec = domain.notify_kernel_start(2.0)
        domain.notify_kernel_end(3.0)
        # Second kernel long after the idle timeout: clocks dropped.
        rec2 = domain.notify_kernel_start(4.0)
        assert rec2 is not None
        assert domain.planned_freq_at(3.5) == A100_SXM4.idle_sm_frequency_mhz

    def test_no_drop_within_timeout(self, domain):
        domain.request_locked_clocks(1095.0, 1.0)
        domain.notify_kernel_start(2.0)
        domain.notify_kernel_end(3.0)
        rec = domain.notify_kernel_start(3.01)
        assert rec is None  # device stayed warm: no wake-up transition


class TestTransitions:
    def _powered_domain(self, domain):
        domain.request_locked_clocks(1095.0, 0.5)
        rec = domain.notify_kernel_start(1.0)
        return rec.t_stable + 0.1  # time at which clocks settled

    def test_transition_record_fields(self, domain):
        t = self._powered_domain(domain)
        rec = domain.request_locked_clocks(705.0, t)
        assert rec is not None
        assert rec.init_mhz == 1095.0
        assert rec.target_mhz == 705.0
        assert rec.t_stable > t
        assert rec.ground_truth_latency_s > 0

    def test_frequency_reaches_target(self, domain):
        t = self._powered_domain(domain)
        rec = domain.request_locked_clocks(705.0, t)
        assert domain.planned_freq_at(rec.t_stable + 1e-9) == 705.0

    def test_frequency_holds_init_before_adaptation(self, domain):
        t = self._powered_domain(domain)
        rec = domain.request_locked_clocks(705.0, t)
        before_ramp = rec.t_stable - rec.adaptation_s - 1e-9
        if before_ramp > t:
            assert domain.planned_freq_at(before_ramp) == 1095.0

    def test_adaptation_steps_on_ladder(self, domain):
        t = self._powered_domain(domain)
        rec = domain.request_locked_clocks(705.0, t)
        ladder = set(A100_SXM4.supported_clocks_mhz)
        traj = domain.trajectory(t)
        for seg in traj.segments:
            assert seg.freq_mhz in ladder or seg.freq_mhz == A100_SXM4.idle_sm_frequency_mhz

    def test_same_frequency_request_no_transition(self, domain):
        t = self._powered_domain(domain)
        rec = domain.request_locked_clocks(1095.0, t)
        assert rec is not None
        assert rec.sample.total_s == 0.0

    def test_superseding_request_cancels_pending(self, domain):
        t = self._powered_domain(domain)
        rec1 = domain.request_locked_clocks(705.0, t)
        # Second request long before the first completes.
        mid = t + rec1.ground_truth_latency_s / 10.0
        rec2 = domain.request_locked_clocks(1410.0, mid)
        assert rec1.superseded
        assert not rec2.superseded
        assert domain.planned_freq_at(rec2.t_stable + 1e-9) == 1410.0

    def test_last_transition_skips_wakeups(self, domain):
        t = self._powered_domain(domain)
        domain.request_locked_clocks(705.0, t)
        assert domain.last_transition().target_mhz == 705.0


class TestCaps:
    def test_cap_clips_frequency(self, domain):
        t = self._settle(domain)
        domain.apply_cap(t + 1.0, 800.0)
        assert domain.effective_freq_at(t + 2.0) == 800.0

    def test_release_restores(self, domain):
        t = self._settle(domain)
        domain.apply_cap(t + 1.0, 800.0)
        domain.release_cap(t + 2.0)
        assert domain.effective_freq_at(t + 3.0) == 1095.0

    def test_trajectory_merges_caps(self, domain):
        t = self._settle(domain)
        domain.apply_cap(t + 1.0, 800.0)
        traj = domain.trajectory(t)
        assert any(seg.freq_mhz == 800.0 for seg in traj.segments)

    def _settle(self, domain):
        domain.request_locked_clocks(1095.0, 0.5)
        rec = domain.notify_kernel_start(1.0)
        return rec.t_stable + 0.1
