"""Tests for wake-up latency estimation."""

import pytest

from repro.core.wakeup import estimate_wakeup_latency
from repro.machine import make_machine


class TestWakeupEstimation:
    def test_estimate_positive_and_bounded(self):
        machine = make_machine("A100", seed=61)
        est = estimate_wakeup_latency(machine, freq_mhz=1095.0)
        # A100 wake-up: lognormal around 120 ms.
        assert 0.02 < est.wakeup_s < 1.0

    def test_first_kernel_slower_than_last(self):
        machine = make_machine("A100", seed=62)
        est = estimate_wakeup_latency(machine, freq_mhz=1095.0)
        assert est.slowdown_factor > 1.5

    def test_default_frequency_is_nominal(self):
        machine = make_machine("GH200", seed=63)
        est = estimate_wakeup_latency(machine)
        assert est.freq_mhz == 1980.0

    def test_stabilization_iteration_consistent(self):
        machine = make_machine("A100", seed=64)
        est = estimate_wakeup_latency(machine, freq_mhz=1095.0)
        assert est.stabilization_iteration >= 0

    def test_estimate_close_to_injected_wakeup(self):
        """The estimate must track the device's actual wake-up record."""
        machine = make_machine("A100", seed=65)
        est = estimate_wakeup_latency(machine, freq_mhz=1095.0)
        wake_records = [
            r for r in machine.device().dvfs.records if r.kind == "wakeup"
        ]
        # The probe's own wake-up is the first record after the idle wait.
        injected = wake_records[0].ground_truth_latency_s
        assert est.wakeup_s == pytest.approx(injected, rel=0.25)
