"""Warm daemon pool, shared-memory result channel, batch-aware cost model."""

from dataclasses import replace

import pytest

from repro import make_machine
from repro.core.results import PairResult, SwitchingLatencyMeasurement
from repro.errors import ConfigError
from repro.exec import WarmPool, pack_results, unpack_results
from repro.exec.engine import run_campaign_parallel
from repro.exec.jobs import PairJobResult, ProbeCostModel
from repro.core.campaign import ProbeInfo
from tests.conftest import fast_config
from tests.test_exec_engine import _campaign_fingerprint


@pytest.fixture(scope="module")
def warm_pool():
    with WarmPool(2) as pool:
        yield pool


class TestWarmPool:
    def test_results_identical_to_cold_engine(self, warm_pool):
        cfg = fast_config((705.0, 1095.0, 1410.0))
        base = run_campaign_parallel(make_machine("A100", seed=7), cfg)
        warm = run_campaign_parallel(
            make_machine("A100", seed=7), cfg, pool=warm_pool
        )
        assert _campaign_fingerprint(warm) == _campaign_fingerprint(base)
        assert warm.wall_virtual_s == base.wall_virtual_s

    def test_payload_cached_across_campaigns(self, warm_pool):
        cfg = fast_config((705.0, 1410.0))
        run_campaign_parallel(make_machine("A100", seed=3), cfg, pool=warm_pool)
        installs = warm_pool.stats["payload_installs"]
        hits = warm_pool.stats["payload_hits"]
        # Identical campaign shape: payload travels zero more times.
        run_campaign_parallel(make_machine("A100", seed=3), cfg, pool=warm_pool)
        assert warm_pool.stats["payload_installs"] == installs
        assert warm_pool.stats["payload_hits"] == hits + 1

    def test_batched_jobs_through_pool(self, warm_pool):
        cfg = fast_config((705.0, 1095.0, 1410.0))
        base = run_campaign_parallel(make_machine("A100", seed=11), cfg)
        warm = run_campaign_parallel(
            make_machine("A100", seed=11),
            replace(cfg, pair_batch_size=4),
            pool=warm_pool,
        )
        assert _campaign_fingerprint(warm) == _campaign_fingerprint(base)

    def test_worker_error_surfaces(self, warm_pool):
        with pytest.raises(RuntimeError, match="warm worker failed"):
            warm_pool.run_units(object(), [[None]])

    def test_closed_pool_rejects_work(self):
        pool = WarmPool(1)
        pool.close()
        with pytest.raises(ConfigError):
            pool.run_units(None, [[None]])

    def test_invalid_worker_count(self):
        with pytest.raises(ConfigError):
            WarmPool(0)


def _measurement(i, gt=None, outlier=False):
    return SwitchingLatencyMeasurement(
        latency_s=0.003 + i * 1e-6,
        ts_acc=1.5 + i,
        te_acc=1.503 + i,
        n_valid_sm=100 + i,
        window_iterations=4000 + i,
        ground_truth_s=gt,
        ground_truth_outlier=outlier,
    )


class TestShmChannel:
    def test_roundtrip_exact(self):
        pair = PairResult(init_mhz=705.0, target_mhz=1410.0)
        pair.measurements = [
            _measurement(0, gt=0.0029),
            _measurement(1, gt=None),
            _measurement(2, gt=0.0031, outlier=True),
        ]
        other = PairResult(
            init_mhz=1410.0,
            target_mhz=705.0,
            skipped=True,
            skip_reason="power-throttled",
        )
        results = [
            PairJobResult(index=4, pair=pair, elapsed_virtual_s=12.5),
            PairJobResult(index=2, pair=other, elapsed_virtual_s=0.25),
        ]
        envelope = pack_results(results)
        assert envelope[0] == "shm"
        out = unpack_results(envelope)
        assert [r.index for r in out] == [4, 2]
        assert out[0].elapsed_virtual_s == 12.5
        assert out[0].pair.measurements == pair.measurements
        assert out[1].pair.skipped and not out[1].pair.measurements
        assert out[1].pair.skip_reason == "power-throttled"

    def test_empty_batch_falls_back_to_pickle(self):
        pair = PairResult(init_mhz=705.0, target_mhz=1410.0, skipped=True)
        results = [PairJobResult(index=0, pair=pair, elapsed_virtual_s=1.0)]
        envelope = pack_results(results)
        assert envelope[0] == "pickle"
        assert unpack_results(envelope) is results


class TestBatchAwareCostModel:
    def _probe(self, latencies):
        return ProbeInfo(
            max_latency_s=max(lat for *_, lat in latencies),
            median_latency_s=sorted(lat for *_, lat in latencies)[
                len(latencies) // 2
            ],
            pair_latencies=latencies,
        )

    def test_fixed_pass_term_is_additive(self):
        probe = self._probe([(705.0, 1410.0, 0.004), (1410.0, 705.0, 0.006)])
        bare = ProbeCostModel(probe)
        offset = ProbeCostModel(probe, fixed_pass_s=0.5)
        for pair in [(705.0, 1410.0), (1410.0, 705.0), (705.0, 900.0)]:
            assert offset.cost(*pair) == pytest.approx(
                bare.cost(*pair) + 0.5
            )

    def test_cross_facet_ordering_respects_fixed_pass(self):
        """A slow locked-SM facet outranks a fast one whose probe
        latencies are nominally larger — the multi-facet bugfix."""
        fast_facet = ProbeCostModel(
            self._probe([(1215.0, 810.0, 0.006)]), fixed_pass_s=0.01
        )
        slow_facet = ProbeCostModel(
            self._probe([(1215.0, 810.0, 0.004)]), fixed_pass_s=0.09
        )
        assert slow_facet.cost(1215.0, 810.0) > fast_facet.cost(1215.0, 810.0)

    def test_probe_latency_ordering_within_facet_unchanged(self):
        probe = self._probe(
            [(705.0, 1410.0, 0.004), (1410.0, 705.0, 0.006)]
        )
        model = ProbeCostModel(probe, fixed_pass_s=0.25)
        assert model.cost(1410.0, 705.0) > model.cost(705.0, 1410.0)
