"""Tests for campaign configuration validation."""

import pytest

from repro.core.config import LatestConfig
from repro.errors import ConfigError


def config(**kw):
    base = dict(frequencies=(705.0, 1410.0))
    base.update(kw)
    return LatestConfig(**base)


class TestValidation:
    def test_defaults_match_tool(self):
        cfg = config()
        assert cfg.rse_threshold == 0.05
        assert cfg.throttle_check_every == 5
        assert cfg.rse_check_every == 25
        assert cfg.detection_sigmas == 2.0
        assert cfg.detection_criterion == "two-sigma"

    def test_needs_two_frequencies(self):
        with pytest.raises(ConfigError):
            LatestConfig(frequencies=(705.0,))

    def test_duplicate_frequencies_rejected(self):
        with pytest.raises(ConfigError):
            LatestConfig(frequencies=(705.0, 705.0))

    def test_unknown_criterion_rejected(self):
        with pytest.raises(ConfigError):
            config(detection_criterion="magic")

    def test_unknown_window_policy_rejected(self):
        with pytest.raises(ConfigError):
            config(window_policy="huge")

    def test_max_below_min_measurements(self):
        with pytest.raises(ConfigError):
            config(min_measurements=50, max_measurements=10)

    def test_negative_rse_rejected(self):
        with pytest.raises(ConfigError):
            config(rse_threshold=-0.1)

    def test_zero_delay_rejected(self):
        with pytest.raises(ConfigError):
            config(delay_iterations=0)

    def test_non_positive_frequencies_rejected(self):
        with pytest.raises(ConfigError):
            LatestConfig(frequencies=(705.0, -1410.0))
        with pytest.raises(ConfigError):
            LatestConfig(frequencies=(0.0, 1410.0))

    def test_memory_frequency_invariants(self):
        with pytest.raises(ConfigError):
            config(memory_frequencies=())
        with pytest.raises(ConfigError):
            config(memory_frequencies=(1215.0, 1215.0))
        with pytest.raises(ConfigError):
            config(memory_frequencies=(1215.0, -810.0))
        assert config(memory_frequencies=(1215.0,)).memory_frequencies == (1215.0,)


class TestHelpers:
    def test_pairs_ordered_and_complete(self):
        cfg = LatestConfig(frequencies=(705.0, 1095.0, 1410.0))
        pairs = cfg.pairs()
        assert len(pairs) == 6
        assert (705.0, 1410.0) in pairs
        assert (1410.0, 705.0) in pairs
        assert all(a != b for a, b in pairs)

    def test_stopping_rule_mirrors_fields(self):
        cfg = config(
            rse_threshold=0.1,
            min_measurements=10,
            max_measurements=50,
            rse_check_every=5,
        )
        rule = cfg.stopping_rule()
        assert rule.threshold == 0.1
        assert rule.min_measurements == 10
        assert rule.max_measurements == 50
        assert rule.check_every == 5

    def test_with_frequencies(self):
        cfg = config().with_frequencies((840.0, 975.0))
        assert cfg.frequencies == (840.0, 975.0)

    def test_memory_plan_legacy_sentinel(self):
        assert config().memory_plan() == (None,)
        assert config(
            memory_frequencies=(1215.0, 810.0)
        ).memory_plan() == (1215.0, 810.0)

    def test_grid_points_memory_major(self):
        cfg = config(memory_frequencies=(1215.0, 810.0))
        points = cfg.grid_points()
        assert len(points) == 2 * len(cfg.pairs())
        # memory-major: the first facet's pairs come first, in pair order
        assert points[: len(cfg.pairs())] == [
            (a, b, 1215.0) for a, b in cfg.pairs()
        ]
        assert points[len(cfg.pairs()):] == [
            (a, b, 810.0) for a, b in cfg.pairs()
        ]

    def test_grid_points_legacy(self):
        assert config().grid_points() == [
            (a, b, None) for a, b in config().pairs()
        ]

    def test_with_memory_frequencies(self):
        cfg = config().with_memory_frequencies((1215.0, 810.0))
        assert cfg.memory_frequencies == (1215.0, 810.0)
        assert cfg.with_memory_frequencies(None).memory_frequencies is None
