"""Tests for the thermal/power model and throttle reasons."""

import pytest

from repro.gpusim.spec import A100_SXM4
from repro.gpusim.thermal import ThermalModel, ThrottleReasons


@pytest.fixture
def model():
    return ThermalModel(A100_SXM4, enabled=True, ambient_c=30.0)


class TestPowerModel:
    def test_idle_power_floor(self, model):
        assert model.power_watts(1410.0, 0.0) == A100_SXM4.idle_power_watts

    def test_tdp_at_max_clock_full_load(self, model):
        assert model.power_watts(1410.0, 1.0) == pytest.approx(
            A100_SXM4.tdp_watts
        )

    def test_power_monotone_in_frequency(self, model):
        freqs = [210.0, 705.0, 1095.0, 1410.0]
        powers = [model.power_watts(f, 1.0) for f in freqs]
        assert all(a < b for a, b in zip(powers, powers[1:]))

    def test_power_convex(self, model):
        # f^2.4 scaling: halving the clock saves far more than half the
        # dynamic power.
        full = model.power_watts(1410.0, 1.0) - A100_SXM4.idle_power_watts
        half = model.power_watts(705.0, 1.0) - A100_SXM4.idle_power_watts
        assert half < full / 4


class TestThermalEvolution:
    def test_disabled_stays_ambient(self):
        m = ThermalModel(A100_SXM4, enabled=False, ambient_c=25.0)
        state = m.initial_state(0.0)
        m.advance(state, 1000.0, 1410.0, 1.0)
        assert state.temperature_c == 25.0
        assert state.reasons == ThrottleReasons.NONE

    def test_heats_toward_steady_state(self, model):
        state = model.initial_state(0.0)
        model.advance(state, 10.0, 1410.0, 1.0)
        t10 = state.temperature_c
        model.advance(state, 200.0, 1410.0, 1.0)
        t200 = state.temperature_c
        steady = model.steady_temperature(model.power_watts(1410.0, 1.0))
        assert 30.0 < t10 < t200 <= steady + 1e-9

    def test_cools_when_idle(self, model):
        state = model.initial_state(0.0)
        model.advance(state, 200.0, 1410.0, 1.0)
        hot = state.temperature_c
        model.advance(state, 400.0, 210.0, 0.0)
        assert state.temperature_c < hot

    def test_time_cannot_reverse(self, model):
        state = model.initial_state(10.0)
        with pytest.raises(ValueError):
            model.advance(state, 5.0, 1410.0, 1.0)

    def test_thermal_throttle_reason_set(self):
        # Hot inlet: steady state exceeds the slowdown threshold.
        m = ThermalModel(A100_SXM4, enabled=True, ambient_c=70.0)
        state = m.initial_state(0.0)
        m.advance(state, 500.0, 1410.0, 1.0)
        assert state.reasons & ThrottleReasons.SW_THERMAL

    def test_power_cap_reason_set(self):
        m = ThermalModel(A100_SXM4, enabled=True, power_limit_w=200.0)
        state = m.initial_state(0.0)
        m.advance(state, 1.0, 1410.0, 1.0)
        assert state.reasons & ThrottleReasons.SW_POWER_CAP


class TestCaps:
    def test_thermal_cap_when_hot(self):
        m = ThermalModel(A100_SXM4, enabled=True, ambient_c=70.0)
        state = m.initial_state(0.0)
        m.advance(state, 500.0, 1410.0, 1.0)
        cap = m.thermal_cap_mhz(state)
        assert cap is not None and cap < 1410.0

    def test_no_cap_when_cool(self, model):
        state = model.initial_state(0.0)
        model.advance(state, 1.0, 210.0, 0.0)
        assert model.thermal_cap_mhz(state) is None

    def test_power_cap_frequency_sustainable(self):
        m = ThermalModel(A100_SXM4, enabled=True, power_limit_w=250.0)
        cap = m.power_cap_mhz(1410.0, 1.0)
        assert cap is not None
        assert m.power_watts(cap, 1.0) <= 250.0 + 1e-6

    def test_no_power_cap_within_budget(self, model):
        assert model.power_cap_mhz(705.0, 1.0) is None


class TestThrottleReasonBits:
    def test_bitmask_values_match_nvml(self):
        assert ThrottleReasons.GPU_IDLE == 0x1
        assert ThrottleReasons.APPLICATIONS_CLOCKS_SETTING == 0x2
        assert ThrottleReasons.SW_POWER_CAP == 0x4
        assert ThrottleReasons.SW_THERMAL == 0x20
        assert ThrottleReasons.HW_THERMAL == 0x40

    def test_flags_combine(self):
        combined = ThrottleReasons.SW_THERMAL | ThrottleReasons.SW_POWER_CAP
        assert combined & ThrottleReasons.SW_THERMAL
        assert not combined & ThrottleReasons.GPU_IDLE
