"""Property tests for axis-registry invariants (:mod:`repro.core.axis`).

The registry is append-only and several subsystems key on per-axis
strings: the CSV layer on ``csv_prefix`` (including the derived ``<prefix>f``
multi-facet and legacy ``swlat``/``swlatm`` families), the campaign loop
on ``facet_fail_reason``, the engine seed streams on the registry
position.  These tests pin the uniqueness requirements and check that
:func:`~repro.core.csvio.parse_pair_csv_name_full` round-trips every
registered axis's pair file names — for arbitrary frequencies, hostnames
and device indices, not just the hand-picked examples in ``test_axis.py``.
"""

from __future__ import annotations

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.axis import AXES, axis_stream_id
from repro.core.csvio import (
    pair_csv_name,
    parse_pair_csv_name_full,
    sanitize_hostname,
)
from repro.errors import MeasurementError

#: positive values that survive the ``%g`` formatting the CSV names use
_freq = st.floats(
    min_value=1e-3, max_value=1e9, allow_nan=False, allow_infinity=False
)
_hostname = st.text(
    alphabet=string.ascii_letters + string.digits + ".-_/ ",
    min_size=1,
    max_size=24,
)
_index = st.integers(min_value=0, max_value=255)

#: every (axis, facet kind) combination that produces a distinct prefix
_NAME_FORMS = [("sm_core", "none"), ("sm_core", "memory")] + [
    (name, kind)
    for name in AXES
    if name != "sm_core"
    for kind in ("none", "locked_sm")
]


def _g(value: float) -> float:
    """The value as recovered from its ``%g`` representation."""
    return float(f"{value:g}")


class TestRegistryInvariants:
    def test_axis_names_unique_and_nonempty(self):
        names = [axis.name for axis in AXES.values()]
        assert len(set(names)) == len(names)
        assert all(names)

    def test_csv_prefix_family_unique(self):
        """No prefix of any name family may collide with another.

        The family includes each axis's own prefix, the derived
        multi-facet ``<prefix>f`` forms, and the legacy grid prefix
        ``swlatm`` — a collision would make file names ambiguous.
        """
        prefixes = ["swlatm"]
        for axis in AXES.values():
            prefixes.append(axis.csv_prefix)
            if not axis.is_default:
                prefixes.append(axis.csv_prefix + "f")
        assert len(set(prefixes)) == len(prefixes)

    def test_skip_reasons_unique(self):
        reasons = [axis.facet_fail_reason for axis in AXES.values()]
        assert len(set(reasons)) == len(reasons)
        assert all(reasons)

    def test_stream_ids_distinct_and_stable(self):
        ids = [axis_stream_id(name) for name in AXES]
        assert ids == list(range(len(AXES)))

    def test_kernel_intensity_in_range(self):
        for axis in AXES.values():
            assert 0.0 <= axis.default_kernel_intensity < 1.0


class TestNameRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(
        form=st.sampled_from(_NAME_FORMS),
        init=_freq,
        target=_freq,
        facet=_freq,
        hostname=_hostname,
        index=_index,
    )
    def test_every_axis_round_trips(
        self, form, init, target, facet, hostname, index
    ):
        axis, facet_kind = form
        memory_mhz = facet if facet_kind == "memory" else None
        locked_sm = facet if facet_kind == "locked_sm" else None
        name = pair_csv_name(
            init, target, hostname, index,
            memory_mhz=memory_mhz, axis=axis, locked_sm_mhz=locked_sm,
        )
        parsed = parse_pair_csv_name_full(name)
        assert parsed.axis == axis
        assert parsed.init_mhz == _g(init)
        assert parsed.target_mhz == _g(target)
        if facet_kind == "memory":
            assert parsed.memory_mhz == _g(facet)
            assert parsed.locked_sm_mhz is None
        elif facet_kind == "locked_sm":
            assert parsed.locked_sm_mhz == _g(facet)
            assert parsed.memory_mhz is None
        else:
            assert parsed.memory_mhz is None
            assert parsed.locked_sm_mhz is None

    @settings(max_examples=100, deadline=None)
    @given(
        form=st.sampled_from(_NAME_FORMS),
        init=_freq,
        target=_freq,
        facet=_freq,
        hostname=_hostname,
        index=_index,
    )
    def test_hostname_cannot_corrupt_fields(
        self, form, init, target, facet, hostname, index
    ):
        """The numeric fields parse identically whatever the hostname."""
        axis, facet_kind = form
        name = pair_csv_name(
            init, target, hostname, index,
            memory_mhz=facet if facet_kind == "memory" else None,
            axis=axis,
            locked_sm_mhz=facet if facet_kind == "locked_sm" else None,
        )
        assert sanitize_hostname(hostname) in name
        reference = pair_csv_name(
            init, target, "h", index,
            memory_mhz=facet if facet_kind == "memory" else None,
            axis=axis,
            locked_sm_mhz=facet if facet_kind == "locked_sm" else None,
        )
        assert parse_pair_csv_name_full(name) == parse_pair_csv_name_full(
            reference
        )

    @pytest.mark.parametrize(
        "bad",
        [
            "summary_host_gpu0.csv",
            "swlat_only_gpu0.csv",
            "swlatx_705_1410_h_gpu0.csv",
            "swlatmemf_705_1410_h_gpu0.csv",  # facet prefix, missing field
            "notacsv",
        ],
    )
    def test_non_pair_names_rejected(self, bad):
        with pytest.raises(MeasurementError):
            parse_pair_csv_name_full(bad)
