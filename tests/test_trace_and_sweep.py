"""Tests for the event tracer, the device/model sweeps, and the oracle
governor."""

import pytest

from repro import make_machine
from repro.core.sweep import sweep_devices, sweep_models
from repro.errors import ConfigError
from repro.governor import (
    LatencyAwareGovernor,
    NaiveGovernor,
    OracleGovernor,
    make_phased_application,
    simulate_governor,
)
from repro.trace import NULL_TRACER, TraceEvent, Tracer
from tests.conftest import fast_config


class TestTracer:
    def test_emit_and_query(self):
        tracer = Tracer()
        tracer.emit(1.0, "device", "kernel-launch", seq=0)
        tracer.emit(2.0, "dvfs", "locked-clocks", target_mhz=705.0)
        assert tracer.n_events == 2
        assert len(list(tracer.events(category="dvfs"))) == 1

    def test_disabled_tracer_drops(self):
        tracer = Tracer(enabled=False)
        tracer.emit(1.0, "x", "y")
        assert tracer.n_events == 0

    def test_null_tracer_is_disabled(self):
        NULL_TRACER.emit(1.0, "x", "y")
        assert NULL_TRACER.n_events == 0

    def test_capacity_bounded(self):
        tracer = Tracer(capacity=10)
        for i in range(25):
            tracer.emit(float(i), "c", "n", i=i)
        assert tracer.n_events <= 10
        assert tracer.n_dropped > 0
        # Newest events survive.
        assert tracer.last().data["i"] == 24

    def test_time_window_filter(self):
        tracer = Tracer()
        for i in range(10):
            tracer.emit(float(i), "c", "n")
        window = list(tracer.events(t_min=3.0, t_max=6.0))
        assert len(window) == 4

    def test_render_and_categories(self):
        tracer = Tracer()
        tracer.emit(1.5, "device", "kernel-launch", seq=3)
        text = tracer.render()
        assert "kernel-launch" in text and "seq=3" in text
        assert tracer.categories() == {"device": 1}

    def test_format_event(self):
        event = TraceEvent(t=1.0, category="a", name="b", data={"k": 1})
        assert "k=1" in event.format()

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(0.0, "a", "b")
        tracer.clear()
        assert tracer.n_events == 0


class TestTracedCampaign:
    def test_campaign_emits_events(self):
        from repro import run_campaign

        tracer = Tracer()
        machine = make_machine("A100", seed=12, tracer=tracer)
        config = fast_config(
            (705.0, 1410.0), min_measurements=4, max_measurements=5
        )
        run_campaign(machine, config)
        counts = tracer.categories()
        assert counts.get("device", 0) > 10     # launches + completions
        assert counts.get("dvfs", 0) > 4        # locked-clock requests
        assert counts.get("campaign", 0) >= 8   # evaluations

    def test_dvfs_events_carry_ground_truth(self):
        tracer = Tracer()
        machine = make_machine("A100", seed=13, tracer=tracer)
        handle = machine.nvml().device_get_handle_by_index(0)
        ctx = machine.cuda_context()
        from repro.cuda.kernel import MicrobenchmarkKernel

        handle.set_gpu_locked_clocks(1095.0, 1095.0)
        kernel = MicrobenchmarkKernel.sized_for(
            machine.device().spec, total_duration_s=0.3, sm_count=1
        )
        ctx.run(kernel)
        handle.set_gpu_locked_clocks(705.0, 705.0)
        events = list(tracer.events(category="dvfs"))
        assert events[-1].data["target_mhz"] == 705.0
        assert events[-1].data["latency_ms"] is not None


class TestSweeps:
    def test_device_sweep(self):
        machine = make_machine("A100", n_gpus=2, seed=21)
        config = fast_config(
            (705.0, 1410.0), min_measurements=4, max_measurements=5
        )
        results = sweep_devices(machine, config)
        assert len(results) == 2
        assert results[0].device_index == 0
        assert results[1].device_index == 1
        # Distinct units: measurements differ.
        a = results[0].pair(705.0, 1410.0).latencies_s(False)
        b = results[1].pair(705.0, 1410.0).latencies_s(False)
        assert not (a[: len(b)] == b[: len(a)]).all()

    def test_device_sweep_validates_indices(self):
        machine = make_machine("A100", seed=21)
        config = fast_config((705.0, 1410.0))
        with pytest.raises(ConfigError):
            sweep_devices(machine, config, device_indices=[5])
        with pytest.raises(ConfigError):
            sweep_devices(machine, config, device_indices=[])

    def test_model_sweep(self):
        configs = {
            "A100": fast_config(
                (705.0, 1410.0), min_measurements=4, max_measurements=5
            ),
            "RTX6000": fast_config(
                (750.0, 1650.0), min_measurements=4, max_measurements=5
            ),
        }
        results = sweep_models(configs, seed=5)
        assert set(results) == {"A100", "RTX6000"}
        assert results["A100"].gpu_name == "A100 SXM-4"
        assert results["RTX6000"].gpu_name == "RTX Quadro 6000"

    def test_empty_model_sweep_rejected(self):
        with pytest.raises(ConfigError):
            sweep_models({})


class TestOracleGovernor:
    def test_oracle_never_worse_than_naive(self):
        from repro.gpusim.spec import GH200
        from tests.test_governor import table

        app = make_phased_application(GH200, n_phases=60, seed=4)
        slow = table(
            freqs=(1260.0, 1305.0, 1980.0),
            default=8e-3,
            overrides={(1980.0, 1260.0): 200e-3, (1305.0, 1260.0): 200e-3},
        )
        naive = simulate_governor(app, NaiveGovernor(slow))
        oracle = simulate_governor(app, OracleGovernor(slow))
        assert oracle.total_energy_j <= naive.total_energy_j * 1.01

    def test_oracle_bounds_latency_aware(self):
        from repro.gpusim.spec import A100_SXM4
        from tests.test_governor import table

        app = make_phased_application(A100_SXM4, n_phases=60, seed=5)
        t = table(default=50e-3)
        aware = simulate_governor(app, LatencyAwareGovernor(t))
        oracle = simulate_governor(app, OracleGovernor(t))
        # The oracle is the reference line: no heuristic governor beats it
        # on the energy-delay product by more than noise.
        edp_oracle = oracle.total_energy_j * oracle.total_time_s
        edp_aware = aware.total_energy_j * aware.total_time_s
        assert edp_oracle <= edp_aware * 1.05
