"""Tests for the machine factory."""

import pytest

from repro.errors import ConfigError
from repro.gpusim.spec import A100_SXM4, GH200
from repro.machine import make_machine


class TestMakeMachine:
    def test_default_single_gpu(self):
        machine = make_machine("A100", seed=0)
        assert len(machine.devices) == 1
        assert machine.device().spec is A100_SXM4

    def test_spec_instance_accepted(self):
        machine = make_machine(GH200, seed=0)
        assert machine.device().spec is GH200

    def test_multi_gpu_distinct_serials(self):
        machine = make_machine("A100", n_gpus=4, seed=0)
        serials = {d.unit_seed for d in machine.devices}
        assert len(serials) == 4

    def test_custom_unit_seeds(self):
        machine = make_machine("A100", n_gpus=2, seed=0, unit_seeds=[7, 8])
        assert [d.unit_seed for d in machine.devices] == [7, 8]

    def test_unit_seed_length_mismatch(self):
        with pytest.raises(ConfigError):
            make_machine("A100", n_gpus=2, unit_seeds=[1])

    def test_zero_gpus_rejected(self):
        with pytest.raises(ConfigError):
            make_machine("A100", n_gpus=0)

    def test_device_index_out_of_range(self):
        machine = make_machine("A100", seed=0)
        with pytest.raises(ConfigError):
            machine.device(3)

    def test_devices_share_clock(self):
        machine = make_machine("A100", n_gpus=2, seed=0)
        assert machine.devices[0].clock is machine.clock
        assert machine.devices[1].clock is machine.clock

    def test_gpu_clocks_have_distinct_offsets(self):
        machine = make_machine("A100", n_gpus=2, seed=0)
        assert (
            machine.devices[0].gpu_clock.offset
            != machine.devices[1].gpu_clock.offset
        )

    def test_seed_reproducibility(self):
        m1 = make_machine("A100", seed=77)
        m2 = make_machine("A100", seed=77)
        assert m1.device().gpu_clock.offset == m2.device().gpu_clock.offset

    def test_different_seeds_differ(self):
        m1 = make_machine("A100", seed=77)
        m2 = make_machine("A100", seed=78)
        assert m1.device().gpu_clock.offset != m2.device().gpu_clock.offset

    def test_helpers_build_contexts(self):
        machine = make_machine("A100", seed=0)
        assert machine.cuda_context().device is machine.device()
        handle = machine.nvml().device_get_handle_by_index(0)
        assert handle.device is machine.device()
