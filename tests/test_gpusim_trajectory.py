"""Tests for frequency trajectories."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.gpusim.trajectory import FrequencyTrajectory, Segment


def simple_trajectory() -> FrequencyTrajectory:
    return FrequencyTrajectory(
        [
            Segment(0.0, 1.0, 1000.0),
            Segment(1.0, 2.0, 1500.0),
            Segment(2.0, float("inf"), 500.0),
        ]
    )


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            FrequencyTrajectory([])

    def test_gap_rejected(self):
        with pytest.raises(SimulationError):
            FrequencyTrajectory(
                [Segment(0.0, 1.0, 1000.0), Segment(1.5, 2.0, 500.0)]
            )

    def test_from_events_collapses_duplicates(self):
        traj = FrequencyTrajectory.from_events(
            0.0, 1000.0, [(1.0, 1000.0), (2.0, 500.0)]
        )
        # The same-frequency event at t=1 produces no new segment.
        assert len(traj) == 2

    def test_from_events_pre_start_overrides_initial(self):
        traj = FrequencyTrajectory.from_events(
            5.0, 1000.0, [(4.0, 750.0), (6.0, 500.0)]
        )
        assert traj.freq_at(5.5) == 750.0
        assert traj.freq_at(6.5) == 500.0

    def test_last_segment_unbounded(self):
        traj = FrequencyTrajectory.from_events(0.0, 1000.0, [(1.0, 500.0)])
        assert traj.segments[-1].t_end == float("inf")
        assert traj.final_freq_mhz == 500.0


class TestQueries:
    def test_freq_at_segment_boundaries(self):
        traj = simple_trajectory()
        assert traj.freq_at(0.0) == 1000.0
        assert traj.freq_at(0.999) == 1000.0
        assert traj.freq_at(1.0) == 1500.0
        assert traj.freq_at(5.0) == 500.0

    def test_freq_before_start_raises(self):
        with pytest.raises(SimulationError):
            simple_trajectory().freq_at(-0.1)

    def test_freq_at_array_matches_scalar(self):
        traj = simple_trajectory()
        times = np.linspace(0.0, 3.0, 40)
        vec = traj.freq_at_array(times)
        scalars = np.array([traj.freq_at(t) for t in times])
        np.testing.assert_array_equal(vec, scalars)

    def test_iter_from_clips_first_segment(self):
        traj = simple_trajectory()
        segs = list(traj.iter_from(0.5))
        assert segs[0].t_start == 0.5
        assert segs[0].freq_mhz == 1000.0
        assert len(segs) == 3

    def test_iter_from_mid_trajectory(self):
        traj = simple_trajectory()
        segs = list(traj.iter_from(1.5))
        assert segs[0].t_start == 1.5
        assert segs[0].freq_mhz == 1500.0
        assert len(segs) == 2

    def test_switch_times(self):
        traj = simple_trajectory()
        assert traj.switch_times() == [(1.0, 1500.0), (2.0, 500.0)]

    def test_segment_duration_and_hz(self):
        seg = Segment(0.0, 2.0, 1000.0)
        assert seg.duration == 2.0
        assert seg.freq_hz == 1e9


@given(
    events=st.lists(
        st.tuples(
            st.floats(0.01, 100.0),
            st.sampled_from([500.0, 750.0, 1000.0, 1250.0]),
        ),
        max_size=12,
    )
)
@settings(max_examples=80, deadline=None)
def test_from_events_contiguous_and_total(events):
    """Segments always tile [t0, inf) without gaps or overlaps."""
    traj = FrequencyTrajectory.from_events(0.0, 1000.0, events)
    assert traj.segments[0].t_start == 0.0
    assert traj.segments[-1].t_end == float("inf")
    for a, b in zip(traj.segments, traj.segments[1:]):
        assert a.t_end == b.t_start
        assert a.freq_mhz != b.freq_mhz  # collapsed duplicates
