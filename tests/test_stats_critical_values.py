"""Exactness of the cached critical values against scipy.

The cache is keyed on (confidence, dof rounded to DOF_DECIMALS); for any
key the stored value must be *exactly* what scipy computes for that
rounded dof — the cache trades a sub-1e-6 dof perturbation for the lookup,
never approximation of the quantile itself.
"""

import numpy as np
import pytest
from scipy import stats as sps

from repro.errors import ConfigError
from repro.stats.descriptive import SampleStats
from repro.stats.intervals import (
    DOF_DECIMALS,
    NORMAL_DOF_CUTOFF,
    critical_value,
    difference_ci,
    difference_ci_batch,
    welch_dof,
    welch_dof_batch,
)


def _stats(n, mean, std):
    return SampleStats(n=n, mean=mean, std=std, minimum=mean - std, maximum=mean + std)


class TestCriticalValueCache:
    @pytest.mark.parametrize("confidence", [0.90, 0.95, 0.99])
    @pytest.mark.parametrize(
        "dof",
        [1.0, 2.0, 2.5, 3.7, 9.999, 10.0, 31.416, 57.123456, 120.0, 199.999],
    )
    def test_t_values_match_scipy_exactly(self, confidence, dof):
        tail = 0.5 + confidence / 2.0
        expected = float(sps.t.ppf(tail, float(np.round(dof, DOF_DECIMALS))))
        assert critical_value(confidence, dof) == expected

    @pytest.mark.parametrize("confidence", [0.90, 0.95, 0.99])
    @pytest.mark.parametrize("dof", [200.001, 500.0, 1e6, float("inf"), None])
    def test_normal_fallback_above_cutoff(self, confidence, dof):
        tail = 0.5 + confidence / 2.0
        assert critical_value(confidence, dof) == float(sps.norm.ppf(tail))

    def test_cutoff_boundary_uses_t(self):
        # dof exactly at the cutoff stays on the t distribution.
        expected = float(sps.t.ppf(0.975, NORMAL_DOF_CUTOFF))
        assert critical_value(0.95, NORMAL_DOF_CUTOFF) == expected

    def test_repeated_calls_are_stable(self):
        first = critical_value(0.95, 12.3456)
        assert all(critical_value(0.95, 12.3456) == first for _ in range(5))

    def test_rounding_collapses_nearby_dofs(self):
        step = 10 ** (-DOF_DECIMALS)
        assert critical_value(0.95, 10.0) == critical_value(0.95, 10.0 + step / 4)

    def test_invalid_confidence_rejected(self):
        with pytest.raises(ConfigError):
            critical_value(1.5, 10.0)


class TestBatchMatchesScalar:
    def test_difference_ci_batch_equals_scalar(self):
        rng = np.random.default_rng(7)
        b = _stats(40, 1.0e-3, 5.0e-5)
        means = 1.0e-3 + rng.normal(0, 5e-5, size=25)
        stds = np.abs(rng.normal(5e-5, 1e-5, size=25)) + 1e-9
        ns = rng.integers(2, 400, size=25)

        lb, hb = difference_ci_batch(means, stds * stds, ns, b, 0.95)
        for i in range(means.size):
            a = _stats(int(ns[i]), float(means[i]), float(stds[i]))
            slb, shb = difference_ci(a, b, 0.95)
            assert lb[i] == slb and hb[i] == shb

    def test_welch_dof_batch_equals_scalar(self):
        b = _stats(30, 2.0, 0.3)
        std_a = np.array([0.1, 0.45, 1.22])
        var_a = std_a * std_a  # the batch contract: variance is std*std
        n_a = np.array([5, 50, 300])
        batch = welch_dof_batch(var_a, n_a, b)
        for i in range(3):
            a = _stats(int(n_a[i]), 0.0, float(std_a[i]))
            assert batch[i] == welch_dof(a, b)

    def test_zero_variance_both_sides_gives_normal(self):
        # denom == 0 -> infinite dof -> normal critical value.
        b = _stats(10, 1.0, 0.0)
        lb, hb = difference_ci_batch(
            np.array([1.0]), np.array([0.0]), np.array([10]), b, 0.95
        )
        assert lb[0] == hb[0] == 0.0

    def test_small_n_rejected(self):
        b = _stats(10, 1.0, 0.1)
        with pytest.raises(ConfigError):
            difference_ci_batch(
                np.array([1.0]), np.array([0.01]), np.array([1]), b
            )
