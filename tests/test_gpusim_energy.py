"""Property and unit tests for the device energy meter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.gpusim.arch_profiles import A100Profile
from repro.gpusim.dvfs import DvfsClockDomain
from repro.gpusim.energy import EnergyMeter
from repro.gpusim.latency_model import SwitchingLatencyModel
from repro.gpusim.spec import A100_SXM4
from repro.gpusim.thermal import ThermalModel


def make_meter(seed=0):
    rng = np.random.default_rng(seed)
    model = SwitchingLatencyModel(A100Profile(), unit_seed=0, rng=rng)
    dvfs = DvfsClockDomain(A100_SXM4, model, rng)
    thermal = ThermalModel(A100_SXM4, enabled=False)
    return EnergyMeter(thermal=thermal, dvfs=dvfs, start_time=0.0), dvfs, thermal


class TestEnergyMeterBasics:
    def test_idle_power_integration(self):
        meter, _, _ = make_meter()
        energy = meter.integrate_to(100.0)
        assert energy == pytest.approx(A100_SXM4.idle_power_watts * 100.0)

    def test_busy_interval_charged_at_load_power(self):
        meter, dvfs, thermal = make_meter()
        meter.record_busy(10.0, 20.0)
        energy = meter.integrate_to(30.0)
        idle_f = A100_SXM4.idle_sm_frequency_mhz
        expected = (
            thermal.power_watts(idle_f, 0.0) * 20.0
            + thermal.power_watts(idle_f, 1.0) * 10.0
        )
        assert energy == pytest.approx(expected)

    def test_backwards_integration_rejected(self):
        meter, _, _ = make_meter()
        meter.integrate_to(10.0)
        with pytest.raises(SimulationError):
            meter.integrate_to(5.0)

    def test_invalid_busy_interval_rejected(self):
        meter, _, _ = make_meter()
        with pytest.raises(SimulationError):
            meter.record_busy(5.0, 3.0)

    def test_overlapping_busy_clipped(self):
        meter, _, _ = make_meter()
        meter.record_busy(0.0, 10.0)
        meter.record_busy(5.0, 12.0)  # overlap clipped to [10, 12]
        energy = meter.integrate_to(12.0)
        idle_f = A100_SXM4.idle_sm_frequency_mhz
        thermal = ThermalModel(A100_SXM4, enabled=False)
        expected = thermal.power_watts(idle_f, 1.0) * 12.0
        assert energy == pytest.approx(expected)

    def test_average_power(self):
        meter, _, _ = make_meter()
        meter.integrate_to(50.0)
        assert meter.average_power_w(50.0) == pytest.approx(
            A100_SXM4.idle_power_watts
        )

    def test_frequency_change_reflected(self):
        meter, dvfs, thermal = make_meter()
        # Power the domain and lock a high clock.
        dvfs.request_locked_clocks(1410.0, 0.0)
        rec = dvfs.notify_kernel_start(1.0)
        meter.record_busy(1.0, 1000.0)
        energy = meter.integrate_to(1000.0)
        # Bulk of the window runs at 1410 MHz under load.
        approx_expected = thermal.power_watts(1410.0, 1.0) * 999.0
        assert energy == pytest.approx(approx_expected, rel=0.05)


@given(
    split=st.floats(1.0, 99.0),
    horizon=st.floats(100.0, 400.0),
)
@settings(max_examples=40, deadline=None)
def test_integration_additivity(split, horizon):
    """E(0 -> horizon) == E(0 -> split) + E(split -> horizon)."""
    meter_a, _, _ = make_meter(seed=3)
    meter_a.record_busy(10.0, 60.0)
    total = meter_a.integrate_to(horizon)

    meter_b, _, _ = make_meter(seed=3)
    meter_b.record_busy(10.0, 60.0)
    part1 = meter_b.integrate_to(split)
    part2 = meter_b.integrate_to(horizon)
    assert part2 == pytest.approx(total, rel=1e-9)
    assert part1 <= total + 1e-9


@given(busy_spans=st.lists(
    st.tuples(st.floats(0.0, 90.0), st.floats(0.1, 10.0)),
    max_size=5,
))
@settings(max_examples=40, deadline=None)
def test_energy_monotone_nondecreasing(busy_spans):
    meter, _, _ = make_meter(seed=4)
    for start, length in sorted(busy_spans):
        meter.record_busy(start, start + length)
    previous = 0.0
    for t in (10.0, 30.0, 70.0, 120.0):
        energy = meter.integrate_to(t)
        assert energy >= previous - 1e-12
        previous = energy
