"""Shared fixtures: small simulated machines and fast campaign configs.

Campaign-running fixtures are session-scoped — a single small campaign
feeds many analysis tests, keeping the suite fast while still exercising
the full pipeline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import LatestConfig, make_machine, run_campaign
from repro.simtime.clock import VirtualClock
from repro.simtime.host import HostCpu


@pytest.fixture
def clock() -> VirtualClock:
    return VirtualClock()


@pytest.fixture
def host(clock: VirtualClock) -> HostCpu:
    return HostCpu(clock, rng=np.random.default_rng(1))


@pytest.fixture
def a100_machine():
    return make_machine("A100", seed=123)


@pytest.fixture
def gh200_machine():
    return make_machine("GH200", seed=321)


@pytest.fixture
def rtx_machine():
    return make_machine("RTX6000", seed=7)


def fast_config(frequencies, **overrides) -> LatestConfig:
    """A LatestConfig tuned for test speed (few SMs, few measurements)."""
    defaults = dict(
        frequencies=tuple(float(f) for f in frequencies),
        record_sm_count=4,
        min_measurements=4,
        max_measurements=8,
        rse_check_every=2,
        warmup_kernels=1,
        warmup_kernel_duration_s=0.05,
        measure_kernel_duration_s=0.08,
        delay_iterations=150,
        confirm_iterations=150,
        probe_window_s=0.4,
        settle_chunk_s=0.08,
    )
    defaults.update(overrides)
    return LatestConfig(**defaults)


@pytest.fixture(scope="session")
def small_a100_campaign():
    """One reusable three-frequency A100 campaign (session scope)."""
    machine = make_machine("A100", seed=2718)
    config = fast_config(
        (705.0, 1095.0, 1410.0),
        min_measurements=14,
        max_measurements=20,
        rse_check_every=7,
    )
    return run_campaign(machine, config)


@pytest.fixture(scope="session")
def small_gh200_campaign():
    """GH200 campaign including a pathological target band (1875 MHz)."""
    machine = make_machine("GH200", seed=1618)
    config = fast_config(
        (705.0, 1410.0, 1875.0),
        min_measurements=14,
        max_measurements=20,
        rse_check_every=7,
    )
    return run_campaign(machine, config)
