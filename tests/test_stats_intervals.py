"""Tests for confidence intervals and the 2-sigma band — including the
paper's Sec. V-A contrast between the two."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.stats.descriptive import SampleStats, summarize
from repro.stats.intervals import difference_ci, mean_ci, two_sigma_band


def stats(n, mean, std):
    return SampleStats(n=n, mean=mean, std=std, minimum=0.0, maximum=0.0)


class TestMeanCi:
    def test_contains_mean(self):
        s = summarize([1.0, 2.0, 3.0])
        lo, hi = mean_ci(s)
        assert lo < s.mean < hi

    def test_shrinks_with_n(self):
        lo1, hi1 = mean_ci(stats(10, 5.0, 1.0))
        lo2, hi2 = mean_ci(stats(1000, 5.0, 1.0))
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_needs_two_samples(self):
        with pytest.raises(ConfigError):
            mean_ci(stats(1, 5.0, 1.0))

    def test_invalid_confidence(self):
        with pytest.raises(ConfigError):
            mean_ci(stats(10, 5.0, 1.0), confidence=1.5)

    def test_coverage_simulation(self):
        """~95 % of CIs contain the true mean."""
        rng = np.random.default_rng(0)
        hits = 0
        trials = 400
        for _ in range(trials):
            sample = rng.normal(10.0, 2.0, size=30)
            lo, hi = mean_ci(summarize(sample))
            hits += lo <= 10.0 <= hi
        assert 0.90 <= hits / trials <= 0.99


class TestDifferenceCi:
    def test_excludes_zero_for_distinct_means(self):
        a = stats(100, 10.0, 1.0)
        b = stats(100, 12.0, 1.0)
        lo, hi = difference_ci(a, b)
        assert hi < 0.0 or lo > 0.0

    def test_includes_zero_for_equal_means(self):
        rng = np.random.default_rng(1)
        a = summarize(rng.normal(5.0, 1.0, 200))
        b = summarize(rng.normal(5.0, 1.0, 200))
        lo, hi = difference_ci(a, b)
        assert lo < 0.0 < hi

    def test_sign_orientation(self):
        a = stats(100, 12.0, 1.0)
        b = stats(100, 10.0, 1.0)
        lo, hi = difference_ci(a, b)
        assert lo > 0.0  # a - b positive

    def test_needs_two_each(self):
        with pytest.raises(ConfigError):
            difference_ci(stats(1, 1.0, 0.1), stats(10, 1.0, 0.1))


class TestTwoSigmaBand:
    def test_width_independent_of_n(self):
        """The paper's key point: the 2-sigma band does NOT shrink with n,
        unlike the confidence interval."""
        small = two_sigma_band(stats(10, 5.0, 1.0))
        huge = two_sigma_band(stats(10_000_000, 5.0, 1.0))
        assert small == huge

    def test_ci_collapses_with_n_but_band_does_not(self):
        s = stats(10_000_000, 5.0, 1.0)
        ci_lo, ci_hi = mean_ci(s)
        band_lo, band_hi = two_sigma_band(s)
        assert (ci_hi - ci_lo) < (band_hi - band_lo) / 1000

    def test_band_width(self):
        lo, hi = two_sigma_band(stats(10, 5.0, 1.0), width_sigmas=2.0)
        assert (lo, hi) == (3.0, 7.0)

    def test_invalid_width(self):
        with pytest.raises(ConfigError):
            two_sigma_band(stats(10, 5.0, 1.0), width_sigmas=0.0)

    def test_covers_95_percent_of_normal_samples(self):
        rng = np.random.default_rng(2)
        sample = rng.normal(0.0, 1.0, 20_000)
        lo, hi = two_sigma_band(summarize(sample))
        coverage = ((sample >= lo) & (sample <= hi)).mean()
        assert 0.94 < coverage < 0.965


@given(
    n=st.integers(2, 10_000),
    mean=st.floats(-100, 100),
    std=st.floats(0.01, 10.0),
)
@settings(max_examples=60, deadline=None)
def test_ci_nested_in_band_for_n_over_4(n, mean, std):
    """For n > 4 the CI of the mean is strictly inside the 2-sigma band."""
    s = stats(n, mean, std)
    ci_lo, ci_hi = mean_ci(s)
    band_lo, band_hi = two_sigma_band(s)
    if n > 4:
        assert band_lo < ci_lo < ci_hi < band_hi
