"""Calibration cache & parallel facet calibration (engine tiers).

Contract under test (see :mod:`repro.core.calibcache` and the engine
module docs): a campaign re-run against a warm calibration cache replays
every facet's phase-1/probe calibration from disk — zero characterization
passes — and still produces results bit-identical (CSV bytes and
``wall_virtual_s`` included) to the cold run, on every measurement axis
and execution tier; multi-facet campaigns additionally calibrate their
facets *in parallel* on cold runs with results provably identical to
sequential execution; and the fingerprint keying the cache changes with
every calibration-affecting input while ignoring execution-only knobs.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import make_machine, run_campaign
from repro.core.calibcache import (
    CALIB_CACHE_VERSION,
    CalibrationCache,
    FacetCalibration,
    calibration_fingerprint,
    last_run_stats,
)
from repro.core.campaign import LatestBenchmark
from repro.core.stream import FacetPrepared, RecordingSink
from repro.errors import CampaignInterrupted, ConfigError
from repro.exec.daemon import WarmPool
from repro.exec.engine import CampaignExecutor, run_campaign_parallel
from repro.exec.jobs import calibration_seed_sequence
from repro.exec.worker import calibrate_facet
from tests.conftest import fast_config
from tests.test_exec_engine import _campaign_fingerprint, _csv_bytes

_AXES = {
    "sm_core": dict(frequencies=(705.0, 1095.0, 1410.0)),
    "memory": dict(frequencies=(1215.0, 810.0, 405.0), axis="memory"),
    "power": dict(frequencies=(400.0, 330.0, 270.0), axis="power"),
}


def _axis_config(axis, **overrides):
    kw = dict(_AXES[axis])
    kw.update(overrides)
    freqs = kw.pop("frequencies")
    return fast_config(freqs, **kw)


def _facet_config(**overrides):
    """A 2-facet memory-axis campaign (replica calibration scheme)."""
    return fast_config(
        (1215.0, 810.0),
        axis="memory",
        locked_sm_mhz=(1410.0, 810.0),
        **overrides,
    )


def _machine(seed=4242):
    return make_machine("A100", seed=seed)


def _entry(index=0, facet=None):
    return FacetCalibration(
        facet_index=index,
        facet=facet,
        prepared=True,
        phase1=None,
        probe=None,
        fixed_pass_s=1.25,
        elapsed_virtual_s=3.5,
    )


# ---------------------------------------------------------------------------
class TestFingerprint:
    def test_deterministic_across_machine_builds(self):
        cfg = _axis_config("sm_core")
        a = calibration_fingerprint(
            cfg, _machine().blueprint, 0, None, "driver"
        )
        b = calibration_fingerprint(
            cfg, _machine().blueprint, 0, None, "driver"
        )
        assert a == b

    def test_stable_after_a_campaign_has_run(self):
        # Regression: the GPU spec grows lazily populated lookup memos
        # once a campaign runs; a pickle-based digest leaked that object
        # identity and warm runs in the same process always missed.
        cfg = _axis_config("sm_core")
        before = calibration_fingerprint(
            cfg, _machine().blueprint, 0, None, "driver"
        )
        run_campaign(_machine(), cfg, workers=1)
        after = calibration_fingerprint(
            cfg, _machine().blueprint, 0, None, "driver"
        )
        assert before == after

    @pytest.mark.parametrize(
        "change",
        [
            dict(frequencies=(705.0, 1410.0)),
            dict(delay_iterations=151),
            dict(probe_window_s=0.5),
            dict(warmup_kernels=2),
            dict(settle_chunk_s=0.04),
        ],
    )
    def test_affecting_field_changes_key(self, change):
        bp = _machine().blueprint
        base = calibration_fingerprint(
            _axis_config("sm_core"), bp, 0, None, "driver"
        )
        varied = calibration_fingerprint(
            _axis_config("sm_core", **change), bp, 0, None, "driver"
        )
        assert varied != base

    def test_machine_seed_changes_key(self):
        cfg = _axis_config("sm_core")
        assert calibration_fingerprint(
            cfg, _machine(1).blueprint, 0, None, "driver"
        ) != calibration_fingerprint(
            cfg, _machine(2).blueprint, 0, None, "driver"
        )

    def test_execution_only_knobs_keep_key(self):
        # Worker counts, stopping rules, supervision and output settings
        # provably cannot change phase 1 or the probe; re-tuning them
        # must still hit.
        bp = _machine().blueprint
        base = calibration_fingerprint(
            _axis_config("sm_core"), bp, 0, None, "driver"
        )
        varied = _axis_config(
            "sm_core",
            rse_threshold=0.01,
            min_measurements=2,
            max_measurements=64,
            rse_check_every=9,
            output_dir="/tmp/elsewhere",
            max_job_retries=9,
            calibration_cache="/tmp/some/cache",
            throttle_backoff_s=0.5,
            max_consecutive_failures=11,
        )
        assert (
            calibration_fingerprint(varied, bp, 0, None, "driver") == base
        )

    def test_scheme_and_facet_coordinates_are_keyed(self):
        cfg = _facet_config()
        bp = _machine().blueprint
        keys = {
            calibration_fingerprint(cfg, bp, 0, 1410.0, "replica"),
            calibration_fingerprint(cfg, bp, 0, 1410.0, "driver"),
            calibration_fingerprint(cfg, bp, 1, 1410.0, "replica"),
            calibration_fingerprint(cfg, bp, 0, 810.0, "replica"),
            calibration_fingerprint(cfg, bp, 0, None, "replica"),
        }
        assert len(keys) == 5

    @given(
        rse=st.floats(0.01, 0.2),
        cap=st.integers(4, 64),
        retries=st.integers(0, 5),
    )
    @settings(max_examples=15, deadline=None)
    def test_excluded_knobs_never_move_key(self, rse, cap, retries):
        bp = make_machine("A100", seed=4242).blueprint
        base = calibration_fingerprint(
            _axis_config("sm_core"), bp, 0, None, "driver"
        )
        varied = _axis_config(
            "sm_core",
            rse_threshold=rse,
            max_measurements=max(cap, 4),
            max_job_retries=retries,
        )
        assert (
            calibration_fingerprint(varied, bp, 0, None, "driver") == base
        )

    @given(extra=st.integers(1, 400))
    @settings(max_examples=15, deadline=None)
    def test_affecting_knobs_always_move_key(self, extra):
        bp = make_machine("A100", seed=4242).blueprint
        base = calibration_fingerprint(
            _axis_config("sm_core"), bp, 0, None, "driver"
        )
        varied = _axis_config(
            "sm_core", delay_iterations=150 + extra
        )
        assert (
            calibration_fingerprint(varied, bp, 0, None, "driver") != base
        )


# ---------------------------------------------------------------------------
class TestCacheStore:
    def test_round_trip_across_instances(self, tmp_path):
        key = "k" * 64
        writer = CalibrationCache(tmp_path / "cc")
        writer.install(key, _entry())
        assert writer.stats["installs"] == 1
        reader = CalibrationCache(tmp_path / "cc")
        got = reader.get(key)
        assert got == _entry()
        assert reader.stats == {
            "hits": 1,
            "misses": 0,
            "installs": 0,
            "corrupt": 0,
        }

    def test_absent_key_is_a_miss(self, tmp_path):
        cache = CalibrationCache(tmp_path / "cc")
        assert cache.get("a" * 64) is None
        assert cache.stats["misses"] == 1

    def test_memory_lru_is_bounded_but_disk_is_not(self, tmp_path):
        cache = CalibrationCache(tmp_path / "cc", max_memory_entries=2)
        for i in range(4):
            cache.install(f"key{i}", _entry(index=i))
        assert len(cache._memory) == 2
        # Evicted entries still come back from disk.
        assert cache.get("key0") == _entry(index=0)
        assert cache.stats["hits"] == 1

    def _install_one(self, tmp_path):
        cache = CalibrationCache(tmp_path / "cc")
        key = "c" * 64
        cache.install(key, _entry())
        return cache, key, cache._path(key)

    @pytest.mark.parametrize(
        "corruption",
        ["truncate", "bitflip", "garbage", "empty"],
    )
    def test_corrupt_entry_is_a_miss_not_an_error(
        self, tmp_path, corruption
    ):
        _, key, path = self._install_one(tmp_path)
        raw = path.read_bytes()
        if corruption == "truncate":
            path.write_bytes(raw[: len(raw) // 2])
        elif corruption == "bitflip":
            mid = len(raw) // 2
            path.write_bytes(
                raw[:mid] + bytes([raw[mid] ^ 0xFF]) + raw[mid + 1 :]
            )
        elif corruption == "garbage":
            path.write_bytes(b"not a calibration entry")
        else:
            path.write_bytes(b"")
        fresh = CalibrationCache(tmp_path / "cc")
        assert fresh.get(key) is None
        assert fresh.stats["corrupt"] == 1
        assert fresh.stats["misses"] == 1

    def test_version_mismatch_is_a_miss(self, tmp_path, monkeypatch):
        cache, key, path = self._install_one(tmp_path)
        import repro.core.calibcache as calibcache

        monkeypatch.setattr(
            calibcache, "CALIB_CACHE_VERSION", CALIB_CACHE_VERSION + 1
        )
        fresh = CalibrationCache(tmp_path / "cc")
        assert fresh.get(key) is None
        assert fresh.stats["corrupt"] == 1

    def test_entry_renamed_under_foreign_key_is_a_miss(self, tmp_path):
        cache, key, path = self._install_one(tmp_path)
        foreign = "d" * 64
        path.rename(cache._path(foreign))
        fresh = CalibrationCache(tmp_path / "cc")
        assert fresh.get(foreign) is None
        assert fresh.stats["corrupt"] == 1

    def test_failed_write_is_swallowed(self, tmp_path, monkeypatch):
        cache = CalibrationCache(tmp_path / "cc")

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr("tempfile.mkstemp", boom)
        cache.install("e" * 64, _entry())  # must not raise
        # Not persisted, but still served from memory this run.
        assert cache.get("e" * 64) == _entry()
        assert CalibrationCache(tmp_path / "cc").get("e" * 64) is None


# ---------------------------------------------------------------------------
class TestColdWarmIdentity:
    @pytest.mark.parametrize("axis", sorted(_AXES))
    @pytest.mark.parametrize("workers", [1, 2])
    def test_warm_run_bit_identical(self, axis, workers, tmp_path):
        cache = str(tmp_path / "cc")
        cold_cfg = _axis_config(
            axis,
            calibration_cache=cache,
            output_dir=str(tmp_path / "cold"),
        )
        cold = run_campaign(_machine(), cold_cfg, workers=workers)
        assert last_run_stats()["hits"] == 0
        assert last_run_stats()["installs"] >= 1
        warm_cfg = _axis_config(
            axis,
            calibration_cache=cache,
            output_dir=str(tmp_path / "warm"),
        )
        warm = run_campaign(_machine(), warm_cfg, workers=workers)
        stats = last_run_stats()
        assert stats["misses"] == 0 and stats["hits"] >= 1
        assert _campaign_fingerprint(warm) == _campaign_fingerprint(cold)
        assert warm.wall_virtual_s == cold.wall_virtual_s
        assert _csv_bytes(tmp_path / "warm") == _csv_bytes(tmp_path / "cold")

    @pytest.mark.parametrize("axis", sorted(_AXES))
    def test_warm_run_performs_zero_calibration_passes(
        self, axis, tmp_path, monkeypatch
    ):
        cache = str(tmp_path / "cc")
        run_campaign(
            _machine(), _axis_config(axis, calibration_cache=cache), workers=1
        )

        def bomb(*args, **kwargs):  # pragma: no cover - must never run
            raise AssertionError("calibration re-ran on a warm cache")

        monkeypatch.setattr("repro.exec.engine.run_phase1", bomb)
        monkeypatch.setattr("repro.exec.worker.run_phase1", bomb)
        monkeypatch.setattr(LatestBenchmark, "_probe_windows", bomb)
        warm = run_campaign(
            _machine(), _axis_config(axis, calibration_cache=cache), workers=1
        )
        assert last_run_stats()["hits"] >= 1
        assert not any(p.skipped for p in warm.pairs.values())

    def test_multi_facet_warm_run_zero_passes(self, tmp_path, monkeypatch):
        cache = str(tmp_path / "cc")
        cold = run_campaign(
            _machine(11), _facet_config(calibration_cache=cache), workers=1
        )

        def bomb(*args, **kwargs):  # pragma: no cover - must never run
            raise AssertionError("calibration re-ran on a warm cache")

        monkeypatch.setattr("repro.exec.engine.run_phase1", bomb)
        monkeypatch.setattr("repro.exec.worker.run_phase1", bomb)
        monkeypatch.setattr(LatestBenchmark, "_probe_windows", bomb)
        warm = run_campaign(
            _machine(11), _facet_config(calibration_cache=cache), workers=1
        )
        assert last_run_stats() == {
            "hits": 2,
            "misses": 0,
            "installs": 0,
            "corrupt": 0,
        }
        assert _campaign_fingerprint(warm) == _campaign_fingerprint(cold)
        assert warm.wall_virtual_s == cold.wall_virtual_s

    def test_facet_prepared_events_carry_cache_hit(self, tmp_path):
        cache = str(tmp_path / "cc")
        cold_sink = RecordingSink()
        run_campaign(
            _machine(11),
            _facet_config(calibration_cache=cache),
            workers=1,
            sinks=(cold_sink,),
        )
        warm_sink = RecordingSink()
        run_campaign(
            _machine(11),
            _facet_config(calibration_cache=cache),
            workers=1,
            sinks=(warm_sink,),
        )
        cold_facets = cold_sink.of_type(FacetPrepared)
        warm_facets = warm_sink.of_type(FacetPrepared)
        assert [e.cache_hit for e in cold_facets] == [False, False]
        assert [e.cache_hit for e in warm_facets] == [True, True]
        # The replayed calibrations are the measured ones, verbatim.
        # (Compared by value: a disk round-trip changes pickle's memo
        # topology without changing any field.)
        assert [(e.facet, e.phase1, e.probe) for e in warm_facets] == [
            (e.facet, e.phase1, e.probe) for e in cold_facets
        ]

    def test_cold_run_with_cache_equals_run_without(self, tmp_path):
        with_cache = run_campaign(
            _machine(11),
            _facet_config(calibration_cache=str(tmp_path / "cc")),
            workers=1,
        )
        without = run_campaign(_machine(11), _facet_config(), workers=1)
        assert _campaign_fingerprint(with_cache) == _campaign_fingerprint(
            without
        )
        assert with_cache.wall_virtual_s == without.wall_virtual_s

    def test_warm_pool_cold_then_warm(self, tmp_path):
        cache = str(tmp_path / "cc")
        with WarmPool(2) as pool:
            cold = run_campaign_parallel(
                _machine(11),
                _facet_config(calibration_cache=cache),
                workers=2,
                pool=pool,
            )
            assert last_run_stats()["installs"] == 2
            warm = run_campaign_parallel(
                _machine(11),
                _facet_config(calibration_cache=cache),
                workers=2,
                pool=pool,
            )
        assert last_run_stats()["hits"] == 2
        assert _campaign_fingerprint(warm) == _campaign_fingerprint(cold)
        assert warm.wall_virtual_s == cold.wall_virtual_s

    def test_serial_loop_rejects_cache(self, tmp_path):
        with pytest.raises(ConfigError, match="calibration_cache"):
            run_campaign(
                _machine(),
                _axis_config(
                    "sm_core", calibration_cache=str(tmp_path / "cc")
                ),
            )

    def test_reused_machine_bypasses_cache(self, tmp_path):
        # A machine mid-timeline (device sweeps reuse one machine) is not
        # a fresh blueprint build; the cache must not serve it.
        cfg = _facet_config(calibration_cache=str(tmp_path / "cc"))
        machine = _machine(11)
        first = CampaignExecutor(machine, cfg, workers=1)
        first.run()
        assert first.calibration_cache_stats is not None
        second = CampaignExecutor(machine, cfg, workers=1)
        second.run()
        assert second.calibration_cache_stats is None


# ---------------------------------------------------------------------------
class TestParallelFacetCalibration:
    def _three_facet_config(self, **overrides):
        return fast_config(
            (1215.0, 810.0),
            axis="memory",
            locked_sm_mhz=(1410.0, 1095.0, 810.0),
            **overrides,
        )

    def test_parallel_equals_sequential(self, tmp_path):
        seq = run_campaign(
            _machine(11), self._three_facet_config(), workers=1
        )
        par = run_campaign(
            _machine(11), self._three_facet_config(), workers=3
        )
        with WarmPool(2) as pool:
            pooled = run_campaign_parallel(
                _machine(11), self._three_facet_config(), workers=2, pool=pool
            )
        assert _campaign_fingerprint(par) == _campaign_fingerprint(seq)
        assert _campaign_fingerprint(pooled) == _campaign_fingerprint(seq)
        assert (
            par.wall_virtual_s
            == seq.wall_virtual_s
            == pooled.wall_virtual_s
        )

    def test_replica_calibration_is_a_pure_function(self):
        cfg = self._three_facet_config()
        bp = _machine(11).blueprint
        a = calibrate_facet(bp, cfg, 1, 1095.0, 0.5)
        b = calibrate_facet(bp, cfg, 1, 1095.0, 0.5)
        assert pickle.dumps(a) == pickle.dumps(b)

    def test_excluded_knobs_do_not_change_calibration(self):
        # The fingerprint exclusion set is only sound if these knobs
        # genuinely cannot reach phase 1 / the probe.
        bp = _machine(11).blueprint
        base = calibrate_facet(bp, self._three_facet_config(), 0, 1410.0, 0.0)
        varied = calibrate_facet(
            bp,
            self._three_facet_config(
                rse_threshold=0.01,
                min_measurements=2,
                max_measurements=64,
                rse_check_every=7,
                max_job_retries=9,
                throttle_backoff_s=0.9,
                max_consecutive_failures=3,
            ),
            0,
            1410.0,
            0.0,
        )
        assert pickle.dumps(base) == pickle.dumps(varied)

    def test_calibration_seed_streams_are_disjoint(self):
        bp = _machine(11).blueprint
        seen = set()
        for axis in ("sm_core", "memory", "power"):
            for facet_index in range(3):
                seq = calibration_seed_sequence(bp, 0, facet_index, axis)
                seen.add(tuple(seq.spawn_key))
        assert len(seen) == 9

    def test_cost_model_rebuilds_from_cached_data(self, tmp_path):
        # Satellite: the dispatch cost model must come up identically
        # from deserialized cache entries, with no live BenchContext.
        cache = str(tmp_path / "cc")

        def cfg():
            return self._three_facet_config(calibration_cache=cache)

        cold_exec = CampaignExecutor(_machine(11), cfg(), workers=1)
        cold_exec.run()
        warm_exec = CampaignExecutor(_machine(11), cfg(), workers=1)
        warm_exec.run()
        assert warm_exec._fixed_pass_by_facet == cold_exec._fixed_pass_by_facet
        assert set(warm_exec._fixed_pass_by_facet) == {1410.0, 1095.0, 810.0}
        for fixed in warm_exec._fixed_pass_by_facet.values():
            assert fixed > 0.0


# ---------------------------------------------------------------------------
class TestResumeWithWarmCache:
    def test_resume_reuses_cached_calibrations(self, tmp_path, monkeypatch):
        cache = str(tmp_path / "cc")
        journal_dir = tmp_path / "journal"
        golden = run_campaign(
            _machine(11), _facet_config(calibration_cache=cache), workers=1
        )
        with pytest.raises(CampaignInterrupted):
            run_campaign(
                _machine(11),
                _facet_config(
                    calibration_cache=cache, inject_faults="interrupt@2"
                ),
                workers=1,
                journal=journal_dir,
            )

        def bomb(*args, **kwargs):  # pragma: no cover - must never run
            raise AssertionError("calibration re-ran on resume")

        monkeypatch.setattr("repro.exec.engine.run_phase1", bomb)
        monkeypatch.setattr("repro.exec.worker.run_phase1", bomb)
        monkeypatch.setattr(LatestBenchmark, "_probe_windows", bomb)
        resumed = run_campaign(
            _machine(11),
            _facet_config(calibration_cache=cache),
            workers=1,
            journal=journal_dir,
            resume=True,
        )
        assert last_run_stats()["hits"] == 2
        assert _campaign_fingerprint(resumed) == _campaign_fingerprint(golden)
        assert resumed.wall_virtual_s == golden.wall_virtual_s


# ---------------------------------------------------------------------------
class TestCacheCLI:
    _ARGS = [
        "705,1410",
        "--sm-count", "4",
        "--min-measurements", "4",
        "--max-measurements", "6",
        "--seed", "3",
    ]

    def test_cache_flag_reports_stats_and_routes_to_engine(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        cache = str(tmp_path / "cc")
        args = self._ARGS + [
            "--calibration-cache", cache,
            "--output-dir", str(tmp_path / "cold"),
        ]
        # No --workers: the flag must auto-route to the engine rather
        # than die on the serial loop's ConfigError.
        assert main(args) == 0
        err = capsys.readouterr().err
        assert "calibration cache: 0 hit(s), 1 miss(es), 1 installed" in err

        args = self._ARGS + [
            "--calibration-cache", cache,
            "--output-dir", str(tmp_path / "warm"),
        ]
        assert main(args) == 0
        err = capsys.readouterr().err
        assert "calibration cache: 1 hit(s), 0 miss(es), 0 installed" in err
        assert _csv_bytes(tmp_path / "warm") == _csv_bytes(tmp_path / "cold")
