"""Vectorized phase-3 confirmation vs the scalar reference.

Records real phase-2 measurements from small campaigns (several pairs,
including windows that are too short so every status path is exercised)
and asserts the vectorized :func:`evaluate_switch` reproduces the scalar
per-SM loop *identically*: statuses, latencies, detection indices and
failure reasons.
"""

import numpy as np
import pytest

from repro.core.context import BenchContext
from repro.core.phase1 import run_phase1
from repro.core.phase2 import run_switch_benchmark
from repro.core.phase3 import (
    SmStatus,
    evaluate_switch,
    evaluate_switch_reference,
)
from repro.errors import MeasurementError
from repro.machine import make_machine
from tests.conftest import fast_config


@pytest.fixture(scope="module")
def recorded_switches():
    """Raw phase-2 fixtures across pairs, models, and window sizes."""
    fixtures = []
    for model, freqs, seed in (
        ("A100", (705.0, 1095.0, 1410.0), 424),
        ("GH200", (705.0, 1410.0, 1875.0), 171),
    ):
        machine = make_machine(model, seed=seed)
        cfg = fast_config(freqs)
        bench = BenchContext(machine, cfg)
        phase1 = run_phase1(bench)
        kernel = phase1.kernel
        for init, target in phase1.valid_pairs:
            # A window long enough to usually capture the switch, and a
            # deliberately short one (SHORT_TAIL / NO_DETECTION paths).
            for iters in (2500, 40):
                try:
                    raw = run_switch_benchmark(bench, init, target, kernel, iters)
                except MeasurementError:
                    continue
                fixtures.append((raw, phase1.stats_for(target), cfg))
    assert len(fixtures) >= 10
    return fixtures


def test_vectorized_equals_reference(recorded_switches):
    reasons = set()
    for raw, target_stats, cfg in recorded_switches:
        vec = evaluate_switch(raw, target_stats, cfg)
        ref = evaluate_switch_reference(raw, target_stats, cfg)
        assert vec.reason == ref.reason
        assert vec.latency_s == ref.latency_s
        assert vec.te_acc == ref.te_acc
        np.testing.assert_array_equal(vec.sm_status, ref.sm_status)
        np.testing.assert_array_equal(
            vec.detection_indices, ref.detection_indices
        )
        np.testing.assert_array_equal(
            vec.per_sm_latency_s, ref.per_sm_latency_s
        )
        assert vec.n_valid_sm == ref.n_valid_sm
        assert vec.window_too_short == ref.window_too_short
        reasons.add(vec.reason)
    # The fixture set must exercise success and at least one failure path.
    assert "ok" in reasons
    assert len(reasons) >= 2


def test_confirmation_failure_path_equivalent(recorded_switches):
    """Force confirmation failures (band around the *initial* frequency)."""
    checked = 0
    for raw, _target, cfg in recorded_switches[:6]:
        machine_stats = _target.scaled(1.5)  # band far from the tail
        vec = evaluate_switch(raw, machine_stats, cfg)
        ref = evaluate_switch_reference(raw, machine_stats, cfg)
        assert vec.reason == ref.reason
        np.testing.assert_array_equal(vec.sm_status, ref.sm_status)
        checked += 1
    assert checked


def test_all_statuses_representable(recorded_switches):
    seen = set()
    for raw, target_stats, cfg in recorded_switches:
        ev = evaluate_switch(raw, target_stats, cfg)
        seen.update(SmStatus(s) for s in np.unique(ev.sm_status))
    assert SmStatus.OK in seen
    assert seen & {SmStatus.NO_DETECTION, SmStatus.SHORT_TAIL, SmStatus.NO_POST_SWITCH}
