"""The documentation system's tier-1 gates.

Everything the CI ``docs`` job enforces also runs here, so a PR cannot
break the docs build without breaking the test suite: the markdown
tree builds, every relative link and anchor resolves, ``docs/cli.md``
names every parser flag, the events ordering contract is word-for-word
identical to the :mod:`repro.core.stream` docstring, and the service
package keeps 100% public docstring coverage.
"""

import importlib.util
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"


def _load_tool(name):
    spec = importlib.util.spec_from_file_location(
        name, REPO / "tools" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


docbuild = _load_tool("docbuild")
docstring_coverage = _load_tool("docstring_coverage")


class TestDocsBuild:
    def test_docbuild_builds_and_checks_clean(self, tmp_path):
        result = subprocess.run(
            [sys.executable, "tools/docbuild.py", "--out", str(tmp_path)],
            cwd=REPO,
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stderr
        assert (tmp_path / "index.html").is_file()
        assert (tmp_path / "design" / "passblock.html").is_file()

    def test_no_broken_links_or_anchors(self):
        sources = sorted(DOCS.rglob("*.md")) + [REPO / "DESIGN.md"]
        pages = {path: path.read_text() for path in sources}
        assert docbuild.check_links(pages) == []

    def test_rendered_html_rewrites_md_links(self):
        html = docbuild.render_markdown(
            "see [events](events.md#sinks) and [the web](https://x.org)"
        )
        assert 'href="events.html#sinks"' in html
        assert 'href="https://x.org"' in html

    def test_heading_slugs_match_github_style(self):
        text = "## The interrupt contract of `CsvStreamSink`"
        assert docbuild.collect_anchors(text) == {
            "the-interrupt-contract-of-csvstreamsink"
        }


class TestEventsContract:
    def test_contract_is_verbatim_from_stream_docstring(self):
        events_md = (DOCS / "events.md").read_text()
        assert docbuild.check_events_contract(events_md) == []

    def test_drifted_contract_is_caught(self):
        events_md = (DOCS / "events.md").read_text()
        drifted = events_md.replace(
            "precedes everything", "mostly precedes everything"
        )
        assert drifted != events_md  # the phrase is really in the page
        assert docbuild.check_events_contract(drifted)


class TestCliReference:
    def test_every_parser_flag_is_documented(self):
        cli_md = (DOCS / "cli.md").read_text()
        assert docbuild.check_cli_flags(cli_md) == []

    def test_missing_flag_is_caught(self):
        cli_md = (DOCS / "cli.md").read_text().replace("--pass-block", "")
        errors = docbuild.check_cli_flags(cli_md)
        assert any("--pass-block" in error for error in errors)


class TestDocstringCoverage:
    def test_service_and_stream_are_fully_documented(self):
        result = subprocess.run(
            [
                sys.executable,
                "tools/docstring_coverage.py",
                "src/repro/service",
                "src/repro/core/stream.py",
                "--min",
                "100",
            ],
            cwd=REPO,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_missing_docstring_detected(self, tmp_path):
        bare = tmp_path / "bare.py"
        bare.write_text('"""Module."""\n\ndef undocumented():\n    pass\n')
        coverage = docstring_coverage.measure_file(bare)
        assert coverage.total == 2
        assert coverage.documented == 1
        assert "undocumented" in coverage.missing[0]

    def test_private_and_nested_defs_excluded(self, tmp_path):
        source = tmp_path / "mod.py"
        source.write_text(
            '"""Module."""\n'
            "def _private():\n    pass\n"
            "def public():\n"
            '    """Doc."""\n'
            "    def inner():\n        pass\n"
        )
        coverage = docstring_coverage.measure_file(source)
        assert coverage.total == 2  # module + public()
        assert coverage.documented == 2


class TestChangelogAndStubs:
    def test_changelog_has_anchor_per_pr_line(self):
        changelog = (DOCS / "changelog.md").read_text()
        changes = (REPO / "CHANGES.md").read_text()
        numbers = {
            int(m.group(1))
            for m in re.finditer(r"(?m)^PR (\d+):", changes)
        }
        assert numbers  # CHANGES.md still carries the per-PR log
        for n in sorted(numbers):
            assert f'<a id="pr-{n}"></a>' in changelog, f"pr-{n} anchor"

    def test_design_stub_points_at_every_design_page(self):
        stub = (REPO / "DESIGN.md").read_text()
        pages = sorted((DOCS / "design").glob("*.md"))
        assert len(pages) > 10
        for page in pages:
            if page.name == "index.md":
                continue
            assert f"docs/design/{page.name}" in stub, page.name

    def test_docs_tree_is_complete(self):
        for required in (
            "index.md",
            "architecture.md",
            "service.md",
            "events.md",
            "cli.md",
            "changelog.md",
            "design/index.md",
        ):
            assert (DOCS / required).is_file(), required
