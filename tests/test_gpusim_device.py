"""Tests for the GpuDevice facade: kernel lifecycle, lazy finalization,
mid-kernel DVFS, throttling surface."""

import pytest

from repro.errors import CudaError
from repro.gpusim.device import GpuDevice, KernelLaunchSpec
from repro.gpusim.spec import A100_SXM4
from repro.gpusim.thermal import ThrottleReasons
from repro.machine import make_machine


def small_kernel(n_iter=500, sm=4):
    return KernelLaunchSpec(
        n_iterations=n_iter, cycles_per_iteration=1e5, sm_count=sm
    )


class TestKernelLifecycle:
    def test_launch_returns_handle(self, a100_machine):
        device = a100_machine.device()
        handle = device.launch_kernel(small_kernel())
        assert not handle.finalized

    def test_synchronize_finalizes(self, a100_machine):
        device = a100_machine.device()
        handle = device.launch_kernel(small_kernel())
        device.synchronize()
        assert handle.finalized
        assert handle.t_complete > handle.t_start

    def test_synchronize_advances_host_clock(self, a100_machine):
        device = a100_machine.device()
        t0 = a100_machine.clock.now
        device.launch_kernel(small_kernel())
        device.synchronize()
        assert a100_machine.clock.now > t0

    def test_read_before_sync_raises(self, a100_machine):
        device = a100_machine.device()
        handle = device.launch_kernel(small_kernel())
        with pytest.raises(CudaError):
            device.read_timestamps(handle)

    def test_timestamps_shape(self, a100_machine):
        device = a100_machine.device()
        handle = device.launch_kernel(small_kernel(n_iter=64, sm=3))
        device.synchronize()
        view = device.read_timestamps(handle)
        assert view.starts.shape == (3, 64)
        assert view.ends.shape == (3, 64)

    def test_sm_count_capped_at_spec(self, a100_machine):
        device = a100_machine.device()
        handle = device.launch_kernel(
            KernelLaunchSpec(
                n_iterations=16, cycles_per_iteration=1e5, sm_count=10_000
            )
        )
        device.synchronize()
        view = device.read_timestamps(handle)
        assert view.n_sm == A100_SXM4.sm_count

    def test_sequential_kernels_do_not_overlap(self, a100_machine):
        device = a100_machine.device()
        h1 = device.launch_kernel(small_kernel())
        h2 = device.launch_kernel(small_kernel())
        device.synchronize()
        assert h2.t_start >= h1.t_complete

    def test_invalid_kernel_spec_rejected(self):
        with pytest.raises(CudaError):
            KernelLaunchSpec(n_iterations=0, cycles_per_iteration=1e5)


class TestWakeupBehaviour:
    def test_first_kernel_pays_wakeup(self, a100_machine):
        device = a100_machine.device()
        device.set_locked_clocks(1095.0)
        handle = device.launch_kernel(small_kernel(n_iter=4000, sm=2))
        device.synchronize()
        view = device.read_timestamps(handle)
        d = view.diffs[0]
        # Early iterations ran at the idle clock (210 MHz): much slower.
        assert d[:5].mean() > 2.0 * d[-100:].mean()

    def test_warm_device_runs_at_locked_clock(self, a100_machine):
        device = a100_machine.device()
        device.set_locked_clocks(1095.0)
        device.launch_kernel(small_kernel(n_iter=4000, sm=1))
        device.synchronize()
        handle = device.launch_kernel(small_kernel(n_iter=200, sm=2))
        device.synchronize()
        view = device.read_timestamps(handle)
        expected = 1e5 / (1095.0 * 1e6)
        assert view.diffs.mean() == pytest.approx(expected, rel=0.02)


class TestMidKernelDvfs:
    def test_transition_visible_in_iteration_times(self, a100_machine):
        device = a100_machine.device()
        host = a100_machine.host
        device.set_locked_clocks(1410.0)
        device.launch_kernel(small_kernel(n_iter=3000, sm=1))
        device.synchronize()

        handle = device.launch_kernel(small_kernel(n_iter=3000, sm=2))
        host.sleep(0.02)
        record = device.set_locked_clocks(705.0)
        device.synchronize()
        view = device.read_timestamps(handle)

        assert record is not None
        assert record.init_mhz == 1410.0
        d = view.diffs[0]
        d_fast = 1e5 / (1410.0e6)
        d_slow = 1e5 / (705.0e6)
        assert d[:50].mean() == pytest.approx(d_fast, rel=0.05)
        assert d[-50:].mean() == pytest.approx(d_slow, rel=0.05)

    def test_ground_truth_latency_reasonable(self, a100_machine):
        device = a100_machine.device()
        host = a100_machine.host
        device.set_locked_clocks(1410.0)
        device.launch_kernel(small_kernel(n_iter=3000, sm=1))
        device.synchronize()
        device.launch_kernel(small_kernel(n_iter=3000, sm=1))
        host.sleep(0.02)
        record = device.set_locked_clocks(705.0)
        device.synchronize()
        # A100 decreasing transitions: a few ms to ~25 ms.
        assert 2e-3 < record.ground_truth_latency_s < 0.12


class TestManagementSurface:
    def test_idle_reason_when_unloaded(self, a100_machine):
        device = a100_machine.device()
        a100_machine.host.sleep(1.0)
        assert device.throttle_reasons() & ThrottleReasons.GPU_IDLE

    def test_app_clocks_reason_when_locked(self, a100_machine):
        device = a100_machine.device()
        device.set_locked_clocks(1095.0)
        assert (
            device.throttle_reasons()
            & ThrottleReasons.APPLICATIONS_CLOCKS_SETTING
        )

    def test_temperature_ambient_when_disabled(self, a100_machine):
        device = a100_machine.device()
        assert device.temperature_c() == pytest.approx(30.0)

    def test_power_usage_tracks_load(self, a100_machine):
        device = a100_machine.device()
        idle_power = device.power_usage_w()
        device.set_locked_clocks(1410.0)
        device.launch_kernel(small_kernel(n_iter=50_000, sm=1))
        busy_power = device.power_usage_w()
        device.synchronize()
        assert busy_power > idle_power

    def test_current_sm_clock_after_settle(self, a100_machine):
        device = a100_machine.device()
        device.set_locked_clocks(840.0)
        device.launch_kernel(small_kernel(n_iter=8000, sm=1))
        device.synchronize()
        assert device.current_sm_clock_mhz() == 840.0


class TestThermalIntegration:
    def test_hot_node_trips_thermal_throttle(self):
        machine = make_machine(
            "A100", seed=9, thermal_enabled=True, ambient_c=76.0
        )
        device = machine.device()
        device.set_locked_clocks(1410.0)
        # Long sustained load: ~15 s of full power against a 35 s thermal
        # time constant and a hot inlet.
        for _ in range(11):
            device.launch_kernel(
                KernelLaunchSpec(
                    n_iterations=20_000, cycles_per_iteration=1e5, sm_count=1
                )
            )
            device.synchronize()
        assert device.throttle_reasons() & ThrottleReasons.SW_THERMAL

    def test_power_limited_lock_reports_power_cap(self):
        machine = make_machine(
            "A100", seed=9, thermal_enabled=True, power_limit_w=150.0
        )
        device = machine.device()
        device.set_locked_clocks(1410.0)
        device.launch_kernel(
            KernelLaunchSpec(
                n_iterations=20_000, cycles_per_iteration=1e5, sm_count=1
            )
        )
        reasons = device.throttle_reasons()
        assert reasons & ThrottleReasons.SW_POWER_CAP
        device.synchronize()
