"""Tests for the NVML-like management API."""

import pytest

from repro.errors import NvmlError
from repro.gpusim.spec import A100_SXM4
from repro.gpusim.thermal import ThrottleReasons
from repro.nvml.api import NvmlCallCosts, NvmlSession


@pytest.fixture
def session(a100_machine) -> NvmlSession:
    return a100_machine.nvml()


@pytest.fixture
def handle(session):
    return session.device_get_handle_by_index(0)


class TestSession:
    def test_device_count(self, session):
        assert session.device_count() == 1

    def test_handle_by_index(self, session):
        handle = session.device_get_handle_by_index(0)
        assert handle.name() == A100_SXM4.name

    def test_bad_index_raises_invalid_argument(self, session):
        with pytest.raises(NvmlError) as exc:
            session.device_get_handle_by_index(5)
        assert exc.value.code == "NVML_ERROR_INVALID_ARGUMENT"

    def test_shutdown_blocks_calls(self, session):
        session.shutdown()
        with pytest.raises(NvmlError) as exc:
            session.device_count()
        assert exc.value.code == "NVML_ERROR_UNINITIALIZED"

    def test_context_manager(self, a100_machine):
        with a100_machine.nvml() as session:
            assert session.device_count() == 1
        with pytest.raises(NvmlError):
            session.device_count()

    def test_calls_consume_host_time(self, session, a100_machine):
        t0 = a100_machine.clock.now
        session.device_count()
        assert a100_machine.clock.now > t0


class TestDeviceHandle:
    def test_driver_version(self, handle):
        assert handle.driver_version() == A100_SXM4.driver_version

    def test_supported_memory_clocks(self, handle):
        clocks = handle.supported_memory_clocks()
        assert clocks == A100_SXM4.supported_memory_clocks_mhz
        assert clocks[0] == 1215.0  # reference clock leads (NVML descending)
        assert list(clocks) == sorted(clocks, reverse=True)

    def test_supported_graphics_clocks_descending(self, handle):
        clocks = handle.supported_graphics_clocks()
        assert clocks[0] == 1410.0
        assert clocks[-1] == 210.0

    def test_supported_graphics_clocks_validates_mem(self, handle):
        with pytest.raises(NvmlError):
            handle.supported_graphics_clocks(9999.0)

    def test_set_locked_clocks_validates_range(self, handle):
        with pytest.raises(NvmlError):
            handle.set_gpu_locked_clocks(1410.0, 705.0)

    def test_set_locked_clocks_off_ladder_rejected(self, handle):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            handle.set_gpu_locked_clocks(1100.0, 1100.0)

    def test_locked_clock_round_trip(self, handle, a100_machine):
        handle.set_gpu_locked_clocks(1095.0, 1095.0)
        assert a100_machine.device().dvfs.locked_mhz == 1095.0
        handle.reset_gpu_locked_clocks()
        assert a100_machine.device().dvfs.locked_mhz is None

    def test_clock_info_idle(self, handle):
        assert handle.clock_info_sm_mhz() == A100_SXM4.idle_sm_frequency_mhz

    def test_throttle_reasons_idle(self, handle, a100_machine):
        a100_machine.host.sleep(0.5)
        assert handle.current_clocks_throttle_reasons() & ThrottleReasons.GPU_IDLE

    def test_temperature_and_power_query(self, handle):
        assert handle.temperature_c() == pytest.approx(30.0)
        assert handle.power_usage_w() >= A100_SXM4.idle_power_watts


class TestCallCosts:
    def test_set_costlier_than_query(self):
        import numpy as np

        costs = NvmlCallCosts(hiccup_prob=0.0)
        rng = np.random.default_rng(0)
        queries = [costs.sample(rng, "query") for _ in range(200)]
        sets = [costs.sample(rng, "set") for _ in range(200)]
        assert sum(sets) / len(sets) > sum(queries) / len(queries)

    def test_hiccup_extends_call(self):
        import numpy as np

        rng = np.random.default_rng(0)
        costs = NvmlCallCosts(hiccup_prob=1.0, hiccup_scale_s=10e-3)
        mean = np.mean([costs.sample(rng) for _ in range(200)])
        # Exponential hiccups with a 10 ms scale dominate the ~25 us base.
        assert mean > 5e-3
