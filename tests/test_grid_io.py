"""Tests for heatmap grid CSV persistence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.grid_io import read_grid_csv, write_grid_csv
from repro.analysis.heatmap import HeatmapGrid, heatmap_from_campaign
from repro.errors import MeasurementError


class TestGridRoundTrip:
    def test_campaign_grid_roundtrip(self, small_a100_campaign, tmp_path):
        grid = heatmap_from_campaign(small_a100_campaign, "max")
        path = write_grid_csv(grid, tmp_path / "grid.csv")
        loaded = read_grid_csv(path)
        assert loaded.frequencies_mhz == grid.frequencies_mhz
        assert loaded.gpu_name == grid.gpu_name
        assert loaded.statistic == grid.statistic
        np.testing.assert_allclose(
            loaded.values_ms, grid.values_ms, rtol=1e-5, equal_nan=True
        )

    def test_nan_cells_survive(self, tmp_path):
        grid = HeatmapGrid(
            frequencies_mhz=(705.0, 1410.0),
            values_ms=np.array([[np.nan, 5.0], [7.0, np.nan]]),
            statistic="min",
            gpu_name="X",
        )
        loaded = read_grid_csv(write_grid_csv(grid, tmp_path / "g.csv"))
        assert np.isnan(loaded.values_ms[0, 0])
        assert loaded.values_ms[0, 1] == pytest.approx(5.0)

    def test_garbage_file_rejected(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("hello\n")
        with pytest.raises(MeasurementError):
            read_grid_csv(bad)

    @given(
        n=st.integers(2, 6),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_grid_roundtrip(self, n, seed, tmp_path_factory):
        rng = np.random.default_rng(seed)
        freqs = tuple(float(300 + 15 * i) for i in range(n))
        values = rng.uniform(0.5, 400.0, size=(n, n))
        values[np.diag_indices(n)] = np.nan
        grid = HeatmapGrid(
            frequencies_mhz=freqs,
            values_ms=values,
            statistic="mean",
            gpu_name="PropGPU",
        )
        tmp = tmp_path_factory.mktemp("grids") / f"g{seed}.csv"
        loaded = read_grid_csv(write_grid_csv(grid, tmp))
        np.testing.assert_allclose(
            loaded.values_ms, values, rtol=1e-5, equal_nan=True
        )
