"""Tests for the from-scratch DBSCAN, including a naive-reference property
check."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.dbscan import NOISE, dbscan
from repro.errors import ConfigError


def naive_dbscan_labels(points: np.ndarray, eps: float, min_pts: int):
    """Textbook O(n^2) reference implementation."""
    pts = points.reshape(len(points), -1)
    n = len(pts)
    d = np.sqrt(((pts[:, None, :] - pts[None, :, :]) ** 2).sum(axis=2))
    neighbors = [np.flatnonzero(d[i] <= eps) for i in range(n)]
    core = np.array([len(nb) >= min_pts for nb in neighbors])
    labels = np.full(n, -2)
    cluster = 0
    for seed in range(n):
        if labels[seed] != -2 or not core[seed]:
            continue
        frontier = [seed]
        labels[seed] = cluster
        while frontier:
            p = frontier.pop()
            if not core[p]:
                continue
            for q in neighbors[p]:
                if labels[q] == -2:
                    labels[q] = cluster
                    if core[q]:
                        frontier.append(q)
        cluster += 1
    labels[labels == -2] = NOISE
    return labels


class TestBasics:
    def test_single_tight_cluster(self):
        x = np.array([1.0, 1.01, 1.02, 0.99, 0.98])
        res = dbscan(x, eps=0.05, min_pts=3)
        assert res.n_clusters == 1
        assert not res.noise_mask.any()

    def test_two_separated_clusters(self):
        x = np.concatenate([np.full(10, 1.0), np.full(10, 100.0)])
        res = dbscan(x, eps=1.0, min_pts=4)
        assert res.n_clusters == 2

    def test_isolated_point_is_noise(self):
        x = np.array([1.0, 1.01, 1.02, 1.03, 50.0])
        res = dbscan(x, eps=0.1, min_pts=3)
        assert res.labels[-1] == NOISE
        assert res.noise_ratio == pytest.approx(0.2)

    def test_all_noise_when_sparse(self):
        x = np.arange(10.0) * 100.0
        res = dbscan(x, eps=1.0, min_pts=3)
        assert res.n_clusters == 0
        assert res.noise_mask.all()

    def test_empty_input(self):
        res = dbscan(np.empty(0), eps=1.0, min_pts=3)
        assert res.labels.size == 0
        assert res.noise_ratio == 0.0

    def test_invalid_eps(self):
        with pytest.raises(ConfigError):
            dbscan([1.0, 2.0], eps=0.0, min_pts=2)

    def test_invalid_min_pts(self):
        with pytest.raises(ConfigError):
            dbscan([1.0, 2.0], eps=1.0, min_pts=0)

    def test_2d_points_supported(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 0.1, (20, 2))
        b = rng.normal(10.0, 0.1, (20, 2))
        res = dbscan(np.vstack([a, b]), eps=1.0, min_pts=4)
        assert res.n_clusters == 2

    def test_cluster_sizes_and_largest(self):
        x = np.concatenate([np.full(20, 1.0), np.full(5, 100.0)])
        res = dbscan(x, eps=1.0, min_pts=3)
        assert sorted(res.cluster_sizes(), reverse=True)[0] == 20
        assert res.cluster_sizes()[res.largest_cluster()] == 20

    def test_largest_cluster_all_noise(self):
        res = dbscan(np.arange(5.0) * 100, eps=0.1, min_pts=3)
        assert res.largest_cluster() == NOISE


class TestOrderInvariants:
    def test_labels_permutation_equivalent(self):
        """Cluster membership is stable under input permutation."""
        rng = np.random.default_rng(3)
        x = np.concatenate(
            [rng.normal(0, 0.1, 30), rng.normal(5, 0.1, 30), [100.0]]
        )
        perm = rng.permutation(len(x))
        res_a = dbscan(x, eps=0.5, min_pts=4)
        res_b = dbscan(x[perm], eps=0.5, min_pts=4)
        # Compare partitions: same noise set and same co-membership.
        noise_a = set(np.flatnonzero(res_a.noise_mask))
        noise_b = {perm[i] for i in np.flatnonzero(res_b.noise_mask)}
        assert noise_a == noise_b
        assert res_a.n_clusters == res_b.n_clusters


@given(
    data=st.lists(st.floats(0.0, 100.0), min_size=5, max_size=80),
    eps=st.floats(0.1, 20.0),
    min_pts=st.integers(2, 8),
)
@settings(max_examples=80, deadline=None)
def test_matches_naive_reference(data, eps, min_pts):
    """Partition equivalence with the textbook implementation.

    Cluster *numbering* may differ (border points can legally attach to
    different clusters depending on visit order is avoided here by both
    using first-come seeds in index order), so compare noise masks and
    co-membership matrices.
    """
    x = np.asarray(data)
    ours = dbscan(x, eps=eps, min_pts=min_pts).labels
    ref = naive_dbscan_labels(x, eps, min_pts)
    assert ((ours == NOISE) == (ref == NOISE)).all()
    # Core points' co-membership must agree; border points may differ in
    # which cluster claimed them but never in being clustered.
    same_ours = ours[:, None] == ours[None, :]
    same_ref = ref[:, None] == ref[None, :]
    clustered = ours != NOISE
    # Compare only pairs where both are clustered in both partitions.
    mask = clustered[:, None] & clustered[None, :]
    if mask.any():
        agreement = (same_ours == same_ref)[mask].mean()
        assert agreement > 0.9


@given(st.lists(st.floats(0.0, 1000.0), min_size=3, max_size=60))
@settings(max_examples=60, deadline=None)
def test_noise_points_have_few_neighbors(data):
    """Every noise point's eps-neighbourhood lacks a core point."""
    x = np.asarray(data)
    eps, min_pts = 5.0, 3
    res = dbscan(x, eps=eps, min_pts=min_pts)
    d = np.abs(x[:, None] - x[None, :])
    core = (d <= eps).sum(axis=1) >= min_pts
    for i in np.flatnonzero(res.noise_mask):
        # A noise point is not core and has no core point within eps.
        assert not core[i]
        assert not core[np.abs(x - x[i]) <= eps].any()
