"""Deterministic fault injection: every recovery path converges.

The supervision machinery's contract is that a campaign disturbed by
worker crashes, hangs, or transport failures converges to results
bit-identical to an undisturbed run — seed streams derive from grid
indices alone, so a retry re-measures exactly what the fault destroyed.
These tests drive each recovery path with :mod:`repro.exec.faults` and
assert that contract.
"""

from pathlib import Path
from types import SimpleNamespace

import pytest

from repro import make_machine
from repro.errors import ConfigError
from repro.exec import FaultInjected, FaultPlan, WarmPool
from repro.exec.engine import run_campaign_parallel
from tests.conftest import fast_config
from tests.test_exec_engine import _campaign_fingerprint


def _fault_config(**overrides):
    defaults = dict(retry_backoff_s=0.01, retry_backoff_max_s=0.05)
    defaults.update(overrides)
    return fast_config((705.0, 1095.0, 1410.0), **defaults)


class TestFaultSpecParsing:
    def test_empty_spec_means_no_plan(self):
        assert FaultPlan.parse(None) is None
        assert FaultPlan.parse("") is None
        assert FaultPlan.parse(" ; ,") is None

    def test_single_action(self):
        plan = FaultPlan.parse("kill@3")
        assert len(plan.actions) == 1
        action = plan.actions[0]
        assert (action.kind, action.index, action.fires) == ("kill", 3, 1)
        assert action.param is None

    def test_fires_and_param(self):
        plan = FaultPlan.parse("raise@2*99;hang@5:30")
        assert plan.actions[0].fires == 99
        assert plan.actions[1].param == 30.0

    def test_mixed_separators(self):
        plan = FaultPlan.parse("kill@0, raise@1; corrupt@2")
        assert [a.kind for a in plan.actions] == ["kill", "raise", "corrupt"]

    def test_malformed_spec_rejected(self):
        with pytest.raises(ConfigError, match="malformed"):
            FaultPlan.parse("kill@")
        with pytest.raises(ConfigError, match="malformed"):
            FaultPlan.parse("kill")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault kind"):
            FaultPlan.parse("explode@3")

    def test_zero_fires_rejected(self):
        with pytest.raises(ConfigError, match="fire count"):
            FaultPlan.parse("kill@1*0")

    def test_config_validates_spec_eagerly(self):
        with pytest.raises(ConfigError, match="malformed"):
            _fault_config(inject_faults="bogus")

    def test_attempt_gating(self):
        plan = FaultPlan.parse("raise@2")
        with pytest.raises(FaultInjected):
            plan.fire_worker(SimpleNamespace(index=2, attempt=0))
        # A retried job (attempt >= fires) runs clean.
        plan.fire_worker(SimpleNamespace(index=2, attempt=1))
        # Other indices are never touched.
        plan.fire_worker(SimpleNamespace(index=3, attempt=0))

    def test_kill_downgrades_in_process(self):
        plan = FaultPlan.parse("kill@0")
        with pytest.raises(FaultInjected, match="downgraded in-process"):
            plan.fire_worker(SimpleNamespace(index=0, attempt=0), in_process=True)


class TestEngineRecovery:
    """Process-pool and in-process dispatch under injected faults."""

    @pytest.fixture(scope="class")
    def baseline(self):
        machine = make_machine("A100", seed=777)
        return _campaign_fingerprint(
            run_campaign_parallel(machine, _fault_config(), workers=1)
        )

    def test_inprocess_kill_retries_bit_identically(self, baseline):
        machine = make_machine("A100", seed=777)
        result = run_campaign_parallel(
            machine, _fault_config(inject_faults="kill@0"), workers=1
        )
        assert _campaign_fingerprint(result) == baseline
        retried = [p for p in result.pairs.values() if p.n_retries > 0]
        assert len(retried) == 1
        assert retried[0].n_retries == 1

    def test_pool_worker_crash_recovers(self, baseline):
        machine = make_machine("A100", seed=777)
        result = run_campaign_parallel(
            machine, _fault_config(inject_faults="kill@0"), workers=2
        )
        assert _campaign_fingerprint(result) == baseline
        assert any(p.n_retries > 0 for p in result.pairs.values())

    def test_hung_worker_hits_deadline_and_recovers(self, baseline):
        machine = make_machine("A100", seed=777)
        cfg = _fault_config(
            inject_faults="hang@0:60",
            job_timeout_factor=1e-6,
            job_timeout_floor_s=0.5,
        )
        result = run_campaign_parallel(machine, cfg, workers=2)
        assert _campaign_fingerprint(result) == baseline
        assert any(p.n_retries > 0 for p in result.pairs.values())

    def test_persistent_failure_quarantined(self):
        machine = make_machine("A100", seed=777)
        cfg = _fault_config(inject_faults="raise@0*99", max_job_retries=1)
        result = run_campaign_parallel(machine, cfg, workers=1)
        skipped = [p for p in result.pairs.values() if p.skipped]
        assert len(skipped) == 1
        assert skipped[0].skip_reason.startswith("quarantined after 2")
        assert "FaultInjected" in skipped[0].skip_reason
        assert skipped[0].n_retries == 2
        # The other five pairs are untouched by the quarantine.
        clean = [p for p in result.pairs.values() if not p.skipped]
        assert len(clean) == 5
        assert all(p.measurements for p in clean)

    def test_quarantine_with_zero_retries(self):
        machine = make_machine("A100", seed=777)
        cfg = _fault_config(inject_faults="raise@0", max_job_retries=0)
        result = run_campaign_parallel(machine, cfg, workers=1)
        skipped = [p for p in result.pairs.values() if p.skipped]
        assert len(skipped) == 1
        assert skipped[0].skip_reason.startswith("quarantined after 1")


class TestWarmPoolRecovery:
    """Supervised warm-pool dispatch: respawn, transport retry, sweeps."""

    @pytest.fixture(scope="class")
    def baseline(self):
        machine = make_machine("A100", seed=888)
        return _campaign_fingerprint(
            run_campaign_parallel(machine, _fault_config(), workers=1)
        )

    def test_daemon_kill_respawns_and_converges(self, baseline):
        with WarmPool(2) as pool:
            machine = make_machine("A100", seed=888)
            result = run_campaign_parallel(
                machine,
                _fault_config(inject_faults="kill@0"),
                workers=2,
                pool=pool,
            )
            assert pool.stats["worker_respawns"] >= 1
        assert _campaign_fingerprint(result) == baseline
        assert any(p.n_retries > 0 for p in result.pairs.values())

    def test_corrupt_transport_retries_and_converges(self, baseline):
        with WarmPool(2) as pool:
            machine = make_machine("A100", seed=888)
            result = run_campaign_parallel(
                machine,
                _fault_config(inject_faults="corrupt@0"),
                workers=2,
                pool=pool,
            )
        assert _campaign_fingerprint(result) == baseline
        assert any(p.n_retries > 0 for p in result.pairs.values())

    def test_no_shm_segments_leaked(self):
        shm_dir = Path("/dev/shm")
        if not shm_dir.is_dir():
            pytest.skip("no /dev/shm on this platform")
        pool = WarmPool(2)
        session = pool._session
        try:
            machine = make_machine("A100", seed=888)
            # corrupt@0 deliberately strands a real segment mid-campaign;
            # close() must sweep every segment of this pool's session.
            run_campaign_parallel(
                machine,
                _fault_config(inject_faults="corrupt@0"),
                workers=2,
                pool=pool,
            )
        finally:
            pool.close()
        leaked = [p.name for p in shm_dir.iterdir() if p.name.startswith(session)]
        assert leaked == []
