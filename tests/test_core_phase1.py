"""Tests for phase 1: per-frequency characterization and pair validation."""

import pytest

from repro.core.context import BenchContext
from repro.core.phase1 import (
    characterize_frequency,
    run_phase1,
    validate_pairs,
)
from repro.errors import MeasurementError
from tests.conftest import fast_config


@pytest.fixture
def bench(a100_machine):
    return BenchContext(a100_machine, fast_config((705.0, 1095.0, 1410.0)))


class TestCharacterization:
    def test_mean_matches_frequency(self, bench):
        kernel = bench.base_kernel()
        char = characterize_frequency(bench, 1095.0, kernel)
        expected = kernel.iteration_duration_s(1095.0)
        assert char.stats.mean == pytest.approx(expected, rel=0.02)

    def test_lower_frequency_longer_iterations(self, bench):
        kernel = bench.base_kernel()
        slow = characterize_frequency(bench, 705.0, kernel)
        fast = characterize_frequency(bench, 1410.0, kernel)
        assert slow.stats.mean > 1.5 * fast.stats.mean

    def test_band_accessor(self, bench):
        char = characterize_frequency(bench, 1095.0, bench.base_kernel())
        lo, hi = char.band(2.0)
        assert lo < char.stats.mean < hi


class TestPairValidation:
    def test_distant_pairs_valid(self, bench):
        kernel = bench.base_kernel()
        chars = {
            f: characterize_frequency(bench, f, kernel)
            for f in (705.0, 1410.0)
        }
        valid, rejected = validate_pairs(
            chars, [(705.0, 1410.0), (1410.0, 705.0)], 0.95
        )
        assert len(valid) == 2
        assert not rejected

    def test_identical_stats_rejected(self):
        from repro.core.phase1 import FrequencyCharacterization
        from repro.stats.descriptive import SampleStats

        s = SampleStats(n=1000, mean=1e-4, std=1e-6, minimum=0, maximum=1)
        chars = {
            705.0: FrequencyCharacterization(705.0, s, 1),
            720.0: FrequencyCharacterization(720.0, s, 1),
        }
        valid, rejected = validate_pairs(chars, [(705.0, 720.0)], 0.95)
        assert not valid
        assert rejected == [(705.0, 720.0)]


class TestRunPhase1:
    def test_full_run(self, bench):
        result = run_phase1(bench)
        assert len(result.characterizations) == 3
        assert len(result.valid_pairs) == 6
        assert not result.rejected_pairs
        assert result.growth_steps == 0

    def test_stats_for_lookup(self, bench):
        result = run_phase1(bench)
        assert result.stats_for(705.0).mean > result.stats_for(1410.0).mean

    def test_stats_for_unknown_raises(self, bench):
        result = run_phase1(bench)
        with pytest.raises(MeasurementError):
            result.stats_for(840.0)

    def test_is_valid_pair(self, bench):
        result = run_phase1(bench)
        assert result.is_valid_pair(705.0, 1410.0)
        assert not result.is_valid_pair(705.0, 705.0)

    def test_workload_growth_on_adjacent_clocks(self, a100_machine):
        """15 MHz-apart clocks with a big noisy workload: phase 1 must
        either validate via growth or reject the pair, never crash."""
        cfg = fast_config(
            (1395.0, 1410.0),
            iteration_duration_s=20e-6,
            max_workload_growth=2,
        )
        bench = BenchContext(a100_machine, cfg)
        result = run_phase1(bench)
        all_pairs = set(result.valid_pairs) | set(result.rejected_pairs)
        assert all_pairs == {(1395.0, 1410.0), (1410.0, 1395.0)}
