"""Unit contract of the fair-share scheduling stack.

The :class:`DeficitRoundRobin` core is pure and synchronous, so its
dispatch order is a deterministic function of the push/next sequence —
these tests pin the classic DRR guarantees (weight-proportional share,
no starvation, no idle credit banking) plus a hypothesis sweep of the
conservation/FIFO invariants.  The asyncio layers
(:class:`FairShareScheduler`, :class:`EventBroadcast`) are exercised on
a private loop per test via ``asyncio.run``.
"""

import asyncio
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.service.bridge import EventBroadcast, QueueBridgeSink
from repro.service.scheduler import (
    DeficitRoundRobin,
    FairShareScheduler,
    Shard,
    WorkerFleet,
)


def _drain(drr):
    order = []
    while True:
        shard = drr.next()
        if shard is None:
            return order
        order.append(shard)


class TestDeficitRoundRobin:
    def test_single_queue_is_fifo(self):
        drr = DeficitRoundRobin()
        drr.add_queue("a")
        for seq in range(5):
            drr.push(Shard(queue="a", cost=1.0, seq=seq))
        assert [s.seq for s in _drain(drr)] == [0, 1, 2, 3, 4]

    def test_push_to_unregistered_queue_rejected(self):
        drr = DeficitRoundRobin()
        with pytest.raises(ConfigError, match="unregistered"):
            drr.push(Shard(queue="ghost", cost=1.0))

    def test_non_positive_weight_rejected(self):
        drr = DeficitRoundRobin()
        with pytest.raises(ConfigError, match="weight"):
            drr.add_queue("a", weight=0.0)

    def test_dispatch_share_is_weight_proportional(self):
        # Unit-cost backlog on two queues, weight 1 vs 2: every full
        # rotation serves one "a" shard and two "b" shards.
        drr = DeficitRoundRobin()
        drr.add_queue("a", weight=1.0)
        drr.add_queue("b", weight=2.0)
        for seq in range(30):
            drr.push(Shard(queue="a", cost=1.0, seq=seq))
            drr.push(Shard(queue="b", cost=1.0, seq=seq))
        head = [s.queue for s in _drain(drr)][:15]
        assert head.count("b") == 2 * head.count("a")

    def test_large_shard_is_not_starved(self):
        # A cost-10 shard behind a stream of unit shards on an
        # equal-weight competitor: its deficit grows by one quantum per
        # rotation, so it must dispatch within ~10 rotations.
        drr = DeficitRoundRobin()
        drr.add_queue("big", weight=1.0)
        drr.add_queue("small", weight=1.0)
        drr.push(Shard(queue="big", cost=10.0))
        for seq in range(50):
            drr.push(Shard(queue="small", cost=1.0, seq=seq))
        order = [s.queue for s in _drain(drr)]
        assert "big" in order
        assert order.index("big") <= 20

    def test_emptied_queue_forfeits_deficit(self):
        # Queue "a" drains with 0.75 credit to spare; when it comes back
        # the leftover must be gone (no banking while idle).  A banked
        # 0.75 would let the cost-1.5 shard dispatch on the very first
        # visit (0.75 + 1.0 quantum); forfeited, it needs two visits and
        # "b" goes first.
        drr = DeficitRoundRobin()
        drr.add_queue("a", weight=1.0)
        drr.push(Shard(queue="a", cost=0.25))
        assert drr.next() is not None
        assert drr._queues["a"].deficit == 0.0
        drr.add_queue("b", weight=1.0)
        drr.push(Shard(queue="a", cost=1.5))
        drr.push(Shard(queue="b", cost=1.0))
        drr.push(Shard(queue="b", cost=1.0))
        order = [s.queue for s in _drain(drr)]
        assert order == ["b", "a", "b"]

    def test_quantum_is_max_hint_among_backlogged_queues(self):
        drr = DeficitRoundRobin()
        drr.add_queue("a", quantum_hint=2.0)
        drr.add_queue("b", quantum_hint=5.0)
        assert drr.quantum() == 1.0  # nothing queued yet
        drr.push(Shard(queue="a", cost=1.0))
        assert drr.quantum() == 2.0
        drr.push(Shard(queue="b", cost=1.0))
        assert drr.quantum() == 5.0

    def test_reregister_merges_hint_upward(self):
        drr = DeficitRoundRobin()
        drr.add_queue("a", quantum_hint=4.0)
        drr.add_queue("a", quantum_hint=2.0)
        drr.push(Shard(queue="a", cost=1.0))
        assert drr.quantum() == 4.0

    def test_remove_queue_returns_pending_shards(self):
        drr = DeficitRoundRobin()
        drr.add_queue("a")
        drr.add_queue("b")
        for seq in range(3):
            drr.push(Shard(queue="a", cost=1.0, seq=seq))
        drr.push(Shard(queue="b", cost=1.0, seq=9))
        dropped = drr.remove_queue("a")
        assert [s.seq for s in dropped] == [0, 1, 2]
        assert [s.seq for s in _drain(drr)] == [9]
        assert drr.remove_queue("a") == []

    def test_same_sequence_same_dispatch_order(self):
        def run():
            drr = DeficitRoundRobin()
            drr.add_queue("a", weight=1.5, quantum_hint=2.0)
            drr.add_queue("b", weight=0.5)
            for seq, (queue, cost) in enumerate(
                [("a", 3.0), ("b", 1.0), ("a", 0.5), ("b", 2.5), ("a", 1.0)]
            ):
                drr.push(Shard(queue=queue, cost=cost, seq=seq))
            return [s.seq for s in _drain(drr)]

        assert run() == run()

    @settings(max_examples=60, deadline=None)
    @given(
        weights=st.lists(
            st.floats(min_value=0.25, max_value=4.0),
            min_size=1,
            max_size=4,
        ),
        plan=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.floats(min_value=0.1, max_value=8.0),
            ),
            max_size=40,
        ),
    )
    def test_every_shard_dispatches_exactly_once_in_queue_order(
        self, weights, plan
    ):
        drr = DeficitRoundRobin()
        for i, weight in enumerate(weights):
            drr.add_queue(f"q{i}", weight=weight)
        pushed = []
        for seq, (qi, cost) in enumerate(plan):
            shard = Shard(queue=f"q{qi % len(weights)}", cost=cost, seq=seq)
            drr.push(shard)
            pushed.append(shard)
        order = _drain(drr)
        assert drr.pending == 0
        # conservation: each pushed shard dispatched exactly once
        assert sorted(s.seq for s in order) == [s.seq for s in pushed]
        # per-queue FIFO: dispatch order preserves push order
        for key in {s.queue for s in pushed}:
            dispatched = [s.seq for s in order if s.queue == key]
            assert dispatched == sorted(dispatched)


class TestFairShareScheduler:
    def test_futures_resolve_with_fn_results(self):
        async def main():
            fleet = WorkerFleet(2)
            sched = FairShareScheduler(fleet)
            sched.register("t")
            sched.start()
            futures = [
                sched.submit("t", 1.0, lambda i=i: i * i) for i in range(5)
            ]
            values = await asyncio.gather(*futures)
            await sched.close()
            fleet.close()
            return values

        assert asyncio.run(main()) == [0, 1, 4, 9, 16]

    def test_shard_exception_propagates_through_future(self):
        async def main():
            fleet = WorkerFleet(1)
            sched = FairShareScheduler(fleet)
            sched.register("t")
            sched.start()

            def boom():
                raise RuntimeError("shard failed")

            future = sched.submit("t", 1.0, boom)
            with pytest.raises(RuntimeError, match="shard failed"):
                await future
            await sched.close()
            fleet.close()

        asyncio.run(main())

    def test_unregister_cancels_pending_futures(self):
        async def main():
            fleet = WorkerFleet(1)
            sched = FairShareScheduler(fleet)
            sched.register("t")
            sched.start()
            gate = threading.Event()
            running = sched.submit("t", 1.0, gate.wait)
            await asyncio.sleep(0.05)  # let the blocker take the slot
            pending = [sched.submit("t", 1.0, lambda: None) for _ in range(3)]
            assert sched.unregister("t") == 3
            assert all(f.cancelled() for f in pending)
            gate.set()
            assert await running is True
            await sched.close()
            fleet.close()

        asyncio.run(main())

    def test_single_slot_interleaves_equal_weight_tenants(self):
        # One fleet slot + unit costs: DRR serves one shard per tenant
        # per rotation, so execution strictly alternates.
        async def main():
            fleet = WorkerFleet(1)
            sched = FairShareScheduler(fleet)
            sched.register("a")
            sched.register("b")
            ran = []
            futures = []
            for i in range(3):
                futures.append(sched.submit("a", 1.0, lambda: ran.append("a")))
                futures.append(sched.submit("b", 1.0, lambda: ran.append("b")))
            sched.start()
            await asyncio.gather(*futures)
            await sched.close()
            fleet.close()
            return ran

        assert asyncio.run(main()) == ["a", "b", "a", "b", "a", "b"]

    def test_submit_after_close_rejected(self):
        async def main():
            fleet = WorkerFleet(1)
            sched = FairShareScheduler(fleet)
            sched.register("t")
            sched.start()
            await sched.close()
            with pytest.raises(ConfigError, match="closed"):
                sched.submit("t", 1.0, lambda: None)
            fleet.close()

        asyncio.run(main())

    def test_fleet_requires_at_least_one_slot(self):
        with pytest.raises(ConfigError, match="slot"):
            WorkerFleet(0)


class TestEventBroadcast:
    def test_late_subscriber_replays_full_history(self):
        async def main():
            broadcast = EventBroadcast(asyncio.get_event_loop())
            broadcast.publish("e1")
            broadcast.publish("e2")
            await asyncio.sleep(0)  # let call_soon_threadsafe drain
            received = []

            async def consume():
                async for event in broadcast.aiter():
                    received.append(event)

            task = asyncio.ensure_future(consume())
            await asyncio.sleep(0)
            broadcast.publish("e3")
            broadcast.close()
            await task
            return received

        assert asyncio.run(main()) == ["e1", "e2", "e3"]

    def test_subscribe_after_close_yields_history_then_ends(self):
        async def main():
            broadcast = EventBroadcast(asyncio.get_event_loop())
            broadcast.publish("e1")
            broadcast.close(interrupted=True)
            await asyncio.sleep(0)
            assert broadcast.interrupted
            return [event async for event in broadcast.aiter()]

        assert asyncio.run(main()) == ["e1"]

    def test_publish_after_close_is_dropped(self):
        async def main():
            broadcast = EventBroadcast(asyncio.get_event_loop())
            broadcast.close()
            broadcast.publish("late")
            await asyncio.sleep(0)
            return broadcast.history

        assert asyncio.run(main()) == []

    def test_publish_from_worker_thread_preserves_order(self):
        async def main():
            loop = asyncio.get_event_loop()
            broadcast = EventBroadcast(loop)

            def producer():
                for i in range(20):
                    broadcast.publish(i)
                broadcast.close()

            await loop.run_in_executor(None, producer)
            return [event async for event in broadcast.aiter()]

        assert asyncio.run(main()) == list(range(20))

    def test_bridge_sink_flags_interrupt(self):
        async def main():
            broadcast = EventBroadcast(asyncio.get_event_loop())
            sink = QueueBridgeSink(broadcast)
            sink.on_event("e1")
            sink.on_interrupt()
            await asyncio.sleep(0)
            return broadcast.history, broadcast.interrupted

        history, interrupted = asyncio.run(main())
        assert history == ["e1"]
        assert interrupted
