"""Tests for the latest-bench CLI."""

import pytest

from repro.cli import build_parser, main, parse_frequencies


class TestArgumentParsing:
    def test_frequencies_parsed(self):
        assert parse_frequencies("705,1095,1410") == (705.0, 1095.0, 1410.0)

    def test_whitespace_tolerated(self):
        assert parse_frequencies("705, 1095") == (705.0, 1095.0)

    def test_negative_frequency_exits(self):
        with pytest.raises(SystemExit):
            parse_frequencies("705,-1410")

    def test_zero_frequency_exits(self):
        with pytest.raises(SystemExit):
            parse_frequencies("0,1410")

    def test_duplicate_frequencies_exit(self):
        with pytest.raises(SystemExit):
            parse_frequencies("705,1410,705")

    def test_memory_frequency_list_single_allowed(self):
        assert parse_frequencies("1215", minimum=1) == (1215.0,)

    def test_invalid_frequency_exits(self):
        with pytest.raises(SystemExit):
            parse_frequencies("705,abc")

    def test_single_frequency_exits(self):
        with pytest.raises(SystemExit):
            parse_frequencies("705")

    def test_defaults(self):
        args = build_parser().parse_args(["705,1410"])
        assert args.rse == 0.05
        assert args.device == 0
        assert args.gpu_model == "A100"
        assert args.min_measurements == 25
        assert args.max_measurements == 200


class TestMain:
    def test_small_run_exit_zero(self, capsys):
        code = main(
            [
                "705,1410",
                "--sm-count", "4",
                "--min-measurements", "4",
                "--max-measurements", "6",
                "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "worst-case latencies" in out
        assert "705" in out

    def test_heatmap_flag(self, capsys):
        code = main(
            [
                "705,1410",
                "--sm-count", "4",
                "--min-measurements", "4",
                "--max-measurements", "6",
                "--seed", "3",
                "--heatmaps",
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "min switching latencies" in out
        assert "max switching latencies" in out

    def test_memory_frequencies_run(self, tmp_path, capsys):
        out_dir = tmp_path / "csv"
        code = main(
            [
                "705,1410",
                "--memory-frequencies", "1215,810",
                "--sm-count", "4",
                "--min-measurements", "4",
                "--max-measurements", "6",
                "--seed", "3",
                "--heatmaps",
                "--quiet",
                "--output-dir", str(out_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # one heatmap facet per memory clock, labelled
        assert "@ mem 1215 MHz" in out
        assert "@ mem 810 MHz" in out
        names = {p.name for p in out_dir.glob("swlatm_*.csv")}
        assert any("_1215_" in n for n in names)
        assert any("_810_" in n for n in names)

    def test_memory_axis_run(self, tmp_path, capsys):
        out_dir = tmp_path / "csv"
        code = main(
            [
                "1215,810",
                "--axis", "memory",
                "--sm-count", "4",
                "--min-measurements", "4",
                "--max-measurements", "6",
                "--seed", "3",
                "--output-dir", str(out_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "memory-axis campaign" in out
        assert "locked SM 1410 MHz" in out
        names = {p.name for p in out_dir.glob("swlatmem_*.csv")}
        assert names == {
            "swlatmem_1215_810_simnode01_gpu0.csv",
            "swlatmem_810_1215_simnode01_gpu0.csv",
        }

    def test_memory_axis_rejects_grid_facets(self):
        with pytest.raises(SystemExit):
            main(["1215,810", "--axis", "memory", "--memory-frequencies", "810"])

    def test_locked_sm_requires_memory_axis(self):
        with pytest.raises(SystemExit):
            main(["705,1410", "--locked-sm", "1410"])

    def test_power_axis_run(self, tmp_path, capsys):
        out_dir = tmp_path / "csv"
        code = main(
            [
                "--axis", "power",
                "--power-limits", "400,330",
                "--sm-count", "4",
                "--min-measurements", "4",
                "--max-measurements", "6",
                "--seed", "3",
                "--output-dir", str(out_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "power-axis campaign" in out
        assert "locked SM 1410 MHz" in out
        assert "400 ->     330 W" in out
        names = {p.name for p in out_dir.glob("swlatpow_*.csv")}
        assert names == {
            "swlatpow_400_330_simnode01_gpu0.csv",
            "swlatpow_330_400_simnode01_gpu0.csv",
        }

    def test_power_axis_positional_limits(self, capsys):
        code = main(
            [
                "400,330",
                "--axis", "power",
                "--sm-count", "4",
                "--min-measurements", "4",
                "--max-measurements", "6",
                "--seed", "3",
                "--quiet",
            ]
        )
        assert code == 0

    def test_power_axis_needs_a_ladder(self):
        with pytest.raises(SystemExit):
            main(["--axis", "power"])

    def test_power_axis_rejects_both_ladder_sources(self):
        with pytest.raises(SystemExit):
            main(["400,330", "--axis", "power", "--power-limits", "400,330"])

    def test_power_limits_require_power_axis(self):
        with pytest.raises(SystemExit):
            main(["705,1410", "--power-limits", "400,330"])

    def test_missing_frequency_list_exits(self):
        with pytest.raises(SystemExit):
            main(["--axis", "memory"])

    def test_locked_sm_facet_sweep_run(self, tmp_path, capsys):
        out_dir = tmp_path / "csv"
        code = main(
            [
                "1215,810",
                "--axis", "memory",
                "--locked-sm", "1410,810",
                "--sm-count", "4",
                "--min-measurements", "2",
                "--max-measurements", "4",
                "--seed", "3",
                "--heatmaps",
                "--output-dir", str(out_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "once per locked SM clock (1410, 810 MHz)" in out
        assert "one panel per locked SM clock" in out
        assert "@ SM 1410 MHz" in out
        names = {p.name for p in out_dir.glob("swlatmemf_*.csv")}
        assert "swlatmemf_1215_810_1410_simnode01_gpu0.csv" in names
        assert "swlatmemf_1215_810_810_simnode01_gpu0.csv" in names

    def test_unsupported_memory_frequency_fails(self, capsys):
        code = main(
            [
                "705,1410",
                "--memory-frequencies", "999",
                "--sm-count", "4",
                "--min-measurements", "4",
                "--max-measurements", "6",
                "--seed", "3",
                "--quiet",
            ]
        )
        assert code == 1
        assert "memory clock" in capsys.readouterr().err

    def test_output_dir_written(self, tmp_path, capsys):
        out_dir = tmp_path / "csv"
        code = main(
            [
                "705,1410",
                "--sm-count", "4",
                "--min-measurements", "4",
                "--max-measurements", "6",
                "--seed", "3",
                "--quiet",
                "--output-dir", str(out_dir),
            ]
        )
        assert code == 0
        assert list(out_dir.glob("swlat_*.csv"))

    def test_gpu_model_selection(self, capsys):
        code = main(
            [
                "750,1650",
                "--gpu-model", "RTX6000",
                "--sm-count", "4",
                "--min-measurements", "4",
                "--max-measurements", "6",
                "--seed", "3",
                "--quiet",
            ]
        )
        assert code == 0
        assert "RTX Quadro 6000" in capsys.readouterr().out
