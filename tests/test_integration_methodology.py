"""Central methodology validation: the measured switching latency must
recover the simulator's injected ground truth, across architectures.

This is the validation axis the paper's physical setup cannot have: here
the "true" switching latency of every transition is known, so the full
pipeline (timer sync -> delay -> detection -> confirmation -> outlier
filtering) can be scored against it.
"""

import numpy as np
import pytest

from repro import make_machine, run_campaign
from tests.conftest import fast_config


@pytest.mark.parametrize(
    "model, freqs, seed",
    [
        ("A100", (705.0, 1095.0, 1410.0), 11),
        ("GH200", (705.0, 1410.0, 1980.0), 12),
        ("RTX6000", (750.0, 1350.0, 1650.0), 13),
    ],
)
def test_measured_tracks_ground_truth(model, freqs, seed):
    machine = make_machine(model, seed=seed)
    config = fast_config(
        freqs, min_measurements=8, max_measurements=12, rse_check_every=4
    )
    result = run_campaign(machine, config)
    assert result.n_measured_pairs >= 4

    rel_errors = []
    for pair in result.iter_measured():
        lat = pair.latencies_s(without_outliers=False)
        gt = pair.ground_truths_s(without_outliers=False)
        ok = ~np.isnan(gt)
        # Absolute detection bias is bounded by a few iterations plus
        # sleep overshoot — except that during the adaptation staircase
        # (the last 8-22 % of a transition, paper Sec. IV) iterations may
        # already run near the target band, so for long transitions the
        # detection can legitimately lead the stable point by a fraction
        # of the adaptation period.  Bound: 3 ms floor, 5 % of the true
        # latency for transitions whose adaptation span exceeds it —
        # clamped at 10 ms (a third of the simulator's 30 ms adaptation
        # cap, LatencySample.adaptation_s) so the slack stays well inside
        # the physical mechanism that justifies it and a genuine
        # detection regression still fails.
        abs_err = np.abs(lat[ok] - gt[ok])
        bound = np.maximum(3e-3, np.minimum(0.05 * gt[ok], 0.010))
        assert (abs_err < bound).all(), (pair.key, abs_err.max())
        rel_errors.extend(abs_err / np.maximum(gt[ok], 1e-9))
    # Median relative recovery error well under 15 %.
    assert np.median(rel_errors) < 0.15


def test_detection_never_precedes_ground_truth_completion():
    """te - ts can overshoot the true latency (granularity) but should
    essentially never undershoot it by more than one iteration."""
    machine = make_machine("A100", seed=21)
    config = fast_config((705.0, 1410.0), min_measurements=10, max_measurements=12)
    result = run_campaign(machine, config)
    for pair in result.iter_measured():
        lat = pair.latencies_s(without_outliers=False)
        gt = pair.ground_truths_s(without_outliers=False)
        ok = ~np.isnan(gt)
        iter_s = 2 * config.iteration_duration_s * 2  # generous slack
        assert (lat[ok] > gt[ok] - iter_s - 5e-4).all()


def test_repeatability_same_seed():
    """Identical seeds produce identical campaigns (bit-for-bit)."""
    results = []
    for _ in range(2):
        machine = make_machine("A100", seed=99)
        config = fast_config(
            (705.0, 1410.0), min_measurements=5, max_measurements=6
        )
        results.append(run_campaign(machine, config))
    a, b = results
    for key in a.pairs:
        la = a.pairs[key].latencies_s(without_outliers=False)
        lb = b.pairs[key].latencies_s(without_outliers=False)
        np.testing.assert_array_equal(la, lb)


def test_different_seeds_differ():
    outcomes = []
    for seed in (1, 2):
        machine = make_machine("A100", seed=seed)
        config = fast_config(
            (705.0, 1410.0), min_measurements=4, max_measurements=5
        )
        result = run_campaign(machine, config)
        outcomes.append(result.all_latencies_s(without_outliers=False))
    assert not np.array_equal(outcomes[0], outcomes[1])


def test_pair_distribution_stable_across_campaigns():
    """The per-pair latency structure is a property of the (simulated)
    hardware: two campaigns on the same unit must agree on means within
    statistical scatter."""
    means = []
    for seed in (31, 32):  # different measurement noise, same unit
        machine = make_machine("A100", seed=seed, unit_seeds=[500])
        config = fast_config(
            (705.0, 1410.0), min_measurements=15, max_measurements=20,
            rse_check_every=5,
        )
        result = run_campaign(machine, config)
        means.append(result.pair(1410.0, 705.0).stats().mean)
    assert means[0] == pytest.approx(means[1], rel=0.35)
