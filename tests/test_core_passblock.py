"""Bit-identity contract of the batched pass-block pipeline.

The batched per-pair loop (:mod:`repro.core.passblock`) must reproduce the
scalar reference loop exactly — same measurements, same outlier labels,
same CSV bytes, same virtual wall clock — for every block size, including
blocks that end ragged against the stopping rule, window growths that
roll speculation back mid-block, and thermally throttled campaigns.
"""

from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro import make_machine, run_campaign
from repro.core.context import BenchContext
from repro.core.passblock import plan_block_size
from repro.core.phase1 import run_phase1
from repro.core.phase2 import run_switch_benchmark
from repro.stats.rse import RseStoppingRule
from tests.conftest import fast_config
from tests.test_exec_engine import _campaign_fingerprint


def _csv_bytes(directory: Path) -> dict[str, bytes]:
    return {p.name: p.read_bytes() for p in sorted(directory.glob("*.csv"))}


def _run(machine_factory, cfg, outdir):
    machine = machine_factory()
    result = run_campaign(machine, replace(cfg, output_dir=str(outdir)))
    return result, _csv_bytes(outdir)


_ARCHES = [
    ("A100", (705.0, 1095.0, 1410.0), 2001),
    ("GH200", (705.0, 1410.0, 1980.0), 2002),
    ("RTX6000", (750.0, 1350.0, 1650.0), 2003),
]


class TestBatchedScalarEquivalence:
    @pytest.mark.parametrize("model, freqs, seed", _ARCHES)
    @pytest.mark.parametrize("block", [1, 5, 25])
    def test_grid(self, model, freqs, seed, block, tmp_path):
        """Seeded grid: >= 3 arch profiles x block sizes {1, 5, 25}.

        min/max/check_every are chosen so blocks end ragged (the stop
        count 10 is not a multiple of 25, and the final block before
        max_measurements is shorter than the cap).
        """
        cfg = fast_config(
            freqs,
            min_measurements=6,
            max_measurements=10,
            rse_check_every=4,
            pass_block_size=None,
        )
        factory = lambda: make_machine(model, seed=seed)  # noqa: E731
        ref, ref_csv = _run(factory, cfg, tmp_path / "ref")
        blk, blk_csv = _run(
            factory, replace(cfg, pass_block_size=block), tmp_path / "blk"
        )
        assert _campaign_fingerprint(blk) == _campaign_fingerprint(ref)
        assert blk_csv == ref_csv
        assert blk.wall_virtual_s == ref.wall_virtual_s

    def test_window_growth_rollback(self, tmp_path):
        """A tiny initial window forces growth — the mid-block divergence
        path that rolls speculation back through the ledger."""
        cfg = fast_config(
            (705.0, 1410.0),
            min_measurements=4,
            max_measurements=6,
            switch_window_factor=0.25,
            window_policy="probe-max",
            pass_block_size=None,
        )
        factory = lambda: make_machine("A100", seed=31)  # noqa: E731
        ref, ref_csv = _run(factory, cfg, tmp_path / "ref")
        blk, blk_csv = _run(
            factory, replace(cfg, pass_block_size=25), tmp_path / "blk"
        )
        growthy = [p.n_window_growths for p in ref.pairs.values()]
        assert any(g > 0 for g in growthy), "config failed to force growth"
        assert _campaign_fingerprint(blk) == _campaign_fingerprint(ref)
        assert blk_csv == ref_csv

    def test_thermal_campaign_equivalence(self, tmp_path):
        """Thermal machines exercise the throttle branches eagerly."""
        cfg = fast_config(
            (705.0, 1410.0),
            min_measurements=4,
            max_measurements=8,
            pass_block_size=None,
        )
        factory = lambda: make_machine(  # noqa: E731
            "A100", seed=17, thermal_enabled=True, ambient_c=45.0,
            power_limit_w=320.0,
        )
        ref, ref_csv = _run(factory, cfg, tmp_path / "ref")
        blk, blk_csv = _run(
            factory, replace(cfg, pass_block_size=5), tmp_path / "blk"
        )
        assert _campaign_fingerprint(blk) == _campaign_fingerprint(ref)
        assert blk_csv == ref_csv

    def test_final_clock_state_matches(self):
        """After a pair the machine timeline must be scalar-exact, so the
        legacy serial loop (shared machine across pairs) stays identical
        too — not only the per-pair results."""
        cfg = fast_config(
            (705.0, 1095.0, 1410.0), min_measurements=4, max_measurements=6
        )
        a = make_machine("A100", seed=5)
        b = make_machine("A100", seed=5)
        run_campaign(a, replace(cfg, pass_block_size=None))
        run_campaign(b, replace(cfg, pass_block_size=25))
        assert a.clock.now == b.clock.now
        assert a.host.rng.random() == b.host.rng.random()
        assert a.devices[0].rng.random() == b.devices[0].rng.random()


class TestMachineCheckpoint:
    def test_roundtrip_reproduces_draws(self):
        machine = make_machine("A100", seed=9)
        cfg = fast_config((705.0, 1410.0))
        bench = BenchContext(machine, cfg)
        phase1 = run_phase1(bench)
        run_switch_benchmark(bench, 705.0, 1410.0, phase1.kernel, 300)

        cp = machine.checkpoint()
        first = run_switch_benchmark(bench, 705.0, 1410.0, phase1.kernel, 300)
        t_after = machine.clock.now
        machine.restore(cp)
        replay = run_switch_benchmark(bench, 705.0, 1410.0, phase1.kernel, 300)

        assert replay.ts_acc == first.ts_acc
        np.testing.assert_array_equal(
            replay.timestamps.starts, first.timestamps.starts
        )
        np.testing.assert_array_equal(
            replay.timestamps.ends, first.timestamps.ends
        )
        assert machine.clock.now == t_after

    def test_restore_rewinds_dvfs_records(self):
        machine = make_machine("A100", seed=9)
        device = machine.devices[0]
        cfg = fast_config((705.0, 1410.0))
        bench = BenchContext(machine, cfg)
        phase1 = run_phase1(bench)
        cp = machine.checkpoint()
        n_records = len(device.dvfs.records)
        run_switch_benchmark(bench, 705.0, 1410.0, phase1.kernel, 300)
        assert len(device.dvfs.records) > n_records
        machine.restore(cp)
        assert len(device.dvfs.records) == n_records


class TestPlanBlockSize:
    def _rule(self, **kw):
        defaults = dict(
            threshold=0.05, min_measurements=20, max_measurements=60,
            check_every=10,
        )
        defaults.update(kw)
        return RseStoppingRule(**defaults)

    def test_stops_can_only_land_on_block_end(self):
        rule = self._rule()
        n = 0
        while n < rule.max_measurements:
            block = plan_block_size(n, rule, cap=25)
            # No count strictly inside the block may trigger a check.
            for inside in range(n + 1, n + block):
                assert not (
                    inside >= rule.max_measurements
                    or (
                        inside >= rule.min_measurements
                        and inside % rule.check_every == 0
                    )
                ), (n, block, inside)
            n += block
        assert n == rule.max_measurements

    def test_cap_respected(self):
        rule = self._rule(min_measurements=2, check_every=100)
        assert plan_block_size(0, rule, cap=7) == 7

    def test_ragged_final_block(self):
        rule = self._rule(min_measurements=4, max_measurements=9, check_every=4)
        assert plan_block_size(8, rule, cap=25) == 1  # only max-9 left
        assert plan_block_size(4, rule, cap=25) == 4
