"""Tests for the simulated host CPU."""

import numpy as np
import pytest

from repro.errors import ClockError
from repro.simtime.host import SleepModel


class TestSleepModel:
    def test_overshoot_positive(self):
        rng = np.random.default_rng(0)
        model = SleepModel()
        assert all(model.sample_overshoot(rng) > 0 for _ in range(100))

    def test_base_overshoot_floor(self):
        rng = np.random.default_rng(0)
        model = SleepModel(base_overshoot=1e-4, jitter_scale=1e-9)
        assert model.sample_overshoot(rng) >= 1e-4

    def test_interruptions_extend_sleep(self):
        rng = np.random.default_rng(0)
        noisy = SleepModel(interruption_prob=1.0, interruption_scale=1e-2)
        quiet = SleepModel(interruption_prob=0.0)
        noisy_mean = np.mean([noisy.sample_overshoot(rng) for _ in range(200)])
        quiet_mean = np.mean([quiet.sample_overshoot(rng) for _ in range(200)])
        assert noisy_mean > quiet_mean * 10


class TestHostCpu:
    def test_sleep_never_undersleeps(self, host):
        t0 = host.true_now
        host.sleep(0.01)
        assert host.true_now - t0 >= 0.01

    def test_usleep_converts_units(self, host):
        t0 = host.true_now
        host.usleep(500)
        elapsed = host.true_now - t0
        assert 500e-6 <= elapsed < 500e-6 + 1e-3

    def test_negative_sleep_rejected(self, host):
        with pytest.raises(ClockError):
            host.sleep(-1.0)

    def test_busy_is_exact(self, host):
        t0 = host.true_now
        host.busy(0.123)
        assert host.true_now - t0 == pytest.approx(0.123)

    def test_negative_busy_rejected(self, host):
        with pytest.raises(ClockError):
            host.busy(-0.1)

    def test_clock_gettime_tracks_true_time(self, host):
        host.busy(1.0)
        assert host.clock_gettime() == pytest.approx(1.0, abs=1e-8)

    def test_clock_gettime_monotonic(self, host):
        previous = host.clock_gettime()
        for _ in range(50):
            host.sleep(1e-4)
            now = host.clock_gettime()
            assert now > previous
            previous = now
