"""Tests for the latency-aware governor extension."""

import pytest

from repro.errors import ConfigError
from repro.governor import (
    LatencyAwareGovernor,
    LatencyTable,
    NaiveGovernor,
    StaticGovernor,
    make_phased_application,
    simulate_governor,
)
from repro.governor.app_model import ApplicationPhase
from repro.gpusim.spec import A100_SXM4


def table(freqs=(705.0, 1095.0, 1410.0), default=10e-3, overrides=None):
    overrides = overrides or {}
    latencies = {
        (a, b): overrides.get((a, b), default)
        for a in freqs
        for b in freqs
        if a != b
    }
    return LatencyTable(
        frequencies_mhz=freqs, latency_s=latencies, default_s=default
    )


class TestApplicationModel:
    def test_duration_at_optimal(self):
        phase = ApplicationPhase(1.0, 1410.0, sensitivity=1.0)
        assert phase.duration_at(1410.0) == 1.0

    def test_compute_bound_stretches(self):
        phase = ApplicationPhase(1.0, 1410.0, sensitivity=1.0)
        assert phase.duration_at(705.0) == pytest.approx(2.0)

    def test_memory_bound_barely_stretches(self):
        phase = ApplicationPhase(1.0, 1410.0, sensitivity=0.1)
        assert phase.duration_at(705.0) == pytest.approx(1.1)

    def test_above_optimal_no_speedup(self):
        phase = ApplicationPhase(1.0, 705.0, sensitivity=1.0)
        assert phase.duration_at(1410.0) == 1.0

    def test_generator_reproducible(self):
        a = make_phased_application(A100_SXM4, n_phases=10, seed=5)
        b = make_phased_application(A100_SXM4, n_phases=10, seed=5)
        assert [p.work_s for p in a.phases] == [p.work_s for p in b.phases]

    def test_generator_mixes_kinds(self):
        app = make_phased_application(A100_SXM4, n_phases=100, seed=1)
        kinds = app.kinds()
        assert kinds.get("memory", 0) > 10
        assert kinds.get("compute", 0) > 10


class TestLatencyTable:
    def test_from_campaign(self, small_a100_campaign):
        t = LatencyTable.from_campaign(small_a100_campaign)
        assert len(t.latency_s) == 6
        assert all(v > 0 for v in t.latency_s.values())

    def test_lookup_same_freq_zero(self):
        assert table().lookup(705.0, 705.0) == 0.0

    def test_lookup_unknown_uses_default(self):
        assert table().lookup(705.0, 840.0) == 10e-3


class TestPolicies:
    def test_naive_always_chases(self):
        gov = NaiveGovernor(table())
        phase = ApplicationPhase(0.001, 705.0, 1.0)
        decision = gov.decide(phase, 1410.0)
        assert decision.switched
        assert decision.target_mhz == 705.0

    def test_naive_stays_when_there(self):
        gov = NaiveGovernor(table())
        phase = ApplicationPhase(1.0, 705.0, 1.0)
        assert not gov.decide(phase, 705.0).switched

    def test_static_never_switches(self):
        gov = StaticGovernor(1410.0)
        phase = ApplicationPhase(1.0, 705.0, 1.0)
        assert not gov.decide(phase, 1410.0).switched

    def test_aware_skips_short_phase(self):
        gov = LatencyAwareGovernor(table(default=50e-3), min_residency_factor=3.0)
        short = ApplicationPhase(0.01, 705.0, 1.0)  # 10 ms vs 150 ms needed
        decision = gov.decide(short, 1410.0)
        assert not decision.switched
        assert decision.rationale == "phase-too-short"

    def test_aware_switches_long_phase(self):
        gov = LatencyAwareGovernor(table(default=5e-3))
        long = ApplicationPhase(1.0, 705.0, 1.0)
        assert gov.decide(long, 1410.0).switched

    def test_aware_detours_around_expensive_pair(self):
        freqs = (1095.0, 1110.0, 1410.0)
        t = table(
            freqs=freqs,
            default=5e-3,
            overrides={(1410.0, 1095.0): 300e-3, (1410.0, 1110.0): 5e-3},
        )
        gov = LatencyAwareGovernor(t, detour_tolerance_mhz=30.0)
        phase = ApplicationPhase(0.5, 1095.0, 0.2)
        decision = gov.decide(phase, 1410.0)
        assert decision.switched
        assert decision.target_mhz == 1110.0
        assert decision.rationale == "avoid-expensive-pair"

    def test_invalid_residency_factor(self):
        with pytest.raises(ConfigError):
            LatencyAwareGovernor(table(), min_residency_factor=0.0)


class TestSimulation:
    @pytest.fixture
    def app(self):
        return make_phased_application(A100_SXM4, n_phases=40, seed=9)

    def test_static_max_is_fastest(self, app):
        static = simulate_governor(app, StaticGovernor(1410.0))
        # At the max clock every phase runs at its optimal-or-better speed.
        assert static.total_time_s == pytest.approx(
            app.total_work_s, rel=1e-6
        )

    def test_dvfs_saves_energy(self, app):
        static = simulate_governor(app, StaticGovernor(1410.0))
        aware = simulate_governor(app, LatencyAwareGovernor(table(default=5e-3)))
        assert aware.energy_savings_vs(static) > 0.02

    def test_aware_beats_naive_under_slow_transitions(self, app):
        slow = table(default=120e-3)
        naive = simulate_governor(app, NaiveGovernor(slow))
        aware = simulate_governor(app, LatencyAwareGovernor(slow))
        assert aware.n_switches < naive.n_switches
        assert aware.stale_time_s < naive.stale_time_s
        # Aware never loses on the time+energy product.
        assert (
            aware.total_energy_j * aware.total_time_s
            <= naive.total_energy_j * naive.total_time_s * 1.02
        )

    def test_runtime_penalty_accounting(self, app):
        static = simulate_governor(app, StaticGovernor(1410.0))
        naive = simulate_governor(app, NaiveGovernor(table(default=200e-3)))
        assert naive.runtime_penalty_vs(static) >= 0.0

    def test_energy_conservation(self, app):
        run = simulate_governor(app, StaticGovernor(1410.0))
        total = sum(o.energy_j for o in run.outcomes)
        assert run.total_energy_j == pytest.approx(total)
