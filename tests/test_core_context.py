"""Tests for the shared bench context (settle loop, filler workloads)."""

import pytest

from repro.core.context import BenchContext
from repro.gpusim.spec import A100_SXM4
from tests.conftest import fast_config


@pytest.fixture
def bench(a100_machine):
    return BenchContext(a100_machine, fast_config((705.0, 1410.0)))


class TestBenchContext:
    def test_handles_wired_to_device(self, bench, a100_machine):
        assert bench.device is a100_machine.device()
        assert bench.cuda.device is bench.device
        assert bench.handle.device is bench.device

    def test_base_kernel_sizing(self, bench):
        kernel = bench.base_kernel()
        cfg = bench.config
        assert kernel.iteration_duration_s(
            A100_SXM4.max_sm_frequency_mhz
        ) == pytest.approx(cfg.iteration_duration_s)
        assert kernel.sm_count == cfg.record_sm_count

    def test_record_sm_count_default_all(self, a100_machine):
        cfg = fast_config((705.0, 1410.0), record_sm_count=None)
        bench = BenchContext(a100_machine, cfg)
        assert bench.record_sm_count() == A100_SXM4.sm_count

    def test_record_sm_count_capped(self, a100_machine):
        cfg = fast_config((705.0, 1410.0), record_sm_count=10_000)
        bench = BenchContext(a100_machine, cfg)
        assert bench.record_sm_count() == A100_SXM4.sm_count

    def test_filler_advances_time(self, bench, a100_machine):
        t0 = a100_machine.clock.now
        bench.run_filler(0.05, 1410.0)
        # Filler duration is approximate (iteration-quantized, wake-up):
        assert a100_machine.clock.now - t0 >= 0.04

    def test_settle_on_reaches_clock(self, bench):
        assert bench.settle_on(705.0)
        assert bench.handle.clock_info_sm_mhz() == 705.0
        assert bench.settle_on(1410.0)
        assert bench.handle.clock_info_sm_mhz() == 1410.0

    def test_settle_records_ground_truth(self, bench):
        bench.settle_on(705.0)
        bench.settle_on(1410.0)
        record = bench.device.last_transition()
        assert record is not None
        assert record.target_mhz == 1410.0

    def test_set_frequency_returns_record_when_busy(self, bench):
        bench.settle_on(705.0)
        record = bench.set_frequency(1410.0)
        # Device idle after settle's last filler ran out: record may be
        # None (idle) or a transition — both legal; the locked value must
        # stick either way.
        assert bench.device.dvfs.locked_mhz == 1410.0
