"""Tests for the CPU baseline (simulated core + FTaLaT methodology)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.ftalat import (
    CpuCore,
    CpuSpec,
    CpuTransitionModel,
    FtalatConfig,
    characterize_cpu_frequency,
    measure_cpu_transition,
    run_ftalat,
)


@pytest.fixture
def core(host):
    return CpuCore(host, rng=np.random.default_rng(11))


class TestCpuSpec:
    def test_ladder(self):
        spec = CpuSpec()
        clocks = spec.supported_clocks_mhz
        assert clocks[0] == 1000.0
        assert clocks[-1] == 3100.0
        assert np.allclose(np.diff(clocks), 100.0)

    def test_validate(self):
        assert CpuSpec().validate(2000.0) == 2000.0
        with pytest.raises(ConfigError):
            CpuSpec().validate(2050.0)


class TestTransitionModel:
    def test_microsecond_scale(self):
        rng = np.random.default_rng(0)
        model = CpuTransitionModel(outlier_prob=0.0)
        samples = [model.sample(rng, 1200.0, 3100.0) for _ in range(300)]
        assert 10e-6 < np.median(samples) < 300e-6

    def test_larger_steps_slower(self):
        rng = np.random.default_rng(0)
        model = CpuTransitionModel(sigma_log=0.0, outlier_prob=0.0)
        small = model.sample(rng, 2000.0, 2100.0)
        large = model.sample(rng, 1000.0, 3100.0)
        assert large > small


class TestCpuCore:
    def test_starts_at_min_frequency(self, core):
        assert core.current_frequency_mhz == 1000.0

    def test_set_frequency_applies_after_latency(self, core):
        latency = core.set_frequency(3100.0)
        assert core.current_frequency_mhz == 1000.0  # not yet
        core.host.busy(latency + 1e-6)
        assert core.current_frequency_mhz == 3100.0

    def test_same_frequency_zero_latency(self, core):
        core.set_frequency(1000.0)
        assert core.last_transition_latency_s == 0.0

    def test_iterations_advance_clock(self, core):
        t0 = core.clock.now
        starts, ends = core.run_iterations(100, 10_000.0)
        assert core.clock.now > t0
        assert len(starts) == 100
        assert (ends > starts).all()

    def test_iteration_duration_tracks_frequency(self, core):
        core.set_frequency(2000.0)
        core.host.busy(1e-3)
        starts, ends = core.run_iterations(500, 20_000.0)
        mean = (ends - starts)[100:].mean()
        assert mean == pytest.approx(20_000.0 / 2.0e9, rel=0.02)

    def test_zero_iterations_rejected(self, core):
        with pytest.raises(ConfigError):
            core.run_iterations(0, 1000.0)


class TestFtalatMethodology:
    def test_characterization_mean(self, core):
        cfg = FtalatConfig()
        stats = characterize_cpu_frequency(core, 2000.0, cfg)
        assert stats.mean == pytest.approx(
            cfg.cycles_per_iteration / 2.0e9, rel=0.02
        )

    def test_transition_measurement(self, core):
        cfg = FtalatConfig()
        a = characterize_cpu_frequency(core, 1200.0, cfg)
        b = characterize_cpu_frequency(core, 3100.0, cfg)
        m = measure_cpu_transition(core, 1200.0, 3100.0, a, b, cfg)
        assert m.latency_s > 0
        # Detection overshoot bounded: < 1 ms total ("units of ms at most").
        assert m.latency_s < 5e-3
        assert m.latency_s >= m.ground_truth_s - 1e-5

    def test_full_campaign(self, core):
        cfg = FtalatConfig(repeats=3)
        result = run_ftalat(core, (1200.0, 3100.0), cfg)
        assert (1200.0, 3100.0) in result.measurements
        assert (3100.0, 1200.0) in result.measurements
        lats = result.all_latencies_s()
        assert (lats > 0).all()
        assert (lats < 5e-3).all()

    def test_cpu_much_faster_than_gpu(self, core, small_a100_campaign):
        """The paper's headline comparison, as a hard invariant."""
        cfg = FtalatConfig(repeats=3)
        cpu = run_ftalat(core, (1200.0, 3100.0), cfg)
        cpu_median = np.median(cpu.all_latencies_s())
        gpu_median = np.median(small_a100_campaign.all_latencies_s())
        assert gpu_median > 5 * cpu_median
