"""Tests for campaign-to-campaign comparison."""

import pytest

from repro import make_machine, run_campaign
from repro.analysis.compare import compare_campaigns
from repro.errors import MeasurementError
from tests.conftest import fast_config


@pytest.fixture(scope="module")
def repeated_campaigns():
    """Two campaigns on the SAME simulated unit, different noise."""
    results = []
    for seed in (41, 42):
        machine = make_machine("A100", seed=seed, unit_seeds=[777])
        config = fast_config(
            (705.0, 1410.0),
            min_measurements=15,
            max_measurements=25,
            rse_check_every=5,
        )
        results.append(run_campaign(machine, config))
    return results


@pytest.fixture(scope="module")
def different_unit_campaign():
    machine = make_machine("A100", seed=43, unit_seeds=[999])
    config = fast_config(
        (705.0, 1410.0),
        min_measurements=15,
        max_measurements=25,
        rse_check_every=5,
    )
    return run_campaign(machine, config)


class TestCompareCampaigns:
    def test_same_unit_agrees(self, repeated_campaigns):
        cmp = compare_campaigns(*repeated_campaigns)
        assert cmp.n_pairs == 2
        assert cmp.agreement_share() == 1.0
        assert cmp.verdict() == "stable"
        assert cmp.median_relative_shift < 0.35

    def test_pair_metrics_populated(self, repeated_campaigns):
        cmp = compare_campaigns(*repeated_campaigns)
        for pair in cmp.pairs:
            assert pair.mean_a_s > 0 and pair.mean_b_s > 0
            assert 0.0 <= pair.pvalue <= 1.0

    def test_cross_unit_comparison_runs(
        self, repeated_campaigns, different_unit_campaign
    ):
        """Different units: the comparison still works; agreement may or
        may not hold (unit perturbations are small on A100)."""
        cmp = compare_campaigns(repeated_campaigns[0], different_unit_campaign)
        assert cmp.n_pairs == 2
        assert cmp.verdict() in ("stable", "drifted")

    def test_mismatched_frequencies_rejected(
        self, repeated_campaigns, small_a100_campaign
    ):
        with pytest.raises(MeasurementError):
            compare_campaigns(repeated_campaigns[0], small_a100_campaign)

    def test_drift_detected_on_artificial_shift(self, repeated_campaigns):
        """Scaling one campaign's measurements must flip the verdict."""
        import copy
        import dataclasses

        a, b = repeated_campaigns
        shifted = copy.deepcopy(b)
        for pair in shifted.pairs.values():
            pair.measurements = [
                dataclasses.replace(m, latency_s=m.latency_s * 4.0)
                for m in pair.measurements
            ]
        cmp = compare_campaigns(a, shifted)
        assert cmp.verdict() == "drifted"
        assert len(cmp.drifted_pairs()) == cmp.n_pairs
