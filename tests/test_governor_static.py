"""Tests for the static frequency tuning sweep (paper Sec. III context)."""

import pytest

from repro.errors import ConfigError
from repro.governor import make_phased_application, static_frequency_sweep
from repro.gpusim.spec import A100_SXM4


@pytest.fixture(scope="module")
def sweep():
    app = make_phased_application(A100_SXM4, n_phases=60, seed=3)
    return static_frequency_sweep(app)


class TestStaticSweep:
    def test_max_clock_is_baseline(self, sweep):
        p_max = sweep.point_at_ratio(1.0)
        assert p_max.runtime_penalty == 0.0
        assert p_max.energy_savings == 0.0

    def test_lower_clocks_slower(self, sweep):
        p_low = sweep.point_at_ratio(0.5)
        p_max = sweep.point_at_ratio(1.0)
        assert p_low.time_s > p_max.time_s

    def test_sweet_spot_saves_energy(self, sweep):
        """The Sec. III claim: ~75 % of max clock balances savings against
        penalty — it must save energy vs the max clock."""
        p = sweep.point_at_ratio(0.75)
        assert p.energy_savings > 0.05
        assert p.runtime_penalty < 0.40

    def test_best_energy_below_max_clock(self, sweep):
        best = sweep.best_energy()
        assert best.freq_ratio < 1.0

    def test_penalty_cap_respected(self, sweep):
        capped = sweep.best_energy(max_penalty=0.10)
        assert capped.runtime_penalty <= 0.10
        uncapped = sweep.best_energy()
        assert uncapped.energy_j <= capped.energy_j

    def test_impossible_cap_rejected(self, sweep):
        with pytest.raises(ConfigError):
            sweep.best_energy(max_penalty=-0.5)

    def test_edp_optimum_is_intermediate(self, sweep):
        """EDP optimum sits strictly between the extremes for a mixed
        compute/memory workload."""
        best = sweep.best_edp()
        ratios = sorted(p.freq_ratio for p in sweep.points)
        assert ratios[0] <= best.freq_ratio <= ratios[-1]

    def test_empty_ratio_list_rejected(self):
        app = make_phased_application(A100_SXM4, n_phases=5, seed=1)
        with pytest.raises(ConfigError):
            static_frequency_sweep(app, ratios=())

    def test_points_cover_requested_ratios(self, sweep):
        assert len(sweep.points) == 7
