"""Tests for the analysis package (heatmaps, Table II, violins, clusters,
variability, rendering)."""

import numpy as np
import pytest

from repro.analysis.clusters import cluster_report, scatter_data
from repro.analysis.distributions import split_by_direction
from repro.analysis.heatmap import heatmap_from_campaign
from repro.analysis.render import render_heatmap, render_matrix, render_table2
from repro.analysis.summary import summarize_campaign
from repro.analysis.variability import variability_report
from repro.errors import MeasurementError


class TestHeatmap:
    def test_grid_orientation(self, small_a100_campaign):
        grid = heatmap_from_campaign(small_a100_campaign, "max")
        pair = small_a100_campaign.pair(705.0, 1410.0)
        assert grid.value(705.0, 1410.0) == pytest.approx(
            pair.worst_case_s() * 1e3
        )

    def test_min_grid(self, small_a100_campaign):
        grid = heatmap_from_campaign(small_a100_campaign, "min")
        pair = small_a100_campaign.pair(1410.0, 705.0)
        assert grid.value(1410.0, 705.0) == pytest.approx(
            pair.best_case_s() * 1e3
        )

    def test_global_extremes(self, small_a100_campaign):
        grid = heatmap_from_campaign(small_a100_campaign, "max")
        vmax, pmax = grid.global_max()
        vmin, pmin = grid.global_min()
        assert vmax >= vmin
        assert grid.value(*pmax) == vmax
        assert grid.value(*pmin) == vmin

    def test_column_row_means_shapes(self, small_a100_campaign):
        grid = heatmap_from_campaign(small_a100_campaign)
        assert grid.row_means_ms().shape == (3,)
        assert grid.column_means_ms().shape == (3,)

    def test_gh200_pathological_target_column(self, small_gh200_campaign):
        """GH200's pathological 1875 MHz *target* column must dominate the
        column means — the essence of the paper's 'row pattern'.  (The
        full variance-based dominance ratio needs wider grids; the Fig. 3
        benchmark exercises it.)"""
        grid = heatmap_from_campaign(small_gh200_campaign, "max")
        col_means = grid.column_means_ms()
        special = grid.frequencies_mhz.index(1875.0)
        normal = grid.frequencies_mhz.index(1410.0)
        # The pathological target column dwarfs a normal one.  (The 705
        # column can also be inflated here because 1410 is an unstable
        # *initial* frequency band — faithful to Fig. 3b's 1410 row.)
        assert col_means[special] > 3 * col_means[normal]


class TestSummary:
    def test_table2_row(self, small_a100_campaign):
        row = summarize_campaign(small_a100_campaign)
        assert row.gpu_name == "A100 SXM-4"
        assert row.n_pairs == 6
        assert row.best.min_ms <= row.best.mean_ms <= row.best.max_ms
        assert row.worst.min_ms <= row.worst.mean_ms <= row.worst.max_ms
        assert row.best.mean_ms < row.worst.mean_ms

    def test_extreme_pairs_resolve(self, small_a100_campaign):
        row = summarize_campaign(small_a100_campaign)
        pair = small_a100_campaign.pair(*row.worst.max_pair)
        assert pair.worst_case_s() * 1e3 == pytest.approx(row.worst.max_ms)


class TestDistributions:
    def test_split_covers_all_pairs(self, small_a100_campaign):
        split = split_by_direction(small_a100_campaign, "max")
        assert split.increasing.values_ms.size == 3
        assert split.decreasing.values_ms.size == 3

    def test_asymmetry_defined(self, small_a100_campaign):
        split = split_by_direction(small_a100_campaign, "max")
        assert split.asymmetry > 0

    def test_all_statistic_concatenates(self, small_a100_campaign):
        split = split_by_direction(small_a100_campaign, "all")
        total = sum(
            p.latencies_s().size for p in small_a100_campaign.iter_measured()
        )
        assert (
            split.increasing.values_ms.size + split.decreasing.values_ms.size
            == total
        )

    def test_modality_counter(self):
        from repro.analysis.distributions import ViolinData

        rng = np.random.default_rng(0)
        bimodal = np.concatenate(
            [rng.normal(10, 0.5, 300), rng.normal(50, 0.5, 300)]
        )
        v = ViolinData.from_values(bimodal)
        assert v.modality_count() >= 2
        unimodal = ViolinData.from_values(rng.normal(10, 1.0, 600))
        assert unimodal.modality_count() <= 2


class TestClusters:
    def test_report_counts(self, small_gh200_campaign):
        report = cluster_report(small_gh200_campaign)
        assert report.n_pairs > 0
        assert 0.0 <= report.single_cluster_share <= 1.0
        assert report.max_clusters >= 1

    def test_silhouettes_above_zero(self, small_gh200_campaign):
        report = cluster_report(small_gh200_campaign)
        if report.multi_cluster_silhouettes.size:
            assert report.min_silhouette > 0.0

    def test_outlier_share_small(self, small_a100_campaign):
        report = cluster_report(small_a100_campaign)
        assert report.outlier_share() < 0.25

    def test_scatter_data_shapes(self, small_a100_campaign):
        pair = next(small_a100_campaign.iter_measured())
        data = scatter_data(pair)
        n = pair.n_measurements
        assert data["index"].shape == (n,)
        assert data["latency_ms"].shape == (n,)
        assert data["label"].shape == (n,)


class TestVariability:
    @pytest.fixture(scope="class")
    def unit_campaigns(self):
        from repro import make_machine, run_campaign
        from tests.conftest import fast_config

        machine = make_machine("A100", n_gpus=3, seed=808)
        results = []
        for i in range(3):
            cfg = fast_config(
                (705.0, 1410.0),
                device_index=i,
                min_measurements=8,
                max_measurements=12,
                rse_check_every=4,
            )
            results.append(run_campaign(machine, cfg))
        return results

    def test_report_structure(self, unit_campaigns):
        report = variability_report(unit_campaigns)
        assert report.n_units == 3
        assert len(report.best_spreads) == 2
        assert len(report.worst_spreads) == 2

    def test_ranges_nonnegative(self, unit_campaigns):
        report = variability_report(unit_campaigns)
        grid = report.range_matrix_ms("max")
        finite = grid[np.isfinite(grid)]
        assert (finite >= 0).all()

    def test_top_spread_sorted(self, unit_campaigns):
        report = variability_report(unit_campaigns)
        top = report.top_spread_pairs(2, case="max")
        assert top[0].range_ms >= top[-1].range_ms

    def test_slowest_unit_histogram_sums(self, unit_campaigns):
        report = variability_report(unit_campaigns)
        hist = report.slowest_unit_histogram("max")
        assert hist.sum() == len(report.worst_spreads)

    def test_needs_two_units(self, small_a100_campaign):
        with pytest.raises(MeasurementError):
            variability_report([small_a100_campaign])

    def test_mismatched_frequencies_rejected(
        self, unit_campaigns, small_a100_campaign
    ):
        with pytest.raises(MeasurementError):
            variability_report([unit_campaigns[0], small_a100_campaign])


class TestRender:
    def test_matrix_renders_all_rows(self):
        values = np.array([[1.0, np.nan], [3.0, 4.0]])
        text = render_matrix(values, [705, 1410], [705, 1410])
        lines = text.splitlines()
        assert len(lines) == 3
        assert "-" in lines[1]  # the NaN cell

    def test_heatmap_render_includes_title(self, small_a100_campaign):
        grid = heatmap_from_campaign(small_a100_campaign)
        text = render_heatmap(grid)
        assert "A100 SXM-4" in text
        assert "max" in text

    def test_table2_render_structure(self, small_a100_campaign):
        text = render_table2([summarize_campaign(small_a100_campaign)])
        assert "worst-case" in text
        assert "best-case" in text
        assert "Min [ms]" in text
