"""Property-based tests of DVFS clock-domain invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.arch_profiles import A100Profile
from repro.gpusim.dvfs import DvfsClockDomain
from repro.gpusim.latency_model import SwitchingLatencyModel
from repro.gpusim.spec import A100_SXM4

LADDER = A100_SXM4.supported_clocks_mhz


def make_domain(seed):
    rng = np.random.default_rng(seed)
    model = SwitchingLatencyModel(A100Profile(), unit_seed=0, rng=rng)
    return DvfsClockDomain(A100_SXM4, model, rng, idle_timeout_s=0.05)


@given(
    seed=st.integers(0, 10_000),
    requests=st.lists(
        st.tuples(
            st.floats(0.01, 2.0),     # gap before the request
            st.sampled_from(LADDER),  # target frequency
        ),
        min_size=1,
        max_size=6,
    ),
)
@settings(max_examples=60, deadline=None)
def test_last_request_always_wins(seed, requests):
    """After all transitions settle, the clock equals the last target."""
    domain = make_domain(seed)
    domain.notify_kernel_start(0.5)
    t = 1.0
    last_target = None
    for gap, target in requests:
        t += gap
        domain.request_locked_clocks(target, t)
        last_target = target
    # Far in the future every pending transition has completed.
    assert domain.planned_freq_at(t + 100.0) == last_target


@given(
    seed=st.integers(0, 10_000),
    target=st.sampled_from(LADDER),
)
@settings(max_examples=60, deadline=None)
def test_trajectory_frequencies_on_ladder_or_idle(seed, target):
    """Every trajectory segment sits on the clock ladder (incl. ramps)."""
    domain = make_domain(seed)
    domain.request_locked_clocks(1095.0, 0.5)
    rec = domain.notify_kernel_start(1.0)
    t = rec.t_stable + 0.05
    domain.request_locked_clocks(target, t)
    valid = set(LADDER) | {A100_SXM4.idle_sm_frequency_mhz}
    for seg in domain.trajectory(0.5).segments:
        assert seg.freq_mhz in valid


@given(seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_ground_truth_latency_positive_and_bounded(seed):
    domain = make_domain(seed)
    domain.request_locked_clocks(1410.0, 0.5)
    rec0 = domain.notify_kernel_start(1.0)
    t = rec0.t_stable + 0.05
    rec = domain.request_locked_clocks(705.0, t)
    assert rec is not None
    assert 0.0 < rec.ground_truth_latency_s < 1.0
    assert rec.adaptation_s < rec.ground_truth_latency_s


@given(
    seed=st.integers(0, 10_000),
    caps=st.lists(st.sampled_from(LADDER), min_size=1, max_size=3),
)
@settings(max_examples=40, deadline=None)
def test_effective_frequency_never_exceeds_cap(seed, caps):
    domain = make_domain(seed)
    domain.request_locked_clocks(1410.0, 0.5)
    domain.notify_kernel_start(1.0)
    t = 5.0
    lowest = min(caps)
    for cap in caps:
        domain.apply_cap(t, cap)
        t += 1.0
    # After the last cap applies, the effective clock respects it.
    assert domain.effective_freq_at(t + 10.0) <= caps[-1]


@given(seed=st.integers(0, 10_000), gap=st.floats(0.06, 5.0))
@settings(max_examples=40, deadline=None)
def test_idle_drop_and_wake_roundtrip(seed, gap):
    """Clocks drop to idle after the timeout and wake back to the lock."""
    domain = make_domain(seed)
    domain.request_locked_clocks(1095.0, 0.5)
    rec = domain.notify_kernel_start(1.0)
    end = rec.t_stable + 0.2
    domain.notify_kernel_end(end)
    wake = domain.notify_kernel_start(end + gap)
    assert wake is not None  # gap > idle timeout: a wake-up must occur
    # Between the idle drop and the wake the clock sat at idle.
    assert (
        domain.planned_freq_at(end + 0.051)
        == A100_SXM4.idle_sm_frequency_mhz
    )
    assert domain.planned_freq_at(wake.t_stable + 1e-9) == 1095.0
