"""Tests for GPU specifications (paper Table I data)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.gpusim.spec import (
    A100_SXM4,
    GH200,
    RTX_QUADRO_6000,
    GpuSpec,
    lookup_spec,
)


class TestTable1Data:
    """The three specs must carry the paper's Table I values."""

    @pytest.mark.parametrize(
        "spec, arch, sm, mem, fmax, fnom, fmin, steps",
        [
            (RTX_QUADRO_6000, "Turing", 72, 7001, 2100, 1440, 300, 120),
            (A100_SXM4, "Ampere", 108, 1215, 1410, 1095, 210, 81),
            (GH200, "Hopper", 132, 2619, 1980, 1980, 345, 110),
        ],
    )
    def test_table1_row(self, spec, arch, sm, mem, fmax, fnom, fmin, steps):
        assert spec.architecture == arch
        assert spec.sm_count == sm
        assert spec.memory_frequency_mhz == mem
        assert spec.max_sm_frequency_mhz == fmax
        assert spec.nominal_sm_frequency_mhz == fnom
        assert spec.min_sm_frequency_mhz == fmin
        assert spec.sm_frequency_steps == steps

    @pytest.mark.parametrize(
        "spec, driver",
        [
            (RTX_QUADRO_6000, "530.41.03"),
            (A100_SXM4, "550.54.15"),
            (GH200, "545.23.08"),
        ],
    )
    def test_driver_versions(self, spec, driver):
        assert spec.driver_version == driver


class TestClockLadder:
    @pytest.mark.parametrize("spec", [RTX_QUADRO_6000, A100_SXM4, GH200])
    def test_ladder_descending_and_bounded(self, spec):
        clocks = spec.supported_clocks_mhz
        assert clocks[0] == spec.max_sm_frequency_mhz
        assert clocks[-1] == spec.min_sm_frequency_mhz
        assert all(a > b for a, b in zip(clocks, clocks[1:]))

    @pytest.mark.parametrize("spec", [RTX_QUADRO_6000, A100_SXM4, GH200])
    def test_ladder_step_is_15mhz(self, spec):
        clocks = np.asarray(spec.supported_clocks_mhz)
        steps = np.diff(clocks)
        assert np.allclose(steps, -15.0)

    def test_a100_ladder_count_exact(self):
        # (1410-210)/15 + 1 = 81, matching the paper exactly.
        assert len(A100_SXM4.supported_clocks_mhz) == 81

    def test_gh200_ladder_count_exact(self):
        assert len(GH200.supported_clocks_mhz) == 110

    def test_paper_heatmap_frequencies_supported(self):
        # Every frequency in the paper's Fig. 3 GH200 axes is a ladder entry.
        gh200_freqs = [705, 795, 885, 975, 1095, 1170, 1260, 1275, 1290,
                       1350, 1410, 1500, 1665, 1770, 1830, 1875, 1920, 1980]
        ladder = set(GH200.supported_clocks_mhz)
        assert all(float(f) in ladder for f in gh200_freqs)

    def test_nearest_supported_clock(self):
        assert A100_SXM4.nearest_supported_clock(1100.0) == 1095.0

    def test_validate_clock_accepts_ladder(self):
        assert A100_SXM4.validate_clock(705.0) == 705.0

    def test_validate_clock_rejects_off_ladder(self):
        with pytest.raises(ConfigError):
            A100_SXM4.validate_clock(1100.0)

    def test_frequency_subset_endpoints(self):
        sub = A100_SXM4.frequency_subset(5)
        assert sub[0] == 210.0
        assert sub[-1] == 1410.0
        assert len(sub) == 5

    def test_frequency_subset_needs_two(self):
        with pytest.raises(ConfigError):
            A100_SXM4.frequency_subset(1)


class TestLookup:
    @pytest.mark.parametrize(
        "name, expected",
        [
            ("A100", A100_SXM4),
            ("a100", A100_SXM4),
            ("gh200", GH200),
            ("RTX6000", RTX_QUADRO_6000),
            ("rtx_quadro_6000", RTX_QUADRO_6000),
        ],
    )
    def test_lookup_aliases(self, name, expected):
        assert lookup_spec(name) is expected

    def test_lookup_unknown_raises(self):
        with pytest.raises(ConfigError):
            lookup_spec("H100")

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigError):
            GpuSpec(
                name="bad",
                architecture="X",
                sm_count=0,
                driver_version="1",
                memory_frequency_mhz=1,
                min_sm_frequency_mhz=100,
                max_sm_frequency_mhz=200,
                nominal_sm_frequency_mhz=150,
                sm_frequency_steps=5,
                idle_sm_frequency_mhz=100,
            )

    def test_inconsistent_range_rejected(self):
        with pytest.raises(ConfigError):
            GpuSpec(
                name="bad",
                architecture="X",
                sm_count=10,
                driver_version="1",
                memory_frequency_mhz=1,
                min_sm_frequency_mhz=300,
                max_sm_frequency_mhz=200,
                nominal_sm_frequency_mhz=250,
                sm_frequency_steps=5,
                idle_sm_frequency_mhz=100,
            )


class TestPowerLimitLadder:
    @pytest.mark.parametrize("spec", [RTX_QUADRO_6000, A100_SXM4, GH200])
    def test_ladder_descending_and_contains_tdp(self, spec):
        ladder = spec.supported_power_limits_w
        assert list(ladder) == sorted(ladder, reverse=True)
        assert spec.tdp_watts in ladder
        assert all(spec.idle_power_watts < w <= spec.tdp_watts for w in ladder)

    def test_nearest_and_validate(self):
        assert A100_SXM4.nearest_supported_power_limit(325.0) == 330.0
        assert A100_SXM4.validate_power_limit(270.0) == 270.0
        with pytest.raises(ConfigError):
            A100_SXM4.validate_power_limit(305.0)

    def test_nearest_vectorized(self):
        got = A100_SXM4.nearest_supported_power_limits(
            np.asarray([401.0, 221.0, 330.0])
        )
        assert list(got) == [400.0, 220.0, 330.0]

    def _spec_with_limits(self, limits):
        return GpuSpec(
            name="bad",
            architecture="X",
            sm_count=10,
            driver_version="1",
            memory_frequency_mhz=1000,
            min_sm_frequency_mhz=100,
            max_sm_frequency_mhz=200,
            nominal_sm_frequency_mhz=150,
            sm_frequency_steps=5,
            idle_sm_frequency_mhz=100,
            tdp_watts=300.0,
            idle_power_watts=50.0,
            power_limits_w=limits,
        )

    def test_limit_at_or_below_idle_power_rejected(self):
        # Such a limit inverts to a 0 MHz sustainable clock and nothing
        # could ever run under it; the simulated driver rejects it like
        # real boards reject -pl below their minimum.
        with pytest.raises(ConfigError):
            self._spec_with_limits((300.0, 50.0))
        with pytest.raises(ConfigError):
            self._spec_with_limits((300.0, 20.0))

    def test_limit_above_tdp_rejected(self):
        with pytest.raises(ConfigError):
            self._spec_with_limits((350.0,))

    def test_valid_ladder_accepted(self):
        spec = self._spec_with_limits((300.0, 200.0, 100.0))
        assert spec.supported_power_limits_w == (300.0, 200.0, 100.0)
