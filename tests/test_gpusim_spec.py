"""Tests for GPU specifications (paper Table I data)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.gpusim.spec import (
    A100_SXM4,
    GH200,
    RTX_QUADRO_6000,
    GpuSpec,
    lookup_spec,
)


class TestTable1Data:
    """The three specs must carry the paper's Table I values."""

    @pytest.mark.parametrize(
        "spec, arch, sm, mem, fmax, fnom, fmin, steps",
        [
            (RTX_QUADRO_6000, "Turing", 72, 7001, 2100, 1440, 300, 120),
            (A100_SXM4, "Ampere", 108, 1215, 1410, 1095, 210, 81),
            (GH200, "Hopper", 132, 2619, 1980, 1980, 345, 110),
        ],
    )
    def test_table1_row(self, spec, arch, sm, mem, fmax, fnom, fmin, steps):
        assert spec.architecture == arch
        assert spec.sm_count == sm
        assert spec.memory_frequency_mhz == mem
        assert spec.max_sm_frequency_mhz == fmax
        assert spec.nominal_sm_frequency_mhz == fnom
        assert spec.min_sm_frequency_mhz == fmin
        assert spec.sm_frequency_steps == steps

    @pytest.mark.parametrize(
        "spec, driver",
        [
            (RTX_QUADRO_6000, "530.41.03"),
            (A100_SXM4, "550.54.15"),
            (GH200, "545.23.08"),
        ],
    )
    def test_driver_versions(self, spec, driver):
        assert spec.driver_version == driver


class TestClockLadder:
    @pytest.mark.parametrize("spec", [RTX_QUADRO_6000, A100_SXM4, GH200])
    def test_ladder_descending_and_bounded(self, spec):
        clocks = spec.supported_clocks_mhz
        assert clocks[0] == spec.max_sm_frequency_mhz
        assert clocks[-1] == spec.min_sm_frequency_mhz
        assert all(a > b for a, b in zip(clocks, clocks[1:]))

    @pytest.mark.parametrize("spec", [RTX_QUADRO_6000, A100_SXM4, GH200])
    def test_ladder_step_is_15mhz(self, spec):
        clocks = np.asarray(spec.supported_clocks_mhz)
        steps = np.diff(clocks)
        assert np.allclose(steps, -15.0)

    def test_a100_ladder_count_exact(self):
        # (1410-210)/15 + 1 = 81, matching the paper exactly.
        assert len(A100_SXM4.supported_clocks_mhz) == 81

    def test_gh200_ladder_count_exact(self):
        assert len(GH200.supported_clocks_mhz) == 110

    def test_paper_heatmap_frequencies_supported(self):
        # Every frequency in the paper's Fig. 3 GH200 axes is a ladder entry.
        gh200_freqs = [705, 795, 885, 975, 1095, 1170, 1260, 1275, 1290,
                       1350, 1410, 1500, 1665, 1770, 1830, 1875, 1920, 1980]
        ladder = set(GH200.supported_clocks_mhz)
        assert all(float(f) in ladder for f in gh200_freqs)

    def test_nearest_supported_clock(self):
        assert A100_SXM4.nearest_supported_clock(1100.0) == 1095.0

    def test_validate_clock_accepts_ladder(self):
        assert A100_SXM4.validate_clock(705.0) == 705.0

    def test_validate_clock_rejects_off_ladder(self):
        with pytest.raises(ConfigError):
            A100_SXM4.validate_clock(1100.0)

    def test_frequency_subset_endpoints(self):
        sub = A100_SXM4.frequency_subset(5)
        assert sub[0] == 210.0
        assert sub[-1] == 1410.0
        assert len(sub) == 5

    def test_frequency_subset_needs_two(self):
        with pytest.raises(ConfigError):
            A100_SXM4.frequency_subset(1)


class TestLookup:
    @pytest.mark.parametrize(
        "name, expected",
        [
            ("A100", A100_SXM4),
            ("a100", A100_SXM4),
            ("gh200", GH200),
            ("RTX6000", RTX_QUADRO_6000),
            ("rtx_quadro_6000", RTX_QUADRO_6000),
        ],
    )
    def test_lookup_aliases(self, name, expected):
        assert lookup_spec(name) is expected

    def test_lookup_unknown_raises(self):
        with pytest.raises(ConfigError):
            lookup_spec("H100")

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigError):
            GpuSpec(
                name="bad",
                architecture="X",
                sm_count=0,
                driver_version="1",
                memory_frequency_mhz=1,
                min_sm_frequency_mhz=100,
                max_sm_frequency_mhz=200,
                nominal_sm_frequency_mhz=150,
                sm_frequency_steps=5,
                idle_sm_frequency_mhz=100,
            )

    def test_inconsistent_range_rejected(self):
        with pytest.raises(ConfigError):
            GpuSpec(
                name="bad",
                architecture="X",
                sm_count=10,
                driver_version="1",
                memory_frequency_mhz=1,
                min_sm_frequency_mhz=300,
                max_sm_frequency_mhz=200,
                nominal_sm_frequency_mhz=250,
                sm_frequency_steps=5,
                idle_sm_frequency_mhz=100,
            )
