"""Service-level contracts: bit-identity, durability, lifecycle edges.

The core invariant (ISSUE 10): any interleaving of N concurrent
campaigns on the shared worker fleet yields each campaign's exact
standalone :class:`~repro.core.results.CampaignResult` — CSV bytes and
``wall_virtual_s`` included — because pair measurement is a pure
function of ``(blueprint, config, grid index)`` and the virtual-clock
advance is grid-index ordered.  These tests pin that invariant across
seeds and axes, plus the durability and lifecycle edges: kill/restart
resume of interleaved journaled campaigns, submit-during-drain
rejection, cooperative cancel mid-facet, and two tenants sharing one
calibration cache.
"""

import asyncio
import json
from pathlib import Path

import pytest

from repro import make_machine, run_campaign
from repro.core.stream import FacetPrepared, PairMeasured
from repro.errors import ConfigError, ServiceUnavailable
from repro.service.client import ServiceClient, SocketClient
from repro.service.requests import CampaignRequest
from repro.service.server import ServiceServer, event_to_wire
from repro.service.service import CampaignService
from tests.conftest import fast_config
from tests.test_exec_engine import _campaign_fingerprint, _csv_bytes

#: LatestConfig overrides matching ``fast_config`` exactly — requests
#: carry them as JSON, the standalone reference builds them directly.
FAST = dict(
    record_sm_count=4,
    min_measurements=4,
    max_measurements=8,
    rse_check_every=2,
    warmup_kernels=1,
    warmup_kernel_duration_s=0.05,
    measure_kernel_duration_s=0.08,
    delay_iterations=150,
    confirm_iterations=150,
    probe_window_s=0.4,
    settle_chunk_s=0.08,
)

SM_FREQS = (705.0, 1095.0, 1410.0)


def _request(seed, tenant="default", weight=1.0, frequencies=SM_FREQS, **over):
    config = dict(FAST, frequencies=list(frequencies))
    config.update(over)
    return CampaignRequest(
        tenant=tenant, weight=weight, seed=seed, config=config
    )


def _standalone(seed, frequencies=SM_FREQS, **over):
    """The reference result a service campaign must reproduce exactly."""
    machine = make_machine("A100", seed=seed)
    config = fast_config(frequencies, **over)
    return run_campaign(machine, config, workers=1)


async def _measured_then_cancel(service, campaign_id, n_measured):
    """Cancel after ``n_measured`` fresh pairs; returns cancel()'s bool."""
    count = 0
    async for event in service.events(campaign_id):
        if isinstance(event, PairMeasured) and not event.replayed:
            count += 1
            if count >= n_measured:
                break
    return await service.cancel(campaign_id)


class TestConcurrentBitIdentity:
    def test_three_concurrent_campaigns_match_standalone(self, tmp_path):
        """N=3 interleaved campaigns == their standalone runs, CSVs too."""
        seeds = (11, 22, 33)
        refs = {}
        for seed in seeds:
            outdir = tmp_path / f"ref{seed}"
            refs[seed] = (
                _standalone(seed, output_dir=str(outdir)),
                _csv_bytes(outdir),
            )

        async def main():
            service = CampaignService(fleet_size=3, shard_pairs=2)
            await service.start()
            ids = {}
            for seed, tenant, weight in zip(
                seeds, ("alice", "bob", "carol"), (1.0, 2.0, 0.5)
            ):
                outdir = tmp_path / f"svc{seed}"
                ids[seed] = await service.submit(
                    _request(
                        seed,
                        tenant=tenant,
                        weight=weight,
                        output_dir=str(outdir),
                    )
                )
            results = dict(
                zip(
                    seeds,
                    await asyncio.gather(
                        *(service.result(ids[seed]) for seed in seeds)
                    ),
                )
            )
            await service.stop()
            return results

        results = asyncio.run(main())
        for seed in seeds:
            ref, ref_csvs = refs[seed]
            assert results[seed].wall_virtual_s == ref.wall_virtual_s
            assert _campaign_fingerprint(results[seed]) == (
                _campaign_fingerprint(ref)
            )
            svc_csvs = _csv_bytes(tmp_path / f"svc{seed}")
            assert svc_csvs == ref_csvs
            assert svc_csvs  # CSVs were actually written

    @pytest.mark.parametrize(
        "frequencies,overrides",
        [
            pytest.param(SM_FREQS, {}, id="sm_core"),
            pytest.param(
                (1215.0, 810.0, 405.0), {"axis": "memory"}, id="memory"
            ),
            pytest.param(
                (400.0, 330.0, 270.0), {"axis": "power"}, id="power"
            ),
        ],
    )
    def test_bit_identity_holds_on_every_axis(self, frequencies, overrides):
        ref = _standalone(17, frequencies=frequencies, **overrides)

        async def main():
            service = CampaignService(fleet_size=2, shard_pairs=2)
            await service.start()
            campaign_id = await service.submit(
                _request(17, frequencies=frequencies, **overrides)
            )
            result = await service.result(campaign_id)
            await service.stop()
            return result

        result = asyncio.run(main())
        assert result.wall_virtual_s == ref.wall_virtual_s
        assert _campaign_fingerprint(result) == _campaign_fingerprint(ref)

    def test_shard_size_does_not_change_results(self):
        ref = _standalone(5)

        async def run_with(shard_pairs):
            service = CampaignService(
                fleet_size=2, shard_pairs=shard_pairs
            )
            await service.start()
            campaign_id = await service.submit(_request(5))
            result = await service.result(campaign_id)
            await service.stop()
            return result

        for shard_pairs in (1, 3, 100):
            result = asyncio.run(run_with(shard_pairs))
            assert _campaign_fingerprint(result) == (
                _campaign_fingerprint(ref)
            ), f"shard_pairs={shard_pairs} diverged"
            assert result.wall_virtual_s == ref.wall_virtual_s


class TestRestartResume:
    def test_restart_resumes_two_interleaved_campaigns(self, tmp_path):
        """Kill mid-flight, restart over the journal root, finish
        bit-identically — both campaigns, interleaved on one slot."""
        root = tmp_path / "journals"
        refs = {}
        for seed in (11, 22):
            outdir = tmp_path / f"ref{seed}"
            refs[seed] = (
                _standalone(seed, output_dir=str(outdir)),
                _csv_bytes(outdir),
            )

        async def first_service():
            # One slot + one-pair shards: the two campaigns interleave
            # shard by shard, and a cancel lands with pairs still to go.
            service = CampaignService(
                fleet_size=1, journal_root=root, shard_pairs=1
            )
            await service.start()
            ids = {}
            for seed, tenant in ((11, "alice"), (22, "bob")):
                outdir = tmp_path / f"svc{seed}"
                ids[seed] = await service.submit(
                    _request(seed, tenant=tenant, output_dir=str(outdir))
                )
            cancelled = await asyncio.gather(
                _measured_then_cancel(service, ids[11], 2),
                _measured_then_cancel(service, ids[22], 2),
            )
            states = {
                seed: service.status(ids[seed]).state for seed in ids
            }
            await service.stop()
            return ids, cancelled, states

        ids, cancelled, states = asyncio.run(first_service())
        assert all(cancelled)
        assert set(states.values()) == {"cancelled"}
        for campaign_id in ids.values():
            directory = root / campaign_id
            assert (directory / "request.json").is_file()
            assert (directory / "meta.json").is_file()
            assert not (directory / "result.json").exists()

        async def second_service():
            service = CampaignService(fleet_size=2, journal_root=root)
            resumed = await service.start()
            results = {
                campaign_id: await service.result(campaign_id)
                for campaign_id in resumed
            }
            statuses = {
                campaign_id: service.status(campaign_id)
                for campaign_id in resumed
            }
            await service.stop()
            return resumed, results, statuses

        resumed, results, statuses = asyncio.run(second_service())
        assert sorted(resumed) == sorted(ids.values())
        for seed, campaign_id in ids.items():
            ref, ref_csvs = refs[seed]
            result = results[campaign_id]
            assert result.wall_virtual_s == ref.wall_virtual_s
            assert _campaign_fingerprint(result) == (
                _campaign_fingerprint(ref)
            )
            assert _csv_bytes(tmp_path / f"svc{seed}") == ref_csvs
            status = statuses[campaign_id]
            assert status.resumed
            assert status.replayed >= 2  # journaled pairs came back free
            assert (root / campaign_id / "result.json").is_file()

    def test_finished_campaigns_are_not_resumed(self, tmp_path):
        root = tmp_path / "journals"

        async def run_and_restart():
            service = CampaignService(fleet_size=2, journal_root=root)
            await service.start()
            campaign_id = await service.submit(_request(11))
            await service.result(campaign_id)
            await service.stop()

            again = CampaignService(fleet_size=2, journal_root=root)
            resumed = await again.start()
            await again.stop()
            return resumed

        assert asyncio.run(run_and_restart()) == []


class TestLifecycleEdges:
    def test_submit_during_drain_is_rejected(self):
        async def main():
            service = CampaignService(fleet_size=2, shard_pairs=2)
            await service.start()
            campaign_id = await service.submit(_request(11))
            drain = asyncio.ensure_future(service.drain())
            await asyncio.sleep(0)  # drain() sets the flag immediately
            with pytest.raises(ServiceUnavailable, match="draining"):
                await service.submit(_request(22))
            await drain
            # the in-flight campaign still completed normally
            result = await service.result(campaign_id)
            await service.stop()
            return result

        result = asyncio.run(main())
        assert result.wall_virtual_s == _standalone(11).wall_virtual_s

    def test_cancel_mid_facet_is_cooperative(self):
        async def main():
            service = CampaignService(fleet_size=1, shard_pairs=1)
            await service.start()
            campaign_id = await service.submit(_request(11))
            cancelled = await _measured_then_cancel(
                service, campaign_id, 1
            )
            status = service.status(campaign_id)
            broadcast = service._get(campaign_id).broadcast
            with pytest.raises(ServiceUnavailable, match="cancelled"):
                await service.result(campaign_id)
            await service.stop()
            return cancelled, status, broadcast.interrupted

        cancelled, status, interrupted = asyncio.run(main())
        assert cancelled
        assert status.state == "cancelled"
        assert 0 < status.measured < 6  # stopped partway, not at the end
        assert interrupted  # stream ended without CampaignFinished

    def test_cancel_after_completion_returns_false(self):
        async def main():
            service = CampaignService(fleet_size=2)
            await service.start()
            campaign_id = await service.submit(_request(11))
            await service.result(campaign_id)
            cancelled = await service.cancel(campaign_id)
            await service.stop()
            return cancelled

        assert asyncio.run(main()) is False

    def test_failed_campaign_surfaces_error(self):
        async def main():
            service = CampaignService(fleet_size=1)
            await service.start()
            bad = CampaignRequest(
                gpu_model="NOPE",
                seed=11,
                config=dict(FAST, frequencies=list(SM_FREQS)),
            )
            campaign_id = await service.submit(bad)
            with pytest.raises(ServiceUnavailable, match="failed"):
                await service.result(campaign_id)
            status = service.status(campaign_id)
            await service.stop()
            return status

        status = asyncio.run(main())
        assert status.state == "failed"
        assert status.error

    def test_unknown_campaign_id_rejected(self):
        async def main():
            service = CampaignService(fleet_size=1)
            await service.start()
            with pytest.raises(ServiceUnavailable, match="unknown"):
                service.status("c9999")
            await service.stop()

        asyncio.run(main())


class TestSharedCalibrationCache:
    def test_two_tenants_share_one_cache(self, tmp_path):
        cache = tmp_path / "calib"
        ref = _standalone(11)

        async def main():
            service = CampaignService(
                fleet_size=2, calibration_cache=str(cache)
            )
            await service.start()
            client = ServiceClient(service)

            async def facet_events(campaign_id):
                return [
                    event
                    async for event in client.events(campaign_id)
                    if isinstance(event, FacetPrepared)
                ]

            first = await client.submit(_request(11, tenant="alice"))
            result_a = await client.result(first)
            facets_a = await facet_events(first)

            second = await client.submit(_request(11, tenant="bob"))
            result_b = await client.result(second)
            facets_b = await facet_events(second)
            await service.stop()
            return result_a, facets_a, result_b, facets_b

        result_a, facets_a, result_b, facets_b = asyncio.run(main())
        # alice populated the cache cold; bob hits every facet warm
        assert facets_a and not any(f.cache_hit for f in facets_a)
        assert facets_b and all(f.cache_hit for f in facets_b)
        # the shared cache never changes measurement results
        for result in (result_a, result_b):
            assert result.wall_virtual_s == ref.wall_virtual_s
            assert _campaign_fingerprint(result) == (
                _campaign_fingerprint(ref)
            )


class TestSocketTransport:
    def test_full_roundtrip_over_unix_socket(self, tmp_path):
        socket_path = tmp_path / "svc.sock"
        ref = _standalone(11)

        async def main():
            service = CampaignService(fleet_size=2, shard_pairs=2)
            await service.start()
            server = ServiceServer(service, socket_path)
            await server.start()
            client = SocketClient(socket_path)
            assert await client.ping()
            campaign_id = await client.submit(_request(11))
            events = [
                event async for event in client.events(campaign_id)
            ]
            status = await client.status(campaign_id)
            everything = await client.status()
            with pytest.raises(ServiceUnavailable, match="unknown"):
                await client.status("c9999")
            assert not await client.cancel(campaign_id)
            await server.close()
            await service.stop()
            return campaign_id, events, status, everything

        campaign_id, events, status, everything = asyncio.run(main())
        assert not socket_path.exists()  # close() removed the socket
        types = [event["type"] for event in events]
        assert types[0] == "campaign_started"
        assert types[-1] == "campaign_finished"
        assert types.count("pair_measured") == 6
        assert events[-1]["wall_virtual_s"] == ref.wall_virtual_s
        assert status["campaign_id"] == campaign_id
        assert status["state"] == "finished"
        assert status["wall_virtual_s"] == ref.wall_virtual_s
        assert [s["campaign_id"] for s in everything] == [campaign_id]

    def test_wire_events_are_json_serializable(self):
        ref = _standalone(11)

        async def main():
            service = CampaignService(fleet_size=1)
            await service.start()
            campaign_id = await service.submit(_request(11))
            await service.result(campaign_id)
            events = [
                event async for event in service.events(campaign_id)
            ]
            await service.stop()
            return events

        events = asyncio.run(main())
        for event in events:
            wire = event_to_wire(event)
            assert json.loads(json.dumps(wire)) == wire
        assert ref.wall_virtual_s == [
            event_to_wire(e)
            for e in events
            if type(e).__name__ == "CampaignFinished"
        ][0]["wall_virtual_s"]


class TestRequestValidation:
    def test_unknown_config_field_rejected_at_submit_time(self):
        with pytest.raises(ConfigError, match="unknown config"):
            CampaignRequest(config={"not_a_field": 1})

    def test_unserializable_config_fields_banned(self):
        with pytest.raises(ConfigError, match="ptp_link"):
            CampaignRequest(config={"ptp_link": None})

    def test_tenant_and_weight_validated(self):
        with pytest.raises(ConfigError, match="tenant"):
            CampaignRequest(tenant="")
        with pytest.raises(ConfigError, match="weight"):
            CampaignRequest(weight=0.0)

    def test_json_round_trip_preserves_request(self):
        request = _request(42, tenant="alice", weight=2.5)
        assert CampaignRequest.from_json(request.to_json()) == request

    def test_from_json_rejects_unknown_fields(self):
        with pytest.raises(ConfigError, match="unknown campaign request"):
            CampaignRequest.from_json('{"tenant": "a", "bogus": 1}')

    def test_build_config_normalizes_lists_to_tuples(self):
        config = _request(0).build_config()
        assert isinstance(config.frequencies, tuple)
        assert config.frequencies == SM_FREQS

    def test_request_config_overrides_service_defaults(self):
        request = _request(0, calibration_cache=None)
        config = request.build_config(calibration_cache="/shared/cache")
        assert config.calibration_cache is None
