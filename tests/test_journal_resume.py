"""Interrupted-then-resumed campaigns reconstruct bit-identical results.

The resume contract: an engine campaign interrupted mid-run (here via the
deterministic ``interrupt@N`` driver fault, which sends a real SIGINT)
and then resumed against its journal produces a
:class:`~repro.core.results.CampaignResult` — CSV bytes and
``wall_virtual_s`` included — equal to an uninterrupted run's, on every
measurement axis.
"""

import shlex

import pytest

from repro import make_machine, run_campaign
from repro.cli import main
from repro.core.journal import CampaignJournal, campaign_fingerprint
from repro.errors import CampaignInterrupted, ConfigError, MeasurementError
from repro.exec.engine import run_campaign_parallel
from tests.conftest import fast_config
from tests.test_exec_engine import _campaign_fingerprint, _csv_bytes

_AXES = {
    "sm_core": dict(frequencies=(705.0, 1095.0, 1410.0)),
    "memory": dict(frequencies=(1215.0, 810.0, 405.0), axis="memory"),
    "power": dict(frequencies=(400.0, 330.0, 270.0), axis="power"),
}


def _axis_config(axis, **overrides):
    kw = dict(_AXES[axis])
    freqs = kw.pop("frequencies")
    kw.update(overrides)
    return fast_config(freqs, **kw)


def _machine(seed=4242):
    return make_machine("A100", seed=seed)


class TestInterruptResumeAxes:
    @pytest.mark.parametrize("axis", sorted(_AXES))
    def test_resumed_campaign_bit_identical(self, axis, tmp_path):
        journal_dir = tmp_path / "journal"
        golden_cfg = _axis_config(axis, output_dir=str(tmp_path / "gold"))
        golden = run_campaign_parallel(_machine(), golden_cfg, workers=1)
        golden_csv = _csv_bytes(tmp_path / "gold")

        # interrupt@2: SIGINT lands on the driver after the 2nd merged
        # pair; workers=1 checks the guard between units, so the stop
        # point is deterministic.
        with pytest.raises(CampaignInterrupted) as excinfo:
            run_campaign_parallel(
                _machine(),
                _axis_config(axis, inject_faults="interrupt@2"),
                workers=1,
                journal=journal_dir,
            )
        assert excinfo.value.journal_dir == str(journal_dir)
        assert "--resume" in str(excinfo.value)

        # The journal holds the pairs finished before the signal.
        recorded = CampaignJournal.open(
            journal_dir,
            campaign_fingerprint(_axis_config(axis), _machine().blueprint),
            "engine",
            resume=True,
        )
        n_recorded = len(recorded.load())
        recorded.close()
        assert 2 <= n_recorded < 6

        resumed_cfg = _axis_config(axis, output_dir=str(tmp_path / "res"))
        resumed = run_campaign_parallel(
            _machine(), resumed_cfg, workers=1, journal=journal_dir, resume=True
        )
        assert _campaign_fingerprint(resumed) == _campaign_fingerprint(golden)
        assert resumed.wall_virtual_s == golden.wall_virtual_s
        assert _csv_bytes(tmp_path / "res") == golden_csv


class TestResumeValidation:
    def _interrupted_journal(self, tmp_path, **cfg_overrides):
        journal_dir = tmp_path / "journal"
        with pytest.raises(CampaignInterrupted):
            run_campaign_parallel(
                _machine(),
                _axis_config(
                    "sm_core", inject_faults="interrupt@2", **cfg_overrides
                ),
                workers=1,
                journal=journal_dir,
            )
        return journal_dir

    def test_changed_config_rejected(self, tmp_path):
        journal_dir = self._interrupted_journal(tmp_path)
        with pytest.raises(MeasurementError, match="fingerprint"):
            run_campaign_parallel(
                _machine(),
                _axis_config("sm_core", rse_threshold=0.01),
                workers=1,
                journal=journal_dir,
                resume=True,
            )

    def test_changed_seed_rejected(self, tmp_path):
        journal_dir = self._interrupted_journal(tmp_path)
        with pytest.raises(MeasurementError, match="fingerprint"):
            run_campaign_parallel(
                _machine(seed=1),
                _axis_config("sm_core"),
                workers=1,
                journal=journal_dir,
                resume=True,
            )

    def test_execution_knobs_may_change_on_resume(self, tmp_path):
        journal_dir = self._interrupted_journal(tmp_path)
        golden = run_campaign_parallel(
            _machine(), _axis_config("sm_core"), workers=1
        )
        resumed = run_campaign_parallel(
            _machine(),
            _axis_config("sm_core", max_job_retries=9, pass_block_size=7),
            workers=2,
            journal=journal_dir,
            resume=True,
        )
        assert _campaign_fingerprint(resumed) == _campaign_fingerprint(golden)

    def test_fresh_run_refuses_existing_journal(self, tmp_path):
        journal_dir = self._interrupted_journal(tmp_path)
        with pytest.raises(ConfigError, match="already exists"):
            run_campaign_parallel(
                _machine(),
                _axis_config("sm_core"),
                workers=1,
                journal=journal_dir,
            )

    def test_resume_without_journal_rejected(self):
        with pytest.raises(ConfigError, match="journal"):
            run_campaign_parallel(
                _machine(), _axis_config("sm_core"), workers=1, resume=True
            )


class TestSerialJournal:
    def test_serial_run_records_durably(self, tmp_path):
        journal_dir = tmp_path / "journal"
        cfg = _axis_config("sm_core")
        run_campaign(_machine(), cfg, workers=None, journal=str(journal_dir))
        journal = CampaignJournal.open(
            journal_dir,
            campaign_fingerprint(cfg, _machine().blueprint),
            "serial",
            resume=True,
        )
        records = journal.load()
        journal.close()
        assert len(records) == len(cfg.pairs())

    def test_serial_resume_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="execution engine"):
            run_campaign(
                _machine(),
                _axis_config("sm_core"),
                workers=None,
                journal=str(tmp_path / "journal"),
                resume=True,
            )

    def test_engine_cannot_resume_serial_journal(self, tmp_path):
        journal_dir = tmp_path / "journal"
        cfg = _axis_config("sm_core")
        run_campaign(_machine(), cfg, workers=None, journal=str(journal_dir))
        with pytest.raises(MeasurementError, match="serial"):
            run_campaign_parallel(
                _machine(), cfg, workers=1, journal=journal_dir, resume=True
            )


class TestCliResume:
    _ARGS = [
        "705,1410",
        "--sm-count", "4",
        "--min-measurements", "4",
        "--max-measurements", "6",
        "--seed", "3",
        "--workers", "1",
    ]

    def test_interrupt_exits_130_then_resume_succeeds(self, tmp_path, capsys):
        journal = str(tmp_path / "journal")
        code = main(
            self._ARGS
            + ["--journal", journal, "--inject-faults", "interrupt@1"]
        )
        err = capsys.readouterr().err
        assert code == 130
        assert "interrupted" in err
        assert f"--journal {journal} --resume" in err

        code = main(self._ARGS + ["--journal", journal, "--resume"])
        out = capsys.readouterr().out
        assert code == 0
        assert "worst-case latencies" in out

    def test_resume_without_journal_flag_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(self._ARGS + ["--resume"])

    def test_serial_journal_resume_prints_engine_command(
        self, tmp_path, capsys
    ):
        """A serial-mode journal hard-errors on --resume with a fix.

        The diagnostic must name the journal's recorded execution mode
        and print the exact engine-mode command line to use — exact
        enough that running it verbatim succeeds.
        """
        journal = str(tmp_path / "journal")
        serial_args = [a for a in self._ARGS if a not in ("--workers", "1")]
        assert main(serial_args + ["--journal", journal]) == 0
        capsys.readouterr()

        code = main(serial_args + ["--journal", journal, "--resume"])
        err = capsys.readouterr().err
        assert code == 1
        assert "recorded by a 'serial'-mode run" in err
        hint = next(
            line.strip()
            for line in err.splitlines()
            if line.strip().startswith("latest-bench ")
        )
        assert "--resume" not in hint
        assert "--workers 1" in hint
        assert f"--journal {journal}-engine" in hint

        # The suggested command is runnable as printed.
        code = main(shlex.split(hint)[1:])
        capsys.readouterr()
        assert code == 0


def test_interrupted_error_without_journal_has_no_dir(tmp_path):
    cfg = _axis_config("sm_core", inject_faults="interrupt@2")
    with pytest.raises(CampaignInterrupted) as excinfo:
        run_campaign_parallel(_machine(), cfg, workers=1)
    assert excinfo.value.journal_dir is None
