"""Unit tests for the durable campaign journal and shutdown guard."""

from __future__ import annotations

import dataclasses
import os
import signal

import pytest

from repro import make_machine
from repro.core.journal import (
    CampaignJournal,
    ShutdownGuard,
    campaign_fingerprint,
    campaign_synopsis,
)
from repro.core.results import PairResult
from repro.errors import ConfigError, MeasurementError
from tests.conftest import fast_config


def _cfg(**over):
    return fast_config((705.0, 1095.0, 1410.0), **over)


def _pair(i: float = 705.0, t: float = 1410.0) -> PairResult:
    return PairResult(init_mhz=i, target_mhz=t)


class TestFingerprint:
    def test_stable_for_identical_campaigns(self):
        m1 = make_machine("A100", seed=5)
        m2 = make_machine("A100", seed=5)
        assert campaign_fingerprint(_cfg(), m1.blueprint) == (
            campaign_fingerprint(_cfg(), m2.blueprint)
        )

    def test_changes_with_result_affecting_config(self):
        bp = make_machine("A100", seed=5).blueprint
        assert campaign_fingerprint(_cfg(), bp) != campaign_fingerprint(
            _cfg(rse_threshold=0.01), bp
        )

    def test_changes_with_machine_seed(self):
        cfg = _cfg()
        assert campaign_fingerprint(
            cfg, make_machine("A100", seed=5).blueprint
        ) != campaign_fingerprint(
            cfg, make_machine("A100", seed=6).blueprint
        )

    def test_execution_only_knobs_excluded(self):
        # A resume may legitimately vary supervision/batching/output
        # settings: they provably cannot change measurements.
        bp = make_machine("A100", seed=5).blueprint
        base = campaign_fingerprint(_cfg(), bp)
        varied = _cfg(
            output_dir="/tmp/elsewhere",
            max_job_retries=9,
            job_timeout_factor=3.0,
            retry_backoff_s=0.0,
            inject_faults="kill@0",
            pass_block_size=7,
        )
        assert campaign_fingerprint(varied, bp) == base

    def test_rejects_blueprintless_machine(self):
        with pytest.raises(ConfigError, match="blueprint"):
            campaign_fingerprint(_cfg(), None)

    def test_synopsis_is_json_friendly(self):
        import json

        bp = make_machine("A100", seed=5).blueprint
        synopsis = campaign_synopsis(_cfg(), bp)
        assert synopsis["n_pairs"] == 6
        assert synopsis["n_facets"] == 1
        json.dumps(synopsis)


class TestJournalLifecycle:
    def test_append_load_roundtrip(self, tmp_path):
        journal = CampaignJournal.open(tmp_path / "j", "f" * 64, "engine")
        journal.append(3, _pair(), 1.5)
        journal.append(5, _pair(1095.0, 705.0), 2.5)
        journal.close()
        reopened = CampaignJournal.open(
            tmp_path / "j", "f" * 64, "engine", resume=True
        )
        records = reopened.load()
        reopened.close()
        assert sorted(records) == [3, 5]
        pair, elapsed = records[3]
        assert (pair.init_mhz, pair.target_mhz, elapsed) == (705.0, 1410.0, 1.5)

    def test_fresh_open_refuses_existing_journal(self, tmp_path):
        CampaignJournal.open(tmp_path / "j", "f" * 64, "engine").close()
        with pytest.raises(ConfigError, match="already exists"):
            CampaignJournal.open(tmp_path / "j", "f" * 64, "engine")

    def test_resume_refuses_missing_journal(self, tmp_path):
        with pytest.raises(ConfigError, match="no journal"):
            CampaignJournal.open(
                tmp_path / "nope", "f" * 64, "engine", resume=True
            )

    def test_resume_refuses_fingerprint_mismatch(self, tmp_path):
        CampaignJournal.open(tmp_path / "j", "a" * 64, "engine").close()
        with pytest.raises(MeasurementError, match="fingerprint"):
            CampaignJournal.open(
                tmp_path / "j", "b" * 64, "engine", resume=True
            )

    def test_resume_refuses_mode_mismatch(self, tmp_path):
        CampaignJournal.open(tmp_path / "j", "f" * 64, "serial").close()
        with pytest.raises(MeasurementError, match="serial"):
            CampaignJournal.open(
                tmp_path / "j", "f" * 64, "engine", resume=True
            )

    def test_duplicate_indices_keep_first(self, tmp_path):
        # At-least-once delivery can journal a pair twice; both copies are
        # bit-identical by determinism, and the loader keeps the first.
        journal = CampaignJournal.open(tmp_path / "j", "f" * 64, "engine")
        journal.append(1, _pair(), 1.0)
        journal.append(1, _pair(), 9.0)
        records = journal.load()
        journal.close()
        assert len(records) == 1
        assert records[1][1] == 1.0

    def test_torn_tail_frame_dropped(self, tmp_path):
        journal = CampaignJournal.open(tmp_path / "j", "f" * 64, "engine")
        journal.append(1, _pair(), 1.0)
        journal.append(2, _pair(), 2.0)
        journal.close()
        log = tmp_path / "j" / "pairs.log"
        data = log.read_bytes()
        log.write_bytes(data[:-7])  # SIGKILL mid-append
        reopened = CampaignJournal.open(
            tmp_path / "j", "f" * 64, "engine", resume=True
        )
        records = reopened.load()
        reopened.close()
        assert sorted(records) == [1]
        assert reopened.n_corrupt_tail == 1

    def test_corrupt_crc_dropped(self, tmp_path):
        journal = CampaignJournal.open(tmp_path / "j", "f" * 64, "engine")
        journal.append(1, _pair(), 1.0)
        journal.close()
        log = tmp_path / "j" / "pairs.log"
        data = bytearray(log.read_bytes())
        data[-1] ^= 0xFF
        log.write_bytes(bytes(data))
        reopened = CampaignJournal.open(
            tmp_path / "j", "f" * 64, "engine", resume=True
        )
        assert reopened.load() == {}
        reopened.close()

    def test_appends_survive_without_close(self, tmp_path):
        # Durability contract: every acknowledged append is on disk even
        # if the process never gets to close() (crash, SIGKILL).
        journal = CampaignJournal.open(tmp_path / "j", "f" * 64, "engine")
        journal.append(7, _pair(), 3.0)
        fresh = CampaignJournal.open(
            tmp_path / "j", "f" * 64, "engine", resume=True
        )
        assert sorted(fresh.load()) == [7]
        fresh.close()
        journal.close()


class TestShutdownGuard:
    def test_first_signal_sets_flag_second_raises(self):
        with ShutdownGuard() as guard:
            assert not guard.requested
            os.kill(os.getpid(), signal.SIGINT)
            assert guard.requested
            with pytest.raises(KeyboardInterrupt):
                os.kill(os.getpid(), signal.SIGINT)
                # The handler raises at the next bytecode boundary; pause()
                # is only a delivery point if it somehow hasn't yet.
                signal.pause()

    def test_handlers_restored_on_exit(self):
        before_int = signal.getsignal(signal.SIGINT)
        before_term = signal.getsignal(signal.SIGTERM)
        with ShutdownGuard():
            assert signal.getsignal(signal.SIGINT) != before_int
        assert signal.getsignal(signal.SIGINT) is before_int
        assert signal.getsignal(signal.SIGTERM) is before_term

    def test_sigterm_also_graceful(self):
        with ShutdownGuard() as guard:
            os.kill(os.getpid(), signal.SIGTERM)
            assert guard.requested


def test_fingerprint_excludes_are_real_fields():
    from repro.core.config import LatestConfig
    from repro.core.journal import _FINGERPRINT_EXCLUDED

    names = {f.name for f in dataclasses.fields(LatestConfig)}
    assert _FINGERPRINT_EXCLUDED <= names
