"""Bit-identity contract of the pair-parallel SoA execution tier.

The lockstep batch driver (:mod:`repro.core.pairbatch`) must reproduce
the one-job-at-a-time engine path exactly — same measurements, outlier
labels, CSV bytes, and per-pair virtual wall clock — for every batch
size, every divergence pattern (window growth peel-off, mid-batch early
stop, throttle aborts), and all three measurement axes.
"""

from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import make_machine
from repro.exec.engine import run_campaign_parallel
from tests.conftest import fast_config
from tests.test_exec_engine import _campaign_fingerprint


def _csv_bytes(directory: Path) -> dict[str, bytes]:
    return {p.name: p.read_bytes() for p in sorted(directory.glob("*.csv"))}


_AXES = {
    "sm_core": dict(frequencies=(705.0, 1095.0, 1410.0)),
    "memory": dict(frequencies=(1215.0, 810.0, 405.0), axis="memory"),
    "power": dict(frequencies=(400.0, 330.0, 270.0), axis="power"),
}


def _axis_config(axis, **overrides):
    kw = dict(_AXES[axis])
    freqs = kw.pop("frequencies")
    kw.update(overrides)
    return fast_config(freqs, **kw)


def _engine_run(cfg, seed=99, model="A100", outdir=None, **machine_kw):
    machine = make_machine(model, seed=seed, **machine_kw)
    if outdir is not None:
        cfg = replace(cfg, output_dir=str(outdir))
    result = run_campaign_parallel(machine, cfg)
    csv = _csv_bytes(outdir) if outdir is not None else None
    return result, csv


class TestPairBatchEquivalence:
    @pytest.mark.parametrize("axis", sorted(_AXES))
    @pytest.mark.parametrize("batch", [1, 3, 12])
    def test_axes_grid(self, axis, batch, tmp_path):
        cfg = _axis_config(axis)
        ref, ref_csv = _engine_run(cfg, outdir=tmp_path / "ref")
        bat, bat_csv = _engine_run(
            replace(cfg, pair_batch_size=batch), outdir=tmp_path / "bat"
        )
        assert _campaign_fingerprint(bat) == _campaign_fingerprint(ref)
        assert bat_csv == ref_csv
        assert bat.wall_virtual_s == ref.wall_virtual_s

    # A campaign per example is expensive; a modest example budget over
    # random (axis, batch width, block cap) triples still walks far more
    # of the divergence space than the fixed grid above.  Baselines cache
    # per configuration shape so each example pays one batched run.
    _baselines: dict = {}

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        axis=st.sampled_from(sorted(_AXES)),
        batch=st.integers(min_value=1, max_value=16),
        block=st.sampled_from([1, 5, 25]),
        grow=st.booleans(),
    )
    def test_random_batch_shapes(self, axis, batch, block, grow):
        overrides = dict(pass_block_size=block)
        if grow:
            # Undersized probe windows force mid-batch window growth —
            # the peel-off divergence.
            overrides.update(
                switch_window_factor=0.25, window_policy="probe-max"
            )
        cfg = _axis_config(axis, **overrides)
        key = (axis, block, grow)
        if key not in self._baselines:
            ref, _ = _engine_run(cfg)
            self._baselines[key] = _campaign_fingerprint(ref), ref.wall_virtual_s
        ref_fp, ref_wall = self._baselines[key]
        bat, _ = _engine_run(replace(cfg, pair_batch_size=batch))
        assert _campaign_fingerprint(bat) == ref_fp
        assert bat.wall_virtual_s == ref_wall

    def test_growth_peels_off_mid_batch(self, tmp_path):
        cfg = _axis_config(
            "sm_core",
            min_measurements=4,
            max_measurements=6,
            switch_window_factor=0.25,
            window_policy="probe-max",
        )
        ref, ref_csv = _engine_run(cfg, seed=31, outdir=tmp_path / "ref")
        growthy = [p.n_window_growths for p in ref.pairs.values()]
        assert any(g > 0 for g in growthy), "config failed to force growth"
        bat, bat_csv = _engine_run(
            replace(cfg, pair_batch_size=6), seed=31, outdir=tmp_path / "bat"
        )
        assert _campaign_fingerprint(bat) == _campaign_fingerprint(ref)
        assert bat_csv == ref_csv
        assert bat.wall_virtual_s == ref.wall_virtual_s

    def test_thermal_aborts_mid_batch(self, tmp_path):
        """Thermal machines hit the throttle branches (discards and the
        power abort) while other batch members keep measuring."""
        cfg = _axis_config(
            "sm_core", min_measurements=4, max_measurements=8
        )
        machine_kw = dict(
            thermal_enabled=True, ambient_c=45.0, power_limit_w=320.0
        )
        ref, ref_csv = _engine_run(
            cfg, seed=17, outdir=tmp_path / "ref", **machine_kw
        )
        bat, bat_csv = _engine_run(
            replace(cfg, pair_batch_size=5),
            seed=17,
            outdir=tmp_path / "bat",
            **machine_kw,
        )
        assert _campaign_fingerprint(bat) == _campaign_fingerprint(ref)
        assert bat_csv == ref_csv
        assert bat.wall_virtual_s == ref.wall_virtual_s

    def test_batch_matches_multiworker_engine(self, tmp_path):
        """Batched single-process == unbatched multi-process results."""
        cfg = _axis_config("sm_core")
        machine = make_machine("A100", seed=12)
        ref = run_campaign_parallel(machine, cfg, workers=2)
        bat, _ = _engine_run(replace(cfg, pair_batch_size=4), seed=12)
        assert _campaign_fingerprint(bat) == _campaign_fingerprint(ref)
