"""Tests for descriptive statistics (batch + Welford online)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.stats.descriptive import (
    OnlineStats,
    quantile_range,
    summarize,
)

finite_floats = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


class TestSummarize:
    def test_basic_values(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.mean == pytest.approx(2.5)
        assert s.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))
        assert s.minimum == 1.0
        assert s.maximum == 4.0

    def test_single_value_zero_std(self):
        s = summarize([5.0])
        assert s.std == 0.0
        assert s.n == 1

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            summarize([])

    def test_stderr(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.stderr == pytest.approx(s.std / 2.0)

    def test_2d_input_flattened(self):
        s = summarize(np.arange(12.0).reshape(3, 4))
        assert s.n == 12

    def test_scaled(self):
        s = summarize([1.0, 3.0]).scaled(1000.0)
        assert s.mean == pytest.approx(2000.0)
        assert s.minimum == pytest.approx(1000.0)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            summarize([1.0, 2.0]).scaled(0.0)


class TestQuantileRange:
    def test_known_range(self):
        x = np.linspace(0.0, 1.0, 1001)
        assert quantile_range(x, 0.05, 0.95) == pytest.approx(0.9, abs=1e-3)

    def test_invalid_bounds(self):
        with pytest.raises(ConfigError):
            quantile_range([1.0, 2.0], 0.9, 0.1)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            quantile_range([])


class TestOnlineStats:
    def test_empty_snapshot_rejected(self):
        with pytest.raises(ConfigError):
            OnlineStats().snapshot()

    def test_push_sequence(self):
        acc = OnlineStats()
        for x in [1.0, 2.0, 3.0]:
            acc.push(x)
        snap = acc.snapshot()
        assert snap.mean == pytest.approx(2.0)
        assert snap.n == 3

    def test_mean_nan_when_empty(self):
        assert math.isnan(OnlineStats().mean)

    @given(st.lists(finite_floats, min_size=2, max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_welford_matches_batch(self, values):
        acc = OnlineStats()
        for v in values:
            acc.push(v)
        batch = summarize(values)
        assert acc.mean == pytest.approx(batch.mean, rel=1e-9, abs=1e-9)
        assert acc.std == pytest.approx(batch.std, rel=1e-6, abs=1e-6)
        assert acc.snapshot().minimum == batch.minimum
        assert acc.snapshot().maximum == batch.maximum

    @given(
        a=st.lists(finite_floats, min_size=1, max_size=60),
        b=st.lists(finite_floats, min_size=1, max_size=60),
    )
    @settings(max_examples=80, deadline=None)
    def test_merge_equals_concatenation(self, a, b):
        left, right = OnlineStats(), OnlineStats()
        for v in a:
            left.push(v)
        for v in b:
            right.push(v)
        left.merge(right)
        batch = summarize(a + b)
        assert left.mean == pytest.approx(batch.mean, rel=1e-9, abs=1e-9)
        assert left.std == pytest.approx(batch.std, rel=1e-6, abs=1e-6)

    @given(st.lists(finite_floats, min_size=2, max_size=120))
    @settings(max_examples=50, deadline=None)
    def test_push_many_equals_push_loop(self, values):
        bulk, loop = OnlineStats(), OnlineStats()
        bulk.push_many(values)
        for v in values:
            loop.push(v)
        assert bulk.mean == pytest.approx(loop.mean, rel=1e-9, abs=1e-9)
        assert bulk.variance == pytest.approx(loop.variance, rel=1e-6, abs=1e-9)

    def test_merge_empty_is_noop(self):
        acc = OnlineStats()
        acc.push(1.0)
        acc.merge(OnlineStats())
        assert acc.n == 1

    def test_merge_into_empty(self):
        acc = OnlineStats()
        other = OnlineStats()
        other.push(2.0)
        acc.merge(other)
        assert acc.mean == 2.0
