"""Tests for the campaign loop: RSE stopping, window growth, throttling,
skip paths, CSV emission."""

import numpy as np
import pytest

from repro import make_machine, run_campaign
from repro.gpusim.thermal import ThrottleReasons
from tests.conftest import fast_config


class TestCampaignBasics:
    def test_all_pairs_present(self, small_a100_campaign):
        result = small_a100_campaign
        assert len(result.pairs) == 6
        assert result.n_measured_pairs == 6

    def test_min_measurements_honoured(self, small_a100_campaign):
        for pair in small_a100_campaign.iter_measured():
            assert pair.n_measurements >= 14

    def test_max_measurements_honoured(self, small_a100_campaign):
        for pair in small_a100_campaign.iter_measured():
            assert pair.n_measurements <= 20

    def test_latencies_positive_and_sane(self, small_a100_campaign):
        lats = small_a100_campaign.all_latencies_s(without_outliers=False)
        assert (lats > 1e-4).all()
        assert (lats < 1.0).all()

    def test_phase1_attached(self, small_a100_campaign):
        assert small_a100_campaign.phase1 is not None
        assert len(small_a100_campaign.phase1.valid_pairs) == 6

    def test_metadata(self, small_a100_campaign):
        assert small_a100_campaign.gpu_name == "A100 SXM-4"
        assert small_a100_campaign.hostname == "simnode01"
        assert small_a100_campaign.wall_virtual_s > 0

    def test_latency_matrix_shape_and_nan_diagonal(self, small_a100_campaign):
        grid = small_a100_campaign.latency_matrix("max")
        assert grid.shape == (3, 3)
        assert np.isnan(np.diag(grid)).all()
        off_diag = grid[~np.isnan(grid)]
        assert off_diag.size == 6

    def test_matrix_statistics_ordering(self, small_a100_campaign):
        gmin = small_a100_campaign.latency_matrix("min")
        gmean = small_a100_campaign.latency_matrix("mean")
        gmax = small_a100_campaign.latency_matrix("max")
        mask = ~np.isnan(gmin)
        assert (gmin[mask] <= gmean[mask] + 1e-12).all()
        assert (gmean[mask] <= gmax[mask] + 1e-12).all()

    def test_unknown_statistic_rejected(self, small_a100_campaign):
        from repro.errors import MeasurementError

        with pytest.raises(MeasurementError):
            small_a100_campaign.latency_matrix("median")

    def test_ground_truth_tracked(self, small_a100_campaign):
        for pair in small_a100_campaign.iter_measured():
            gt = pair.ground_truths_s(without_outliers=False)
            lat = pair.latencies_s(without_outliers=False)
            valid = ~np.isnan(gt)
            assert valid.any()
            # Measured latency within ~1.5 ms of injected ground truth
            # (detection granularity is ~1 iteration).
            assert np.nanmax(np.abs(lat[valid] - gt[valid])) < 2.5e-3


class TestWindowGrowth:
    def test_pathological_pair_grows_window(self, small_gh200_campaign):
        """GH200's 1875 MHz target band has modes up to 480 ms; the probe
        median sizes the initial window far smaller, so growth must kick
        in for at least one special pair when those modes are drawn."""
        special = [
            p
            for p in small_gh200_campaign.iter_measured()
            if p.target_mhz == 1875.0
        ]
        assert special
        worst = max(p.worst_case_s(False) for p in special)
        # Either a slow mode was captured (needing growth) or the pair
        # drew only fast modes; both are legitimate, but captured slow
        # modes require a grown window.
        for p in special:
            if p.worst_case_s(False) > 0.15:
                assert p.n_window_growths >= 1 or p.measurements[0].window_iterations > 2000
        assert worst > 0.02  # at least some slow-mode evidence


class TestThrottlePaths:
    def _tiny_config(self, **kw):
        return fast_config(
            (705.0, 1410.0), min_measurements=4, max_measurements=6, **kw
        )

    def test_power_throttle_skips_pair(self):
        # 250 W cap: a 1410 MHz lock exceeds the budget (caps near
        # 1100 MHz) while 705 MHz fits, so the pairs stay distinguishable
        # and the power-throttle skip path is reachable.
        machine = make_machine(
            "A100", seed=77, thermal_enabled=True, power_limit_w=250.0
        )
        result = run_campaign(machine, self._tiny_config())
        skipped = {p.key: p.skip_reason for p in result.skipped_pairs}
        assert any(
            reason == "power-throttled" for reason in skipped.values()
        ), skipped

    def test_extreme_power_cap_rejects_all_pairs(self):
        """A 120 W limit caps both requested clocks below their locks:
        every frequency is unreachable and all pairs are skipped."""
        machine = make_machine(
            "A100", seed=77, thermal_enabled=True, power_limit_w=120.0
        )
        result = run_campaign(machine, self._tiny_config())
        assert result.n_measured_pairs == 0
        assert result.skipped_pairs
        assert all(
            p.skip_reason in ("power-throttled", "never-settled")
            for p in result.skipped_pairs
        )

    def test_thermal_throttle_discards_and_backs_off(self, monkeypatch):
        """Unit-stage the thermal path: reasons report SW_THERMAL on a
        later pass; the campaign must drop the newest measurements and
        back off ten (virtual) seconds."""
        from repro.gpusim.device import GpuDevice

        machine = make_machine("A100", seed=78)
        calls = {"n": 0}
        original = GpuDevice.throttle_reasons

        def flaky(self):
            calls["n"] += 1
            reasons = original(self)
            # Trip thermal throttling on a burst of calls mid-campaign
            # (wide window so the every-5-passes check lands inside it).
            if 10 <= calls["n"] < 60:
                reasons |= ThrottleReasons.SW_THERMAL
            return reasons

        monkeypatch.setattr(GpuDevice, "throttle_reasons", flaky)
        t0 = machine.clock.now
        result = run_campaign(
            machine,
            fast_config(
                (705.0, 1410.0), min_measurements=8, max_measurements=10
            ),
        )
        discards = sum(p.n_throttle_discards for p in result.pairs.values())
        assert discards > 0
        # The 10 s backoff is visible in virtual time.
        assert machine.clock.now - t0 > 10.0


class TestOutlierFiltering:
    def test_outliers_removed_from_default_view(self, small_a100_campaign):
        for pair in small_a100_campaign.iter_measured():
            if pair.outliers is None:
                continue
            kept = pair.latencies_s(without_outliers=True)
            raw = pair.latencies_s(without_outliers=False)
            assert kept.size + pair.outliers.outlier_mask.sum() == raw.size

    def test_ground_truth_outliers_mostly_caught(self):
        """Injected driver-noise outliers should be labelled by DBSCAN."""
        machine = make_machine("A100", seed=901)
        config = fast_config(
            (705.0, 1410.0),
            min_measurements=60,
            max_measurements=60,
            rse_check_every=60,
        )
        result = run_campaign(machine, config)
        caught = missed = 0
        for pair in result.iter_measured():
            if pair.outliers is None:
                continue
            labels = pair.outliers.labels
            for i, m in enumerate(pair.measurements):
                if m.ground_truth_outlier:
                    if labels[i] == -1 or m.latency_s < 0.02:
                        caught += 1
                    else:
                        missed += 1
        # Most true outliers are flagged (small ones may hide in-band).
        assert caught >= missed


class TestSkipPaths:
    def test_indistinguishable_pair_skipped(self):
        machine = make_machine("A100", seed=55)
        # Adjacent clocks with a coarse workload and no growth budget.
        config = fast_config(
            (1395.0, 1410.0),
            iteration_duration_s=10e-6,
            max_workload_growth=0,
            min_measurements=4,
            max_measurements=6,
        )
        result = run_campaign(machine, config)
        reasons = {p.skip_reason for p in result.skipped_pairs}
        # Either phase 1 rejected them, or (if distinguishable after all)
        # they were measured; both end states are valid — but when skipped
        # the reason must be the statistical one.
        if result.skipped_pairs:
            assert reasons == {"statistically-indistinguishable"}
