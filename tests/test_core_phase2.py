"""Tests for phase 2: the switch benchmark execution."""

import pytest

from repro.core.context import BenchContext
from repro.core.phase1 import run_phase1
from repro.core.phase2 import (
    build_benchmark_kernel,
    run_switch_benchmark,
    settle_on_frequency,
)
from tests.conftest import fast_config


@pytest.fixture
def bench(a100_machine):
    return BenchContext(a100_machine, fast_config((705.0, 1410.0)))


class TestSettle:
    def test_settles_on_requested_clock(self, bench):
        assert settle_on_frequency(bench, 1410.0)
        assert bench.handle.clock_info_sm_mhz() == 1410.0

    def test_fixed_settle_mode(self, a100_machine):
        cfg = fast_config((705.0, 1410.0), init_settle_s=0.2)
        bench = BenchContext(a100_machine, cfg)
        assert settle_on_frequency(bench, 705.0)


class TestBenchmarkKernel:
    def test_iteration_budget(self, bench):
        base = bench.base_kernel()
        kernel = build_benchmark_kernel(bench, base, 705.0, 1410.0, 1000)
        cfg = bench.config
        assert kernel.n_iterations == (
            cfg.delay_iterations + 1000 + cfg.confirm_iterations
        )

    def test_label_carries_pair(self, bench):
        kernel = build_benchmark_kernel(
            bench, bench.base_kernel(), 705.0, 1410.0, 10
        )
        assert "705" in kernel.label and "1410" in kernel.label


class TestRunSwitchBenchmark:
    def test_raw_data_complete(self, bench):
        phase1 = run_phase1(bench)
        raw = run_switch_benchmark(
            bench, 1410.0, 705.0, phase1.kernel, window_iterations=600
        )
        assert raw.init_mhz == 1410.0
        assert raw.target_mhz == 705.0
        assert raw.timestamps.n_sm == bench.record_sm_count()
        assert raw.ground_truth is not None
        assert raw.ground_truth_latency_s > 0

    def test_ts_acc_in_gpu_timebase(self, bench):
        phase1 = run_phase1(bench)
        raw = run_switch_benchmark(
            bench, 705.0, 1410.0, phase1.kernel, window_iterations=600
        )
        # ts_acc must land inside the kernel's GPU-clock timestamp range.
        assert raw.timestamps.starts.min() < raw.ts_acc < raw.timestamps.ends.max()

    def test_delay_iterations_precede_switch(self, bench):
        phase1 = run_phase1(bench)
        raw = run_switch_benchmark(
            bench, 705.0, 1410.0, phase1.kernel, window_iterations=600
        )
        before = (raw.timestamps.starts[0] < raw.ts_acc).sum()
        # The delay period holds ~delay_iterations iterations (sleep
        # overshoot can add a few).
        assert before >= bench.config.delay_iterations * 0.8

    def test_ground_truth_outlier_flag_propagates(self, bench):
        phase1 = run_phase1(bench)
        raw = run_switch_benchmark(
            bench, 705.0, 1410.0, phase1.kernel, window_iterations=600
        )
        assert raw.ground_truth_outlier == raw.ground_truth.sample.is_outlier
