"""The campaign event stream: ordering contract, sinks, and tiers.

Every execution tier emits the same typed event stream
(:mod:`repro.core.stream`); these tests pin the contract the sinks rely
on.  The headline property (a hypothesis sweep over campaign seeds, on
all three measurement axes): the completion-order ``PairMeasured``
events of the process-pool engine and the warm-pool batch tier,
reordered by flat grid index, are element-identical to the serial
loop's grid-order emission — identity fields against the serial stream
(the serial timeline differs by design), full measurement payloads
between the two pool tiers.
"""

from io import StringIO

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import make_machine, run_campaign
from repro.core.csvio import (
    CsvStreamSink,
    summary_interrupted,
    write_campaign_csvs,
)
from repro.core.results import ResultAccumulator
from repro.core.stream import (
    CampaignFinished,
    CampaignStarted,
    FacetPrepared,
    PairMeasured,
    PairRetried,
    PairSkipped,
    ProgressSink,
    RecordingSink,
    StreamDispatcher,
)
from repro.errors import CampaignInterrupted, MeasurementError
from repro.exec import WarmPool
from repro.exec.engine import run_campaign_parallel
from tests.conftest import fast_config
from tests.test_exec_engine import _campaign_fingerprint, _csv_bytes

_AXES = {
    "sm_core": dict(frequencies=(705.0, 1095.0, 1410.0)),
    "memory": dict(frequencies=(1215.0, 810.0, 405.0), axis="memory"),
    "power": dict(frequencies=(400.0, 330.0, 270.0), axis="power"),
}


def _axis_config(axis, **overrides):
    kw = dict(_AXES[axis])
    freqs = kw.pop("frequencies")
    kw.update(overrides)
    return fast_config(freqs, **kw)


@pytest.fixture(scope="module")
def warm_pool():
    with WarmPool(2) as pool:
        yield pool


def _terminal_events(rec: RecordingSink):
    return rec.of_type(PairMeasured, PairSkipped)


def _identity(event):
    """The grid-position identity of a terminal pair event.

    Identity fields only — the serial loop's shared timeline produces
    different measurement values than the engine's per-pair replicas, so
    cross-tier comparison against the serial stream stops here.
    """
    pair = event.pair
    return (
        event.index,
        isinstance(event, PairSkipped),
        pair.skipped,
        pair.init_mhz,
        pair.target_mhz,
        pair.memory_mhz,
        pair.locked_sm_mhz,
        pair.axis,
    )


def _payload(event):
    """Full measurement payload — engine and warm-pool must agree bit-for-bit."""
    pair = event.pair
    return _identity(event) + (
        event.elapsed_virtual_s,
        getattr(event, "replayed", False),
        tuple(
            (m.latency_s, m.ts_acc, m.te_acc, m.n_valid_sm, m.window_iterations)
            for m in pair.measurements
        ),
    )


class TestCompletionOrderReordering:
    """Pool-tier events, sorted by grid index, reproduce serial order."""

    @pytest.mark.parametrize("axis", sorted(_AXES))
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=2, deadline=None)
    def test_reordered_events_match_serial_grid_order(
        self, axis, warm_pool, seed
    ):
        cfg = _axis_config(axis)
        serial_rec = RecordingSink()
        run_campaign(make_machine("A100", seed=seed), cfg, sinks=(serial_rec,))
        engine_rec = RecordingSink()
        run_campaign_parallel(
            make_machine("A100", seed=seed),
            cfg,
            workers=2,
            sinks=(engine_rec,),
        )
        warm_rec = RecordingSink()
        run_campaign_parallel(
            make_machine("A100", seed=seed),
            _axis_config(axis, pair_batch_size=2),
            pool=warm_pool,
            sinks=(warm_rec,),
        )

        serial_terminal = _terminal_events(serial_rec)
        indices = [event.index for event in serial_terminal]
        # The serial loop emits terminal events in grid order, densely.
        assert indices == list(range(len(indices)))

        engine_sorted = sorted(
            _terminal_events(engine_rec), key=lambda event: event.index
        )
        warm_sorted = sorted(
            _terminal_events(warm_rec), key=lambda event: event.index
        )
        serial_ids = [_identity(event) for event in serial_terminal]
        assert [_identity(event) for event in engine_sorted] == serial_ids
        assert [_identity(event) for event in warm_sorted] == serial_ids
        # The two pool tiers agree on the full measurement payload.
        assert [_payload(event) for event in engine_sorted] == [
            _payload(event) for event in warm_sorted
        ]


class TestOrderingContract:
    @pytest.fixture(scope="class")
    def serial_campaign(self):
        """A two-facet (locked-SM sweep) serial campaign and its stream."""
        rec = RecordingSink()
        cfg = _axis_config("memory", locked_sm_mhz=(1410.0, 1095.0))
        result = run_campaign(make_machine("A100", seed=31), cfg, sinks=(rec,))
        return rec.events, result

    def test_started_first_finished_last_exactly_once(self, serial_campaign):
        events, _ = serial_campaign
        assert isinstance(events[0], CampaignStarted)
        assert isinstance(events[-1], CampaignFinished)
        assert sum(isinstance(e, CampaignStarted) for e in events) == 1
        assert sum(isinstance(e, CampaignFinished) for e in events) == 1

    def test_one_terminal_event_per_grid_index(self, serial_campaign):
        events, _ = serial_campaign
        started = events[0]
        terminal = [
            e for e in events if isinstance(e, (PairMeasured, PairSkipped))
        ]
        expected = len(started.facet_plan) * started.n_pairs
        assert sorted(e.index for e in terminal) == list(range(expected))

    def test_facet_prepared_precedes_its_pair_events(self, serial_campaign):
        events, _ = serial_campaign
        started = events[0]
        prepared_at = {}
        for pos, event in enumerate(events):
            if isinstance(event, FacetPrepared):
                prepared_at[event.facet_index] = pos
        assert set(prepared_at) == set(range(len(started.facet_plan)))
        for pos, event in enumerate(events):
            if isinstance(event, (PairMeasured, PairSkipped)):
                facet_index = event.index // started.n_pairs
                assert prepared_at[facet_index] < pos

    def test_accumulator_rebuilds_identical_result(
        self, serial_campaign, tmp_path
    ):
        events, result = serial_campaign
        acc = ResultAccumulator()
        for event in events:
            acc.on_event(event)
        rebuilt = acc.result()
        assert _campaign_fingerprint(rebuilt) == _campaign_fingerprint(result)
        assert rebuilt.wall_virtual_s == result.wall_virtual_s
        write_campaign_csvs(tmp_path / "direct", result)
        write_campaign_csvs(tmp_path / "rebuilt", rebuilt)
        assert _csv_bytes(tmp_path / "direct") == _csv_bytes(tmp_path / "rebuilt")


class TestDispatcherAndSinks:
    def test_dispatcher_drops_none_and_preserves_order(self):
        log = []

        class Tagged:
            def __init__(self, tag):
                self.tag = tag

            def on_event(self, event):
                log.append((self.tag, event))

        dispatch = StreamDispatcher(Tagged("a"), None, Tagged("b"))
        assert len(dispatch.sinks) == 2
        first, second = CampaignFinished(1.0), CampaignFinished(2.0)
        dispatch.emit_all([first, second])
        assert log == [
            ("a", first), ("b", first), ("a", second), ("b", second)
        ]

    def test_accumulator_requires_complete_stream(self):
        acc = ResultAccumulator()
        with pytest.raises(MeasurementError, match="CampaignStarted"):
            acc.result()

    def test_progress_sink_counts_and_completion_line(self):
        out = StringIO()
        sink = ProgressSink(out=out)
        rec = RecordingSink()
        run_campaign(
            make_machine("A100", seed=5),
            _axis_config("sm_core"),
            sinks=(sink, rec),
        )
        n_pairs = len(rec.of_type(PairMeasured))
        text = out.getvalue()
        assert f"{n_pairs}/{n_pairs} pairs" in text
        assert f"({n_pairs} measured" in text
        assert "done in" in text and text.endswith("virtual s\n")

    def test_progress_sink_reports_retries(self):
        out = StringIO()
        sink = ProgressSink(out=out)
        sink.on_event(PairRetried(indices=(0,), attempt=1, cause="crash"))
        assert "1 retried" in out.getvalue()


class TestCsvStreamSink:
    def test_incremental_files_byte_identical_to_batch_writer(self, tmp_path):
        cfg = _axis_config("sm_core")
        sink = CsvStreamSink(tmp_path / "stream")
        result = run_campaign(make_machine("A100", seed=77), cfg, sinks=(sink,))
        write_campaign_csvs(tmp_path / "batch", result)
        stream_bytes = _csv_bytes(tmp_path / "stream")
        assert stream_bytes == _csv_bytes(tmp_path / "batch")
        assert any(name.startswith("summary_") for name in stream_bytes)

    def test_engine_completion_order_writes_same_bytes(self, tmp_path):
        cfg = _axis_config("memory")
        sink = CsvStreamSink(tmp_path / "stream")
        result = run_campaign_parallel(
            make_machine("A100", seed=77), cfg, workers=2, sinks=(sink,)
        )
        write_campaign_csvs(tmp_path / "batch", result)
        assert _csv_bytes(tmp_path / "stream") == _csv_bytes(tmp_path / "batch")

    def test_interrupted_campaign_writes_marked_partial_summary(self, tmp_path):
        sink = CsvStreamSink(tmp_path / "stream")
        with pytest.raises(CampaignInterrupted):
            run_campaign_parallel(
                make_machine("A100", seed=77),
                _axis_config("sm_core", inject_faults="interrupt@2"),
                workers=1,
                sinks=(sink,),
            )
        names = sorted(p.name for p in (tmp_path / "stream").glob("*.csv"))
        assert len(names) >= 2  # pair CSVs plus the partial summary
        summaries = [n for n in names if n.startswith("summary_")]
        assert len(summaries) == 1
        # The partial summary is explicitly marked: the "# interrupted"
        # footer tells --resume tooling this was a clean interrupt, not
        # a crash mid-summary-write (which leaves no summary at all).
        assert summary_interrupted(tmp_path / "stream" / summaries[0])

    def test_completed_summary_carries_no_interrupt_footer(self, tmp_path):
        sink = CsvStreamSink(tmp_path / "stream")
        run_campaign(
            make_machine("A100", seed=77), _axis_config("sm_core"),
            sinks=(sink,),
        )
        [summary] = (tmp_path / "stream").glob("summary_*.csv")
        assert not summary_interrupted(summary)


class TestResumeReplay:
    def test_replayed_events_flagged_and_precede_live(self, tmp_path):
        journal = tmp_path / "journal"
        cfg = _axis_config("sm_core")
        with pytest.raises(CampaignInterrupted):
            run_campaign_parallel(
                make_machine("A100", seed=4242),
                _axis_config("sm_core", inject_faults="interrupt@2"),
                workers=1,
                journal=journal,
            )
        rec = RecordingSink()
        resumed = run_campaign_parallel(
            make_machine("A100", seed=4242),
            cfg,
            workers=1,
            journal=journal,
            resume=True,
            sinks=(rec,),
        )
        assert rec.events and rec.of_type(CampaignStarted)[0].resumed
        measured = rec.of_type(PairMeasured)
        replay_flags = [event.replayed for event in measured]
        n_replayed = sum(replay_flags)
        assert n_replayed >= 2
        # Every replayed event precedes every live one, in index order.
        assert replay_flags == [True] * n_replayed + [False] * (
            len(measured) - n_replayed
        )
        replayed_indices = [e.index for e in measured if e.replayed]
        assert replayed_indices == sorted(replayed_indices)
        # And the resumed result matches an uninterrupted run.
        golden = run_campaign_parallel(
            make_machine("A100", seed=4242), cfg, workers=1
        )
        assert _campaign_fingerprint(resumed) == _campaign_fingerprint(golden)
        assert resumed.wall_virtual_s == golden.wall_virtual_s
