"""Determinism contract of the campaign execution engine.

``run_campaign(..., workers=N)`` must produce an identical
:class:`CampaignResult` for every worker count — same per-pair
measurements, same outlier labels, same CSV bytes — because each pair job
runs on a blueprint replica with a seed stream derived only from the
campaign seed and the pair's index.
"""

from pathlib import Path

import numpy as np
import pytest

from repro import make_machine, run_campaign
from repro.errors import ConfigError
from repro.exec import CampaignExecutor
from repro.exec.jobs import pair_seed_sequence
from repro.machine import Machine
from repro.simtime.clock import VirtualClock
from repro.simtime.host import HostCpu
from tests.conftest import fast_config


def _campaign_fingerprint(result):
    """Everything measurement-relevant, hashable for equality checks."""
    out = []
    for key in sorted(result.pairs):
        p = result.pairs[key]
        out.append(
            (
                key,
                p.skipped,
                p.skip_reason,
                p.n_failed_attempts,
                p.n_throttle_discards,
                p.n_window_growths,
                tuple(
                    (
                        m.latency_s,
                        m.ts_acc,
                        m.te_acc,
                        m.n_valid_sm,
                        m.window_iterations,
                        m.ground_truth_s,
                        m.ground_truth_outlier,
                    )
                    for m in p.measurements
                ),
                tuple(p.outliers.labels.tolist()) if p.outliers else None,
            )
        )
    return tuple(out)


def _engine_config(**overrides):
    defaults = dict(min_measurements=12, max_measurements=16, rse_check_every=6)
    defaults.update(overrides)
    return fast_config((705.0, 1095.0, 1410.0), **defaults)


def _csv_bytes(directory: Path) -> dict[str, bytes]:
    return {p.name: p.read_bytes() for p in sorted(directory.glob("*.csv"))}


class TestWorkerCountInvariance:
    @pytest.fixture(scope="class")
    def results(self, tmp_path_factory):
        out = {}
        for workers in (1, 2, 4):
            outdir = tmp_path_factory.mktemp(f"csv_w{workers}")
            machine = make_machine("A100", seed=90125)
            cfg = _engine_config(output_dir=str(outdir))
            result = run_campaign(machine, cfg, workers=workers)
            out[workers] = (result, _csv_bytes(outdir), machine)
        return out

    def test_measurements_identical_across_worker_counts(self, results):
        base = _campaign_fingerprint(results[1][0])
        assert _campaign_fingerprint(results[2][0]) == base
        assert _campaign_fingerprint(results[4][0]) == base

    def test_csv_bytes_identical_across_worker_counts(self, results):
        base = results[1][1]
        assert base  # CSVs were actually written
        assert results[2][1] == base
        assert results[4][1] == base

    def test_wall_virtual_identical(self, results):
        walls = {results[w][0].wall_virtual_s for w in (1, 2, 4)}
        assert len(walls) == 1
        assert walls.pop() > 0

    def test_driver_clock_advances(self, results):
        for w in (1, 2, 4):
            assert results[w][2].clock.now > 0

    def test_campaign_is_complete(self, results):
        result = results[1][0]
        assert result.n_measured_pairs == 6
        for pair in result.iter_measured():
            assert pair.n_measurements >= 12


class TestEngineSemantics:
    def test_rerun_same_seed_is_reproducible(self):
        cfg = _engine_config()
        a = run_campaign(make_machine("A100", seed=7), cfg, workers=1)
        b = run_campaign(make_machine("A100", seed=7), cfg, workers=1)
        assert _campaign_fingerprint(a) == _campaign_fingerprint(b)

    def test_different_seeds_differ(self):
        cfg = _engine_config()
        a = run_campaign(make_machine("A100", seed=1), cfg, workers=1)
        b = run_campaign(make_machine("A100", seed=2), cfg, workers=1)
        assert _campaign_fingerprint(a) != _campaign_fingerprint(b)

    def test_legacy_default_unchanged(self):
        """workers=None keeps the shared-timeline serial loop."""
        cfg = _engine_config()
        legacy = run_campaign(make_machine("A100", seed=7), cfg)
        engine = run_campaign(make_machine("A100", seed=7), cfg, workers=1)
        # Same campaign shape either way...
        assert sorted(legacy.pairs) == sorted(engine.pairs)
        assert legacy.n_measured_pairs == engine.n_measured_pairs
        # ...but the engine isolates pair timelines, so the raw timestamp
        # streams are not the legacy ones.
        assert _campaign_fingerprint(legacy) != _campaign_fingerprint(engine)

    def test_skipped_pairs_preserved(self):
        machine = make_machine("A100", seed=55)
        cfg = fast_config(
            (1395.0, 1410.0),
            iteration_duration_s=10e-6,
            max_workload_growth=0,
            min_measurements=4,
            max_measurements=6,
        )
        result = run_campaign(machine, cfg, workers=2)
        if result.skipped_pairs:
            assert {
                p.skip_reason for p in result.skipped_pairs
            } == {"statistically-indistinguishable"}

    def test_handmade_machine_rejected(self):
        clock = VirtualClock()
        machine = Machine(
            clock=clock,
            host=HostCpu(clock, rng=np.random.default_rng(0)),
            devices=make_machine("A100", seed=0).devices,
        )
        with pytest.raises(ConfigError):
            CampaignExecutor(machine, _engine_config(), workers=2)

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ConfigError):
            CampaignExecutor(make_machine("A100", seed=0), _engine_config(), workers=0)


class TestPairSeedStreams:
    def test_streams_depend_on_index_and_device(self):
        bp = make_machine("A100", seed=123).blueprint
        s = {
            pair_seed_sequence(bp, d, i).generate_state(2).tobytes()
            for d in (0, 1)
            for i in range(8)
        }
        assert len(s) == 16  # all distinct

    def test_streams_are_stable(self):
        bp = make_machine("A100", seed=99).blueprint
        a = pair_seed_sequence(bp, 0, 3).generate_state(4)
        b = pair_seed_sequence(bp, 0, 3).generate_state(4)
        np.testing.assert_array_equal(a, b)


class TestBlueprintReplication:
    def test_build_reproduces_int_seeded_machine(self):
        machine = make_machine("A100", seed=42)
        replica = machine.blueprint.build()
        assert replica.host.rng.random() == make_machine("A100", seed=42).host.rng.random()

    def test_build_reproduces_seedsequence_seeded_machine(self):
        """Spawned SeedSequence seeds must survive the blueprint round
        trip (the spawn_key is part of the stream identity)."""
        seq = np.random.SeedSequence(42).spawn(1)[0]
        machine = make_machine("A100", seed=np.random.SeedSequence(42).spawn(1)[0])
        replica = machine.blueprint.build()
        reference = make_machine("A100", seed=seq)
        assert replica.host.rng.random() == reference.host.rng.random()
        assert (
            replica.devices[0].rng.random() == reference.devices[0].rng.random()
        )

    def test_seedsequence_campaigns_worker_invariant(self):
        cfg = fast_config((705.0, 1410.0), min_measurements=4, max_measurements=6)
        a = run_campaign(
            make_machine("A100", seed=np.random.SeedSequence(5).spawn(2)[1]),
            cfg,
            workers=1,
        )
        b = run_campaign(
            make_machine("A100", seed=np.random.SeedSequence(5).spawn(2)[1]),
            cfg,
            workers=2,
        )
        assert _campaign_fingerprint(a) == _campaign_fingerprint(b)


class TestSweepWorkers:
    def test_sweep_models_parallel_identical(self):
        from repro.core.sweep import sweep_models

        cfgs = {
            "A100": fast_config((705.0, 1410.0)),
            "RTX6000": fast_config((750.0, 1650.0)),
        }
        serial = sweep_models(cfgs, seed=31)
        parallel = sweep_models(cfgs, seed=31, workers=2)
        assert serial.keys() == parallel.keys()
        for model in serial:
            assert _campaign_fingerprint(serial[model]) == _campaign_fingerprint(
                parallel[model]
            )

    def test_sweep_devices_parallel_deterministic(self):
        from repro.core.sweep import sweep_devices

        cfg = fast_config((705.0, 1410.0))
        a = sweep_devices(make_machine("A100", n_gpus=2, seed=4), cfg, workers=2)
        b = sweep_devices(make_machine("A100", n_gpus=2, seed=4), cfg, workers=1)
        assert len(a) == len(b) == 2
        for ra, rb in zip(a, b):
            assert _campaign_fingerprint(ra) == _campaign_fingerprint(rb)
