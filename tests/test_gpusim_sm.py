"""Tests for the SM iteration engine, including matrix-vs-reference
equivalence property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.gpusim.sm import (
    integrate_iterations,
    integrate_iterations_reference,
    sample_iteration_cycles,
)
from repro.gpusim.trajectory import FrequencyTrajectory
from repro.simtime.clock import HardwareClock, VirtualClock


def constant_trajectory(freq_mhz: float = 1000.0) -> FrequencyTrajectory:
    return FrequencyTrajectory.from_events(0.0, freq_mhz, [])


def switching_trajectory() -> FrequencyTrajectory:
    # 1000 MHz for 1 ms, ramp step, then 500 MHz.
    return FrequencyTrajectory.from_events(
        0.0, 1000.0, [(1e-3, 750.0), (1.2e-3, 500.0)]
    )


class TestSampling:
    def test_shape(self):
        rng = np.random.default_rng(0)
        c = sample_iteration_cycles(rng, 4, 100, 1e5, 0.002)
        assert c.shape == (4, 100)

    def test_positive(self):
        rng = np.random.default_rng(0)
        c = sample_iteration_cycles(rng, 2, 1000, 1e5, 0.5)
        assert (c > 0).all()

    def test_mean_near_nominal(self):
        rng = np.random.default_rng(0)
        c = sample_iteration_cycles(rng, 8, 5000, 1e5, 0.002)
        assert c.mean() == pytest.approx(1e5, rel=1e-3)

    def test_invalid_shape_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(SimulationError):
            sample_iteration_cycles(rng, 0, 10, 1e5, 0.002)


class TestIntegration:
    def test_constant_frequency_durations(self):
        cycles = np.full((2, 50), 1e5)
        ts = integrate_iterations(
            constant_trajectory(1000.0), np.zeros(2), cycles
        )
        # 1e5 cycles at 1000 MHz = 100 us per iteration.
        np.testing.assert_allclose(ts.durations_true(), 1e-4, rtol=1e-12)

    def test_back_to_back(self):
        cycles = np.full((1, 20), 1e5)
        ts = integrate_iterations(constant_trajectory(), np.zeros(1), cycles)
        np.testing.assert_allclose(
            ts.starts_true[0, 1:], ts.ends_true[0, :-1], rtol=0, atol=0
        )

    def test_stagger_respected(self):
        cycles = np.full((3, 5), 1e5)
        starts = np.array([0.0, 1e-6, 2e-6])
        ts = integrate_iterations(constant_trajectory(), starts, cycles)
        np.testing.assert_allclose(ts.starts_true[:, 0], starts)

    def test_durations_scale_with_frequency(self):
        cycles = np.full((1, 2000), 1e5)
        ts = integrate_iterations(switching_trajectory(), np.zeros(1), cycles)
        d = ts.durations_true()[0]
        assert d[0] == pytest.approx(1e-4, rel=1e-9)       # 1000 MHz
        assert d[-1] == pytest.approx(2e-4, rel=1e-9)      # 500 MHz

    def test_straddling_iteration_exact(self):
        # One iteration spans the boundary at t=1e-3 between 1000 and 500 MHz.
        traj = FrequencyTrajectory.from_events(0.0, 1000.0, [(1e-3, 500.0)])
        # 9 iterations of 1e5 cycles consume 0.9 ms; the 10th starts at
        # 0.9 ms, runs 0.1 ms at 1000 MHz (1e5... only 1e5*0.1e-3*1e9?).
        cycles = np.full((1, 10), 1e5)
        ts = integrate_iterations(traj, np.zeros(1), cycles)
        # Iteration 10 executes 1e-4 s * 1e9 Hz = 1e5 cycles... at 1000 MHz
        # the first 0.1 ms covers 1e5 cycles exactly, so iteration 10 ends
        # exactly at the boundary.
        assert ts.ends_true[0, -1] == pytest.approx(1e-3, rel=1e-12)

    def test_straddling_iteration_partial(self):
        traj = FrequencyTrajectory.from_events(0.0, 1000.0, [(0.95e-3, 500.0)])
        cycles = np.full((1, 10), 1e5)
        ts = integrate_iterations(traj, np.zeros(1), cycles)
        # Iteration 10 starts at 0.9 ms; 0.05 ms at 1000 MHz covers 5e4
        # cycles, the remaining 5e4 at 500 MHz takes 0.1 ms.
        assert ts.ends_true[0, -1] == pytest.approx(0.9e-3 + 0.05e-3 + 0.1e-3)

    def test_completion_is_max_end(self):
        cycles = np.full((3, 4), 1e5)
        starts = np.array([0.0, 5e-6, 1e-6])
        ts = integrate_iterations(constant_trajectory(), starts, cycles)
        assert ts.completion_true == ts.ends_true[:, -1].max()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            integrate_iterations(
                constant_trajectory(), np.zeros(3), np.full((2, 4), 1e5)
            )


class TestDeviceView:
    def test_quantization_applied(self):
        clock = VirtualClock()
        gpu_clock = HardwareClock(clock, offset=10.0, granularity=1e-6)
        cycles = np.full((1, 10), 1e5)
        ts = integrate_iterations(constant_trajectory(), np.zeros(1), cycles)
        view = ts.as_device_view(gpu_clock)
        # All timestamps are (up to float representation) whole microseconds.
        assert np.allclose(np.round(view.starts * 1e6), view.starts * 1e6)
        assert np.allclose(np.round(view.ends * 1e6), view.ends * 1e6)

    def test_diffs_close_to_true_durations(self):
        clock = VirtualClock()
        gpu_clock = HardwareClock(clock, offset=10.0, granularity=1e-6)
        cycles = np.full((2, 100), 1e5)
        ts = integrate_iterations(constant_trajectory(), np.zeros(2), cycles)
        view = ts.as_device_view(gpu_clock)
        np.testing.assert_allclose(
            view.diffs, ts.durations_true(), atol=1.1e-6
        )


@given(
    n_sm=st.integers(1, 4),
    n_iter=st.integers(1, 30),
    seed=st.integers(0, 2**16),
    n_events=st.integers(0, 4),
)
@settings(max_examples=40, deadline=None)
def test_matrix_equals_reference(n_sm, n_iter, seed, n_events):
    """The closed-form vectorized integration must match the scalar
    cycle-accounting reference exactly (same cycles input)."""
    rng = np.random.default_rng(seed)
    events = sorted(
        (float(rng.uniform(1e-5, 3e-3)), float(rng.choice([400.0, 800.0, 1600.0])))
        for _ in range(n_events)
    )
    traj = FrequencyTrajectory.from_events(0.0, 1000.0, events)
    starts = rng.uniform(0.0, 1e-5, size=n_sm)
    cycles = 1e4 * (1.0 + 0.01 * rng.standard_normal((n_sm, n_iter)))
    fast = integrate_iterations(traj, starts, cycles)
    slow = integrate_iterations_reference(traj, starts, cycles)
    np.testing.assert_allclose(fast.ends_true, slow.ends_true, rtol=1e-9)
    np.testing.assert_allclose(fast.starts_true, slow.starts_true, rtol=1e-9)


@given(seed=st.integers(0, 2**16))
@settings(max_examples=30, deadline=None)
def test_total_cycles_conserved(seed):
    """Sum of iteration durations x frequency equals total cycles."""
    rng = np.random.default_rng(seed)
    traj = FrequencyTrajectory.from_events(
        0.0, 1000.0, [(1e-3, 500.0), (2e-3, 1500.0)]
    )
    cycles = 1e4 * (1.0 + 0.01 * rng.standard_normal((2, 200)))
    ts = integrate_iterations(traj, np.zeros(2), cycles)
    for i in range(2):
        executed = 0.0
        for s, e in zip(ts.starts_true[i], ts.ends_true[i]):
            # Integrate frequency over [s, e] piecewise.
            for seg in traj.iter_from(0.0):
                lo, hi = max(s, seg.t_start), min(e, seg.t_end)
                if hi > lo:
                    executed += (hi - lo) * seg.freq_hz
        assert executed == pytest.approx(cycles[i].sum(), rel=1e-9)
