"""Tests for the axis-generic measurement pipeline (:mod:`repro.core.axis`).

Covers the axis registry and config validation, the memory-axis campaign
end to end against the simulator's ``MemoryLatencyProfile`` ground truth,
axis-tagged CSV naming and byte-stable round-trips, engine worker-count
identity on the memory axis, the axis-marked seed streams, and the
**legacy-equivalence regression**: default-axis campaigns are pinned to
the exact CSV bytes and virtual wall clock the pre-axis pipeline
produced (serial, engine×1 and engine×2).
"""

import hashlib
from dataclasses import fields

import numpy as np
import pytest

from repro import LatestConfig, make_machine, run_campaign
from repro.core.axis import (
    AXES,
    MEMORY,
    POWER_CAP,
    SM_CORE,
    axis_by_name,
    axis_stream_id,
)
from repro.core.csvio import (
    pair_csv_name,
    parse_pair_csv_name,
    parse_pair_csv_name_full,
    read_pair_csv,
    write_campaign_csvs,
    write_pair_csv,
)
from repro.errors import ConfigError, MeasurementError
from repro.exec.jobs import pair_seed_sequence
from tests.conftest import fast_config


def memory_axis_config(frequencies=(1215.0, 810.0, 405.0), **over):
    return fast_config(frequencies, axis="memory", **over)


def power_axis_config(frequencies=(400.0, 330.0, 270.0), **over):
    return fast_config(frequencies, axis="power", **over)


# ----------------------------------------------------------------------
# registry + config surface
# ----------------------------------------------------------------------
class TestAxisRegistry:
    def test_known_axes(self):
        assert set(AXES) == {"sm_core", "memory", "power"}
        assert axis_by_name("sm_core") is SM_CORE
        assert axis_by_name("memory") is MEMORY
        assert axis_by_name("power") is POWER_CAP

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigError):
            axis_by_name("pstate")

    def test_stream_ids_stable(self):
        # Registry order is the seed-spawn-key id: append-only contract.
        assert axis_stream_id("sm_core") == 0
        assert axis_stream_id("memory") == 1
        assert axis_stream_id("power") == 2

    def test_csv_prefixes_distinct(self):
        prefixes = [axis.csv_prefix for axis in AXES.values()]
        assert len(set(prefixes)) == len(prefixes)


class TestAxisConfig:
    def test_default_axis(self):
        cfg = fast_config((705.0, 1410.0))
        assert cfg.axis == "sm_core"
        assert cfg.swept_axis() is SM_CORE
        assert cfg.resolved_kernel_intensity() == 0.30

    def test_memory_axis_intensity_default(self):
        cfg = memory_axis_config()
        assert cfg.swept_axis() is MEMORY
        assert cfg.resolved_kernel_intensity() == 0.70

    def test_explicit_intensity_wins(self):
        cfg = memory_axis_config(kernel_memory_intensity=0.5)
        assert cfg.resolved_kernel_intensity() == 0.5

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigError):
            fast_config((705.0, 1410.0), axis="pstate")

    def test_memory_axis_rejects_grid_facets(self):
        with pytest.raises(ConfigError):
            memory_axis_config(memory_frequencies=(1215.0,))

    def test_locked_sm_requires_memory_axis(self):
        with pytest.raises(ConfigError):
            fast_config((705.0, 1410.0), locked_sm_mhz=1410.0)

    def test_locked_sm_must_be_positive(self):
        with pytest.raises(ConfigError):
            memory_axis_config(locked_sm_mhz=-5.0)

    def test_intensity_bounds(self):
        with pytest.raises(ConfigError):
            fast_config((705.0, 1410.0), kernel_memory_intensity=1.0)

    def test_power_axis_config(self):
        cfg = power_axis_config()
        assert cfg.swept_axis() is POWER_CAP
        # The cap acts on the SM clock itself; the legacy compute-bound
        # workload already responds to it.
        assert cfg.resolved_kernel_intensity() == 0.30

    def test_power_axis_rejects_grid_facets(self):
        with pytest.raises(ConfigError):
            power_axis_config(memory_frequencies=(1215.0,))

    def test_power_axis_accepts_locked_sm(self):
        cfg = power_axis_config(locked_sm_mhz=1095.0)
        assert cfg.locked_sm_mhz == 1095.0

    def test_locked_sm_facet_plan(self):
        cfg = memory_axis_config(locked_sm_mhz=(1410.0, 810.0))
        assert cfg.locked_sm_plan() == (1410.0, 810.0)
        assert cfg.facet_plan() == (1410.0, 810.0)
        assert memory_axis_config().facet_plan() == (None,)
        assert memory_axis_config(locked_sm_mhz=1410.0).locked_sm_plan() is None

    def test_locked_sm_tuple_validation(self):
        with pytest.raises(ConfigError):
            memory_axis_config(locked_sm_mhz=())
        with pytest.raises(ConfigError):
            memory_axis_config(locked_sm_mhz=(1410.0, 1410.0))
        with pytest.raises(ConfigError):
            memory_axis_config(locked_sm_mhz=(1410.0, -5.0))

    def test_locked_sm_tuple_requires_facet_axis(self):
        with pytest.raises(ConfigError):
            fast_config((705.0, 1410.0), locked_sm_mhz=(1410.0, 810.0))


# ----------------------------------------------------------------------
# CSV naming + round-trip
# ----------------------------------------------------------------------
class TestAxisCsvNaming:
    def test_memory_axis_prefix(self):
        name = pair_csv_name(1215.0, 810.0, "karolina23", 2, axis="memory")
        assert name == "swlatmem_1215_810_karolina23_gpu2.csv"

    def test_memory_axis_full_parse(self):
        parsed = parse_pair_csv_name_full(
            "swlatmem_1215_810_karolina23_gpu2.csv"
        )
        assert parsed.init_mhz == 1215.0
        assert parsed.target_mhz == 810.0
        assert parsed.memory_mhz is None
        assert parsed.axis == "memory"

    def test_tuple_parser_stays_compatible(self):
        assert parse_pair_csv_name(
            "swlatmem_1215_810_karolina23_gpu2.csv"
        ) == (1215.0, 810.0, None)
        legacy = parse_pair_csv_name_full("swlat_705_1410_h_gpu0.csv")
        assert legacy.axis == "sm_core"
        grid = parse_pair_csv_name_full("swlatm_705_1410_810_h_gpu0.csv")
        assert grid.axis == "sm_core" and grid.memory_mhz == 810.0

    def test_memory_axis_rejects_facet_field(self):
        with pytest.raises(MeasurementError):
            pair_csv_name(1215.0, 810.0, "h", 0, memory_mhz=810.0, axis="memory")

    def test_mem_prefixed_hostname_still_unambiguous(self):
        # "swlatmem_" must never be confused with a swlatm_ file whose
        # memory field ran into an unsanitized hostname.
        parsed = parse_pair_csv_name_full("swlatm_705_1410_810_mem5-node_gpu0.csv")
        assert parsed.axis == "sm_core"
        assert parsed.memory_mhz == 810.0

    def test_power_axis_prefix(self):
        name = pair_csv_name(400.0, 270.0, "karolina23", 2, axis="power")
        assert name == "swlatpow_400_270_karolina23_gpu2.csv"
        parsed = parse_pair_csv_name_full(name)
        assert parsed.axis == "power"
        assert (parsed.init_mhz, parsed.target_mhz) == (400.0, 270.0)
        assert parsed.memory_mhz is None and parsed.locked_sm_mhz is None

    def test_facet_sweep_prefix(self):
        name = pair_csv_name(
            1215.0, 810.0, "h", 0, axis="memory", locked_sm_mhz=1410.0
        )
        assert name == "swlatmemf_1215_810_1410_h_gpu0.csv"
        parsed = parse_pair_csv_name_full(name)
        assert parsed.axis == "memory"
        assert parsed.locked_sm_mhz == 1410.0
        assert parsed.memory_mhz is None

    def test_default_axis_rejects_facet_field(self):
        with pytest.raises(MeasurementError):
            pair_csv_name(705.0, 1410.0, "h", 0, locked_sm_mhz=1410.0)

    def test_power_axis_rejects_memory_field(self):
        with pytest.raises(MeasurementError):
            pair_csv_name(400.0, 270.0, "h", 0, memory_mhz=810.0, axis="power")


# ----------------------------------------------------------------------
# memory-axis campaign vs simulator ground truth
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def memory_campaign():
    machine = make_machine("A100", seed=7)
    return run_campaign(machine, memory_axis_config())


class TestMemoryAxisCampaign:
    def test_all_memory_pairs_measured(self, memory_campaign):
        res = memory_campaign
        assert res.axis == "memory"
        assert res.locked_sm_mhz == 1410.0  # A100 max SM clock by default
        assert len(res.pairs) == 6  # 3 memory clocks, ordered pairs
        for pair in res.pairs.values():
            assert not pair.skipped
            assert pair.axis == "memory"
            assert pair.memory_mhz is None  # facet is the SM clock
            assert pair.n_measurements >= 4

    def test_latencies_in_memory_retraining_range(self, memory_campaign):
        # A100 HBM retraining: ~9 ms base median, scaled by clock
        # distance; everything should sit well above SM relock times
        # and well below a second.
        lats = memory_campaign.all_latencies_s()
        assert lats.min() > 2e-3
        assert lats.max() < 0.5

    def test_medians_track_ground_truth(self, memory_campaign):
        """Filtered medians agree with the injected memory transitions."""
        for pair in memory_campaign.iter_measured():
            measured = float(np.median(pair.latencies_s()))
            truth = float(np.nanmedian(pair.ground_truths_s()))
            assert measured == pytest.approx(truth, rel=0.25), pair.key

    def test_medians_track_arch_profile_scale(self, memory_campaign):
        """Order-of-magnitude agreement with ``MemoryLatencyProfile``."""
        from repro.gpusim.arch_profiles import A100Profile

        base = A100Profile.memory_switch_median_s
        for pair in memory_campaign.iter_measured():
            measured = float(np.median(pair.latencies_s()))
            # distance scaling tops out at 1.6x; adaptation/quantization
            # and tail mass push the measured median above the base draw
            assert 0.5 * base < measured < 5.0 * base

    def test_phase1_separates_memory_clocks(self, memory_campaign):
        chars = memory_campaign.phase1.characterizations
        assert set(chars) == {1215.0, 810.0, 405.0}
        # Iteration time grows monotonically as the memory clock drops
        # (the roofline stall model at the locked SM clock).
        means = [chars[f].stats.mean for f in (1215.0, 810.0, 405.0)]
        assert means[0] < means[1] < means[2]

    def test_locked_sm_override(self):
        machine = make_machine("A100", seed=13)
        res = run_campaign(
            machine,
            memory_axis_config(
                frequencies=(1215.0, 810.0), locked_sm_mhz=1095.0,
                min_measurements=2, max_measurements=4,
            ),
        )
        assert res.locked_sm_mhz == 1095.0
        assert res.n_measured_pairs == 2

    def test_csv_round_trip_byte_stable(self, memory_campaign, tmp_path):
        paths = write_campaign_csvs(tmp_path, memory_campaign)
        pair_paths = [p for p in paths if p.name.startswith("swlatmem_")]
        assert len(pair_paths) == 6
        for path in pair_paths:
            restored = read_pair_csv(path)
            assert restored.axis == "memory"
            rewritten = write_pair_csv(
                tmp_path / "again", restored,
                memory_campaign.hostname, memory_campaign.device_index,
            )
            assert rewritten.name == path.name
            assert rewritten.read_bytes() == path.read_bytes()

    def test_summary_tags_axis(self, memory_campaign, tmp_path):
        write_campaign_csvs(tmp_path, memory_campaign)
        summary = (tmp_path / "summary_simnode01_gpu0.csv").read_text()
        lines = summary.splitlines()
        assert lines[0].startswith("init_mhz,target_mhz,axis,")
        assert ",memory,ok," in lines[1]
        assert lines[-1] == "#locked_sm_mhz,1410"

    def test_report_labels_memory_axis(self, memory_campaign):
        from repro.analysis.report import campaign_report

        report = campaign_report(memory_campaign)
        assert "swept axis: memory clock" in report
        assert "SM clock locked at 1410 MHz" in report

    def test_table2_tags_axis(self, memory_campaign):
        from repro.analysis.render import render_table2
        from repro.analysis.summary import summarize_campaign

        out = render_table2([summarize_campaign(memory_campaign)])
        assert "A100 SXM-4 [memory]" in out


# ----------------------------------------------------------------------
# engine on the memory axis
# ----------------------------------------------------------------------
class TestMemoryAxisEngine:
    @pytest.fixture(scope="class")
    def engine_results(self, tmp_path_factory):
        results = {}
        for workers in (1, 2):
            out = tmp_path_factory.mktemp(f"mem_engine_{workers}")
            machine = make_machine("A100", seed=7)
            cfg = memory_axis_config(
                frequencies=(1215.0, 810.0), output_dir=str(out)
            )
            results[workers] = (run_campaign(machine, cfg, workers=workers), out)
        return results

    @staticmethod
    def _csv_bytes(directory):
        return {
            p.name: p.read_bytes() for p in sorted(directory.iterdir())
        }

    def test_bit_identical_across_worker_counts(self, engine_results):
        r1, d1 = engine_results[1]
        r2, d2 = engine_results[2]
        m1 = {k: [m.latency_s for m in p.measurements] for k, p in r1.pairs.items()}
        m2 = {k: [m.latency_s for m in p.measurements] for k, p in r2.pairs.items()}
        assert m1 == m2
        assert r1.wall_virtual_s == r2.wall_virtual_s
        assert self._csv_bytes(d1) == self._csv_bytes(d2)

    def test_engine_agrees_with_ground_truth(self, engine_results):
        result, _ = engine_results[1]
        assert result.axis == "memory"
        for pair in result.iter_measured():
            measured = float(np.median(pair.latencies_s()))
            truth = float(np.nanmedian(pair.ground_truths_s()))
            assert measured == pytest.approx(truth, rel=0.30), pair.key

    def test_serial_and_engine_same_scale(self, engine_results, memory_campaign):
        """Serial and engine replicas measure the same physical model.

        The engine's per-pair replica machines draw from their own seed
        streams, so results differ numerically from the serial timeline —
        but both must recover the same retraining-latency scale for the
        shared pairs.
        """
        engine_result, _ = engine_results[1]
        for key, pair in engine_result.pairs.items():
            serial_pair = memory_campaign.pairs[key]
            a = float(np.median(pair.latencies_s()))
            b = float(np.median(serial_pair.latencies_s()))
            assert a == pytest.approx(b, rel=0.5), key


# ----------------------------------------------------------------------
# power-axis campaign vs simulator ground truth
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def power_campaign():
    machine = make_machine("A100", seed=7)
    return run_campaign(machine, power_axis_config())


class TestPowerAxisCampaign:
    def test_all_limit_pairs_measured(self, power_campaign):
        res = power_campaign
        assert res.axis == "power"
        assert res.locked_sm_mhz == 1410.0  # A100 max SM clock by default
        assert len(res.pairs) == 6  # 3 limits, ordered pairs
        for pair in res.pairs.values():
            assert not pair.skipped, pair.skip_reason
            assert pair.axis == "power"
            assert pair.memory_mhz is None
            assert pair.n_measurements >= 4

    def test_latencies_in_retarget_range(self, power_campaign):
        # A100 power-controller re-target: ~22 ms base median scaled by
        # limit distance and direction; well above SM relock times, well
        # below a second.
        lats = power_campaign.all_latencies_s()
        assert lats.min() > 5e-3
        assert lats.max() < 0.5

    def test_medians_track_ground_truth(self, power_campaign):
        """Filtered medians agree with the injected limit transitions."""
        for pair in power_campaign.iter_measured():
            measured = float(np.median(pair.latencies_s()))
            truth = float(np.nanmedian(pair.ground_truths_s()))
            assert measured == pytest.approx(truth, rel=0.25), pair.key

    def test_medians_track_arch_profile_scale(self, power_campaign):
        """Order-of-magnitude agreement with ``PowerCapLatencyProfile``."""
        from repro.gpusim.arch_profiles import A100Profile

        base = A100Profile.power_cap_switch_median_s
        for pair in power_campaign.iter_measured():
            measured = float(np.median(pair.latencies_s()))
            assert 0.5 * base < measured < 5.0 * base

    def test_phase1_separates_power_limits(self, power_campaign):
        chars = power_campaign.phase1.characterizations
        assert set(chars) == {400.0, 330.0, 270.0}
        # Iteration time grows monotonically as the limit tightens (the
        # capped-clock roofline at the locked SM clock).
        means = [chars[w].stats.mean for w in (400.0, 330.0, 270.0)]
        assert means[0] < means[1] < means[2]

    def test_power_cap_is_benign_not_skipped(self, power_campaign):
        # Every pair drives the device into SW_POWER_CAP; none may be
        # abandoned by the power-throttle skip rule.
        assert not any(
            p.skip_reason == "power-throttled"
            for p in power_campaign.pairs.values()
        )

    def test_csv_round_trip_byte_stable(self, power_campaign, tmp_path):
        paths = write_campaign_csvs(tmp_path, power_campaign)
        pair_paths = [p for p in paths if p.name.startswith("swlatpow_")]
        assert len(pair_paths) == 6
        for path in pair_paths:
            restored = read_pair_csv(path)
            assert restored.axis == "power"
            rewritten = write_pair_csv(
                tmp_path / "again", restored,
                power_campaign.hostname, power_campaign.device_index,
            )
            assert rewritten.name == path.name
            assert rewritten.read_bytes() == path.read_bytes()

    def test_summary_tags_axis(self, power_campaign, tmp_path):
        write_campaign_csvs(tmp_path, power_campaign)
        summary = (tmp_path / "summary_simnode01_gpu0.csv").read_text()
        lines = summary.splitlines()
        assert lines[0].startswith("init_mhz,target_mhz,axis,")
        assert ",power,ok," in lines[1]
        assert lines[-1] == "#locked_sm_mhz,1410"

    def test_report_labels_power_axis(self, power_campaign):
        from repro.analysis.report import campaign_report

        report = campaign_report(power_campaign)
        assert "swept axis: board power limit" in report
        assert "SM clock locked at 1410 MHz" in report
        assert "400, 330, 270 W" in report


class TestPowerAxisEngine:
    @pytest.fixture(scope="class")
    def engine_results(self, tmp_path_factory):
        results = {}
        for workers in (1, 2):
            out = tmp_path_factory.mktemp(f"pow_engine_{workers}")
            machine = make_machine("A100", seed=7)
            cfg = power_axis_config(
                frequencies=(400.0, 270.0), output_dir=str(out)
            )
            results[workers] = (run_campaign(machine, cfg, workers=workers), out)
        return results

    @staticmethod
    def _csv_bytes(directory):
        return {p.name: p.read_bytes() for p in sorted(directory.iterdir())}

    def test_bit_identical_across_worker_counts(self, engine_results):
        r1, d1 = engine_results[1]
        r2, d2 = engine_results[2]
        m1 = {k: [m.latency_s for m in p.measurements] for k, p in r1.pairs.items()}
        m2 = {k: [m.latency_s for m in p.measurements] for k, p in r2.pairs.items()}
        assert m1 == m2
        assert r1.wall_virtual_s == r2.wall_virtual_s
        assert self._csv_bytes(d1) == self._csv_bytes(d2)

    def test_engine_agrees_with_ground_truth(self, engine_results):
        result, _ = engine_results[1]
        assert result.axis == "power"
        for pair in result.iter_measured():
            measured = float(np.median(pair.latencies_s()))
            truth = float(np.nanmedian(pair.ground_truths_s()))
            assert measured == pytest.approx(truth, rel=0.30), pair.key


# ----------------------------------------------------------------------
# multi-facet sweeps: swept-axis pairs at several locked SM clocks
# ----------------------------------------------------------------------
class TestLockedSmFacetSweep:
    FACETS = (1410.0, 810.0)

    @pytest.fixture(scope="class")
    def facet_results(self, tmp_path_factory):
        results = {}
        for workers in (None, 1, 2):
            out = tmp_path_factory.mktemp(f"facets_{workers}")
            machine = make_machine("A100", seed=11)
            cfg = memory_axis_config(
                frequencies=(1215.0, 810.0),
                locked_sm_mhz=self.FACETS,
                min_measurements=2,
                max_measurements=4,
                output_dir=str(out),
            )
            results[workers] = (run_campaign(machine, cfg, workers=workers), out)
        return results

    def test_one_grid_per_facet(self, facet_results):
        res, _ = facet_results[None]
        assert res.locked_sm_frequencies == self.FACETS
        assert res.locked_sm_mhz is None  # no single campaign-level facet
        assert len(res.pairs) == 4  # 2 memory pairs x 2 facets
        for key, pair in res.pairs.items():
            assert len(key) == 3
            assert pair.locked_sm_mhz == key[2]
            assert pair.memory_mhz is None
            assert pair.axis == "memory"

    def test_facet_shapes_iteration_times(self, facet_results):
        res, _ = facet_results[None]
        # Phase 1 ran once per facet; a lower locked SM clock means
        # slower iterations at every memory clock.
        chars_fast = res.phase1_by_memory[1410.0].characterizations
        chars_slow = res.phase1_by_memory[810.0].characterizations
        for mem in (1215.0, 810.0):
            assert chars_fast[mem].stats.mean < chars_slow[mem].stats.mean

    def test_facet_csv_names_round_trip(self, facet_results):
        res, out = facet_results[None]
        names = sorted(p.name for p in out.iterdir())
        facet_names = [n for n in names if n.startswith("swlatmemf_")]
        assert len(facet_names) == 4
        for name in facet_names:
            parsed = parse_pair_csv_name_full(name)
            assert parsed.axis == "memory"
            assert parsed.locked_sm_mhz in self.FACETS

    def test_summary_has_facet_column(self, facet_results):
        _, out = facet_results[None]
        summary = (out / "summary_simnode01_gpu0.csv").read_text()
        lines = summary.splitlines()
        assert lines[0].startswith("init_mhz,target_mhz,axis,locked_sm_mhz,")
        assert not lines[-1].startswith("#locked_sm_mhz")

    def test_engine_bit_identical_across_worker_counts(self, facet_results):
        r1, d1 = facet_results[1]
        r2, d2 = facet_results[2]
        m1 = {k: [m.latency_s for m in p.measurements] for k, p in r1.pairs.items()}
        m2 = {k: [m.latency_s for m in p.measurements] for k, p in r2.pairs.items()}
        assert m1 == m2
        assert r1.wall_virtual_s == r2.wall_virtual_s
        b1 = {p.name: p.read_bytes() for p in sorted(d1.iterdir())}
        b2 = {p.name: p.read_bytes() for p in sorted(d2.iterdir())}
        assert b1 == b2

    def test_serial_and_engine_same_grid(self, facet_results):
        serial, _ = facet_results[None]
        engine, _ = facet_results[1]
        assert set(serial.pairs) == set(engine.pairs)

    def test_facet_accessors(self, facet_results):
        res, _ = facet_results[None]
        with pytest.raises(MeasurementError):
            res.pair(1215.0, 810.0)  # ambiguous: two facets
        pair = res.pair(1215.0, 810.0, locked_sm_mhz=810.0)
        assert pair.locked_sm_mhz == 810.0
        grid = res.latency_matrix("max", locked_sm_mhz=1410.0)
        assert grid.shape == (2, 2)

    def test_wrong_facet_kind_rejected(self, facet_results):
        from repro.core.results import CampaignResult, PairResult

        # A locked-SM sweep rejects a memory facet argument ...
        res, _ = facet_results[None]
        with pytest.raises(MeasurementError):
            res.pair(1215.0, 810.0, memory_mhz=810.0)
        # ... and a core×memory grid rejects a locked-SM one (it must
        # not be silently dropped in favour of the memory facet).
        grid = CampaignResult(
            gpu_name="x", architecture="Ampere", hostname="h",
            device_index=0, frequencies=(705.0, 1410.0),
            pairs={
                (705.0, 1410.0, 810.0): PairResult(
                    705.0, 1410.0, memory_mhz=810.0
                )
            },
            memory_frequencies=(810.0,),
        )
        with pytest.raises(MeasurementError):
            grid.pair(705.0, 1410.0, locked_sm_mhz=810.0)
        assert grid.pair(705.0, 1410.0).memory_mhz == 810.0

    def test_heatmaps_by_facet(self, facet_results):
        from repro.analysis.heatmap import heatmaps_by_memory

        res, _ = facet_results[None]
        grids = heatmaps_by_memory(res, "max")
        assert set(grids) == set(self.FACETS)
        assert grids[810.0].facet_label == "@ SM 810 MHz"

    def test_power_axis_facet_sweep_runs(self):
        machine = make_machine("A100", seed=5)
        cfg = power_axis_config(
            frequencies=(400.0, 270.0),
            locked_sm_mhz=(1410.0, 1215.0),
            min_measurements=2,
            max_measurements=4,
        )
        res = run_campaign(machine, cfg)
        assert res.locked_sm_frequencies == (1410.0, 1215.0)
        assert len(res.pairs) == 4
        measured = [p for p in res.iter_measured(locked_sm_mhz=1410.0)]
        assert measured  # the unconstrained facet measures fine


class TestAxisSeedStreams:
    def test_memory_axis_stream_differs_from_legacy(self):
        machine = make_machine("A100", seed=0)
        legacy = pair_seed_sequence(machine.blueprint, 0, 3)
        tagged = pair_seed_sequence(machine.blueprint, 0, 3, axis="memory")
        assert legacy.spawn_key != tagged.spawn_key
        assert not np.array_equal(
            legacy.generate_state(4), tagged.generate_state(4)
        )

    def test_default_axis_is_the_legacy_stream(self):
        machine = make_machine("A100", seed=0)
        implicit = pair_seed_sequence(machine.blueprint, 0, 3)
        explicit = pair_seed_sequence(machine.blueprint, 0, 3, axis="sm_core")
        assert implicit.spawn_key == explicit.spawn_key

    def test_memory_axis_and_grid_marker_disjoint(self):
        machine = make_machine("A100", seed=0)
        grid = pair_seed_sequence(machine.blueprint, 0, 3, memory_index=1)
        axis = pair_seed_sequence(machine.blueprint, 0, 3, axis="memory")
        assert grid.spawn_key != axis.spawn_key

    def test_power_axis_stream_distinct(self):
        machine = make_machine("A100", seed=0)
        mem = pair_seed_sequence(machine.blueprint, 0, 3, axis="memory")
        pow_ = pair_seed_sequence(machine.blueprint, 0, 3, axis="power")
        legacy = pair_seed_sequence(machine.blueprint, 0, 3)
        assert len({mem.spawn_key, pow_.spawn_key, legacy.spawn_key}) == 3

    def test_facet_marker_distinct_from_single_facet(self):
        machine = make_machine("A100", seed=0)
        single = pair_seed_sequence(machine.blueprint, 0, 3, axis="memory")
        faceted = pair_seed_sequence(
            machine.blueprint, 0, 3, axis="memory", facet_index=0
        )
        other_facet = pair_seed_sequence(
            machine.blueprint, 0, 3, axis="memory", facet_index=1
        )
        assert single.spawn_key != faceted.spawn_key
        assert faceted.spawn_key != other_facet.spawn_key


# ----------------------------------------------------------------------
# the legacy-equivalence regression (CI-gated: must never be skipped)
# ----------------------------------------------------------------------
def _golden_config(outdir):
    return LatestConfig(
        frequencies=(705.0, 1095.0, 1410.0),
        record_sm_count=4,
        min_measurements=4,
        max_measurements=8,
        rse_check_every=2,
        warmup_kernels=1,
        warmup_kernel_duration_s=0.05,
        measure_kernel_duration_s=0.08,
        delay_iterations=150,
        confirm_iterations=150,
        probe_window_s=0.4,
        settle_chunk_s=0.08,
        output_dir=str(outdir),
    )


def _campaign_digest(directory):
    digest = hashlib.sha256()
    for path in sorted(directory.iterdir()):
        digest.update(path.name.encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


class TestLegacyEquivalence:
    """Default-axis output is pinned to the pre-axis pipeline, byte for byte.

    The golden hashes were captured from the pipeline *before* the axis
    refactor landed (PR 4); any default-axis divergence — CSV bytes or
    virtual wall clock, serial or engine, any worker count — fails here.
    This test is a CI gate: the workflow fails if it is skipped.
    """

    GOLDEN = {
        None: (
            "de68405246615fb6026ac141f096db231c33f27dc430ece2d2c0b0afde1ef824",
            14.965697494749792,
        ),
        1: (
            "bb69b2b0a267cb44d20a4cd8a6fc838726d123d4bb82ed16d0186040c3cfedfe",
            19.595053604329145,
        ),
        2: (
            "bb69b2b0a267cb44d20a4cd8a6fc838726d123d4bb82ed16d0186040c3cfedfe",
            19.595053604329145,
        ),
    }

    #: memory-axis campaigns are pinned the same way; these hashes were
    #: captured from the PR-4 pipeline *before* the power-cap axis and
    #: facet-sweep generalization landed (PR 5)
    GOLDEN_MEMORY = {
        None: (
            "6e2102de7a7fdc56c5ff5d4b1110f884f03c48bf83b58cfd6105d11af2882a56",
            17.507628368017517,
        ),
        1: (
            "00fc5b04e25f59f89a0b1b2ac2dbf0593345a816bdf8f4a4a8dd53e490e5ea5e",
            18.161706628076377,
        ),
        2: (
            "00fc5b04e25f59f89a0b1b2ac2dbf0593345a816bdf8f4a4a8dd53e490e5ea5e",
            18.161706628076377,
        ),
    }

    @pytest.mark.parametrize("workers", [None, 1, 2])
    def test_default_axis_output_pinned(self, workers, tmp_path):
        machine = make_machine("A100", seed=2718)
        result = run_campaign(
            machine, _golden_config(tmp_path), workers=workers
        )
        golden_digest, golden_wall = self.GOLDEN[workers]
        assert _campaign_digest(tmp_path) == golden_digest
        assert result.wall_virtual_s == golden_wall

    @pytest.mark.parametrize("workers", [None, 1, 2])
    def test_memory_axis_output_pinned(self, workers, tmp_path):
        machine = make_machine("A100", seed=2718)
        config = _golden_config(tmp_path)
        config = LatestConfig(
            **{
                **{f.name: getattr(config, f.name) for f in fields(config)},
                "frequencies": (1215.0, 810.0, 405.0),
                "axis": "memory",
            }
        )
        result = run_campaign(machine, config, workers=workers)
        golden_digest, golden_wall = self.GOLDEN_MEMORY[workers]
        assert _campaign_digest(tmp_path) == golden_digest
        assert result.wall_virtual_s == golden_wall
