"""Tests for the axis-generic measurement pipeline (:mod:`repro.core.axis`).

Covers the axis registry and config validation, the memory-axis campaign
end to end against the simulator's ``MemoryLatencyProfile`` ground truth,
axis-tagged CSV naming and byte-stable round-trips, engine worker-count
identity on the memory axis, the axis-marked seed streams, and the
**legacy-equivalence regression**: default-axis campaigns are pinned to
the exact CSV bytes and virtual wall clock the pre-axis pipeline
produced (serial, engine×1 and engine×2).
"""

import hashlib

import numpy as np
import pytest

from repro import LatestConfig, make_machine, run_campaign
from repro.core.axis import (
    AXES,
    MEMORY,
    SM_CORE,
    axis_by_name,
    axis_stream_id,
)
from repro.core.csvio import (
    pair_csv_name,
    parse_pair_csv_name,
    parse_pair_csv_name_full,
    read_pair_csv,
    write_campaign_csvs,
    write_pair_csv,
)
from repro.errors import ConfigError, MeasurementError
from repro.exec.jobs import pair_seed_sequence
from tests.conftest import fast_config


def memory_axis_config(frequencies=(1215.0, 810.0, 405.0), **over):
    return fast_config(frequencies, axis="memory", **over)


# ----------------------------------------------------------------------
# registry + config surface
# ----------------------------------------------------------------------
class TestAxisRegistry:
    def test_known_axes(self):
        assert set(AXES) == {"sm_core", "memory"}
        assert axis_by_name("sm_core") is SM_CORE
        assert axis_by_name("memory") is MEMORY

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigError):
            axis_by_name("pstate")

    def test_stream_ids_stable(self):
        # Registry order is the seed-spawn-key id: append-only contract.
        assert axis_stream_id("sm_core") == 0
        assert axis_stream_id("memory") == 1

    def test_csv_prefixes_distinct(self):
        prefixes = [axis.csv_prefix for axis in AXES.values()]
        assert len(set(prefixes)) == len(prefixes)


class TestAxisConfig:
    def test_default_axis(self):
        cfg = fast_config((705.0, 1410.0))
        assert cfg.axis == "sm_core"
        assert cfg.swept_axis() is SM_CORE
        assert cfg.resolved_kernel_intensity() == 0.30

    def test_memory_axis_intensity_default(self):
        cfg = memory_axis_config()
        assert cfg.swept_axis() is MEMORY
        assert cfg.resolved_kernel_intensity() == 0.70

    def test_explicit_intensity_wins(self):
        cfg = memory_axis_config(kernel_memory_intensity=0.5)
        assert cfg.resolved_kernel_intensity() == 0.5

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigError):
            fast_config((705.0, 1410.0), axis="pstate")

    def test_memory_axis_rejects_grid_facets(self):
        with pytest.raises(ConfigError):
            memory_axis_config(memory_frequencies=(1215.0,))

    def test_locked_sm_requires_memory_axis(self):
        with pytest.raises(ConfigError):
            fast_config((705.0, 1410.0), locked_sm_mhz=1410.0)

    def test_locked_sm_must_be_positive(self):
        with pytest.raises(ConfigError):
            memory_axis_config(locked_sm_mhz=-5.0)

    def test_intensity_bounds(self):
        with pytest.raises(ConfigError):
            fast_config((705.0, 1410.0), kernel_memory_intensity=1.0)


# ----------------------------------------------------------------------
# CSV naming + round-trip
# ----------------------------------------------------------------------
class TestAxisCsvNaming:
    def test_memory_axis_prefix(self):
        name = pair_csv_name(1215.0, 810.0, "karolina23", 2, axis="memory")
        assert name == "swlatmem_1215_810_karolina23_gpu2.csv"

    def test_memory_axis_full_parse(self):
        parsed = parse_pair_csv_name_full(
            "swlatmem_1215_810_karolina23_gpu2.csv"
        )
        assert parsed.init_mhz == 1215.0
        assert parsed.target_mhz == 810.0
        assert parsed.memory_mhz is None
        assert parsed.axis == "memory"

    def test_tuple_parser_stays_compatible(self):
        assert parse_pair_csv_name(
            "swlatmem_1215_810_karolina23_gpu2.csv"
        ) == (1215.0, 810.0, None)
        legacy = parse_pair_csv_name_full("swlat_705_1410_h_gpu0.csv")
        assert legacy.axis == "sm_core"
        grid = parse_pair_csv_name_full("swlatm_705_1410_810_h_gpu0.csv")
        assert grid.axis == "sm_core" and grid.memory_mhz == 810.0

    def test_memory_axis_rejects_facet_field(self):
        with pytest.raises(MeasurementError):
            pair_csv_name(1215.0, 810.0, "h", 0, memory_mhz=810.0, axis="memory")

    def test_mem_prefixed_hostname_still_unambiguous(self):
        # "swlatmem_" must never be confused with a swlatm_ file whose
        # memory field ran into an unsanitized hostname.
        parsed = parse_pair_csv_name_full("swlatm_705_1410_810_mem5-node_gpu0.csv")
        assert parsed.axis == "sm_core"
        assert parsed.memory_mhz == 810.0


# ----------------------------------------------------------------------
# memory-axis campaign vs simulator ground truth
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def memory_campaign():
    machine = make_machine("A100", seed=7)
    return run_campaign(machine, memory_axis_config())


class TestMemoryAxisCampaign:
    def test_all_memory_pairs_measured(self, memory_campaign):
        res = memory_campaign
        assert res.axis == "memory"
        assert res.locked_sm_mhz == 1410.0  # A100 max SM clock by default
        assert len(res.pairs) == 6  # 3 memory clocks, ordered pairs
        for pair in res.pairs.values():
            assert not pair.skipped
            assert pair.axis == "memory"
            assert pair.memory_mhz is None  # facet is the SM clock
            assert pair.n_measurements >= 4

    def test_latencies_in_memory_retraining_range(self, memory_campaign):
        # A100 HBM retraining: ~9 ms base median, scaled by clock
        # distance; everything should sit well above SM relock times
        # and well below a second.
        lats = memory_campaign.all_latencies_s()
        assert lats.min() > 2e-3
        assert lats.max() < 0.5

    def test_medians_track_ground_truth(self, memory_campaign):
        """Filtered medians agree with the injected memory transitions."""
        for pair in memory_campaign.iter_measured():
            measured = float(np.median(pair.latencies_s()))
            truth = float(np.nanmedian(pair.ground_truths_s()))
            assert measured == pytest.approx(truth, rel=0.25), pair.key

    def test_medians_track_arch_profile_scale(self, memory_campaign):
        """Order-of-magnitude agreement with ``MemoryLatencyProfile``."""
        from repro.gpusim.arch_profiles import A100Profile

        base = A100Profile.memory_switch_median_s
        for pair in memory_campaign.iter_measured():
            measured = float(np.median(pair.latencies_s()))
            # distance scaling tops out at 1.6x; adaptation/quantization
            # and tail mass push the measured median above the base draw
            assert 0.5 * base < measured < 5.0 * base

    def test_phase1_separates_memory_clocks(self, memory_campaign):
        chars = memory_campaign.phase1.characterizations
        assert set(chars) == {1215.0, 810.0, 405.0}
        # Iteration time grows monotonically as the memory clock drops
        # (the roofline stall model at the locked SM clock).
        means = [chars[f].stats.mean for f in (1215.0, 810.0, 405.0)]
        assert means[0] < means[1] < means[2]

    def test_locked_sm_override(self):
        machine = make_machine("A100", seed=13)
        res = run_campaign(
            machine,
            memory_axis_config(
                frequencies=(1215.0, 810.0), locked_sm_mhz=1095.0,
                min_measurements=2, max_measurements=4,
            ),
        )
        assert res.locked_sm_mhz == 1095.0
        assert res.n_measured_pairs == 2

    def test_csv_round_trip_byte_stable(self, memory_campaign, tmp_path):
        paths = write_campaign_csvs(tmp_path, memory_campaign)
        pair_paths = [p for p in paths if p.name.startswith("swlatmem_")]
        assert len(pair_paths) == 6
        for path in pair_paths:
            restored = read_pair_csv(path)
            assert restored.axis == "memory"
            rewritten = write_pair_csv(
                tmp_path / "again", restored,
                memory_campaign.hostname, memory_campaign.device_index,
            )
            assert rewritten.name == path.name
            assert rewritten.read_bytes() == path.read_bytes()

    def test_summary_tags_axis(self, memory_campaign, tmp_path):
        write_campaign_csvs(tmp_path, memory_campaign)
        summary = (tmp_path / "summary_simnode01_gpu0.csv").read_text()
        lines = summary.splitlines()
        assert lines[0].startswith("init_mhz,target_mhz,axis,")
        assert ",memory,ok," in lines[1]
        assert lines[-1] == "#locked_sm_mhz,1410"

    def test_report_labels_memory_axis(self, memory_campaign):
        from repro.analysis.report import campaign_report

        report = campaign_report(memory_campaign)
        assert "swept axis: memory clock" in report
        assert "SM clock locked at 1410 MHz" in report

    def test_table2_tags_axis(self, memory_campaign):
        from repro.analysis.render import render_table2
        from repro.analysis.summary import summarize_campaign

        out = render_table2([summarize_campaign(memory_campaign)])
        assert "A100 SXM-4 [memory]" in out


# ----------------------------------------------------------------------
# engine on the memory axis
# ----------------------------------------------------------------------
class TestMemoryAxisEngine:
    @pytest.fixture(scope="class")
    def engine_results(self, tmp_path_factory):
        results = {}
        for workers in (1, 2):
            out = tmp_path_factory.mktemp(f"mem_engine_{workers}")
            machine = make_machine("A100", seed=7)
            cfg = memory_axis_config(
                frequencies=(1215.0, 810.0), output_dir=str(out)
            )
            results[workers] = (run_campaign(machine, cfg, workers=workers), out)
        return results

    @staticmethod
    def _csv_bytes(directory):
        return {
            p.name: p.read_bytes() for p in sorted(directory.iterdir())
        }

    def test_bit_identical_across_worker_counts(self, engine_results):
        r1, d1 = engine_results[1]
        r2, d2 = engine_results[2]
        m1 = {k: [m.latency_s for m in p.measurements] for k, p in r1.pairs.items()}
        m2 = {k: [m.latency_s for m in p.measurements] for k, p in r2.pairs.items()}
        assert m1 == m2
        assert r1.wall_virtual_s == r2.wall_virtual_s
        assert self._csv_bytes(d1) == self._csv_bytes(d2)

    def test_engine_agrees_with_ground_truth(self, engine_results):
        result, _ = engine_results[1]
        assert result.axis == "memory"
        for pair in result.iter_measured():
            measured = float(np.median(pair.latencies_s()))
            truth = float(np.nanmedian(pair.ground_truths_s()))
            assert measured == pytest.approx(truth, rel=0.30), pair.key

    def test_serial_and_engine_same_scale(self, engine_results, memory_campaign):
        """Serial and engine replicas measure the same physical model.

        The engine's per-pair replica machines draw from their own seed
        streams, so results differ numerically from the serial timeline —
        but both must recover the same retraining-latency scale for the
        shared pairs.
        """
        engine_result, _ = engine_results[1]
        for key, pair in engine_result.pairs.items():
            serial_pair = memory_campaign.pairs[key]
            a = float(np.median(pair.latencies_s()))
            b = float(np.median(serial_pair.latencies_s()))
            assert a == pytest.approx(b, rel=0.5), key


class TestAxisSeedStreams:
    def test_memory_axis_stream_differs_from_legacy(self):
        machine = make_machine("A100", seed=0)
        legacy = pair_seed_sequence(machine.blueprint, 0, 3)
        tagged = pair_seed_sequence(machine.blueprint, 0, 3, axis="memory")
        assert legacy.spawn_key != tagged.spawn_key
        assert not np.array_equal(
            legacy.generate_state(4), tagged.generate_state(4)
        )

    def test_default_axis_is_the_legacy_stream(self):
        machine = make_machine("A100", seed=0)
        implicit = pair_seed_sequence(machine.blueprint, 0, 3)
        explicit = pair_seed_sequence(machine.blueprint, 0, 3, axis="sm_core")
        assert implicit.spawn_key == explicit.spawn_key

    def test_memory_axis_and_grid_marker_disjoint(self):
        machine = make_machine("A100", seed=0)
        grid = pair_seed_sequence(machine.blueprint, 0, 3, memory_index=1)
        axis = pair_seed_sequence(machine.blueprint, 0, 3, axis="memory")
        assert grid.spawn_key != axis.spawn_key


# ----------------------------------------------------------------------
# the legacy-equivalence regression (CI-gated: must never be skipped)
# ----------------------------------------------------------------------
def _golden_config(outdir):
    return LatestConfig(
        frequencies=(705.0, 1095.0, 1410.0),
        record_sm_count=4,
        min_measurements=4,
        max_measurements=8,
        rse_check_every=2,
        warmup_kernels=1,
        warmup_kernel_duration_s=0.05,
        measure_kernel_duration_s=0.08,
        delay_iterations=150,
        confirm_iterations=150,
        probe_window_s=0.4,
        settle_chunk_s=0.08,
        output_dir=str(outdir),
    )


def _campaign_digest(directory):
    digest = hashlib.sha256()
    for path in sorted(directory.iterdir()):
        digest.update(path.name.encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


class TestLegacyEquivalence:
    """Default-axis output is pinned to the pre-axis pipeline, byte for byte.

    The golden hashes were captured from the pipeline *before* the axis
    refactor landed (PR 4); any default-axis divergence — CSV bytes or
    virtual wall clock, serial or engine, any worker count — fails here.
    This test is a CI gate: the workflow fails if it is skipped.
    """

    GOLDEN = {
        None: (
            "de68405246615fb6026ac141f096db231c33f27dc430ece2d2c0b0afde1ef824",
            14.965697494749792,
        ),
        1: (
            "bb69b2b0a267cb44d20a4cd8a6fc838726d123d4bb82ed16d0186040c3cfedfe",
            19.595053604329145,
        ),
        2: (
            "bb69b2b0a267cb44d20a4cd8a6fc838726d123d4bb82ed16d0186040c3cfedfe",
            19.595053604329145,
        ),
    }

    @pytest.mark.parametrize("workers", [None, 1, 2])
    def test_default_axis_output_pinned(self, workers, tmp_path):
        machine = make_machine("A100", seed=2718)
        result = run_campaign(
            machine, _golden_config(tmp_path), workers=workers
        )
        golden_digest, golden_wall = self.GOLDEN[workers]
        assert _campaign_digest(tmp_path) == golden_digest
        assert result.wall_virtual_s == golden_wall
