"""Tests for the IEEE-1588-style timer synchronization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.machine import make_machine
from repro.timesync.ptp import PtpLink, synchronize_timers


class TestSyncAccuracy:
    def test_offset_recovered_within_microseconds(self, a100_machine):
        device = a100_machine.device()
        sync = synchronize_timers(a100_machine.host, device)
        true_offset = device.gpu_clock.convert(
            a100_machine.clock.now
        ) - a100_machine.host.os_clock.convert(a100_machine.clock.now)
        assert sync.offset == pytest.approx(true_offset, abs=5e-6)

    def test_cpu_to_acc_conversion(self, a100_machine):
        device = a100_machine.device()
        host = a100_machine.host
        sync = synchronize_timers(host, device)
        t_cpu = host.clock_gettime()
        t_acc = sync.cpu_to_acc(t_cpu)
        expected = device.gpu_clock.convert(host.os_clock.invert(t_cpu))
        assert t_acc == pytest.approx(expected, abs=5e-6)

    def test_roundtrip_conversion(self, a100_machine):
        sync = synchronize_timers(a100_machine.host, a100_machine.device())
        t = 123.456
        assert sync.acc_to_cpu(sync.cpu_to_acc(t)) == pytest.approx(t)

    def test_more_rounds_never_worse_delay(self, a100_machine):
        host, device = a100_machine.host, a100_machine.device()
        few = synchronize_timers(host, device, rounds=2)
        many = synchronize_timers(host, device, rounds=32)
        # Min-filtering over more rounds can only find smaller delays
        # (statistically; allow generous slack for the stochastic draw).
        assert many.path_delay <= few.path_delay * 3

    def test_rounds_validated(self, a100_machine):
        with pytest.raises(SimulationError):
            synchronize_timers(a100_machine.host, a100_machine.device(), rounds=0)

    def test_asymmetry_biases_offset(self):
        # Known PTP limitation: path asymmetry shifts the offset by
        # (d_up - d_down) / 2 and is undetectable from the exchange.
        machine = make_machine("A100", seed=55)
        device = machine.device()
        # Base delay larger than the asymmetry so neither direction clamps.
        link = PtpLink(
            base_delay_s=30e-6,
            asymmetry_s=20e-6,
            jitter_scale_s=1e-8,
            spike_prob=0.0,
        )
        sync = synchronize_timers(machine.host, device, rounds=8, link=link)
        true_offset = device.gpu_clock.convert(
            machine.clock.now
        ) - machine.host.os_clock.convert(machine.clock.now)
        assert sync.offset - true_offset == pytest.approx(20e-6, abs=5e-6)

    def test_spikes_filtered_by_min_delay(self):
        machine = make_machine("A100", seed=56)
        link = PtpLink(spike_prob=0.5, spike_scale_s=1e-3)
        sync = synchronize_timers(machine.host, machine.device(), rounds=24, link=link)
        # The kept round should not include a millisecond spike.
        assert sync.path_delay < 100e-6


class TestSyncResult:
    def test_delay_spread_reported(self, a100_machine):
        sync = synchronize_timers(a100_machine.host, a100_machine.device())
        assert sync.delay_spread >= 0.0
        assert sync.rounds == 16


@given(seed=st.integers(0, 1000))
@settings(max_examples=15, deadline=None)
def test_offset_error_bounded_by_asymmetry_plus_jitter(seed):
    """Property: |estimated - true offset| <= asymmetry + jitter envelope."""
    machine = make_machine("A100", seed=seed)
    device = machine.device()
    link = PtpLink(
        base_delay_s=2e-6, jitter_scale_s=0.5e-6, asymmetry_s=3e-6, spike_prob=0.0
    )
    sync = synchronize_timers(machine.host, device, rounds=12, link=link)
    true_offset = device.gpu_clock.convert(
        machine.clock.now
    ) - machine.host.os_clock.convert(machine.clock.now)
    # asymmetry bias (3 us) + quantization (1 us) + jitter allowance.
    assert abs(sync.offset - true_offset) < 3e-6 + 1e-6 + 4e-6
