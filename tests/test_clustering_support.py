"""Tests for k-dist diagnostics, silhouette score, and adaptive DBSCAN."""

import numpy as np
import pytest

from repro.clustering.adaptive import (
    AdaptiveDbscanConfig,
    adaptive_dbscan,
)
from repro.clustering.kdist import kdist_curve, knee_point, mean_kdist_ratio
from repro.clustering.silhouette import silhouette_samples, silhouette_score
from repro.errors import ConfigError


class TestKdist:
    def test_curve_sorted_ascending(self):
        rng = np.random.default_rng(0)
        curve = kdist_curve(rng.normal(0, 1, 50), k=4)
        assert (np.diff(curve) >= 0).all()

    def test_uniform_spacing_kdist(self):
        x = np.arange(10.0)
        curve = kdist_curve(x, k=1)
        assert curve[0] == pytest.approx(1.0)

    def test_needs_more_than_k(self):
        with pytest.raises(ConfigError):
            kdist_curve([1.0, 2.0], k=3)

    def test_knee_of_hockey_stick(self):
        flat = np.full(50, 1.0)
        steep = 1.0 + np.arange(10) * 5.0
        idx, value = knee_point(np.concatenate([flat, steep]))
        assert 40 <= idx <= 55

    def test_knee_needs_three_points(self):
        with pytest.raises(ConfigError):
            knee_point([1.0, 2.0])

    def test_knee_flat_curve(self):
        # Degenerate flat curve: every point sits on the chord, so the
        # max-distance construction falls back to the first point.
        idx, value = knee_point(np.full(10, 3.5))
        assert idx == 0
        assert value == 3.5

    def test_knee_three_point_minimum(self):
        idx, value = knee_point([0.0, 1.0, 1.0])
        assert idx == 1
        assert value == 1.0

    def test_knee_linear_curve_no_spurious_interior(self):
        # A perfectly linear curve has zero chord distance everywhere;
        # argmax ties resolve to index 0 rather than a random interior.
        idx, _ = knee_point(np.linspace(0.0, 9.0, 10))
        assert idx == 0

    def test_knee_zero_chord_identical_endpoints(self):
        # Endpoints equal but interior varies: chord is horizontal, the
        # knee is the farthest interior point.
        idx, value = knee_point([1.0, 5.0, 1.0])
        assert idx == 1
        assert value == 5.0

    def test_mean_kdist_ratio_small_for_clustered_data(self):
        """The paper's observation: for min_pts in the 2-4 % range the
        mean k-NN distance stays below ~20 % of the 5-95 quantile range."""
        rng = np.random.default_rng(1)
        data = np.concatenate(
            [rng.normal(10.0, 0.3, 180), rng.normal(50.0, 0.5, 20)]
        )
        k = max(4, int(0.03 * len(data)))
        assert mean_kdist_ratio(data, k) < 0.20


class TestSilhouette:
    def test_perfect_separation_near_one(self):
        x = np.concatenate([np.full(10, 0.0), np.full(10, 100.0)])
        labels = np.array([0] * 10 + [1] * 10)
        assert silhouette_score(x, labels) > 0.99

    def test_overlapping_clusters_low(self):
        rng = np.random.default_rng(0)
        x = np.concatenate([rng.normal(0, 1, 40), rng.normal(0.5, 1, 40)])
        labels = np.array([0] * 40 + [1] * 40)
        assert silhouette_score(x, labels) < 0.4

    def test_range_bounds(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0, 1, 30)
        labels = rng.integers(0, 2, 30)
        s = silhouette_samples(x, labels)
        assert (s >= -1.0).all() and (s <= 1.0).all()

    def test_noise_excluded(self):
        x = np.array([0.0, 0.1, 0.2, 100.0, 100.1, 100.2, 5000.0])
        labels = np.array([0, 0, 0, 1, 1, 1, -1])
        assert silhouette_score(x, labels) > 0.99

    def test_single_cluster_rejected(self):
        with pytest.raises(ConfigError):
            silhouette_score([1.0, 2.0], [0, 0])

    def test_singleton_cluster_scores_zero(self):
        x = np.array([0.0, 0.1, 0.2, 50.0])
        labels = np.array([0, 0, 0, 1])
        s = silhouette_samples(x, labels)
        assert s[-1] == 0.0


class TestAdaptiveDbscan:
    def test_clean_unimodal_no_outliers(self):
        rng = np.random.default_rng(0)
        data = rng.normal(10.0, 0.5, 300)
        res = adaptive_dbscan(data)
        assert res.converged
        assert res.n_clusters == 1
        assert res.outlier_ratio <= 0.10

    def test_injected_outliers_flagged(self):
        rng = np.random.default_rng(1)
        data = np.concatenate(
            [rng.normal(10.0, 0.3, 280), [50.0, 60.0, 70.0, 80.0]]
        )
        res = adaptive_dbscan(data)
        flagged = set(np.flatnonzero(res.outlier_mask))
        assert {280, 281, 282, 283} <= flagged
        assert res.outlier_ratio < 0.10

    def test_multi_cluster_preserved(self):
        rng = np.random.default_rng(2)
        data = np.concatenate(
            [rng.normal(6.0, 0.2, 200), rng.normal(200.0, 4.0, 60)]
        )
        res = adaptive_dbscan(data)
        assert res.n_clusters == 2

    def test_minpts_schedule_descends_4_to_2_percent(self):
        cfg = AdaptiveDbscanConfig()
        schedule = cfg.minpts_schedule(400)
        assert schedule[0] == 16
        assert schedule[-1] >= 8
        assert all(a - b == 2 for a, b in zip(schedule, schedule[1:]))

    def test_minpts_floor_respected(self):
        cfg = AdaptiveDbscanConfig()
        assert min(cfg.minpts_schedule(50)) >= cfg.minpts_floor

    def test_degenerate_constant_data(self):
        res = adaptive_dbscan(np.full(50, 5.0))
        assert res.converged
        assert res.n_clusters == 1
        assert not res.outlier_mask.any()

    def test_too_few_samples_rejected(self):
        with pytest.raises(ConfigError):
            adaptive_dbscan([1.0, 2.0, 3.0])

    def test_attempt_trace_recorded(self):
        rng = np.random.default_rng(3)
        res = adaptive_dbscan(rng.normal(5.0, 1.0, 200))
        assert len(res.attempts) >= 1
        assert all(mp >= 4 for mp, _ in res.attempts)

    def test_eps_from_quantile_range(self):
        rng = np.random.default_rng(4)
        data = rng.normal(0.0, 1.0, 300)
        cfg = AdaptiveDbscanConfig(eps_multiplier=0.15)
        res = adaptive_dbscan(data, cfg)
        from repro.stats.descriptive import quantile_range

        assert res.eps == pytest.approx(0.15 * quantile_range(data))

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            AdaptiveDbscanConfig(eps_multiplier=-1.0)
        with pytest.raises(ConfigError):
            AdaptiveDbscanConfig(minpts_lo_frac=0.1, minpts_hi_frac=0.05)
