"""Tests for the switching-latency mixture model and profiles."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.gpusim.arch_profiles import (
    A100Profile,
    GH200Profile,
    RtxQuadro6000Profile,
    profile_for,
)
from repro.gpusim.latency_model import (
    ModeSpec,
    PairLatencyModel,
    pair_rng,
)


class TestModeSpec:
    def test_invalid_median_rejected(self):
        with pytest.raises(ConfigError):
            ModeSpec(median_s=-1.0, sigma_log=0.1, weight=1.0)

    def test_invalid_weight_rejected(self):
        with pytest.raises(ConfigError):
            ModeSpec(median_s=1.0, sigma_log=0.1, weight=-0.5)


class TestPairLatencyModel:
    def test_needs_modes(self):
        with pytest.raises(ConfigError):
            PairLatencyModel(modes=())

    def test_weights_normalized(self):
        model = PairLatencyModel(
            modes=(
                ModeSpec(1e-3, 0.01, 3.0),
                ModeSpec(2e-3, 0.01, 1.0),
            )
        )
        np.testing.assert_allclose(model.weights, [0.75, 0.25])

    def test_samples_positive(self):
        rng = np.random.default_rng(0)
        model = PairLatencyModel(
            modes=(ModeSpec(5e-3, 0.05, 1.0),), tail_scale_s=1e-3
        )
        samples = [model.sample(rng) for _ in range(200)]
        assert all(s.total_s > 0 for s in samples)

    def test_primary_mode_gets_tail(self):
        rng = np.random.default_rng(0)
        with_tail = PairLatencyModel(
            modes=(ModeSpec(5e-3, 0.0001, 1.0),), tail_scale_s=3e-3
        )
        without = PairLatencyModel(
            modes=(ModeSpec(5e-3, 0.0001, 1.0),), tail_scale_s=0.0
        )
        a = np.mean([with_tail.sample(rng).total_s for _ in range(500)])
        b = np.mean([without.sample(rng).total_s for _ in range(500)])
        assert a > b + 2e-3

    def test_outlier_flagged_and_large(self):
        rng = np.random.default_rng(1)
        model = PairLatencyModel(
            modes=(ModeSpec(5e-3, 0.01, 1.0),),
            outlier_prob=1.0,
            outlier_floor_s=0.05,
            outlier_scale_s=0.05,
        )
        s = model.sample(rng)
        assert s.is_outlier
        assert s.total_s > 0.05

    def test_mixture_hits_all_modes(self):
        rng = np.random.default_rng(2)
        model = PairLatencyModel(
            modes=(
                ModeSpec(5e-3, 0.01, 0.5),
                ModeSpec(50e-3, 0.01, 0.25),
                ModeSpec(200e-3, 0.01, 0.25),
            )
        )
        seen = {model.sample(rng).mode_index for _ in range(300)}
        assert seen == {0, 1, 2}

    def test_adaptation_bounded(self):
        rng = np.random.default_rng(3)
        model = PairLatencyModel(modes=(ModeSpec(0.4, 0.01, 1.0),))
        s = model.sample(rng)
        adaptation = s.adaptation_s(rng, cap_s=0.03)
        assert 0.0 < adaptation <= 0.03
        assert adaptation < s.total_s


class TestPairRng:
    def test_deterministic_across_calls(self):
        a = pair_rng("X", 0, 705.0, 1410.0).random(4)
        b = pair_rng("X", 0, 705.0, 1410.0).random(4)
        np.testing.assert_array_equal(a, b)

    def test_sensitive_to_pair(self):
        a = pair_rng("X", 0, 705.0, 1410.0).random(4)
        b = pair_rng("X", 0, 1410.0, 705.0).random(4)
        assert not np.array_equal(a, b)

    def test_sensitive_to_unit(self):
        a = pair_rng("X", 0, 705.0, 1410.0).random(4)
        b = pair_rng("X", 1, 705.0, 1410.0).random(4)
        assert not np.array_equal(a, b)


class TestProfiles:
    @pytest.mark.parametrize(
        "arch, cls",
        [
            ("Turing", RtxQuadro6000Profile),
            ("Ampere", A100Profile),
            ("Hopper", GH200Profile),
        ],
    )
    def test_profile_for(self, arch, cls):
        assert isinstance(profile_for(arch), cls)

    def test_profile_for_unknown(self):
        with pytest.raises(KeyError):
            profile_for("Volta")

    def test_pair_model_stable_per_unit(self):
        profile = A100Profile()
        a = profile.pair_model(705.0, 1410.0, unit_seed=0)
        b = profile.pair_model(705.0, 1410.0, unit_seed=0)
        assert a.modes[0].median_s == b.modes[0].median_s

    def test_unit_seed_perturbs_base(self):
        profile = A100Profile()
        bases = {
            profile.pair_model(705.0, 1410.0, unit_seed=u).modes[0].median_s
            for u in range(6)
        }
        assert len(bases) > 1

    def test_a100_base_in_expected_range(self):
        profile = A100Profile()
        for init, target in [(705.0, 1410.0), (1410.0, 705.0), (1095.0, 840.0)]:
            base = profile.pair_model(init, target, 0).modes[0].median_s
            assert 3.5e-3 < base < 6.5e-3

    def test_gh200_special_target_has_slow_modes(self):
        profile = GH200Profile()
        slow_found = False
        for init in (705.0, 975.0, 1095.0, 1350.0):
            model = profile.pair_model(init, 1875.0, 0)
            if any(m.median_s > 0.03 for m in model.modes[1:]):
                slow_found = True
        assert slow_found

    def test_gh200_normal_target_single_mode(self):
        profile = GH200Profile()
        model = profile.pair_model(705.0, 1980.0, 0)
        assert len(model.modes) == 1

    def test_rtx_mid_band_plateau(self):
        profile = RtxQuadro6000Profile()
        model = profile.pair_model(750.0, 1350.0, 0)
        assert model.modes[0].median_s == pytest.approx(0.136, abs=0.01)

    def test_rtx_990_plateau(self):
        profile = RtxQuadro6000Profile()
        model = profile.pair_model(1350.0, 990.0, 0)
        assert model.modes[0].median_s == pytest.approx(0.237, abs=0.01)

    def test_rtx_fast_neighbour_pair(self):
        profile = RtxQuadro6000Profile()
        model = profile.pair_model(1650.0, 1560.0, 0)
        assert model.modes[0].median_s < 0.01


class TestSwitchingLatencyModel:
    def test_pair_model_cached(self, a100_machine):
        device = a100_machine.device()
        m1 = device.latency_model.pair_model(705.0, 1410.0)
        m2 = device.latency_model.pair_model(705.0, 1410.0)
        assert m1 is m2

    def test_bus_delay_positive(self, a100_machine):
        model = a100_machine.device().latency_model
        assert all(model.sample_bus_delay() > 0 for _ in range(50))

    def test_wakeup_positive(self, a100_machine):
        model = a100_machine.device().latency_model
        samples = [model.sample_wakeup() for _ in range(50)]
        assert all(s > 0.01 for s in samples)
