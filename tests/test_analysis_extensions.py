"""Tests for the analysis extensions: advisor, validation, report,
and the device energy meter."""

import pytest

from repro.analysis.advisor import RuntimeAdvisor
from repro.analysis.report import campaign_report, write_campaign_report
from repro.analysis.validation import score_recovery
from repro.errors import MeasurementError
from repro.machine import make_machine


class TestRuntimeAdvisor:
    @pytest.fixture
    def advisor(self, small_gh200_campaign):
        return RuntimeAdvisor(small_gh200_campaign, avoid_factor=4.0)

    def test_median_positive(self, advisor):
        assert advisor.median_worst_case_s > 0

    def test_pair_advice_fields(self, advisor, small_gh200_campaign):
        pair = next(small_gh200_campaign.iter_measured())
        advice = advisor.pair_advice(*pair.key)
        assert advice.worst_case_s >= advice.typical_s
        assert advice.min_residency_s == pytest.approx(
            3.0 * advice.worst_case_s
        )

    def test_unknown_pair_rejected(self, advisor):
        with pytest.raises(MeasurementError):
            advisor.pair_advice(345.0, 360.0)

    def test_pathological_target_flagged(self, advisor):
        """The GH200 campaign includes the 1875 MHz special band; when its
        column is slow enough it must be flagged."""
        targets = {t.target_mhz: t for t in advisor.target_advice()}
        assert 1875.0 in targets
        # Either flagged pathological or among the slowest columns (the
        # 705 column can compete via the unstable 1410 MHz initial row).
        special = targets[1875.0]
        ranked = sorted(
            targets.values(), key=lambda t: -t.median_worst_case_s
        )
        assert special.pathological or special in ranked[:2]

    def test_min_residency_table_complete(self, advisor, small_gh200_campaign):
        table = advisor.min_residency_table()
        assert len(table) == small_gh200_campaign.n_measured_pairs

    def test_classify_region_short_stays(self, advisor, small_gh200_campaign):
        pair = next(small_gh200_campaign.iter_measured())
        assert advisor.classify_region(*pair.key, region_s=1e-6) == "stay"

    def test_classify_region_long_switches(self, advisor):
        # A long region on a non-avoided pair must switch.
        for advice in advisor.all_advice():
            if not advice.avoid:
                decision = advisor.classify_region(*advice.key, region_s=1e3)
                assert decision == "switch"
                break

    def test_empty_campaign_rejected(self, small_a100_campaign):
        import copy

        empty = copy.copy(small_a100_campaign)
        empty = type(small_a100_campaign)(
            gpu_name="x",
            architecture="y",
            hostname="h",
            device_index=0,
            frequencies=(705.0, 1410.0),
            pairs={},
        )
        with pytest.raises(MeasurementError):
            RuntimeAdvisor(empty)


class TestRecoveryScoring:
    def test_scores_small_campaign(self, small_a100_campaign):
        report = score_recovery(small_a100_campaign)
        assert len(report.pairs) == small_a100_campaign.n_measured_pairs
        # Detection granularity: small positive-ish bias, bounded error.
        assert abs(report.overall_bias_s) < 2e-3
        assert report.overall_median_rel_error < 0.20
        assert report.worst_abs_error_s < 5e-3

    def test_outlier_scores_in_range(self, small_a100_campaign):
        report = score_recovery(small_a100_campaign)
        assert 0.0 <= report.outlier_precision <= 1.0
        assert 0.0 <= report.outlier_recall <= 1.0

    def test_summary_lines(self, small_a100_campaign):
        lines = score_recovery(small_a100_campaign).summary_lines()
        assert any("bias" in line for line in lines)
        assert any("outlier filter" in line for line in lines)


class TestCampaignReport:
    def test_report_sections_present(self, small_gh200_campaign):
        text = campaign_report(small_gh200_campaign)
        for heading in (
            "# Switching-latency campaign report",
            "## Summary (Table II format)",
            "## Heatmaps (Fig. 3 format)",
            "## Direction split",
            "## Runtime-design advice",
            "## Ground-truth recovery",
        ):
            assert heading in text, heading

    def test_report_contains_frequencies(self, small_gh200_campaign):
        text = campaign_report(small_gh200_campaign)
        for f in small_gh200_campaign.frequencies:
            assert f"{f:g}" in text

    def test_write_report(self, small_a100_campaign, tmp_path):
        path = write_campaign_report(
            small_a100_campaign, tmp_path / "report.md"
        )
        assert path.exists()
        assert path.read_text().startswith("# Switching-latency")


class TestEnergyMeter:
    def test_idle_energy_is_idle_power(self):
        machine = make_machine("A100", seed=5)
        device = machine.device()
        machine.host.sleep(10.0)
        energy = device.total_energy_j()
        expected = device.spec.idle_power_watts * 10.0
        assert energy == pytest.approx(expected, rel=0.05)

    def test_busy_energy_exceeds_idle(self):
        from repro.cuda.kernel import MicrobenchmarkKernel

        machine = make_machine("A100", seed=6)
        device = machine.device()
        ctx = machine.cuda_context()
        nvml_handle = machine.nvml().device_get_handle_by_index(0)
        nvml_handle.set_gpu_locked_clocks(1410.0, 1410.0)
        kernel = MicrobenchmarkKernel.sized_for(
            device.spec, total_duration_s=1.0, sm_count=1
        )
        ctx.run(kernel)
        elapsed = machine.clock.now
        energy = nvml_handle.total_energy_consumption_j()
        avg_power = energy / elapsed
        assert avg_power > device.spec.idle_power_watts * 1.5

    def test_energy_monotonic(self):
        machine = make_machine("A100", seed=7)
        device = machine.device()
        readings = []
        for _ in range(5):
            machine.host.sleep(0.5)
            readings.append(device.total_energy_j())
        assert all(b > a for a, b in zip(readings, readings[1:]))

    def test_lower_clock_cheaper(self):
        from repro.cuda.kernel import MicrobenchmarkKernel

        energies = {}
        for freq in (705.0, 1410.0):
            machine = make_machine("A100", seed=8)
            device = machine.device()
            ctx = machine.cuda_context()
            handle = machine.nvml().device_get_handle_by_index(0)
            handle.set_gpu_locked_clocks(freq, freq)
            kernel = MicrobenchmarkKernel.sized_for(
                device.spec, total_duration_s=2.0, sm_count=1
            )
            ctx.run(kernel)
            # Energy per unit busy time (the kernel runs longer at the
            # lower clock, so compare average power).
            energies[freq] = device.total_energy_j() / machine.clock.now
        assert energies[705.0] < energies[1410.0]

    def test_meter_rejects_backwards_time(self):
        from repro.errors import SimulationError

        machine = make_machine("A100", seed=9)
        device = machine.device()
        device.energy.integrate_to(5.0)
        with pytest.raises(SimulationError):
            device.energy.integrate_to(1.0)
