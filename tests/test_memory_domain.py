"""Tests for the core×memory frequency domain (2-D campaigns).

Covers the memory-clock ladder on :class:`GpuSpec`, the always-powered
memory :class:`DvfsClockDomain`, the roofline stall coupling between
memory clock and kernel iteration time, energy/thermal awareness, and the
campaign/engine grid semantics — including the legacy-equivalence
guarantee (``memory_frequencies`` unset touches nothing) and engine
bit-identity across worker counts.
"""

import numpy as np
import pytest

from repro import make_machine, run_campaign
from repro.analysis.heatmap import heatmaps_by_memory
from repro.analysis.summary import summarize_by_memory
from repro.core.sweep import sweep_models
from repro.errors import ConfigError, MeasurementError
from repro.gpusim.sm import memory_stall_factor, merge_memory_segments
from repro.gpusim.spec import A100_SXM4, GH200, RTX_QUADRO_6000
from tests.conftest import fast_config


def mem_config(frequencies=(705.0, 1410.0), memory=(1215.0, 810.0), **over):
    return fast_config(frequencies, memory_frequencies=memory, **over)


class TestSpecLadder:
    def test_every_model_has_memory_ladder(self):
        for spec in (A100_SXM4, GH200, RTX_QUADRO_6000):
            ladder = spec.supported_memory_clocks_mhz
            assert spec.memory_frequency_mhz in ladder
            assert list(ladder) == sorted(ladder, reverse=True)
            assert len(ladder) >= 2  # a 2-D campaign is possible everywhere

    def test_nearest_and_validate(self):
        assert A100_SXM4.nearest_supported_memory_clock(800.0) == 810.0
        assert A100_SXM4.validate_memory_clock(1215.0) == 1215.0
        with pytest.raises(ConfigError):
            A100_SXM4.validate_memory_clock(999.0)


class TestStallModel:
    def test_reference_clock_exactly_one(self):
        stall = memory_stall_factor(1215.0, 1215.0, 0.3)
        assert float(stall) == 1.0  # pinned, not just approximately 1

    def test_downclock_slows_by_roofline(self):
        stall = float(memory_stall_factor(810.0, 1215.0, 0.3))
        assert stall == pytest.approx(0.7 + 0.3 * 1215.0 / 810.0)
        assert stall > 1.0

    def test_zero_intensity_inert(self):
        assert float(memory_stall_factor(810.0, 1215.0, 0.0)) == 1.0

    def test_merge_constant_memory_scales_frequencies(self):
        tb = np.array([0.0, 1.0, np.inf])
        f = np.array([1000.0, 500.0])
        mem_tb = np.array([0.0, np.inf])
        mem_f = np.array([810.0])
        out_tb, out_f = merge_memory_segments(tb, f, mem_tb, mem_f, 0.3, 1215.0)
        stall = 0.7 + 0.3 * 1215.0 / 810.0
        np.testing.assert_allclose(out_f, f / stall)
        np.testing.assert_array_equal(out_tb, tb)

    def test_merge_mid_kernel_memory_transition(self):
        tb = np.array([0.0, np.inf])
        f = np.array([1000.0])
        mem_tb = np.array([0.0, 2.0, np.inf])
        mem_f = np.array([1215.0, 810.0])
        out_tb, out_f = merge_memory_segments(tb, f, mem_tb, mem_f, 0.5, 1215.0)
        assert out_tb.tolist() == [0.0, 2.0, np.inf]
        assert out_f[0] == 1000.0  # reference clock: exactly untouched
        assert out_f[1] == pytest.approx(1000.0 / (0.5 + 0.5 * 1215.0 / 810.0))


class TestDeviceMemoryDomain:
    def test_boots_at_reference(self, a100_machine):
        device = a100_machine.device(0)
        assert device.current_memory_clock_mhz() == 1215.0
        assert device._memory_static

    def test_locked_memory_clock_transitions(self, a100_machine):
        device = a100_machine.device(0)
        record = device.set_memory_locked_clocks(810.0)
        assert record is not None  # always powered: transitions immediately
        assert record.ground_truth_latency_s > 0.0
        assert not device._memory_static
        a100_machine.clock.advance(record.ground_truth_latency_s + 0.1)
        assert device.current_memory_clock_mhz() == 810.0

    def test_unsupported_memory_clock_rejected(self, a100_machine):
        with pytest.raises(ConfigError):
            a100_machine.device(0).set_memory_locked_clocks(999.0)

    def test_reset_returns_to_reference(self, a100_machine):
        device = a100_machine.device(0)
        device.set_memory_locked_clocks(810.0)
        a100_machine.clock.advance(1.0)
        record = device.reset_memory_locked_clocks()
        a100_machine.clock.advance(record.ground_truth_latency_s + 0.1)
        assert device.current_memory_clock_mhz() == 1215.0

    def test_memory_transition_slower_than_sm(self, a100_machine):
        device = a100_machine.device(0)
        # Wake the device so the SM domain transitions under load too.
        from repro.cuda.kernel import MicrobenchmarkKernel
        ctx = a100_machine.cuda_context()
        kernel = MicrobenchmarkKernel(
            n_iterations=2000, cycles_per_iteration=50000.0,
            sm_count=1, aggregate=True,
        )
        ctx.launch(kernel)
        sm_rec = device.set_locked_clocks(705.0)
        mem_rec = device.set_memory_locked_clocks(810.0)
        ctx.synchronize()
        assert mem_rec.sample.total_s > sm_rec.sample.total_s

    def test_nvml_surface(self, a100_machine):
        handle = a100_machine.nvml().device_get_handle_by_index(0)
        assert handle.clock_info_mem_mhz() == 1215.0
        rec = handle.set_memory_locked_clocks(810.0, 810.0)
        assert rec is not None
        handle.reset_memory_locked_clocks()

    def test_power_responds_to_memory_downclock(self, a100_machine):
        device = a100_machine.device(0)
        device.thermal.enabled = True
        p_ref = device.thermal.power_watts(1095.0, 1.0)
        p_low = device.thermal.power_watts(1095.0, 1.0, mem_freq_mhz=810.0)
        p_same = device.thermal.power_watts(1095.0, 1.0, mem_freq_mhz=1215.0)
        assert p_low < p_ref
        assert p_same == p_ref  # reference memory clock: bit-identical

    def test_checkpoint_restores_memory_domain(self, a100_machine):
        device = a100_machine.device(0)
        cp = a100_machine.checkpoint()
        device.set_memory_locked_clocks(810.0)
        a100_machine.clock.advance(1.0)
        assert device.current_memory_clock_mhz() == 810.0
        a100_machine.restore(cp)
        assert device.current_memory_clock_mhz() == 1215.0
        assert device._memory_static


class TestGridCampaign:
    @pytest.fixture(scope="class")
    def grid_result(self):
        machine = make_machine("A100", seed=11)
        return run_campaign(machine, mem_config())

    def test_one_pair_grid_per_memory_clock(self, grid_result):
        assert grid_result.memory_frequencies == (1215.0, 810.0)
        keys = set(grid_result.pairs.keys())
        assert keys == {
            (705.0, 1410.0, 1215.0),
            (1410.0, 705.0, 1215.0),
            (705.0, 1410.0, 810.0),
            (1410.0, 705.0, 810.0),
        }
        for pair in grid_result.pairs.values():
            assert pair.memory_mhz in (1215.0, 810.0)

    def test_pair_accessor_needs_memory(self, grid_result):
        with pytest.raises(MeasurementError):
            grid_result.pair(705.0, 1410.0)  # ambiguous facet
        pair = grid_result.pair(705.0, 1410.0, memory_mhz=810.0)
        assert pair.memory_mhz == 810.0

    def test_latency_matrix_facets(self, grid_result):
        with pytest.raises(MeasurementError):
            grid_result.latency_matrix()  # ambiguous facet
        for mem in (1215.0, 810.0):
            grid = grid_result.latency_matrix(memory_mhz=mem)
            assert np.isfinite(grid).sum() == 2

    def test_faceted_heatmaps(self, grid_result):
        grids = heatmaps_by_memory(grid_result, "max")
        assert list(grids.keys()) == [1215.0, 810.0]
        for mem, grid in grids.items():
            assert grid.memory_mhz == mem
            assert np.isfinite(grid.values_ms).sum() == 2

    def test_report_renders_every_facet(self, grid_result):
        from repro.analysis.report import campaign_report

        report = campaign_report(grid_result)
        assert "@ mem 1215 MHz" in report
        assert "@ mem 810 MHz" in report

    def test_compare_matches_facet_to_facet(self, grid_result):
        from repro.analysis.compare import compare_campaigns

        other = run_campaign(make_machine("A100", seed=12), mem_config())
        comparison = compare_campaigns(grid_result, other)
        # every (init, target, memory) grid point compares against its own
        # facet — not collapsed onto one memory clock
        assert len(comparison.pairs) == 4

    def test_per_memory_summaries(self, grid_result):
        rows = summarize_by_memory(grid_result)
        assert set(rows.keys()) == {1215.0, 810.0}
        for row in rows.values():
            assert row.n_pairs == 2

    def test_phase1_characterized_per_memory_clock(self, grid_result):
        by_mem = grid_result.phase1_by_memory
        assert set(by_mem.keys()) == {1215.0, 810.0}
        # Memory-bandwidth coupling: iteration time grows at the lower
        # memory clock by the roofline stall factor.
        for freq in (705.0, 1410.0):
            t_ref = by_mem[1215.0].characterizations[freq].stats.mean
            t_low = by_mem[810.0].characterizations[freq].stats.mean
            stall = 0.7 + 0.3 * 1215.0 / 810.0
            assert t_low / t_ref == pytest.approx(stall, rel=0.01)

    def test_csv_names_carry_memory(self, tmp_path):
        machine = make_machine("A100", seed=12)
        cfg = mem_config(output_dir=str(tmp_path / "out"))
        run_campaign(machine, cfg)
        names = {p.name for p in (tmp_path / "out").glob("swlatm_*.csv")}
        assert any("_1215_" in n for n in names)
        assert any("_810_" in n for n in names)

    def test_legacy_result_shape_unchanged(self):
        machine = make_machine("A100", seed=11)
        result = run_campaign(machine, fast_config((705.0, 1410.0)))
        assert result.memory_frequencies is None
        assert set(result.pairs.keys()) == {(705.0, 1410.0), (1410.0, 705.0)}
        assert result.phase1_by_memory is None
        # legacy accessors work without a memory coordinate
        result.pair(705.0, 1410.0)
        result.latency_matrix()


class TestGridEngine:
    def test_bit_identical_across_worker_counts(self):
        cfg = mem_config()
        r1 = run_campaign(make_machine("A100", seed=21), cfg, workers=1)
        r2 = run_campaign(make_machine("A100", seed=21), cfg, workers=2)
        assert r1.pairs.keys() == r2.pairs.keys()
        for key in r1.pairs:
            a, b = r1.pairs[key], r2.pairs[key]
            assert [m.latency_s for m in a.measurements] == [
                m.latency_s for m in b.measurements
            ]
        assert r1.wall_virtual_s == r2.wall_virtual_s

    def test_engine_grid_matches_facet_structure(self):
        cfg = mem_config()
        result = run_campaign(make_machine("A100", seed=22), cfg, workers=1)
        assert result.memory_frequencies == (1215.0, 810.0)
        assert len(result.pairs) == 4
        assert set(summarize_by_memory(result)) == {1215.0, 810.0}


class TestSweepMemorySubsets:
    def test_per_model_memory_subsets(self):
        configs = {
            "A100": fast_config((705.0, 1410.0)),
            "RTX6000": fast_config((750.0, 1650.0)),
        }
        results = sweep_models(
            configs,
            seed=5,
            memory_subsets={"A100": (1215.0, 810.0)},
        )
        assert results["A100"].memory_frequencies == (1215.0, 810.0)
        assert results["RTX6000"].memory_frequencies is None

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigError):
            sweep_models(
                {"A100": fast_config((705.0, 1410.0))},
                memory_subsets={"GH200": (2619.0,)},
            )
