"""Phase 3: per-SM evaluation of the switching latency (Algorithm 2, 9-24).

For every SM independently, scanning only iterations that started after the
(converted) frequency-change timestamp ``t_s``:

1. find the first iteration whose execution time falls inside the target
   frequency's acceptance band — mean +/- two standard deviations from
   phase 1 (Sec. V-A);
2. recompute mean/std over the *remaining* iterations of that SM and test
   them against the phase-1 target statistics (difference CI including
   zero, or mean difference within tolerance) — this rejects detections
   that landed inside the band while the clock was merely passing through
   during the adaptation period;
3. on success the SM's latency is ``t_e - t_s`` with ``t_e`` the end
   timestamp of the detected iteration.

The pair's switching latency is the **maximum** over all valid SMs; if no
SM is viable, phases two and three are repeated by the campaign loop.

The confirmation step runs as array-wide Welch CI math over all candidate
SMs at once (suffix statistics from shared cumulative-sum buffers, critical
values from the rounded-dof cache in :mod:`repro.stats.intervals`); the
original one-SampleStats-per-SM loop is retained as
:func:`evaluate_switch_reference` for equivalence testing, mirroring the
vectorized/reference split of :mod:`repro.gpusim.sm`.

The FTaLaT-style confidence-interval criterion is retained behind
``detection_criterion="confidence-interval"`` for the Sec. V-A ablation:
with millions of samples its band collapses below the device timer
granularity and detection starves.
"""

from __future__ import annotations

import enum
import math
import threading
from dataclasses import dataclass

import numpy as np

from repro.core.config import LatestConfig
from repro.core.phase2 import RawSwitchData
from repro.errors import ConfigError
from repro.stats.descriptive import SampleStats
from repro.stats.intervals import (
    difference_ci,
    difference_ci_batch,
    difference_ci_rows,
    two_sigma_band,
)

__all__ = [
    "SmStatus",
    "SwitchEvaluation",
    "evaluate_switch",
    "evaluate_switch_block_deferred",
    "evaluate_switch_group_deferred",
    "evaluate_switch_reference",
    "detection_band",
]


#: reusable block-sized scratch buffers, one per (thread, kind) — pass
#: blocks allocate multi-megabyte temporaries every few dozen passes, and
#: without reuse each round-trips through mmap.  Buffers are grown (never
#: shrunk) and handed out as leading-axis views; nothing returned to
#: callers aliases them (evaluations copy what they keep).  Storage is
#: thread-local: the service's worker fleet evaluates pair jobs on
#: concurrent threads, and a shared buffer would let one thread overwrite
#: another's in-flight temporaries.
_SCRATCH = threading.local()


def block_scratch(kind: str, shape: tuple, dtype=np.float64) -> np.ndarray:
    cache: "dict[str, np.ndarray] | None" = getattr(_SCRATCH, "buffers", None)
    if cache is None:
        cache = _SCRATCH.buffers = {}
    size = math.prod(shape)
    buf = cache.get(kind)
    if buf is None or buf.size < size or buf.dtype != np.dtype(dtype):
        buf = np.empty(max(size, 1), dtype=dtype)
        cache[kind] = buf
    return buf[:size].reshape(shape)


class SmStatus(enum.IntEnum):
    """Per-SM evaluation outcome."""

    OK = 0
    NO_DETECTION = 1       # no post-switch iteration entered the band
    SHORT_TAIL = 2         # detection too close to the kernel end
    CONFIRMATION_FAILED = 3  # tail statistics do not match the target
    NO_POST_SWITCH = 4     # kernel ended before the switch call


@dataclass
class SwitchEvaluation:
    """Result of evaluating one phase-2 measurement."""

    latency_s: float | None
    te_acc: float | None
    per_sm_latency_s: np.ndarray
    sm_status: np.ndarray
    detection_indices: np.ndarray
    reason: str

    @property
    def ok(self) -> bool:
        return self.latency_s is not None

    @property
    def n_valid_sm(self) -> int:
        return int((self.sm_status == SmStatus.OK).sum())

    @property
    def window_too_short(self) -> bool:
        """True when growing the switch window is the right remedy."""
        bad = np.isin(
            self.sm_status,
            (SmStatus.NO_DETECTION, SmStatus.SHORT_TAIL, SmStatus.NO_POST_SWITCH),
        )
        return bool(bad.all())


def detection_band(
    target_stats: SampleStats, cfg: LatestConfig
) -> tuple[float, float]:
    """Acceptance band for "this iteration runs at the target frequency"."""
    if cfg.detection_criterion == "two-sigma":
        return two_sigma_band(target_stats, cfg.detection_sigmas)
    if cfg.detection_criterion == "confidence-interval":
        # FTaLaT's criterion: mean +/- 2 standard *errors*.  Shrinks to
        # nothing as n grows — kept for the Sec. V-A ablation.
        half = cfg.detection_sigmas * target_stats.stderr
        return target_stats.mean - half, target_stats.mean + half
    raise ConfigError(f"unknown detection criterion {cfg.detection_criterion!r}")


def _suffix_stats(diffs: np.ndarray, cut: np.ndarray, rows=None):
    """Per-row mean/std/count of ``diffs[i, cut[i]:]`` without Python loops.

    ``rows`` optionally restricts the computation to a row subset.  All
    array work happens on the sub-matrix from the earliest cut onward —
    the delay/detection prefix of the kernel (never part of any
    confirmation tail) pays for nothing here.  Within the sub-matrix the
    tail sums are totals minus gathered prefix cumulative sums, with the
    squares buffer shared between the totals and the cumulative sums.
    """
    if rows is None:
        rows = np.arange(diffs.shape[0])
    n_iter = diffs.shape[1]
    cut = np.clip(cut, 0, n_iter)
    n_tail = (n_iter - cut).astype(np.int64)
    safe_n = np.maximum(n_tail, 1)
    n_rows = len(rows)
    if n_rows == 0:
        zero = np.zeros(0)
        return zero, zero.copy(), n_tail

    c0 = int(cut.min())
    if c0 >= n_iter:  # every tail empty
        zero = np.zeros(n_rows)
        return zero, zero.copy(), n_tail

    tail_width = n_iter - c0
    sub = block_scratch("suffix_sub", (n_rows, tail_width))
    np.take(diffs[:, c0:], rows, axis=0, out=sub)
    local_cut = cut - c0
    sq = block_scratch("suffix_sq", (n_rows, tail_width))
    np.multiply(sub, sub, out=sq)
    totals = sub.sum(axis=1)
    sq_totals = sq.sum(axis=1)

    # Prefix sums are only gathered at cut-1, so the cumulative buffers
    # stop at the largest cut — the confirmation tail (often most of the
    # window) never pays for them.
    n_prefix = int(local_cut.max())
    gather = np.maximum(local_cut - 1, 0)[:, None]
    if n_prefix:
        csum = np.cumsum(sub[:, :n_prefix], axis=1)
        csq = np.cumsum(sq[:, :n_prefix], axis=1)
        before = np.where(
            local_cut > 0,
            np.take_along_axis(csum, gather, axis=1).ravel(),
            0.0,
        )
        before_sq = np.where(
            local_cut > 0,
            np.take_along_axis(csq, gather, axis=1).ravel(),
            0.0,
        )
    else:
        before = np.zeros(n_rows)
        before_sq = np.zeros(n_rows)

    tail_sum = totals - before
    tail_sq = sq_totals - before_sq
    mean = tail_sum / safe_n
    var = np.maximum(tail_sq - safe_n * mean * mean, 0.0) / np.maximum(
        safe_n - 1, 1
    )
    return mean, np.sqrt(var), n_tail


def _detect(raw: RawSwitchData, target_stats: SampleStats, cfg: LatestConfig):
    """Shared detection stage: masks, first-detection indices, statuses."""
    starts = raw.timestamps.starts
    ends = raw.timestamps.ends
    diffs = ends - starts
    n_sm, n_iter = diffs.shape
    ts = raw.ts_acc

    lo, hi = detection_band(target_stats, cfg)

    after = starts > ts
    candidate = after & (diffs >= lo) & (diffs <= hi)

    status = np.full(n_sm, int(SmStatus.NO_DETECTION), dtype=np.int64)
    has_post = after.any(axis=1)
    status[~has_post] = int(SmStatus.NO_POST_SWITCH)

    detected = candidate.any(axis=1)
    first = np.where(detected, np.argmax(candidate, axis=1), n_iter)
    return diffs, ends, ts, status, has_post, detected, first


def _finish(
    n_sm: int,
    n_iter: int,
    ends: np.ndarray,
    ts: float,
    status: np.ndarray,
    has_post: np.ndarray,
    detected: np.ndarray,
    short: np.ndarray,
    first: np.ndarray,
    valid: np.ndarray,
) -> SwitchEvaluation:
    """Shared epilogue: per-SM latencies and the overall outcome."""
    status[valid] = int(SmStatus.OK)

    per_sm = np.full(n_sm, np.nan)
    rows = np.flatnonzero(valid)
    if rows.size:
        # Point-indexed gather: valid only ever holds detected rows, whose
        # first-index is in range.  (A take_along_axis over the full ends
        # matrix broke whenever only a strict subset of SMs confirmed.)
        te = ends[rows, first[rows]]
        per_sm[rows] = te - ts
        latency = float(np.nanmax(per_sm))
        te_overall = float(ts + latency)
        reason = "ok"
    else:
        latency = None
        te_overall = None
        if not has_post.any():
            reason = "no-post-switch-iterations"
        elif not detected.any():
            reason = "no-detection"
        elif (detected & ~short).any():
            reason = "confirmation-failed"
        else:
            reason = "short-tail"

    return SwitchEvaluation(
        latency_s=latency,
        te_acc=te_overall,
        per_sm_latency_s=per_sm,
        sm_status=status,
        detection_indices=np.where(first < n_iter, first, -1),
        reason=reason,
    )


def evaluate_switch(
    raw: RawSwitchData,
    target_stats: SampleStats,
    cfg: LatestConfig,
) -> SwitchEvaluation:
    """Run the phase-3 evaluation over all recorded SMs (vectorized)."""
    diffs, ends, ts, status, has_post, detected, first = _detect(
        raw, target_stats, cfg
    )
    n_sm, n_iter = diffs.shape

    # Tail statistics start after the detected iteration; tail length is
    # known without computing any statistics.
    cut = first + 1
    n_tail = (n_iter - np.clip(cut, 0, n_iter)).astype(np.int64)

    short = detected & (n_tail < cfg.min_confirm_tail)
    status[detected] = int(SmStatus.CONFIRMATION_FAILED)
    status[short] = int(SmStatus.SHORT_TAIL)

    # Confirmation: difference CI of (tail - target) includes zero, or the
    # mean difference is inside the relative tolerance (Algorithm 2 l. 20),
    # evaluated for every candidate SM at once.  Only candidate rows pay
    # for suffix statistics.
    confirm_rows = np.flatnonzero(detected & ~short)
    valid = np.zeros(n_sm, dtype=bool)
    if confirm_rows.size:
        tail_mean, tail_std, tail_n = _suffix_stats(
            diffs, cut[confirm_rows], rows=confirm_rows
        )
        # Variance via std*std (not the raw variance) to match the scalar
        # reference path, which round-trips through SampleStats.
        lb, hb = difference_ci_batch(
            tail_mean, tail_std * tail_std, tail_n, target_stats, cfg.confidence
        )
        tol = cfg.tolerance_rel * target_stats.mean
        ok = ((lb < 0.0) & (0.0 < hb)) | (
            np.abs(tail_mean - target_stats.mean) < tol
        )
        valid[confirm_rows[ok]] = True

    return _finish(
        n_sm, n_iter, ends, ts, status, has_post, detected, short, first, valid
    )


#: detection scans run in column chunks of this many iterations with an
#: early exit once every (pass, SM) row found its first in-band iteration
_DETECT_CHUNK = 512


def evaluate_switch_block_deferred(
    start0: np.ndarray,
    ends: np.ndarray,
    ts_acc: "list[float]",
    target_stats: SampleStats,
    cfg: LatestConfig,
) -> list[SwitchEvaluation]:
    """Block evaluation straight from converted end boundaries.

    With back-to-back iterations every start except the first per SM *is*
    the previous end, so the post-switch mask and the execution-time
    matrix are built by shifting ``ends`` — the same subtractions and
    comparisons, on the same floats, as materializing a full starts
    matrix first.  ``start0`` is the converted iteration-0 start per
    (pass, SM); ``ends`` is ``(n_pass, n_sm, n_iter)``.

    Detection is a prefix scan for the *first* in-band post-switch
    iteration per row, so it runs over column chunks and stops as soon as
    every row has found one — typically a few hundred columns into a
    multi-thousand-column kernel.  The chunked scan visits candidates in
    the same order as a whole-matrix ``argmax``, so the detection indices
    are identical; only never-detected rows (failed passes) pay for the
    full sweep.
    """
    n_pass, n_sm, n_iter = ends.shape
    ts = np.asarray(ts_acc)
    ts3 = ts[:, None, None]

    diffs = block_scratch("diffs", ends.shape)
    np.subtract(ends[:, :, 0], start0, out=diffs[:, :, 0])
    np.subtract(ends[:, :, 1:], ends[:, :, :-1], out=diffs[:, :, 1:])

    # Converted starts are non-decreasing along a row, so the post-switch
    # mask is a per-row suffix: "any post-switch iteration" is exactly
    # "the last iteration starts post-switch".
    if n_iter > 1:
        has_post = ends[:, :, -2] > ts[:, None]
    else:
        has_post = start0 > ts[:, None]

    lo, hi = detection_band(target_stats, cfg)
    found = np.zeros((n_pass, n_sm), dtype=bool)
    first = np.full((n_pass, n_sm), n_iter, dtype=np.int64)
    for c0 in range(0, n_iter, _DETECT_CHUNK):
        c1 = min(c0 + _DETECT_CHUNK, n_iter)
        width = c1 - c0
        d = diffs[:, :, c0:c1]
        after = block_scratch("after", (n_pass, n_sm, width), dtype=bool)
        if c0 == 0:
            after[:, :, 0] = start0 > ts[:, None]
            np.greater(ends[:, :, : c1 - 1], ts3, out=after[:, :, 1:])
        else:
            np.greater(ends[:, :, c0 - 1 : c1 - 1], ts3, out=after)
        cand = block_scratch("cand", (n_pass, n_sm, width), dtype=bool)
        np.greater_equal(d, lo, out=cand)
        cand &= after
        np.less_equal(d, hi, out=after)
        cand &= after
        hit = cand.any(axis=2)
        new = hit & ~found
        if new.any():
            first[new] = c0 + np.argmax(cand, axis=2)[new]
            found |= hit
        if found.all():
            break

    return _confirm_and_finish(
        diffs, ends, list(ts_acc), has_post, found, first,
        target_stats, cfg,
    )


def evaluate_switch_group_deferred(
    start0: np.ndarray,
    ends: np.ndarray,
    ts_acc: "list[float]",
    target_stats_list: "list[SampleStats]",
    cfg: LatestConfig,
) -> list[SwitchEvaluation]:
    """Cross-pair generalization of :func:`evaluate_switch_block_deferred`.

    The pair-parallel execution tier (:mod:`repro.core.pairbatch`) stacks
    same-shape passes from *different* frequency pairs into one sweep, so
    each pass carries its own phase-1 target statistics: the detection
    band becomes a per-pass ``(lo, hi)`` broadcast and the confirmation
    runs through the per-row-reference Welch CI
    (:func:`repro.stats.intervals.difference_ci_rows`).  Every per-element
    comparison and every per-row float expression is the one the uniform
    block evaluator applies, so each pass's evaluation is bit-identical to
    evaluating it in a single-pair block.
    """
    n_pass, n_sm, n_iter = ends.shape
    ts = np.asarray(ts_acc)
    ts3 = ts[:, None, None]

    diffs = block_scratch("diffs", ends.shape)
    np.subtract(ends[:, :, 0], start0, out=diffs[:, :, 0])
    np.subtract(ends[:, :, 1:], ends[:, :, :-1], out=diffs[:, :, 1:])

    if n_iter > 1:
        has_post = ends[:, :, -2] > ts[:, None]
    else:
        has_post = start0 > ts[:, None]

    bands = [detection_band(stats, cfg) for stats in target_stats_list]
    lo3 = np.array([b[0] for b in bands])[:, None, None]
    hi3 = np.array([b[1] for b in bands])[:, None, None]
    found = np.zeros((n_pass, n_sm), dtype=bool)
    first = np.full((n_pass, n_sm), n_iter, dtype=np.int64)
    for c0 in range(0, n_iter, _DETECT_CHUNK):
        c1 = min(c0 + _DETECT_CHUNK, n_iter)
        width = c1 - c0
        d = diffs[:, :, c0:c1]
        after = block_scratch("after", (n_pass, n_sm, width), dtype=bool)
        if c0 == 0:
            after[:, :, 0] = start0 > ts[:, None]
            np.greater(ends[:, :, : c1 - 1], ts3, out=after[:, :, 1:])
        else:
            np.greater(ends[:, :, c0 - 1 : c1 - 1], ts3, out=after)
        cand = block_scratch("cand", (n_pass, n_sm, width), dtype=bool)
        np.greater_equal(d, lo3, out=cand)
        cand &= after
        np.less_equal(d, hi3, out=after)
        cand &= after
        hit = cand.any(axis=2)
        new = hit & ~found
        if new.any():
            first[new] = c0 + np.argmax(cand, axis=2)[new]
            found |= hit
        if found.all():
            break

    return _confirm_and_finish_group(
        diffs, ends, list(ts_acc), has_post, found, first,
        target_stats_list, cfg,
    )


def _confirm_and_finish_group(
    diffs: np.ndarray,
    ends: np.ndarray,
    ts_list: "list[float]",
    has_post: np.ndarray,
    detected: np.ndarray,
    first: np.ndarray,
    target_stats_list: "list[SampleStats]",
    cfg: LatestConfig,
) -> list[SwitchEvaluation]:
    """Per-pass-target twin of :func:`_confirm_and_finish`.

    Suffix statistics stay strictly per pass (same anchor contract as the
    uniform path); the batched Welch CI gains per-row target moments and a
    per-row tolerance, both plain broadcasts of the scalar expressions.
    """
    n_pass, n_sm, n_iter = diffs.shape

    status = np.full((n_pass, n_sm), int(SmStatus.NO_DETECTION), dtype=np.int64)
    status[~has_post] = int(SmStatus.NO_POST_SWITCH)

    cut = first + 1
    n_tail = (n_iter - np.clip(cut, 0, n_iter)).astype(np.int64)
    short = detected & (n_tail < cfg.min_confirm_tail)
    status[detected] = int(SmStatus.CONFIRMATION_FAILED)
    status[short] = int(SmStatus.SHORT_TAIL)

    confirm = detected & ~short
    per_pass_rows = [np.flatnonzero(confirm[b]) for b in range(n_pass)]
    stats = [
        (b, _suffix_stats(diffs[b], cut[b][rows_b], rows=rows_b))
        for b, rows_b in enumerate(per_pass_rows)
        if rows_b.size
    ]
    valid = np.zeros((n_pass, n_sm), dtype=bool)
    if stats:
        tail_mean = np.concatenate([s[0] for _, s in stats])
        tail_std = np.concatenate([s[1] for _, s in stats])
        tail_n = np.concatenate([s[2] for _, s in stats])
        mean_b = np.concatenate(
            [np.full(s[0].size, target_stats_list[b].mean) for b, s in stats]
        )
        var_b = np.concatenate(
            [np.full(s[0].size, target_stats_list[b].variance) for b, s in stats]
        )
        n_b = np.concatenate(
            [np.full(s[0].size, target_stats_list[b].n) for b, s in stats]
        )
        lb, hb = difference_ci_rows(
            tail_mean, tail_std * tail_std, tail_n,
            mean_b, var_b, n_b, cfg.confidence,
        )
        tol = cfg.tolerance_rel * mean_b
        ok = ((lb < 0.0) & (0.0 < hb)) | (np.abs(tail_mean - mean_b) < tol)
        offset = 0
        for b, rows_b in enumerate(per_pass_rows):
            if rows_b.size:
                valid[b, rows_b[ok[offset : offset + rows_b.size]]] = True
                offset += rows_b.size

    return [
        _finish(
            n_sm,
            n_iter,
            ends[b],
            ts_list[b],
            status[b],
            has_post[b],
            detected[b],
            short[b],
            first[b],
            valid[b],
        )
        for b in range(n_pass)
    ]


def _confirm_and_finish(
    diffs: np.ndarray,
    ends: np.ndarray,
    ts_list: "list[float]",
    has_post: np.ndarray,
    detected: np.ndarray,
    first: np.ndarray,
    target_stats: SampleStats,
    cfg: LatestConfig,
) -> list[SwitchEvaluation]:
    """Confirmation + per-pass epilogue over block arrays.

    Reuses scratch buffers; callers must not retain ``diffs`` across the
    call.  ``detected``/``first``/``has_post`` come from the chunked
    prefix-scan detection front end in
    :func:`evaluate_switch_block_deferred`.
    """
    n_pass, n_sm, n_iter = diffs.shape

    status = np.full((n_pass, n_sm), int(SmStatus.NO_DETECTION), dtype=np.int64)
    status[~has_post] = int(SmStatus.NO_POST_SWITCH)

    cut = first + 1
    n_tail = (n_iter - np.clip(cut, 0, n_iter)).astype(np.int64)
    short = detected & (n_tail < cfg.min_confirm_tail)
    status[detected] = int(SmStatus.CONFIRMATION_FAILED)
    status[short] = int(SmStatus.SHORT_TAIL)

    # Suffix statistics run per pass with exactly the per-pass row set and
    # matrix slice the scalar ``evaluate_switch`` uses — the sub-matrix
    # anchor (the pass-wide earliest cut) is part of the float-op sequence,
    # so a block-wide anchor would produce ulp-different tail moments and
    # break the bit-identity contract.  Only the Welch CI lookup, which is
    # row-pure, batches across the whole block.
    confirm = detected & ~short
    per_pass_rows = [np.flatnonzero(confirm[b]) for b in range(n_pass)]
    stats = [
        _suffix_stats(diffs[b], cut[b][rows_b], rows=rows_b)
        for b, rows_b in enumerate(per_pass_rows)
        if rows_b.size
    ]
    valid = np.zeros((n_pass, n_sm), dtype=bool)
    if stats:
        tail_mean = np.concatenate([s[0] for s in stats])
        tail_std = np.concatenate([s[1] for s in stats])
        tail_n = np.concatenate([s[2] for s in stats])
        lb, hb = difference_ci_batch(
            tail_mean, tail_std * tail_std, tail_n, target_stats, cfg.confidence
        )
        tol = cfg.tolerance_rel * target_stats.mean
        ok = ((lb < 0.0) & (0.0 < hb)) | (
            np.abs(tail_mean - target_stats.mean) < tol
        )
        offset = 0
        for b, rows_b in enumerate(per_pass_rows):
            if rows_b.size:
                valid[b, rows_b[ok[offset : offset + rows_b.size]]] = True
                offset += rows_b.size

    return [
        _finish(
            n_sm,
            n_iter,
            ends[b],
            ts_list[b],
            status[b],
            has_post[b],
            detected[b],
            short[b],
            first[b],
            valid[b],
        )
        for b in range(n_pass)
    ]


def evaluate_switch_reference(
    raw: RawSwitchData,
    target_stats: SampleStats,
    cfg: LatestConfig,
) -> SwitchEvaluation:
    """Scalar reference: one SampleStats + Welch CI per candidate SM.

    This is the original formulation of the confirmation step.  It is kept
    (like :func:`repro.gpusim.sm.integrate_iterations_reference`) so the
    equivalence tests can assert that the vectorized path produces
    identical statuses, latencies and reasons.
    """
    diffs, ends, ts, status, has_post, detected, first = _detect(
        raw, target_stats, cfg
    )
    n_sm, n_iter = diffs.shape

    tail_mean, tail_std, n_tail = _suffix_stats(diffs, first + 1)

    short = detected & (n_tail < cfg.min_confirm_tail)
    status[detected] = int(SmStatus.CONFIRMATION_FAILED)
    status[short] = int(SmStatus.SHORT_TAIL)

    confirm_rows = np.flatnonzero(detected & ~short)
    valid = np.zeros(n_sm, dtype=bool)
    tol = cfg.tolerance_rel * target_stats.mean
    for i in confirm_rows:
        tail = SampleStats(
            n=int(n_tail[i]),
            mean=float(tail_mean[i]),
            std=float(tail_std[i]),
            minimum=0.0,
            maximum=0.0,
        )
        lb, hb = difference_ci(tail, target_stats, cfg.confidence)
        if (lb < 0.0 < hb) or abs(tail.mean - target_stats.mean) < tol:
            valid[i] = True

    return _finish(
        n_sm, n_iter, ends, ts, status, has_post, detected, short, first, valid
    )
