"""The LATEST campaign loop (paper Sec. VI).

Orchestrates the three phases over every requested frequency pair of the
campaign's swept axis (:mod:`repro.core.axis` — SM clocks by default,
memory clocks with ``config.axis="memory"``):

* phase 1 once per campaign (with workload growth for indistinguishable
  pairs),
* a probe stage sizing the switch window ("tenfold the longest switching
  latency of these few tested pairs", Sec. V),
* per pair: repeat phases 2+3 until the relative standard error of the
  collected latencies drops below the threshold (checked every 25 passes),
  with throttle checks every five passes — thermal throttling discards the
  newest five measurements and backs off ten seconds, power throttling
  skips the pair entirely,
* adaptive DBSCAN outlier labelling per pair (Algorithm 3),
* CSV output per pair under the standardized naming convention.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.clustering.adaptive import adaptive_dbscan
from repro.core.axis import SM_CORE
from repro.core.config import LatestConfig
from repro.core.context import BenchContext
from repro.core.csvio import write_campaign_csvs
from repro.core.phase1 import Phase1Result, run_phase1
from repro.core.phase2 import run_switch_benchmark
from repro.core.phase3 import evaluate_switch
from repro.core.results import (
    CampaignResult,
    PairResult,
    ResultAccumulator,
    SwitchingLatencyMeasurement,
)
from repro.core.stream import (
    CampaignFinished,
    CampaignStarted,
    FacetPrepared,
    PairMeasured,
    PairSkipped,
    StreamDispatcher,
)
from repro.errors import CampaignInterrupted, ConfigError, MeasurementError
from repro.gpusim.thermal import ThrottleReasons
from repro.machine import Machine

__all__ = [
    "ProbeInfo",
    "LatestBenchmark",
    "measure_pair",
    "measure_pair_reference",
    "run_campaign",
]

#: minimum number of measurements before outlier filtering is meaningful
_MIN_FOR_OUTLIER_FILTER = 12

#: skip reason recorded when a facet's memory P-state cannot be reached
#: (single-sourced from the axis registry: the memory clock is the SM
#: axis's facet)
MEMORY_NEVER_SETTLED = SM_CORE.facet_fail_reason


def facet_skip_reason(
    phase1: "Phase1Result | None",
    sm_key: tuple[float, float],
    valid: set,
    facet_fail_reason: str = MEMORY_NEVER_SETTLED,
) -> str | None:
    """Why a grid point cannot be measured at its facet (None = measurable).

    The single source of truth for skip semantics shared by the serial
    loop and the execution engine.  ``phase1=None`` means the facet's
    clock never settled — the locked memory clock of a grid campaign, or
    the locked SM clock of a memory-axis campaign, named by
    ``facet_fail_reason``; ``valid`` is the caller's precomputed
    ``set(phase1.valid_pairs)`` so dense grids stay O(P).
    """
    if phase1 is None:
        return facet_fail_reason
    if sm_key in valid:
        return None
    return (
        phase1.unreachable.get(sm_key[0])
        or phase1.unreachable.get(sm_key[1])
        or "statistically-indistinguishable"
    )


@dataclass(frozen=True)
class ProbeInfo:
    """Window-sizing information from the probe stage."""

    max_latency_s: float
    median_latency_s: float
    pair_latencies: tuple[tuple[float, float, float], ...]  # (init, tgt, lat)


class LatestBenchmark:
    """A configured switching-latency campaign bound to one machine."""

    def __init__(self, machine: Machine, config: LatestConfig) -> None:
        self.bench = BenchContext(machine, config)
        self.config = config
        self.machine = machine

    # ------------------------------------------------------------------
    def run(self, journal=None, guard=None, sinks=()) -> CampaignResult:
        """Execute the full campaign and (optionally) write CSV output.

        Legacy campaigns (``memory_frequencies`` unset) run exactly the
        fixed-memory loop — one phase 1, one probe stage, one pair sweep,
        with the memory domain never touched.  Core×memory campaigns
        repeat that loop once per memory clock: lock+settle the memory
        P-state, re-characterize (iteration times respond to the memory
        clock), then measure the full SM pair grid at that clock.
        Memory- and power-axis campaigns run the single-facet loop with
        the roles reversed: the SM clock is locked once
        (``prepare_facet``) and the phases sweep the axis's pairs.
        Multi-facet sweeps (``locked_sm_mhz`` as a tuple) repeat that loop
        once per locked SM clock — the transpose of the core×memory grid,
        through the same per-facet machinery.

        ``journal`` (a :class:`~repro.core.journal.CampaignJournal`)
        records each measured pair as it lands — a durable partial record
        under the engine's flat grid indexing, though a *serial* journal
        cannot be resumed bit-identically (pairs share one RNG/clock
        timeline; see the journal module docs).  ``guard`` (a
        :class:`~repro.core.journal.ShutdownGuard`) turns SIGINT/SIGTERM
        into a clean stop between pairs: the journal is already flushed
        per append, and :class:`~repro.errors.CampaignInterrupted` is
        raised instead of losing the run to a KeyboardInterrupt mid-pass.

        ``sinks`` are extra :class:`~repro.core.stream.CampaignSink`
        consumers attached to the campaign event stream
        (:mod:`repro.core.stream`); the serial loop emits every event in
        flat grid order.  The returned :class:`CampaignResult` is itself
        accumulated from the stream
        (:class:`~repro.core.results.ResultAccumulator`) — there is no
        separate batch result path.
        """
        from repro.core.journal import JournalSink

        t_begin = self.machine.clock.now
        axis = self.bench.axis
        facet_plan = self.config.facet_plan()
        grid = self.config.memory_frequencies is not None
        sm_facets = self.config.locked_sm_plan()
        n_pairs = len(self.config.pairs())
        measured = 0
        accumulator = ResultAccumulator()
        dispatch = StreamDispatcher(
            accumulator,
            JournalSink(journal) if journal is not None else None,
            *sinks,
        )
        dispatch.emit(
            CampaignStarted(
                gpu_name=self.bench.device.spec.name,
                architecture=self.bench.device.spec.architecture,
                hostname=self.machine.hostname,
                device_index=self.config.device_index,
                frequencies=self.config.frequencies,
                axis=axis.name,
                facet_plan=facet_plan,
                n_pairs=n_pairs,
                memory_frequencies=self.config.memory_frequencies,
                locked_sm_frequencies=sm_facets,
                mode="serial",
            )
        )
        for facet_index, facet in enumerate(facet_plan):
            if not self.bench.prepare_facet_clock(facet):
                phase1 = None
                probe = None
            else:
                phase1 = run_phase1(self.bench)
                # Power caps or too-coarse workloads can leave no
                # distinguishable pair at all; the campaign then reports
                # every pair as skipped rather than failing (the tool's
                # CSV output stays consistent).
                probe = (
                    self._probe_windows(phase1) if phase1.valid_pairs else None
                )
            dispatch.emit(
                FacetPrepared(
                    facet_index=facet_index,
                    facet=facet,
                    prepared=phase1 is not None,
                    phase1=phase1,
                    probe=probe,
                )
            )

            valid = set(phase1.valid_pairs) if phase1 is not None else set()
            for pair_index, (init, target) in enumerate(self.config.pairs()):
                sm_key = (float(init), float(target))
                index = facet_index * n_pairs + pair_index
                reason = facet_skip_reason(
                    phase1, sm_key, valid, axis.facet_fail_reason
                )
                if reason is not None:
                    dispatch.emit(
                        PairSkipped(
                            index=index,
                            pair=PairResult(
                                init_mhz=sm_key[0],
                                target_mhz=sm_key[1],
                                skipped=True,
                                skip_reason=reason,
                                memory_mhz=facet if grid else None,
                                locked_sm_mhz=(
                                    None
                                    if grid or facet is None
                                    else float(facet)
                                ),
                                axis=axis.name,
                            ),
                        )
                    )
                    continue
                if guard is not None and guard.requested:
                    dispatch.interrupt()
                    raise CampaignInterrupted(
                        f"serial campaign interrupted after {measured} "
                        "measured pairs"
                        + (
                            "; the journal holds every finished pair (a "
                            "durable record — serial campaigns cannot be "
                            "resumed, see the journal docs)"
                            if journal is not None
                            else ""
                        ),
                        journal_dir=(
                            None
                            if journal is None
                            else str(journal.directory)
                        ),
                    )
                t_pair = self.machine.clock.now
                pair = self.measure_pair(sm_key[0], sm_key[1], phase1, probe)
                pair.memory_mhz = facet if grid else None
                if not grid and facet is not None:
                    pair.locked_sm_mhz = float(facet)
                measured += 1
                # The flat facet-major index the engine also uses, so the
                # event (and any journaled record of it) identifies the
                # grid point unambiguously across execution tiers.
                dispatch.emit(
                    PairMeasured(
                        index=index,
                        pair=pair,
                        elapsed_virtual_s=self.machine.clock.now - t_pair,
                    )
                )

        dispatch.emit(
            CampaignFinished(
                wall_virtual_s=self.machine.clock.now - t_begin,
                locked_sm_mhz=(
                    None
                    if sm_facets is not None
                    else axis.locked_complement_mhz(self.bench)
                ),
            )
        )
        result = accumulator.result()
        if self.config.output_dir is not None:
            write_campaign_csvs(self.config.output_dir, result)
        return result

    # ------------------------------------------------------------------
    # probe stage
    # ------------------------------------------------------------------
    def _probe_pairs(self, phase1: Phase1Result) -> list[tuple[float, float]]:
        """Pick representative pairs spanning small/medium/high levels."""
        valid = phase1.valid_pairs
        if not valid:  # guarded by run(); direct callers get the error
            raise MeasurementError(
                "no statistically distinguishable frequency pairs"
            )
        freqs = sorted(self.config.frequencies)
        lo, hi = freqs[0], freqs[-1]
        mid = freqs[len(freqs) // 2]
        preferred = [(lo, hi), (hi, lo), (mid, hi), (hi, mid), (lo, mid)]
        chosen = [p for p in preferred if p in set(valid)]
        for p in valid:
            if len(chosen) >= self.config.probe_pair_count:
                break
            if p not in chosen:
                chosen.append(p)
        return chosen[: self.config.probe_pair_count]

    def _probe_windows(self, phase1: Phase1Result) -> ProbeInfo:
        """Estimate the switch-window size from a few probe measurements."""
        cfg = self.config
        kernel = phase1.kernel
        results: list[tuple[float, float, float]] = []
        for init, target in self._probe_pairs(phase1):
            window_s = cfg.probe_window_s
            latency = None
            for _ in range(cfg.max_window_retries + 1):
                iters = _iters_for_window(self.bench, window_s, init, target, kernel)
                try:
                    raw = run_switch_benchmark(self.bench, init, target, kernel, iters)
                except MeasurementError:
                    continue
                ev = evaluate_switch(raw, phase1.stats_for(target), cfg)
                if ev.ok:
                    latency = ev.latency_s
                    break
                if ev.window_too_short:
                    window_s *= cfg.window_growth_factor
            if latency is not None:
                results.append((init, target, latency))
        if not results:
            raise MeasurementError("all probe measurements failed")
        lats = np.asarray([r[2] for r in results])
        return ProbeInfo(
            max_latency_s=float(lats.max()),
            median_latency_s=float(np.median(lats)),
            pair_latencies=tuple(results),
        )

    # ------------------------------------------------------------------
    # per-pair measurement loop
    # ------------------------------------------------------------------
    def measure_pair(
        self,
        init_mhz: float,
        target_mhz: float,
        phase1: Phase1Result,
        probe: ProbeInfo,
    ) -> PairResult:
        return measure_pair(self.bench, init_mhz, target_mhz, phase1, probe)


def _iters_for_window(
    bench: BenchContext, window_s: float, init: float, target: float, kernel
) -> int:
    """Iterations needed to keep measuring for ``window_s``.

    Sized with the *shortest* iteration duration of the pair (highest
    frequency — the axis contract guarantees duration is decreasing in
    the swept clock) so the window never undershoots in time.
    """
    iter_s = bench.axis.iteration_duration_s(bench, kernel, max(init, target))
    return max(50, int(math.ceil(window_s / iter_s)))


def _initial_window_iters(
    bench: BenchContext,
    init_mhz: float,
    target_mhz: float,
    probe: ProbeInfo,
    kernel,
) -> int:
    cfg = bench.config
    base = (
        probe.max_latency_s
        if cfg.window_policy == "probe-max"
        else probe.median_latency_s
    )
    window_s = max(cfg.switch_window_factor * base, 2e-3)
    return _iters_for_window(bench, window_s, init_mhz, target_mhz, kernel)


def measure_pair(
    bench: BenchContext,
    init_mhz: float,
    target_mhz: float,
    phase1: Phase1Result,
    probe: ProbeInfo,
) -> PairResult:
    """Measure one frequency pair until the RSE stopping rule fires.

    Standalone so the execution engine can run it against a per-pair
    replica machine in a worker process; :class:`LatestBenchmark` delegates
    here for the serial path.

    Dispatches to the batched pass-block pipeline
    (:mod:`repro.core.passblock`) unless ``config.pass_block_size`` is
    ``None`` or the machine carries an active tracer — both paths produce
    bit-identical results; the scalar loop below is the reference
    implementation and the one whose per-pass trace events are meaningful.
    """
    from repro.trace import NULL_TRACER

    block = bench.config.pass_block_size
    if block is not None and bench.machine.tracer is NULL_TRACER:
        from repro.core.passblock import measure_pair_blocked

        return measure_pair_blocked(
            bench, init_mhz, target_mhz, phase1, probe, block
        )
    return measure_pair_reference(bench, init_mhz, target_mhz, phase1, probe)


def measure_pair_reference(
    bench: BenchContext,
    init_mhz: float,
    target_mhz: float,
    phase1: Phase1Result,
    probe: ProbeInfo,
) -> PairResult:
    """The scalar reference loop: one pass simulated, evaluated, decided.

    Retained verbatim as the semantic definition of the per-pair
    measurement procedure; ``tests/test_core_passblock.py`` asserts the
    batched pipeline reproduces it bit for bit.
    """
    cfg = bench.config
    machine = bench.machine
    kernel = phase1.kernel
    target_stats = phase1.stats_for(target_mhz)
    rule = cfg.stopping_rule()

    pair = PairResult(
        init_mhz=float(init_mhz), target_mhz=float(target_mhz), axis=cfg.axis
    )
    window_iters = _initial_window_iters(bench, init_mhz, target_mhz, probe, kernel)
    growths = 0
    consecutive_failures = 0
    passes = 0

    while True:
        try:
            raw = run_switch_benchmark(
                bench, init_mhz, target_mhz, kernel, window_iters
            )
        except MeasurementError:
            pair.n_failed_attempts += 1
            consecutive_failures += 1
            if consecutive_failures >= cfg.max_consecutive_failures:
                pair.skipped = True
                pair.skip_reason = "initial-frequency-never-settled"
                break
            continue
        passes += 1

        # Throttle handling (paper Sec. VI): every five passes.  On the
        # power-cap axis SW_POWER_CAP is the measured signal itself
        # (axis.benign_throttle), not a reason to abandon the pair.
        if passes % cfg.throttle_check_every == 0:
            reasons = raw.throttle_reasons
            if reasons & (
                ThrottleReasons.SW_POWER_CAP & ~bench.axis.benign_throttle
            ):
                pair.skipped = True
                pair.skip_reason = "power-throttled"
                break
            if reasons & (ThrottleReasons.SW_THERMAL | ThrottleReasons.HW_THERMAL):
                drop = min(cfg.throttle_discard_count, len(pair.measurements))
                if drop:
                    del pair.measurements[-drop:]
                pair.n_throttle_discards += drop
                bench.host.sleep(cfg.throttle_backoff_s)
                continue

        ev = evaluate_switch(raw, target_stats, cfg)
        machine.tracer.emit(
            machine.clock.now, "campaign", "evaluation",
            pair=f"{init_mhz:g}->{target_mhz:g}",
            outcome=ev.reason,
            latency_ms=(
                round(ev.latency_s * 1e3, 3) if ev.ok else None
            ),
        )
        if ev.ok:
            consecutive_failures = 0
            pair.measurements.append(
                SwitchingLatencyMeasurement(
                    latency_s=float(ev.latency_s),
                    ts_acc=raw.ts_acc,
                    te_acc=float(ev.te_acc),
                    n_valid_sm=ev.n_valid_sm,
                    window_iterations=window_iters,
                    ground_truth_s=raw.ground_truth_latency_s,
                    ground_truth_outlier=raw.ground_truth_outlier,
                )
            )
            if rule.should_stop([m.latency_s for m in pair.measurements]):
                break
            continue

        # Failed evaluation: grow the window when the latency escaped
        # it ("repeated with a ten-times longer workload", Sec. V);
        # otherwise simply repeat phases two and three.
        pair.n_failed_attempts += 1
        consecutive_failures += 1
        if ev.window_too_short and growths < cfg.max_window_retries:
            window_iters = int(
                math.ceil(window_iters * cfg.window_growth_factor)
            )
            growths += 1
            pair.n_window_growths += 1
            consecutive_failures = 0
        elif consecutive_failures >= cfg.max_consecutive_failures:
            if not pair.measurements:
                pair.skipped = True
                pair.skip_reason = "no-viable-measurements"
            break

    if len(pair.measurements) >= _MIN_FOR_OUTLIER_FILTER:
        pair.outliers = adaptive_dbscan(
            [m.latency_s for m in pair.measurements], cfg.outlier_config
        )
    return pair


def run_campaign(
    machine: Machine,
    config: LatestConfig,
    workers: int | None = None,
    journal: "str | None" = None,
    resume: bool = False,
    sinks=(),
) -> CampaignResult:
    """Build and run a campaign.

    ``workers=None`` (the default) runs the strictly-serial loop on the
    caller's machine: one shared timeline and RNG stream across pairs.
    Any integer ``workers >= 1`` routes through the execution engine
    (:mod:`repro.exec`), which measures pairs on per-pair replica machines
    with deterministic seed streams: the result is identical for every
    worker count (1, 4, ...), but differs from the serial timeline because
    pairs no longer share one clock/RNG stream.  Either way the per-pair
    inner loop runs batched (``config.pass_block_size``) or scalar —
    bit-identical by contract.

    With ``config.memory_frequencies`` set, both paths sweep the full
    core×memory grid: the SM pair grid is re-characterized and measured
    once per locked memory clock (see ``LatestBenchmark.run``).

    ``journal`` names a directory for a durable
    :class:`~repro.core.journal.CampaignJournal`; every completed pair is
    recorded as it lands and SIGINT/SIGTERM become a graceful, resumable
    stop.  ``resume=True`` continues an interrupted *engine-mode*
    campaign bit-identically — the serial loop's pairs share one
    RNG/clock timeline, so a serial journal is a durable record but
    cannot be resumed (a clear error says so).

    ``sinks`` attaches extra consumers to the campaign event stream
    (:mod:`repro.core.stream`) on either path — progress reporting,
    incremental CSV output, service feeds.
    """
    if workers is None:
        if resume:
            raise ConfigError(
                "resume requires the execution engine (workers >= 1): "
                "serial campaigns share one RNG/clock timeline across "
                "pairs, so journaled pairs cannot be skipped bit-"
                "identically"
            )
        if config.calibration_cache is not None:
            raise ConfigError(
                "calibration_cache requires the execution engine "
                "(workers >= 1): the serial loop shares one RNG/clock "
                "timeline across calibration and measurement, so a "
                "skipped calibration cannot be replayed bit-identically"
            )
        if journal is None:
            return LatestBenchmark(machine, config).run(sinks=sinks)
        from repro.core.journal import (
            CampaignJournal,
            ShutdownGuard,
            campaign_fingerprint,
            campaign_synopsis,
        )

        fingerprint = campaign_fingerprint(config, machine.blueprint)
        with CampaignJournal.open(
            journal,
            fingerprint,
            mode="serial",
            synopsis=campaign_synopsis(config, machine.blueprint),
        ) as journal_obj, ShutdownGuard() as guard:
            return LatestBenchmark(machine, config).run(
                journal=journal_obj, guard=guard, sinks=sinks
            )
    from repro.exec.engine import run_campaign_parallel

    return run_campaign_parallel(
        machine, config, workers=workers, journal=journal, resume=resume,
        sinks=sinks,
    )
