"""The LATEST methodology: GPU frequency switching latency measurement.

Public entry points:

* :class:`~repro.core.config.LatestConfig` — campaign configuration
  mirroring the LATEST tool's CLI (frequencies, RSE threshold, min/max
  measurement counts, device index).
* :class:`~repro.core.campaign.LatestBenchmark` — the three-phase campaign:
  phase 1 characterizes every frequency and validates pairs (Algorithm 1),
  phase 2 runs the switch benchmark with synchronized timers, phase 3
  evaluates per-SM detection with the two-standard-deviation criterion
  (Algorithm 2), followed by adaptive DBSCAN outlier filtering
  (Algorithm 3).
* :func:`~repro.core.wakeup.estimate_wakeup_latency` — the wake-up
  estimation procedure of Sec. V.
"""

from repro.core.axis import AXES, MeasurementAxis, axis_by_name
from repro.core.campaign import LatestBenchmark, measure_pair, run_campaign
from repro.core.config import LatestConfig
from repro.core.journal import (
    CampaignJournal,
    ShutdownGuard,
    campaign_fingerprint,
)
from repro.core.phase1 import FrequencyCharacterization, Phase1Result, run_phase1
from repro.core.phase2 import RawSwitchData, run_switch_benchmark
from repro.core.phase3 import SwitchEvaluation, evaluate_switch
from repro.core.results import CampaignResult, PairKey, PairResult
from repro.core.wakeup import WakeupEstimate, estimate_wakeup_latency

__all__ = [
    "AXES",
    "MeasurementAxis",
    "axis_by_name",
    "LatestConfig",
    "CampaignJournal",
    "ShutdownGuard",
    "campaign_fingerprint",
    "LatestBenchmark",
    "measure_pair",
    "run_campaign",
    "run_phase1",
    "Phase1Result",
    "FrequencyCharacterization",
    "run_switch_benchmark",
    "RawSwitchData",
    "evaluate_switch",
    "SwitchEvaluation",
    "CampaignResult",
    "PairResult",
    "PairKey",
    "estimate_wakeup_latency",
    "WakeupEstimate",
]
