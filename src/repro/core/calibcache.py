"""Persistent, content-addressed cache of per-facet calibrations.

Every campaign pays for phase-1 frequency characterization and the probe
window-sizing stage once per facet before a single pair is measured —
and for campaign-as-a-service workloads (ROADMAP item 1) repeat requests
against the same board/config are the *common* case.  This module caches
the complete calibration product of one facet — the
:class:`~repro.core.phase1.Phase1Result`, the
:class:`~repro.core.campaign.ProbeInfo` window estimate, the fixed
per-pass duration the dispatch cost model needs, and the virtual seconds
the calibration consumed — so a warm campaign skips straight to phase
2/3 while staying bit-identical to a cold run.

Key derivation
--------------
:func:`calibration_fingerprint` mirrors the
:func:`~repro.core.journal.campaign_fingerprint` discipline: a sha256
over the pickled (cache version, calibration-affecting config fields,
machine blueprint, seed-namespace scheme, facet coordinate) tuple at a
fixed pickle protocol.  Execution-only knobs — the journal's exclusion
set plus the per-pair measurement knobs that phase 1 and the probe never
read (stopping rule, per-pair window policy, per-pair resilience,
outlier labelling) — are excluded, so worker-count changes, journal
resumes, and phase-2/3 tuning all still hit.  The ``scheme`` component
separates the two calibration timelines the engine uses (see
:mod:`repro.exec.engine`): ``"driver"`` entries replay the single-facet
driver-timeline calibration, ``"replica"`` entries the per-facet
independent seed streams of multi-facet campaigns — the two can never
satisfy each other.

Eligibility
-----------
Cache validity assumes the campaign machine is freshly built from its
blueprint (exactly what ``make_machine`` and the CLI produce) — the same
assumption journal resume makes.  The engine therefore consults the
cache only when the driver clock still sits at the blueprint's start
time, and the serial loop is ineligible entirely: it shares one
RNG/clock timeline across calibration and measurement, so a cached
calibration cannot be skipped bit-identically
(:func:`~repro.core.campaign.run_campaign` raises a clear error).

Durability
----------
Entries are one file per key under the cache directory, written with the
journal's length+CRC32 framing to a temp file and atomically
``os.replace``\\ d into place.  A torn, truncated, bit-flipped, stale
(version or key mismatch) or otherwise unreadable entry degrades to a
cache *miss* — never an error; the calibration simply re-runs and the
entry is rewritten.  An in-memory LRU fronts the directory so repeated
lookups inside one process never re-read disk, and ``stats`` counts
hits, misses, installs and corrupt entries for observability
(``--profile`` and the CLI's cache summary line report them).
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from repro.core.journal import _FINGERPRINT_EXCLUDED, _FRAME

__all__ = [
    "CALIB_CACHE_VERSION",
    "CalibrationCache",
    "FacetCalibration",
    "calibration_fingerprint",
    "last_run_stats",
    "record_run_stats",
]

#: cache entry format version (bump on incompatible entry changes)
CALIB_CACHE_VERSION = 1

#: config fields that cannot affect the phase-1 characterization, the
#: probe window-sizing stage, or the fixed per-pass duration: the
#: journal's execution-only exclusions plus the knobs only the per-pair
#: phase-2/3 measurement loop reads.  Everything else — frequencies,
#: axis, facet coordinates, workload sizing, the detection criterion the
#: probe evaluates switches with, settle and timer-sync parameters —
#: stays in the key.
_CALIBRATION_EXCLUDED = _FINGERPRINT_EXCLUDED | frozenset(
    {
        "calibration_cache",
        # per-pair RSE stopping rule (phase 2/3 only)
        "rse_threshold",
        "min_measurements",
        "max_measurements",
        "rse_check_every",
        # per-pair window sizing (the probe uses probe_window_s directly)
        "switch_window_factor",
        "window_policy",
        # per-pair measurement-loop resilience
        "throttle_check_every",
        "throttle_backoff_s",
        "throttle_discard_count",
        "max_consecutive_failures",
        # per-pair outlier labelling (Algorithm 3)
        "outlier_config",
    }
)


@dataclass(frozen=True)
class FacetCalibration:
    """The complete, cacheable calibration product of one facet.

    ``elapsed_virtual_s`` is the virtual time the calibration consumed
    (facet-clock preparation + phase 1 + probe); a warm run advances the
    driver clock by it instead of re-measuring, so the campaign epoch —
    and therefore every pair result and ``wall_virtual_s`` — is
    bit-identical to the cold run.  ``fixed_pass_s`` is the facet's
    fixed per-pass duration evaluated while the facet clock was
    prepared, so the :class:`~repro.exec.jobs.ProbeCostModel` rebuilds
    identically from cached data without a live ``BenchContext``.
    ``prepared=False`` records a facet whose clock could not be locked
    (the failed settle attempt still consumed ``elapsed_virtual_s``).
    """

    facet_index: int
    facet: float | None
    prepared: bool
    phase1: "Phase1Result | None"  # noqa: F821 - annotation only
    probe: "ProbeInfo | None"  # noqa: F821 - annotation only
    fixed_pass_s: float
    elapsed_virtual_s: float


def _canonical(value):
    """Identity-insensitive canonical form of a fingerprint input.

    Hashing a raw pickle would leak object-graph *identity* into the
    digest: pickle memoizes shared objects, and the GPU spec carries
    lazily populated lookup memos whose sharing topology changes once a
    campaign has run — equal values, different bytes.  Dataclasses
    reduce to their declared fields only (never ``__dict__``), and
    leaves reduce to ``repr`` (exact for floats), so two structurally
    equal inputs always canonicalize identically.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__name__,
            tuple(
                (f.name, _canonical(getattr(value, f.name)))
                for f in dataclasses.fields(value)
            ),
        )
    if isinstance(value, (tuple, list)):
        return ("seq", tuple(_canonical(v) for v in value))
    if isinstance(value, dict):
        return (
            "map",
            tuple(
                sorted((repr(k), _canonical(v)) for k, v in value.items())
            ),
        )
    return repr(value)


def calibration_fingerprint(
    config,
    blueprint,
    facet_index: int,
    facet: float | None,
    scheme: str,
) -> str:
    """Content digest identifying one facet's calibration inputs.

    Two calibrations share a fingerprint iff they are guaranteed to
    produce a bit-identical :class:`FacetCalibration`: same
    calibration-affecting config fields, same machine blueprint, same
    seed-namespace ``scheme`` (``"driver"`` or ``"replica"``), same
    facet position and coordinate.
    """
    items = tuple(
        (f.name, getattr(config, f.name))
        for f in dataclasses.fields(config)
        if f.name not in _CALIBRATION_EXCLUDED
    )
    blob = repr(
        (
            CALIB_CACHE_VERSION,
            _canonical(items),
            _canonical(blueprint),
            str(scheme),
            int(facet_index),
            None if facet is None else float(facet),
        )
    ).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


class CalibrationCache:
    """Disk-backed calibration store with an in-memory LRU front.

    ``get`` returns a cached :class:`FacetCalibration` or ``None`` —
    corrupt, stale, or unreadable entries count as misses, never raise.
    ``install`` writes an entry durably (framed, CRC'd, atomic rename);
    a failed write is swallowed too (the cache is an accelerator, not a
    correctness dependency).
    """

    def __init__(
        self, directory: "str | Path", max_memory_entries: int = 64
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_memory_entries = int(max_memory_entries)
        self._memory: "OrderedDict[str, FacetCalibration]" = OrderedDict()
        self.stats = {"hits": 0, "misses": 0, "installs": 0, "corrupt": 0}

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.calib"

    def _remember(self, key: str, entry: FacetCalibration) -> None:
        self._memory[key] = entry
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)

    # ------------------------------------------------------------------
    def get(self, key: str) -> FacetCalibration | None:
        entry = self._memory.get(key)
        if entry is not None:
            self._memory.move_to_end(key)
            self.stats["hits"] += 1
            return entry
        entry = self._read(key)
        if entry is None:
            self.stats["misses"] += 1
            return None
        self._remember(key, entry)
        self.stats["hits"] += 1
        return entry

    def _read(self, key: str) -> FacetCalibration | None:
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            self.stats["corrupt"] += 1
            return None
        if len(raw) < _FRAME.size:
            self.stats["corrupt"] += 1
            return None
        length, crc = _FRAME.unpack(raw[: _FRAME.size])
        blob = raw[_FRAME.size : _FRAME.size + length]
        if len(blob) < length or zlib.crc32(blob) != crc:
            self.stats["corrupt"] += 1
            return None
        try:
            version, stored_key, entry = pickle.loads(blob)
        except Exception:
            self.stats["corrupt"] += 1
            return None
        if (
            version != CALIB_CACHE_VERSION
            or stored_key != key
            or not isinstance(entry, FacetCalibration)
        ):
            # Stale format or a file renamed under a foreign key: a miss,
            # not an error — the entry will be recomputed and rewritten.
            self.stats["corrupt"] += 1
            return None
        return entry

    def install(self, key: str, entry: FacetCalibration) -> None:
        blob = pickle.dumps(
            (CALIB_CACHE_VERSION, key, entry),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        framed = _FRAME.pack(len(blob), zlib.crc32(blob)) + blob
        tmp = None
        try:
            fd, tmp = tempfile.mkstemp(
                dir=self.directory, prefix=".calib-tmp-"
            )
            with os.fdopen(fd, "wb") as fh:
                fh.write(framed)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self._path(key))
            tmp = None
        except OSError:
            # A read-only or full cache directory must not fail the
            # campaign; the entry just is not persisted this run.
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        self._remember(key, entry)
        self.stats["installs"] += 1


#: stats of the most recent executor run that had a cache attached, for
#: the CLI summary line and the ``--profile`` breakdown (one campaign
#: per CLI process, so a module global is unambiguous there)
_LAST_RUN_STATS: dict | None = None


def record_run_stats(stats: dict) -> None:
    global _LAST_RUN_STATS
    _LAST_RUN_STATS = dict(stats)


def last_run_stats() -> dict | None:
    return None if _LAST_RUN_STATS is None else dict(_LAST_RUN_STATS)
