"""CSV persistence with the LATEST naming convention (paper Sec. VI).

"After each frequency pair measurement, the switching latencies are output
to a .csv file.  The .csv filename contains the initial, the target
frequency, the hostname, and the index of the benchmarked GPU."
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.core.results import (
    CampaignResult,
    PairResult,
    SwitchingLatencyMeasurement,
)
from repro.errors import MeasurementError

__all__ = [
    "pair_csv_name",
    "write_pair_csv",
    "read_pair_csv",
    "write_campaign_csvs",
    "write_summary_csv",
]

_FIELDS = [
    "index",
    "latency_ms",
    "ts_acc_s",
    "te_acc_s",
    "n_valid_sm",
    "window_iterations",
    "cluster_label",
    "is_outlier",
    "ground_truth_ms",
    "ground_truth_outlier",
]


def pair_csv_name(
    init_mhz: float, target_mhz: float, hostname: str, device_index: int
) -> str:
    """Standardized per-pair file name."""
    return (
        f"swlat_{init_mhz:g}_{target_mhz:g}_{hostname}_gpu{device_index}.csv"
    )


def write_pair_csv(
    directory: str | Path,
    pair: PairResult,
    hostname: str,
    device_index: int,
) -> Path:
    """Write one pair's measurements; returns the file path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / pair_csv_name(
        pair.init_mhz, pair.target_mhz, hostname, device_index
    )
    labels = (
        pair.outliers.labels
        if pair.outliers is not None
        else np.zeros(len(pair.measurements), dtype=int)
    )
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_FIELDS)
        writer.writeheader()
        for i, m in enumerate(pair.measurements):
            writer.writerow(
                {
                    "index": i,
                    "latency_ms": f"{m.latency_s * 1e3:.6f}",
                    "ts_acc_s": f"{m.ts_acc:.9f}",
                    "te_acc_s": f"{m.te_acc:.9f}",
                    "n_valid_sm": m.n_valid_sm,
                    "window_iterations": m.window_iterations,
                    "cluster_label": int(labels[i]),
                    "is_outlier": int(labels[i] == -1),
                    "ground_truth_ms": (
                        f"{m.ground_truth_s * 1e3:.6f}"
                        if m.ground_truth_s is not None
                        else ""
                    ),
                    "ground_truth_outlier": int(m.ground_truth_outlier),
                }
            )
    return path


def read_pair_csv(path: str | Path) -> PairResult:
    """Load a per-pair CSV back into a :class:`PairResult`.

    The frequencies are recovered from the standardized file name; cluster
    labels are restored as plain arrays (the DBSCAN descent trace is not
    persisted).
    """
    path = Path(path)
    parts = path.stem.split("_")
    if len(parts) < 4 or parts[0] != "swlat":
        raise MeasurementError(f"not a pair CSV: {path.name}")
    init_mhz, target_mhz = float(parts[1]), float(parts[2])

    measurements: list[SwitchingLatencyMeasurement] = []
    with path.open() as fh:
        for row in csv.DictReader(fh):
            gt = row.get("ground_truth_ms", "")
            measurements.append(
                SwitchingLatencyMeasurement(
                    latency_s=float(row["latency_ms"]) * 1e-3,
                    ts_acc=float(row["ts_acc_s"]),
                    te_acc=float(row["te_acc_s"]),
                    n_valid_sm=int(row["n_valid_sm"]),
                    window_iterations=int(row["window_iterations"]),
                    ground_truth_s=float(gt) * 1e-3 if gt else None,
                    ground_truth_outlier=bool(int(row["ground_truth_outlier"])),
                )
            )
    return PairResult(
        init_mhz=init_mhz, target_mhz=target_mhz, measurements=measurements
    )


def write_campaign_csvs(directory: str | Path, result: CampaignResult) -> list[Path]:
    """Write every measured pair plus the campaign summary."""
    paths = [
        write_pair_csv(directory, pair, result.hostname, result.device_index)
        for pair in result.iter_measured()
    ]
    paths.append(write_summary_csv(directory, result))
    return paths


def write_summary_csv(directory: str | Path, result: CampaignResult) -> Path:
    """One row per pair: status and headline statistics."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / (
        f"summary_{result.hostname}_gpu{result.device_index}.csv"
    )
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            [
                "init_mhz",
                "target_mhz",
                "status",
                "n_measurements",
                "n_outliers",
                "min_ms",
                "mean_ms",
                "max_ms",
                "n_clusters",
            ]
        )
        for pair in result.pairs.values():
            if pair.skipped or pair.n_measurements == 0:
                writer.writerow(
                    [
                        f"{pair.init_mhz:g}",
                        f"{pair.target_mhz:g}",
                        pair.skip_reason or "empty",
                        0, 0, "", "", "", 0,
                    ]
                )
                continue
            stats = pair.stats(without_outliers=True)
            n_out = (
                int(pair.outliers.outlier_mask.sum())
                if pair.outliers is not None
                else 0
            )
            writer.writerow(
                [
                    f"{pair.init_mhz:g}",
                    f"{pair.target_mhz:g}",
                    "ok",
                    pair.n_measurements,
                    n_out,
                    f"{stats.minimum * 1e3:.6f}",
                    f"{stats.mean * 1e3:.6f}",
                    f"{stats.maximum * 1e3:.6f}",
                    pair.n_clusters,
                ]
            )
    return path
