"""CSV persistence with the LATEST naming convention (paper Sec. VI).

"After each frequency pair measurement, the switching latencies are output
to a .csv file.  The .csv filename contains the initial, the target
frequency, the hostname, and the index of the benchmarked GPU."

Core×memory campaigns write ``swlatm_`` files carrying the locked memory
clock as an extra field between the target frequency and the hostname.
The distinct prefix keeps parsing unambiguous in both directions: a
``swlat_`` name can never yield a memory clock (even for pre-extension
archives whose unsanitized hostname happens to start with ``mem<digits>_``),
and a ``swlatm_`` name always carries one.

Memory-*axis* campaigns (:mod:`repro.core.axis`) reuse the same
prefix convention: ``swlatmem_`` files carry memory-clock pairs in the
frequency fields (the locked SM clock lives in the campaign summary, not
the file name).  The prefix family — ``swlat`` / ``swlatm`` / ``swlatmem``
— is the axis tag, so every name round-trips to the right
:class:`~repro.core.results.PairResult` axis without side-band metadata.

Hostnames are sanitized on write (only ``[A-Za-z0-9.-]`` survives — a
hostname containing ``/`` or leading dots must not be able to escape the
output directory or collide with the ``swlat_`` field layout) and names are
validated on read: anything that does not match the convention raises
:class:`~repro.errors.MeasurementError` instead of silently recovering
wrong frequencies.
"""

from __future__ import annotations

import csv
import re
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.results import (
    CampaignResult,
    OutlierLabels,
    PairResult,
    SwitchingLatencyMeasurement,
)
from repro.errors import MeasurementError

__all__ = [
    "PairCsvName",
    "pair_csv_name",
    "parse_pair_csv_name",
    "parse_pair_csv_name_full",
    "sanitize_hostname",
    "write_pair_csv",
    "read_pair_csv",
    "write_campaign_csvs",
    "write_summary_csv",
]

_FIELDS = [
    "index",
    "latency_ms",
    "ts_acc_s",
    "te_acc_s",
    "n_valid_sm",
    "window_iterations",
    "cluster_label",
    "is_outlier",
    "ground_truth_ms",
    "ground_truth_outlier",
]

#: characters allowed to survive in a hostname embedded in a file name
_HOST_UNSAFE_RE = re.compile(r"[^A-Za-z0-9.-]")

#: the full naming convention; the host part is greedy so hostnames may
#: contain underscores (the frequency fields sit at fixed positions), the
#: memory field exists exactly when the prefix is ``swlatm``, and the
#: ``swlatmem`` prefix marks memory-axis pairs (frequency fields are
#: memory clocks, no extra field)
_NAME_RE = re.compile(
    r"^swlat(?:(?P<axismem>mem)|(?P<grid>m))?"
    r"_(?P<init>[0-9.eE+-]+)_(?P<target>[0-9.eE+-]+)"
    r"(?(grid)_(?P<mem>[0-9.eE+-]+))"
    r"_(?P<host>.+)_gpu(?P<index>\d+)$"
)


def sanitize_hostname(hostname: str) -> str:
    """Make a hostname safe to embed in a pair CSV file name.

    Path separators, ``..`` runs and anything outside ``[A-Za-z0-9.-]``
    are replaced/stripped; an empty result falls back to ``"host"`` so the
    name always keeps its field count.
    """
    cleaned = _HOST_UNSAFE_RE.sub("-", hostname).lstrip(".")
    return cleaned or "host"


def pair_csv_name(
    init_mhz: float,
    target_mhz: float,
    hostname: str,
    device_index: int,
    memory_mhz: float | None = None,
    axis: str = "sm_core",
) -> str:
    """Standardized per-pair file name (hostname sanitized).

    The prefix encodes the axis/facet kind: ``swlat`` for legacy SM
    pairs, ``swlatm`` for SM pairs at a locked memory clock (the extra
    field), ``swlatmem`` for memory-axis pairs.
    """
    if axis == "memory":
        if memory_mhz is not None:
            raise MeasurementError(
                "memory-axis pairs carry no memory facet field (their "
                "frequencies *are* memory clocks)"
            )
        prefix, mem = "swlatmem", ""
    else:
        prefix = "swlat" if memory_mhz is None else "swlatm"
        mem = "" if memory_mhz is None else f"{memory_mhz:g}_"
    return (
        f"{prefix}_{init_mhz:g}_{target_mhz:g}_{mem}"
        f"{sanitize_hostname(hostname)}_gpu{device_index}.csv"
    )


def write_pair_csv(
    directory: str | Path,
    pair: PairResult,
    hostname: str,
    device_index: int,
) -> Path:
    """Write one pair's measurements; returns the file path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / pair_csv_name(
        pair.init_mhz, pair.target_mhz, hostname, device_index,
        memory_mhz=pair.memory_mhz, axis=pair.axis,
    )
    labels = (
        pair.outliers.labels
        if pair.outliers is not None
        else np.zeros(len(pair.measurements), dtype=int)
    )
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_FIELDS)
        writer.writeheader()
        for i, m in enumerate(pair.measurements):
            writer.writerow(
                {
                    "index": i,
                    "latency_ms": f"{m.latency_s * 1e3:.6f}",
                    "ts_acc_s": f"{m.ts_acc:.9f}",
                    "te_acc_s": f"{m.te_acc:.9f}",
                    "n_valid_sm": m.n_valid_sm,
                    "window_iterations": m.window_iterations,
                    "cluster_label": int(labels[i]),
                    "is_outlier": int(labels[i] == -1),
                    "ground_truth_ms": (
                        f"{m.ground_truth_s * 1e3:.6f}"
                        if m.ground_truth_s is not None
                        else ""
                    ),
                    "ground_truth_outlier": int(m.ground_truth_outlier),
                }
            )
    return path


@dataclass(frozen=True)
class PairCsvName:
    """Every field recovered from a standardized pair CSV file name."""

    init_mhz: float
    target_mhz: float
    memory_mhz: float | None
    axis: str


def parse_pair_csv_name_full(name: str) -> PairCsvName:
    """Recover all fields (including the axis) from a pair CSV file name.

    Raises :class:`MeasurementError` when the name does not follow the
    convention — silent misparses would attribute measurements to wrong
    frequencies downstream.
    """
    match = _NAME_RE.match(Path(name).stem)
    if match is None:
        raise MeasurementError(f"not a pair CSV: {name}")
    try:
        init_mhz = float(match["init"])
        target_mhz = float(match["target"])
        memory_mhz = float(match["mem"]) if match["mem"] is not None else None
    except ValueError:
        raise MeasurementError(
            f"malformed frequency fields in pair CSV name: {name}"
        ) from None
    axis = "memory" if match["axismem"] is not None else "sm_core"
    return PairCsvName(
        init_mhz=init_mhz,
        target_mhz=target_mhz,
        memory_mhz=memory_mhz,
        axis=axis,
    )


def parse_pair_csv_name(name: str) -> tuple[float, float, float | None]:
    """Recover ``(init, target, memory)`` from a pair CSV file name.

    The tuple form predates measurement axes; use
    :func:`parse_pair_csv_name_full` to also recover the axis a
    ``swlatmem_`` name carries.
    """
    parsed = parse_pair_csv_name_full(name)
    return parsed.init_mhz, parsed.target_mhz, parsed.memory_mhz


def read_pair_csv(path: str | Path) -> PairResult:
    """Load a per-pair CSV back into a :class:`PairResult`.

    The frequencies (and memory clock, when present) are recovered from
    the standardized file name; cluster labels are restored as an
    :class:`~repro.core.results.OutlierLabels` record (the DBSCAN descent
    trace is not persisted), so outlier filtering and a re-write are
    byte-stable against the original.

    One caveat the frozen CSV format cannot avoid: a pair persisted
    *before* clustering ever ran (``outliers=None``) writes the same
    all-zero label column as a genuine single-cluster/no-outlier result,
    so it reads back with ``n_clusters == 1`` rather than 0.  Masks,
    filtered latencies, and re-written bytes are identical either way.
    """
    path = Path(path)
    parsed = parse_pair_csv_name_full(path.name)

    measurements: list[SwitchingLatencyMeasurement] = []
    labels: list[int] = []
    with path.open() as fh:
        for row in csv.DictReader(fh):
            gt = row.get("ground_truth_ms", "")
            labels.append(int(row.get("cluster_label", 0) or 0))
            measurements.append(
                SwitchingLatencyMeasurement(
                    latency_s=float(row["latency_ms"]) * 1e-3,
                    ts_acc=float(row["ts_acc_s"]),
                    te_acc=float(row["te_acc_s"]),
                    n_valid_sm=int(row["n_valid_sm"]),
                    window_iterations=int(row["window_iterations"]),
                    ground_truth_s=float(gt) * 1e-3 if gt else None,
                    ground_truth_outlier=bool(int(row["ground_truth_outlier"])),
                )
            )
    outliers = (
        OutlierLabels(labels=np.asarray(labels, dtype=np.int64))
        if measurements
        else None
    )
    return PairResult(
        init_mhz=parsed.init_mhz,
        target_mhz=parsed.target_mhz,
        measurements=measurements,
        outliers=outliers,
        memory_mhz=parsed.memory_mhz,
        axis=parsed.axis,
    )


def write_campaign_csvs(directory: str | Path, result: CampaignResult) -> list[Path]:
    """Write every measured pair plus the campaign summary."""
    paths = [
        write_pair_csv(directory, pair, result.hostname, result.device_index)
        for pair in result.iter_measured()
    ]
    paths.append(write_summary_csv(directory, result))
    return paths


def write_summary_csv(directory: str | Path, result: CampaignResult) -> Path:
    """One row per pair: status and headline statistics.

    Core×memory campaigns add a ``memory_mhz`` column; non-default-axis
    campaigns add an ``axis`` column (and a ``#locked_sm_mhz`` metadata
    footer, grid-CSV style); legacy campaigns keep the original column
    set byte for byte.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / (
        f"summary_{sanitize_hostname(result.hostname)}"
        f"_gpu{result.device_index}.csv"
    )
    has_memory = result.memory_frequencies is not None
    tagged_axis = result.axis != "sm_core"
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        header = ["init_mhz", "target_mhz"]
        if tagged_axis:
            header.append("axis")
        if has_memory:
            header.append("memory_mhz")
        header += [
            "status",
            "n_measurements",
            "n_outliers",
            "min_ms",
            "mean_ms",
            "max_ms",
            "n_clusters",
        ]
        writer.writerow(header)
        for pair in result.pairs.values():
            prefix = [f"{pair.init_mhz:g}", f"{pair.target_mhz:g}"]
            if tagged_axis:
                prefix.append(pair.axis)
            if has_memory:
                prefix.append(
                    f"{pair.memory_mhz:g}" if pair.memory_mhz is not None else ""
                )
            if pair.skipped or pair.n_measurements == 0:
                writer.writerow(
                    prefix + [pair.skip_reason or "empty", 0, 0, "", "", "", 0]
                )
                continue
            stats = pair.stats(without_outliers=True)
            n_out = (
                int(pair.outliers.outlier_mask.sum())
                if pair.outliers is not None
                else 0
            )
            writer.writerow(
                prefix
                + [
                    "ok",
                    pair.n_measurements,
                    n_out,
                    f"{stats.minimum * 1e3:.6f}",
                    f"{stats.mean * 1e3:.6f}",
                    f"{stats.maximum * 1e3:.6f}",
                    pair.n_clusters,
                ]
            )
        if tagged_axis and result.locked_sm_mhz is not None:
            writer.writerow(["#locked_sm_mhz", f"{result.locked_sm_mhz:g}"])
    return path
