"""CSV persistence with the LATEST naming convention (paper Sec. VI).

"After each frequency pair measurement, the switching latencies are output
to a .csv file.  The .csv filename contains the initial, the target
frequency, the hostname, and the index of the benchmarked GPU."

Core×memory campaigns write ``swlatm_`` files carrying the locked memory
clock as an extra field between the target frequency and the hostname.
The distinct prefix keeps parsing unambiguous in both directions: a
``swlat_`` name can never yield a memory clock (even for pre-extension
archives whose unsanitized hostname happens to start with ``mem<digits>_``),
and a ``swlatm_`` name always carries one.

Non-default *axis* campaigns (:mod:`repro.core.axis`) reuse the same
prefix convention: each registered axis owns a prefix (``swlatmem_`` for
memory-clock pairs, ``swlatpow_`` for power-limit pairs in watts); the
locked SM clock of a single-facet campaign lives in the campaign summary,
not the file name.  Multi-facet sweeps (several locked SM clocks) append
``f`` to the axis prefix and carry the facet clock as an extra field —
mirroring how ``swlatm_`` extends ``swlat_``: ``swlatmemf_1215_810_1410_…``
is the 1215→810 MHz memory pair measured at a locked 1410 MHz SM clock.
The prefix family is the axis/facet tag, so every name round-trips to the
right :class:`~repro.core.results.PairResult` axis without side-band
metadata; the prefix table is built from the axis registry, so a new axis
gets a parseable name family for free.

Hostnames are sanitized on write (only ``[A-Za-z0-9.-]`` survives — a
hostname containing ``/`` or leading dots must not be able to escape the
output directory or collide with the ``swlat_`` field layout) and names are
validated on read: anything that does not match the convention raises
:class:`~repro.errors.MeasurementError` instead of silently recovering
wrong frequencies.
"""

from __future__ import annotations

import csv
import os
import re
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.axis import AXES, axis_by_name
from repro.core.results import (
    CampaignResult,
    OutlierLabels,
    PairResult,
    ResultAccumulator,
    SwitchingLatencyMeasurement,
)
from repro.core.stream import (
    CampaignFinished,
    CampaignSink,
    CampaignStarted,
    PairMeasured,
)
from repro.errors import MeasurementError

__all__ = [
    "CsvStreamSink",
    "PairCsvName",
    "pair_csv_name",
    "parse_pair_csv_name",
    "parse_pair_csv_name_full",
    "sanitize_hostname",
    "summary_interrupted",
    "write_pair_csv",
    "read_pair_csv",
    "write_campaign_csvs",
    "write_summary_csv",
]

_FIELDS = [
    "index",
    "latency_ms",
    "ts_acc_s",
    "te_acc_s",
    "n_valid_sm",
    "window_iterations",
    "cluster_label",
    "is_outlier",
    "ground_truth_ms",
    "ground_truth_outlier",
]

#: characters allowed to survive in a hostname embedded in a file name
_HOST_UNSAFE_RE = re.compile(r"[^A-Za-z0-9.-]")

#: a frequency/limit field of a pair CSV name
_FIELD = r"[0-9.eE+-]+"
#: name body after the prefix; the host part is greedy so hostnames may
#: contain underscores (the numeric fields sit at fixed positions)
_PAIR_BODY_RE = re.compile(
    rf"^(?P<init>{_FIELD})_(?P<target>{_FIELD})"
    rf"_(?P<host>.+)_gpu(?P<index>\d+)$"
)
#: body of prefixes that carry a facet field (``swlatm`` grid names, and
#: every ``<axis prefix>f`` multi-facet name)
_FACET_BODY_RE = re.compile(
    rf"^(?P<init>{_FIELD})_(?P<target>{_FIELD})_(?P<facet>{_FIELD})"
    rf"_(?P<host>.+)_gpu(?P<index>\d+)$"
)


def _prefix_table() -> dict[str, tuple[str, bool]]:
    """``prefix -> (axis name, carries facet field)``, registry-driven.

    Built on demand from :data:`repro.core.axis.AXES` so a newly
    registered axis parses without touching this module.  The two legacy
    prefixes keep their historical meaning: ``swlat`` (fixed-memory SM
    pairs) and ``swlatm`` (SM pairs at a locked memory clock).
    """
    table: dict[str, tuple[str, bool]] = {
        "swlat": ("sm_core", False),
        "swlatm": ("sm_core", True),
    }
    for ax in AXES.values():
        if ax.is_default:
            continue
        table[ax.csv_prefix] = (ax.name, False)
        table[ax.csv_prefix + "f"] = (ax.name, True)
    return table


def sanitize_hostname(hostname: str) -> str:
    """Make a hostname safe to embed in a pair CSV file name.

    Path separators, ``..`` runs and anything outside ``[A-Za-z0-9.-]``
    are replaced/stripped; an empty result falls back to ``"host"`` so the
    name always keeps its field count.
    """
    cleaned = _HOST_UNSAFE_RE.sub("-", hostname).lstrip(".")
    return cleaned or "host"


def pair_csv_name(
    init_mhz: float,
    target_mhz: float,
    hostname: str,
    device_index: int,
    memory_mhz: float | None = None,
    axis: str = "sm_core",
    locked_sm_mhz: float | None = None,
) -> str:
    """Standardized per-pair file name (hostname sanitized).

    The prefix encodes the axis/facet kind: ``swlat`` for legacy SM
    pairs, ``swlatm`` for SM pairs at a locked memory clock (the extra
    field), the axis's own prefix (``swlatmem``, ``swlatpow``, ...) for
    non-default-axis pairs — with an ``f`` suffix and the locked-SM facet
    as the extra field when the pair belongs to a multi-facet sweep.
    """
    if axis != "sm_core":
        if memory_mhz is not None:
            raise MeasurementError(
                f"{axis}-axis pairs carry no memory facet field (the "
                "locked complement is the SM clock)"
            )
        prefix = axis_by_name(axis).csv_prefix
        facet = ""
        if locked_sm_mhz is not None:
            prefix += "f"
            facet = f"{locked_sm_mhz:g}_"
    else:
        if locked_sm_mhz is not None:
            raise MeasurementError(
                "locked-SM facet fields only apply to non-default axes "
                "(the sm_core axis sweeps the SM clock itself)"
            )
        prefix = "swlat" if memory_mhz is None else "swlatm"
        facet = "" if memory_mhz is None else f"{memory_mhz:g}_"
    return (
        f"{prefix}_{init_mhz:g}_{target_mhz:g}_{facet}"
        f"{sanitize_hostname(hostname)}_gpu{device_index}.csv"
    )


@contextmanager
def _atomic_write(path: Path):
    """Write-then-rename so readers never see a half-written CSV.

    A campaign killed mid-write (crash, SIGKILL, power loss) must not
    leave a truncated file under the standardized name — downstream
    analysis would parse it as a short-but-valid campaign.  The temp file
    lives in the same directory so ``os.replace`` stays atomic (same
    filesystem); on error it is removed and the original, if any,
    survives untouched.
    """
    tmp = path.with_name(path.name + ".tmp")
    fh = tmp.open("w", newline="")
    try:
        yield fh
        fh.close()
        os.replace(tmp, path)
    except BaseException:
        fh.close()
        try:
            tmp.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass
        raise


def write_pair_csv(
    directory: str | Path,
    pair: PairResult,
    hostname: str,
    device_index: int,
) -> Path:
    """Write one pair's measurements; returns the file path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / pair_csv_name(
        pair.init_mhz, pair.target_mhz, hostname, device_index,
        memory_mhz=pair.memory_mhz, axis=pair.axis,
        locked_sm_mhz=pair.locked_sm_mhz,
    )
    labels = (
        pair.outliers.labels
        if pair.outliers is not None
        else np.zeros(len(pair.measurements), dtype=int)
    )
    with _atomic_write(path) as fh:
        writer = csv.DictWriter(fh, fieldnames=_FIELDS)
        writer.writeheader()
        for i, m in enumerate(pair.measurements):
            writer.writerow(
                {
                    "index": i,
                    "latency_ms": f"{m.latency_s * 1e3:.6f}",
                    "ts_acc_s": f"{m.ts_acc:.9f}",
                    "te_acc_s": f"{m.te_acc:.9f}",
                    "n_valid_sm": m.n_valid_sm,
                    "window_iterations": m.window_iterations,
                    "cluster_label": int(labels[i]),
                    "is_outlier": int(labels[i] == -1),
                    "ground_truth_ms": (
                        f"{m.ground_truth_s * 1e3:.6f}"
                        if m.ground_truth_s is not None
                        else ""
                    ),
                    "ground_truth_outlier": int(m.ground_truth_outlier),
                }
            )
    return path


@dataclass(frozen=True)
class PairCsvName:
    """Every field recovered from a standardized pair CSV file name."""

    init_mhz: float
    target_mhz: float
    memory_mhz: float | None
    axis: str
    #: locked-SM facet of a multi-facet swept-axis name (``None`` for
    #: single-facet and default-axis names)
    locked_sm_mhz: float | None = None


def parse_pair_csv_name_full(name: str) -> PairCsvName:
    """Recover all fields (including the axis) from a pair CSV file name.

    Raises :class:`MeasurementError` when the name does not follow the
    convention — silent misparses would attribute measurements to wrong
    frequencies downstream.
    """
    stem = Path(name).stem
    prefix, sep, body = stem.partition("_")
    kind = _prefix_table().get(prefix)
    if not sep or kind is None:
        raise MeasurementError(f"not a pair CSV: {name}")
    axis, has_facet = kind
    match = (_FACET_BODY_RE if has_facet else _PAIR_BODY_RE).match(body)
    if match is None:
        raise MeasurementError(f"not a pair CSV: {name}")
    try:
        init_mhz = float(match["init"])
        target_mhz = float(match["target"])
        facet = float(match["facet"]) if has_facet else None
    except ValueError:
        raise MeasurementError(
            f"malformed frequency fields in pair CSV name: {name}"
        ) from None
    grid = axis == "sm_core" and has_facet
    return PairCsvName(
        init_mhz=init_mhz,
        target_mhz=target_mhz,
        memory_mhz=facet if grid else None,
        axis=axis,
        locked_sm_mhz=facet if (has_facet and not grid) else None,
    )


def parse_pair_csv_name(name: str) -> tuple[float, float, float | None]:
    """Recover ``(init, target, memory)`` from a pair CSV file name.

    The tuple form predates measurement axes; use
    :func:`parse_pair_csv_name_full` to also recover the axis a
    ``swlatmem_`` name carries.
    """
    parsed = parse_pair_csv_name_full(name)
    return parsed.init_mhz, parsed.target_mhz, parsed.memory_mhz


def read_pair_csv(path: str | Path) -> PairResult:
    """Load a per-pair CSV back into a :class:`PairResult`.

    The frequencies (and memory clock, when present) are recovered from
    the standardized file name; cluster labels are restored as an
    :class:`~repro.core.results.OutlierLabels` record (the DBSCAN descent
    trace is not persisted), so outlier filtering and a re-write are
    byte-stable against the original.

    One caveat the frozen CSV format cannot avoid: a pair persisted
    *before* clustering ever ran (``outliers=None``) writes the same
    all-zero label column as a genuine single-cluster/no-outlier result,
    so it reads back with ``n_clusters == 1`` rather than 0.  Masks,
    filtered latencies, and re-written bytes are identical either way.
    """
    path = Path(path)
    parsed = parse_pair_csv_name_full(path.name)

    measurements: list[SwitchingLatencyMeasurement] = []
    labels: list[int] = []
    with path.open() as fh:
        for row in csv.DictReader(fh):
            gt = row.get("ground_truth_ms", "")
            labels.append(int(row.get("cluster_label", 0) or 0))
            measurements.append(
                SwitchingLatencyMeasurement(
                    latency_s=float(row["latency_ms"]) * 1e-3,
                    ts_acc=float(row["ts_acc_s"]),
                    te_acc=float(row["te_acc_s"]),
                    n_valid_sm=int(row["n_valid_sm"]),
                    window_iterations=int(row["window_iterations"]),
                    ground_truth_s=float(gt) * 1e-3 if gt else None,
                    ground_truth_outlier=bool(int(row["ground_truth_outlier"])),
                )
            )
    outliers = (
        OutlierLabels(labels=np.asarray(labels, dtype=np.int64))
        if measurements
        else None
    )
    return PairResult(
        init_mhz=parsed.init_mhz,
        target_mhz=parsed.target_mhz,
        measurements=measurements,
        outliers=outliers,
        memory_mhz=parsed.memory_mhz,
        axis=parsed.axis,
        locked_sm_mhz=parsed.locked_sm_mhz,
    )


class CsvStreamSink(CampaignSink):
    """Incremental CSV output driven by the campaign event stream.

    Writes each measured pair's CSV the moment its
    :class:`~repro.core.stream.PairMeasured` event arrives — including
    journal replays on resume — instead of waiting for the campaign to
    finish, and the campaign summary on
    :class:`~repro.core.stream.CampaignFinished`.  Because
    :func:`write_pair_csv` is a pure function of the pair (and the
    atomic write-then-rename makes re-writes idempotent), the final
    directory contents are byte-identical to a single
    :func:`write_campaign_csvs` call on the completed result, for every
    execution tier and completion order.

    An interrupted campaign leaves the pair CSVs written so far (each
    complete and valid — the durable observable counterpart of the
    journal) plus a *partial* summary terminated by a ``# interrupted``
    footer row (written from the :meth:`on_interrupt` hook).  The footer
    disambiguates the three terminal states ``--resume`` tooling can
    meet: a summary without the footer is a completed campaign, a
    summary *with* it is a cleanly-interrupted one, and pair CSVs with
    no summary at all mean the driver died mid-write (the atomic
    write-then-rename never leaves a truncated summary).
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.paths: list[Path] = []
        self._accumulator = ResultAccumulator()
        self._hostname = "host"
        self._device_index = 0

    def on_event(self, event) -> None:
        self._accumulator.on_event(event)
        if isinstance(event, CampaignStarted):
            self._hostname = event.hostname
            self._device_index = event.device_index
        elif isinstance(event, PairMeasured):
            pair = event.pair
            if not pair.skipped and pair.n_measurements > 0:
                self.paths.append(
                    write_pair_csv(
                        self.directory,
                        pair,
                        self._hostname,
                        self._device_index,
                    )
                )
        elif isinstance(event, CampaignFinished):
            self.paths.append(
                write_summary_csv(self.directory, self._accumulator.result())
            )

    def on_interrupt(self) -> None:
        """Write the partial summary with its ``# interrupted`` footer.

        No-op before ``CampaignStarted`` (nothing is known about the
        campaign yet, and no pair CSV was written either).
        """
        try:
            result = self._accumulator.partial_result()
        except MeasurementError:
            return
        self.paths.append(
            write_summary_csv(self.directory, result, interrupted=True)
        )


def summary_interrupted(path: str | Path) -> bool:
    """Whether a summary CSV carries the ``# interrupted`` footer.

    ``--resume`` tooling uses this to tell a cleanly-interrupted
    campaign (partial summary, footer present) from a completed one
    (summary, no footer); a missing summary means the driver crashed
    before the interrupt hook could run.
    """
    last = ""
    with Path(path).open() as fh:
        for line in fh:
            if line.strip():
                last = line.strip()
    return last.startswith("# interrupted")


def write_campaign_csvs(directory: str | Path, result: CampaignResult) -> list[Path]:
    """Write every measured pair plus the campaign summary."""
    paths = [
        write_pair_csv(directory, pair, result.hostname, result.device_index)
        for pair in result.iter_measured()
    ]
    paths.append(write_summary_csv(directory, result))
    return paths


def write_summary_csv(
    directory: str | Path,
    result: CampaignResult,
    interrupted: bool = False,
) -> Path:
    """One row per pair: status and headline statistics.

    Core×memory campaigns add a ``memory_mhz`` column; non-default-axis
    campaigns add an ``axis`` column (and, single-facet, a
    ``#locked_sm_mhz`` metadata footer, grid-CSV style); multi-facet
    sweeps add a ``locked_sm_mhz`` column instead; legacy campaigns keep
    the original column set byte for byte.  ``interrupted=True`` writes
    a partial summary (only the pairs that streamed before the
    interrupt) terminated by a ``# interrupted`` footer row — see
    :class:`CsvStreamSink` for the three-way terminal-state contract.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / (
        f"summary_{sanitize_hostname(result.hostname)}"
        f"_gpu{result.device_index}.csv"
    )
    has_memory = result.memory_frequencies is not None
    has_sm_facets = result.locked_sm_frequencies is not None
    tagged_axis = result.axis != "sm_core"
    with _atomic_write(path) as fh:
        writer = csv.writer(fh)
        header = ["init_mhz", "target_mhz"]
        if tagged_axis:
            header.append("axis")
        if has_memory:
            header.append("memory_mhz")
        if has_sm_facets:
            header.append("locked_sm_mhz")
        header += [
            "status",
            "n_measurements",
            "n_outliers",
            "min_ms",
            "mean_ms",
            "max_ms",
            "n_clusters",
        ]
        writer.writerow(header)
        for pair in result.pairs.values():
            prefix = [f"{pair.init_mhz:g}", f"{pair.target_mhz:g}"]
            if tagged_axis:
                prefix.append(pair.axis)
            if has_memory:
                prefix.append(
                    f"{pair.memory_mhz:g}" if pair.memory_mhz is not None else ""
                )
            if has_sm_facets:
                prefix.append(
                    f"{pair.locked_sm_mhz:g}"
                    if pair.locked_sm_mhz is not None
                    else ""
                )
            if pair.skipped or pair.n_measurements == 0:
                writer.writerow(
                    prefix + [pair.skip_reason or "empty", 0, 0, "", "", "", 0]
                )
                continue
            stats = pair.stats(without_outliers=True)
            n_out = (
                int(pair.outliers.outlier_mask.sum())
                if pair.outliers is not None
                else 0
            )
            writer.writerow(
                prefix
                + [
                    "ok",
                    pair.n_measurements,
                    n_out,
                    f"{stats.minimum * 1e3:.6f}",
                    f"{stats.mean * 1e3:.6f}",
                    f"{stats.maximum * 1e3:.6f}",
                    pair.n_clusters,
                ]
            )
        if tagged_axis and result.locked_sm_mhz is not None:
            writer.writerow(["#locked_sm_mhz", f"{result.locked_sm_mhz:g}"])
        if interrupted:
            writer.writerow(["# interrupted"])
    return path
