"""Phase 1: warm-up, per-frequency characterization, pair validation.

Paper Algorithm 1.  For every benchmark frequency the workload runs in
several kernels — the warm-up kernels stabilize temperature and clocks, the
final kernel's iteration times yield the frequency's mean execution time
and standard deviation.  Every ordered frequency pair is then tested with
the difference confidence interval: pairs whose interval *includes* zero
are statistically indistinguishable and excluded from the benchmark.

(The paper's pseudocode writes the accept condition as ``lbDiff > 0 and
hbDiff < 0``, which is unsatisfiable — an evident typo for the interval
*excluding* zero, i.e. ``lbDiff > 0 or hbDiff < 0``.  We implement the
latter; DESIGN.md records the deviation.)

When requested pairs fail validation, the methodology's remedy applies:
"this phase should be repeated with more workload per iteration" — the
campaign grows ``cycles_per_iteration`` and re-characterizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.core.context import BenchContext
from repro.cuda.kernel import MicrobenchmarkKernel
from repro.errors import MeasurementError
from repro.stats.descriptive import SampleStats, summarize
from repro.stats.intervals import difference_ci, two_sigma_band

__all__ = ["FrequencyCharacterization", "Phase1Result", "run_phase1"]


@dataclass(frozen=True)
class FrequencyCharacterization:
    """Iteration-time statistics for one locked swept-axis frequency."""

    freq_mhz: float
    stats: SampleStats
    n_kernels: int

    def band(self, sigmas: float = 2.0) -> tuple[float, float]:
        """The +/- ``sigmas``-standard-deviation acceptance band."""
        return two_sigma_band(self.stats, sigmas)


@dataclass
class Phase1Result:
    """Characterizations plus validated/rejected pairs."""

    characterizations: dict[float, FrequencyCharacterization]
    valid_pairs: list[tuple[float, float]]
    rejected_pairs: list[tuple[float, float]]
    kernel: MicrobenchmarkKernel
    growth_steps: int = 0
    #: frequencies the device could not settle on (power caps make the
    #: locked clock unservable); pairs touching them are skipped
    unreachable: dict[float, str] = field(default_factory=dict)

    def stats_for(self, freq_mhz: float) -> SampleStats:
        try:
            return self.characterizations[float(freq_mhz)].stats
        except KeyError:
            raise MeasurementError(
                f"frequency {freq_mhz:g} MHz was not characterized"
            ) from None

    def is_valid_pair(self, init_mhz: float, target_mhz: float) -> bool:
        return (float(init_mhz), float(target_mhz)) in set(self.valid_pairs)


def characterize_frequency(
    bench: BenchContext, freq_mhz: float, kernel: MicrobenchmarkKernel
) -> FrequencyCharacterization:
    """Run warm-up kernels then the measurement kernel at one frequency.

    Settling first matters: transitions *into* pathological frequency
    bands take hundreds of milliseconds, and characterizing before the
    clock arrived would contaminate the per-frequency statistics every
    later phase depends on.
    """
    cfg = bench.config
    if not bench.settle_swept(freq_mhz):
        raise MeasurementError(
            f"{bench.axis.describe()} did not settle on {freq_mhz:g} "
            f"{bench.axis.unit} during phase 1"
        )
    for _ in range(cfg.warmup_kernels):
        bench.run_filler(cfg.warmup_kernel_duration_s, freq_mhz)
    view = bench.cuda.run(kernel)
    # Only the last kernel's iterations feed the statistics (Algorithm 1
    # line 4-6); earlier kernels absorbed wake-up and settling transients.
    stats = summarize(view.diffs)
    return FrequencyCharacterization(
        freq_mhz=freq_mhz, stats=stats, n_kernels=cfg.warmup_kernels + 1
    )


def validate_pairs(
    characterizations: dict[float, FrequencyCharacterization],
    pairs: list[tuple[float, float]],
    confidence: float,
) -> tuple[list[tuple[float, float]], list[tuple[float, float]]]:
    """Split pairs into (valid, rejected) via the difference CI test."""
    valid: list[tuple[float, float]] = []
    rejected: list[tuple[float, float]] = []
    for init, target in pairs:
        a = characterizations[init].stats
        b = characterizations[target].stats
        lb, hb = difference_ci(a, b, confidence)
        if lb > 0.0 or hb < 0.0:
            valid.append((init, target))
        else:
            rejected.append((init, target))
    return valid, rejected


def run_phase1(bench: BenchContext) -> Phase1Result:
    """Characterize all frequencies, growing the workload if needed.

    Frequencies the device cannot settle on (e.g. locked clocks above the
    board power budget) are recorded as unreachable; every pair touching
    them is excluded — the tool's power-throttle skip rule applied at the
    earliest point it can be detected.
    """
    from repro.gpusim.thermal import ThrottleReasons

    cfg = bench.config
    kernel = bench.base_kernel()

    growth = 0
    while True:
        characterizations: dict[float, FrequencyCharacterization] = {}
        unreachable: dict[float, str] = {}
        for f in cfg.frequencies:
            try:
                characterizations[float(f)] = characterize_frequency(
                    bench, f, kernel
                )
            except MeasurementError:
                reasons = bench.handle.current_clocks_throttle_reasons()
                # On the power-cap axis SW_POWER_CAP is the measured
                # signal, not a hazard (axis.benign_throttle); a settle
                # failure there is a plain never-settled.
                power_hazard = (
                    ThrottleReasons.SW_POWER_CAP & ~bench.axis.benign_throttle
                )
                if reasons & power_hazard:
                    unreachable[float(f)] = "power-throttled"
                else:
                    unreachable[float(f)] = "never-settled"

        pairs = [
            (a, b)
            for a, b in cfg.pairs()
            if a not in unreachable and b not in unreachable
        ]
        valid, rejected = validate_pairs(characterizations, pairs, cfg.confidence)
        if not rejected or growth >= cfg.max_workload_growth:
            return Phase1Result(
                characterizations=characterizations,
                valid_pairs=valid,
                rejected_pairs=rejected,
                kernel=kernel,
                growth_steps=growth,
                unreachable=unreachable,
            )
        # Indistinguishable pairs: grow per-iteration work and retry
        # (paper Sec. IV / Algorithm 1 commentary).
        growth += 1
        kernel = kernel.scaled(iteration_factor=cfg.workload_growth_factor)
