"""Result containers for switching-latency campaigns."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.clustering.adaptive import AdaptiveDbscanResult
from repro.errors import MeasurementError
from repro.stats.descriptive import SampleStats, summarize

__all__ = ["PairKey", "SwitchingLatencyMeasurement", "PairResult", "CampaignResult"]

#: (initial_mhz, target_mhz)
PairKey = tuple[float, float]


@dataclass(frozen=True)
class SwitchingLatencyMeasurement:
    """One accepted switching-latency measurement.

    ``ground_truth_s`` is simulator introspection: the actual injected
    latency for the transition (unavailable on physical hardware — used to
    validate the methodology itself).  ``ground_truth_outlier`` marks
    measurements whose transition draw included the driver-noise outlier
    process.
    """

    latency_s: float
    ts_acc: float
    te_acc: float
    n_valid_sm: int
    window_iterations: int
    ground_truth_s: float | None = None
    ground_truth_outlier: bool = False


@dataclass
class PairResult:
    """Everything measured for one (initial, target) frequency pair."""

    init_mhz: float
    target_mhz: float
    measurements: list[SwitchingLatencyMeasurement] = field(default_factory=list)
    outliers: AdaptiveDbscanResult | None = None
    skipped: bool = False
    skip_reason: str = ""
    n_failed_attempts: int = 0
    n_throttle_discards: int = 0
    n_window_growths: int = 0

    # ------------------------------------------------------------------
    @property
    def key(self) -> PairKey:
        return (self.init_mhz, self.target_mhz)

    @property
    def increasing(self) -> bool:
        return self.target_mhz > self.init_mhz

    @property
    def n_measurements(self) -> int:
        return len(self.measurements)

    def latencies_s(self, without_outliers: bool = True) -> np.ndarray:
        """Measured latencies, optionally with DBSCAN outliers removed."""
        values = np.asarray([m.latency_s for m in self.measurements])
        if without_outliers and self.outliers is not None:
            return values[self.outliers.kept_mask]
        return values

    def ground_truths_s(self, without_outliers: bool = True) -> np.ndarray:
        values = np.asarray(
            [
                m.ground_truth_s if m.ground_truth_s is not None else np.nan
                for m in self.measurements
            ]
        )
        if without_outliers and self.outliers is not None:
            return values[self.outliers.kept_mask]
        return values

    def stats(self, without_outliers: bool = True) -> SampleStats:
        values = self.latencies_s(without_outliers)
        if values.size == 0:
            raise MeasurementError(
                f"pair {self.init_mhz:g}->{self.target_mhz:g} has no "
                f"{'kept ' if without_outliers else ''}measurements"
            )
        return summarize(values)

    def best_case_s(self, without_outliers: bool = True) -> float:
        """Minimum observed switching latency for this pair."""
        return self.stats(without_outliers).minimum

    def worst_case_s(self, without_outliers: bool = True) -> float:
        """Maximum observed switching latency for this pair."""
        return self.stats(without_outliers).maximum

    @property
    def n_clusters(self) -> int:
        return self.outliers.n_clusters if self.outliers is not None else 0


@dataclass
class CampaignResult:
    """Output of a full switching-latency campaign on one GPU."""

    gpu_name: str
    architecture: str
    hostname: str
    device_index: int
    frequencies: tuple[float, ...]
    pairs: dict[PairKey, PairResult]
    phase1: "Phase1Result | None" = None  # noqa: F821 - forward ref
    wall_virtual_s: float = 0.0

    # ------------------------------------------------------------------
    def pair(self, init_mhz: float, target_mhz: float) -> PairResult:
        try:
            return self.pairs[(float(init_mhz), float(target_mhz))]
        except KeyError:
            raise MeasurementError(
                f"pair {init_mhz:g}->{target_mhz:g} not in campaign"
            ) from None

    def iter_measured(self) -> Iterator[PairResult]:
        """Pairs that produced at least one measurement."""
        for p in self.pairs.values():
            if not p.skipped and p.n_measurements > 0:
                yield p

    @property
    def n_measured_pairs(self) -> int:
        return sum(1 for _ in self.iter_measured())

    @property
    def skipped_pairs(self) -> list[PairResult]:
        return [p for p in self.pairs.values() if p.skipped]

    # ------------------------------------------------------------------
    def latency_matrix(
        self, statistic: str = "max", without_outliers: bool = True
    ) -> np.ndarray:
        """(init x target) latency grid in seconds; NaN where unmeasured.

        ``statistic``: "max" (worst case), "min" (best case), "mean" or
        "count".  Rows are initial frequencies, columns target frequencies,
        both in the campaign's frequency order — matching the orientation
        of the paper's Fig. 3 heatmaps.
        """
        freqs = list(self.frequencies)
        grid = np.full((len(freqs), len(freqs)), np.nan)
        for p in self.iter_measured():
            i = freqs.index(p.init_mhz)
            j = freqs.index(p.target_mhz)
            values = p.latencies_s(without_outliers)
            if values.size == 0:
                continue
            if statistic == "max":
                grid[i, j] = values.max()
            elif statistic == "min":
                grid[i, j] = values.min()
            elif statistic == "mean":
                grid[i, j] = values.mean()
            elif statistic == "count":
                grid[i, j] = values.size
            else:
                raise MeasurementError(f"unknown statistic {statistic!r}")
        return grid

    def all_latencies_s(self, without_outliers: bool = True) -> np.ndarray:
        """Every kept measurement across all pairs, concatenated."""
        chunks = [p.latencies_s(without_outliers) for p in self.iter_measured()]
        if not chunks:
            return np.empty(0)
        return np.concatenate(chunks)
