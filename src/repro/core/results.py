"""Result containers for switching-latency campaigns."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.clustering.adaptive import AdaptiveDbscanResult
from repro.errors import MeasurementError
from repro.stats.descriptive import SampleStats, summarize

__all__ = [
    "PairKey",
    "GridKey",
    "OutlierLabels",
    "SwitchingLatencyMeasurement",
    "PairResult",
    "CampaignResult",
    "ResultAccumulator",
]

#: (initial_mhz, target_mhz)
PairKey = tuple[float, float]
#: (initial_mhz, target_mhz, memory_mhz) — key form of core×memory campaigns
GridKey = tuple[float, float, float]


@dataclass(frozen=True)
class OutlierLabels:
    """Cluster labels restored from a persisted pair CSV.

    The lightweight stand-in for
    :class:`~repro.clustering.adaptive.AdaptiveDbscanResult` when a pair is
    loaded back from disk: the DBSCAN descent trace is not persisted, but
    the labels (and therefore the kept/outlier masks) round-trip exactly,
    so ``latencies_s(without_outliers=True)`` and a re-write of the CSV
    behave identically to the in-memory original.
    """

    labels: np.ndarray

    @property
    def outlier_mask(self) -> np.ndarray:
        return self.labels == -1

    @property
    def kept_mask(self) -> np.ndarray:
        return self.labels != -1

    @property
    def n_clusters(self) -> int:
        return int(self.labels.max()) + 1 if (self.labels >= 0).any() else 0

    @property
    def outlier_ratio(self) -> float:
        if self.labels.size == 0:
            return 0.0
        return float(self.outlier_mask.mean())


@dataclass(frozen=True)
class SwitchingLatencyMeasurement:
    """One accepted switching-latency measurement.

    ``ground_truth_s`` is simulator introspection: the actual injected
    latency for the transition (unavailable on physical hardware — used to
    validate the methodology itself).  ``ground_truth_outlier`` marks
    measurements whose transition draw included the driver-noise outlier
    process.
    """

    latency_s: float
    ts_acc: float
    te_acc: float
    n_valid_sm: int
    window_iterations: int
    ground_truth_s: float | None = None
    ground_truth_outlier: bool = False


@dataclass
class PairResult:
    """Everything measured for one (initial, target) swept-clock pair.

    ``axis`` names the swept clock domain the pair belongs to
    (:mod:`repro.core.axis`): ``init_mhz``/``target_mhz`` are SM clocks on
    the default ``"sm_core"`` axis, memory clocks on the ``"memory"``
    axis, and power limits in watts on the ``"power"`` axis.
    ``memory_mhz`` is the locked memory clock an *SM-axis* pair was
    measured at (``None`` in legacy fixed-memory campaigns and on the
    other axes, whose locked complement is the campaign-level SM clock).
    ``locked_sm_mhz`` is the SM-clock facet of a *multi-facet* swept-axis
    campaign (``None`` in single-facet campaigns, where the facet lives on
    the campaign result instead).
    """

    init_mhz: float
    target_mhz: float
    measurements: list[SwitchingLatencyMeasurement] = field(default_factory=list)
    outliers: "AdaptiveDbscanResult | OutlierLabels | None" = None
    skipped: bool = False
    skip_reason: str = ""
    n_failed_attempts: int = 0
    n_throttle_discards: int = 0
    n_window_growths: int = 0
    memory_mhz: float | None = None
    axis: str = "sm_core"
    locked_sm_mhz: float | None = None
    #: supervision bookkeeping: worker-level retries this pair survived
    #: (crash/timeout/transport failures — not measurement-loop retries,
    #: which are ``n_failed_attempts``).  Never affects measurements or
    #: CSV bytes; a retried job is bit-identical to an undisturbed one.
    n_retries: int = 0

    # ------------------------------------------------------------------
    @property
    def key(self) -> PairKey:
        return (self.init_mhz, self.target_mhz)

    @property
    def grid_key(self) -> "PairKey | GridKey":
        if self.memory_mhz is not None:
            return (self.init_mhz, self.target_mhz, self.memory_mhz)
        if self.locked_sm_mhz is not None:
            return (self.init_mhz, self.target_mhz, self.locked_sm_mhz)
        return (self.init_mhz, self.target_mhz)

    @property
    def increasing(self) -> bool:
        return self.target_mhz > self.init_mhz

    @property
    def n_measurements(self) -> int:
        return len(self.measurements)

    def latencies_s(self, without_outliers: bool = True) -> np.ndarray:
        """Measured latencies, optionally with DBSCAN outliers removed."""
        values = np.asarray([m.latency_s for m in self.measurements])
        if without_outliers and self.outliers is not None:
            return values[self.outliers.kept_mask]
        return values

    def ground_truths_s(self, without_outliers: bool = True) -> np.ndarray:
        values = np.asarray(
            [
                m.ground_truth_s if m.ground_truth_s is not None else np.nan
                for m in self.measurements
            ]
        )
        if without_outliers and self.outliers is not None:
            return values[self.outliers.kept_mask]
        return values

    def stats(self, without_outliers: bool = True) -> SampleStats:
        values = self.latencies_s(without_outliers)
        if values.size == 0:
            raise MeasurementError(
                f"pair {self.init_mhz:g}->{self.target_mhz:g} has no "
                f"{'kept ' if without_outliers else ''}measurements"
            )
        return summarize(values)

    def best_case_s(self, without_outliers: bool = True) -> float:
        """Minimum observed switching latency for this pair."""
        return self.stats(without_outliers).minimum

    def worst_case_s(self, without_outliers: bool = True) -> float:
        """Maximum observed switching latency for this pair."""
        return self.stats(without_outliers).maximum

    @property
    def n_clusters(self) -> int:
        return self.outliers.n_clusters if self.outliers is not None else 0


@dataclass
class CampaignResult:
    """Output of a full switching-latency campaign on one GPU.

    Legacy fixed-memory campaigns key ``pairs`` by ``(init, target)``;
    core×memory campaigns (``memory_frequencies`` set) key the dict by
    ``(init, target, memory)`` and carry one full SM pair grid per memory
    clock.  ``axis`` names the swept clock domain
    (:mod:`repro.core.axis`): on the ``"memory"`` axis ``frequencies``
    and all pair keys are memory clocks (power limits in watts on the
    ``"power"`` axis), measured at the locked SM clock ``locked_sm_mhz``.
    Multi-facet swept-axis campaigns (``locked_sm_frequencies`` set) key
    the dict by ``(init, target, locked_sm)`` and carry one full pair
    grid per locked SM clock — the transpose of the core×memory grid.
    """

    gpu_name: str
    architecture: str
    hostname: str
    device_index: int
    frequencies: tuple[float, ...]
    pairs: "dict[PairKey | GridKey, PairResult]"
    phase1: "Phase1Result | None" = None  # noqa: F821 - forward ref
    wall_virtual_s: float = 0.0
    memory_frequencies: tuple[float, ...] | None = None
    #: per-facet phase-1 characterizations of faceted campaigns, keyed by
    #: the facet coordinate — memory clocks for core×memory grids, locked
    #: SM clocks for multi-facet swept-axis sweeps (``phase1`` stays the
    #: first facet's result)
    phase1_by_memory: "dict | None" = None
    #: swept clock domain of the campaign (:mod:`repro.core.axis`)
    axis: str = "sm_core"
    #: SM clock a single-facet memory-/power-axis campaign was locked at
    #: (``None`` otherwise, including multi-facet sweeps)
    locked_sm_mhz: float | None = None
    #: locked-SM facet plan of a multi-facet swept-axis campaign
    locked_sm_frequencies: tuple[float, ...] | None = None

    # ------------------------------------------------------------------
    @property
    def swept_label(self) -> str:
        """Human label of the swept clock domain (for reports/CLI)."""
        from repro.core.axis import axis_by_name

        return axis_by_name(self.axis).describe()

    @property
    def facet_kind(self) -> str | None:
        """Human label of the campaign's facet dimension (``None`` when
        the campaign has a single implicit facet)."""
        if self.locked_sm_frequencies is not None:
            return "locked SM clock"
        if self.memory_frequencies is not None:
            return "memory clock"
        return None

    # ------------------------------------------------------------------
    def _resolve_memory(self, memory_mhz: float | None) -> float | None:
        """Pick the facet an accessor should read when one is required."""
        if self.memory_frequencies is None:
            if memory_mhz is not None:
                raise MeasurementError(
                    "campaign swept no memory clocks; omit memory_mhz"
                )
            return None
        if memory_mhz is not None:
            return float(memory_mhz)
        if len(self.memory_frequencies) == 1:
            return float(self.memory_frequencies[0])
        raise MeasurementError(
            "campaign swept multiple memory clocks "
            f"{self.memory_frequencies}; pass memory_mhz to select a facet"
        )

    def _resolve_locked_sm(self, locked_sm_mhz: float | None) -> float | None:
        """Pick the locked-SM facet an accessor should read, if any."""
        if self.locked_sm_frequencies is None:
            if locked_sm_mhz is not None:
                raise MeasurementError(
                    "campaign swept no locked-SM facets; omit locked_sm_mhz"
                )
            return None
        if locked_sm_mhz is not None:
            return float(locked_sm_mhz)
        if len(self.locked_sm_frequencies) == 1:
            return float(self.locked_sm_frequencies[0])
        raise MeasurementError(
            "campaign swept multiple locked SM clocks "
            f"{self.locked_sm_frequencies}; pass locked_sm_mhz to select "
            "a facet"
        )

    def pair(
        self,
        init_mhz: float,
        target_mhz: float,
        memory_mhz: float | None = None,
        locked_sm_mhz: float | None = None,
    ) -> PairResult:
        mem = self._resolve_memory(memory_mhz)
        # Resolved unconditionally: passing a locked-SM facet to a grid
        # campaign (or vice versa — the two facet kinds are mutually
        # exclusive) must raise, not be silently dropped.
        sm = self._resolve_locked_sm(locked_sm_mhz)
        facet = mem if mem is not None else sm
        key = (
            (float(init_mhz), float(target_mhz))
            if facet is None
            else (float(init_mhz), float(target_mhz), facet)
        )
        try:
            return self.pairs[key]
        except KeyError:
            raise MeasurementError(
                f"pair {init_mhz:g}->{target_mhz:g}"
                + (f" @ mem {mem:g} MHz" if mem is not None else "")
                + (
                    f" @ SM {facet:g} MHz"
                    if mem is None and facet is not None
                    else ""
                )
                + " not in campaign"
            ) from None

    def iter_measured(
        self,
        memory_mhz: "float | None" = ...,
        locked_sm_mhz: "float | None" = ...,
    ) -> Iterator[PairResult]:
        """Pairs that produced at least one measurement.

        ``memory_mhz`` restricts iteration to one memory facet of a
        core×memory campaign, ``locked_sm_mhz`` to one locked-SM facet of
        a multi-facet swept-axis campaign; the defaults (``...``) yield
        every facet.
        """
        for p in self.pairs.values():
            if p.skipped or p.n_measurements == 0:
                continue
            if memory_mhz is not ... and p.memory_mhz != memory_mhz:
                continue
            if locked_sm_mhz is not ... and p.locked_sm_mhz != locked_sm_mhz:
                continue
            yield p

    @property
    def n_measured_pairs(self) -> int:
        return sum(1 for _ in self.iter_measured())

    @property
    def skipped_pairs(self) -> list[PairResult]:
        return [p for p in self.pairs.values() if p.skipped]

    # ------------------------------------------------------------------
    def latency_matrix(
        self,
        statistic: str = "max",
        without_outliers: bool = True,
        memory_mhz: "float | None" = ...,
        locked_sm_mhz: "float | None" = ...,
    ) -> np.ndarray:
        """(init x target) latency grid in seconds; NaN where unmeasured.

        ``statistic``: "max" (worst case), "min" (best case), "mean" or
        "count".  Rows are initial frequencies, columns target frequencies,
        both in the campaign's frequency order — matching the orientation
        of the paper's Fig. 3 heatmaps.  Faceted campaigns produce one
        grid per facet: select it with ``memory_mhz`` (core×memory grids)
        or ``locked_sm_mhz`` (multi-facet swept-axis sweeps), required
        when more than one facet was swept.
        """
        if memory_mhz is ...:
            memory_mhz = self._resolve_memory(None)
        if locked_sm_mhz is ...:
            locked_sm_mhz = self._resolve_locked_sm(None)
        freqs = list(self.frequencies)
        grid = np.full((len(freqs), len(freqs)), np.nan)
        for p in self.iter_measured(memory_mhz, locked_sm_mhz):
            i = freqs.index(p.init_mhz)
            j = freqs.index(p.target_mhz)
            values = p.latencies_s(without_outliers)
            if values.size == 0:
                continue
            if statistic == "max":
                grid[i, j] = values.max()
            elif statistic == "min":
                grid[i, j] = values.min()
            elif statistic == "mean":
                grid[i, j] = values.mean()
            elif statistic == "count":
                grid[i, j] = values.size
            else:
                raise MeasurementError(f"unknown statistic {statistic!r}")
        return grid

    def all_latencies_s(self, without_outliers: bool = True) -> np.ndarray:
        """Every kept measurement across all pairs, concatenated."""
        chunks = [p.latencies_s(without_outliers) for p in self.iter_measured()]
        if not chunks:
            return np.empty(0)
        return np.concatenate(chunks)


class ResultAccumulator:
    """The sink that assembles a :class:`CampaignResult` from the stream.

    Every execution tier — serial loop, process-pool engine, warm-pool
    batches, journal-resume replay — emits the campaign event stream
    (:mod:`repro.core.stream`), and this sink is the *only* way a
    ``CampaignResult`` is built from a live campaign.  Pair events are
    keyed by flat grid index, so completion-order delivery from the pool
    tiers accumulates to exactly the grid-order ``pairs`` dict the serial
    loop emits: iteration order (and therefore summary-CSV row order) is
    index order, independent of worker count or completion order.
    """

    def __init__(self) -> None:
        self._started: "object | None" = None
        self._finished: "object | None" = None
        self._pairs_by_index: dict[int, PairResult] = {}
        self._phase1_by_facet: dict = {}

    # ------------------------------------------------------------------
    def on_event(self, event) -> None:
        from repro.core import stream

        if isinstance(event, stream.CampaignStarted):
            self._started = event
        elif isinstance(event, stream.FacetPrepared):
            if event.phase1 is not None:
                self._phase1_by_facet[event.facet] = event.phase1
        elif isinstance(event, (stream.PairMeasured, stream.PairSkipped)):
            self._pairs_by_index[event.index] = event.pair
        elif isinstance(event, stream.CampaignFinished):
            self._finished = event

    # ------------------------------------------------------------------
    @property
    def n_pairs_seen(self) -> int:
        return len(self._pairs_by_index)

    def result(self) -> CampaignResult:
        """Assemble the campaign result (requires ``CampaignFinished``)."""
        started, finished = self._started, self._finished
        if started is None or finished is None:
            raise MeasurementError(
                "campaign stream incomplete: "
                + ("no CampaignStarted event" if started is None
                   else "no CampaignFinished event")
            )
        return self._assemble(started, finished)

    def partial_result(self) -> CampaignResult:
        """Assemble whatever streamed so far (interrupt snapshots).

        Requires ``CampaignStarted``; when no ``CampaignFinished``
        arrived, substitutes a zero wall clock — the caller is expected
        to mark the artifact as partial (e.g. the ``# interrupted``
        summary footer of :class:`~repro.core.csvio.CsvStreamSink`).
        """
        if self._started is None:
            raise MeasurementError(
                "campaign stream incomplete: no CampaignStarted event"
            )
        from repro.core import stream

        finished = self._finished
        if finished is None:
            finished = stream.CampaignFinished(wall_virtual_s=0.0)
        return self._assemble(self._started, finished)

    def _assemble(self, started, finished) -> CampaignResult:
        pairs: "dict[PairKey | GridKey, PairResult]" = {}
        for index in sorted(self._pairs_by_index):
            pair = self._pairs_by_index[index]
            pairs[pair.grid_key] = pair
        single_facet = started.facet_plan == (None,)
        return CampaignResult(
            gpu_name=started.gpu_name,
            architecture=started.architecture,
            hostname=started.hostname,
            device_index=started.device_index,
            frequencies=started.frequencies,
            pairs=pairs,
            phase1=self._phase1_by_facet.get(started.facet_plan[0]),
            wall_virtual_s=finished.wall_virtual_s,
            memory_frequencies=started.memory_frequencies,
            phase1_by_memory=(
                None if single_facet else self._phase1_by_facet
            ),
            axis=started.axis,
            locked_sm_mhz=finished.locked_sm_mhz,
            locked_sm_frequencies=started.locked_sm_frequencies,
        )
