"""Shared execution context for the methodology phases.

:class:`BenchContext` bundles the machine/runtime/driver handles and
exposes both the concrete per-domain clock operations (``set_frequency``
/ ``settle_on`` for the SM clock, ``set_memory_clock`` for the memory
clock) and the *axis-generic* dispatchers (``set_swept_clock`` /
``settle_swept`` / ``prepare_facet``) the phases call — which domain
those act on is decided by ``config.axis`` through
:mod:`repro.core.axis`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.axis import MeasurementAxis
from repro.core.config import LatestConfig
from repro.cuda.kernel import MicrobenchmarkKernel
from repro.cuda.runtime import CudaContext
from repro.gpusim.device import GpuDevice
from repro.machine import Machine
from repro.nvml.api import NvmlDeviceHandle, NvmlSession

__all__ = ["BenchContext"]


@dataclass
class BenchContext:
    """Bundles the machine, runtime and driver handles for one campaign."""

    machine: Machine
    config: LatestConfig
    device: GpuDevice = field(init=False)
    cuda: CudaContext = field(init=False)
    nvml: NvmlSession = field(init=False)
    handle: NvmlDeviceHandle = field(init=False)
    #: the locked SM clock of the *current* facet of a multi-facet
    #: swept-axis campaign (set by :meth:`prepare_facet_clock`); ``None``
    #: outside facet sweeps
    current_locked_sm: float | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        self.device = self.machine.device(self.config.device_index)
        self.cuda = self.machine.cuda_context(self.config.device_index)
        self.nvml = self.machine.nvml()
        self.handle = self.nvml.device_get_handle_by_index(self.config.device_index)

    # ------------------------------------------------------------------
    @property
    def host(self):
        return self.machine.host

    @property
    def axis(self) -> MeasurementAxis:
        """The campaign's swept axis (:mod:`repro.core.axis`)."""
        return self.config.swept_axis()

    def base_kernel(self) -> MicrobenchmarkKernel:
        """The campaign's microbenchmark sized per configuration.

        The kernel's memory-bound fraction comes from the swept axis (or
        an explicit ``kernel_memory_intensity``): the memory axis needs a
        memory-bound workload so iteration times respond to the swept
        clock at all, while the default matches the legacy kernel exactly.
        """
        return MicrobenchmarkKernel.sized_for(
            self.device.spec,
            iteration_duration_s=self.config.iteration_duration_s,
            total_duration_s=self.config.measure_kernel_duration_s,
            sm_count=self.record_sm_count(),
            memory_intensity=self.config.resolved_kernel_intensity(),
        )

    def record_sm_count(self) -> int:
        if self.config.record_sm_count is None:
            return self.device.spec.sm_count
        return min(self.config.record_sm_count, self.device.spec.sm_count)

    def set_frequency(self, freq_mhz: float):
        """Lock the SM clock; returns the ground-truth transition record."""
        return self.handle.set_gpu_locked_clocks(freq_mhz, freq_mhz)

    # ------------------------------------------------------------------
    # axis-generic operations (dispatch through config.axis)
    # ------------------------------------------------------------------
    def set_swept_clock(self, freq_mhz: float):
        """Issue the swept-axis clock change; returns the ground truth."""
        return self.axis.set_clock(self, freq_mhz)

    def settle_swept(self, freq_mhz: float) -> bool:
        """Settle the swept-axis clock on ``freq_mhz`` under load."""
        return self.axis.settle(self, freq_mhz)

    def prepare_facet(self) -> bool:
        """Lock the complementary (non-swept) clock domain, if any.

        A no-op for the default axis (legacy campaigns touch nothing;
        grid campaigns lock their memory facets through
        :meth:`set_memory_clock`); the memory axis locks and settles the
        SM clock at :meth:`facet_sm_mhz`.
        """
        return self.axis.prepare_facet(self)

    def prepare_facet_clock(self, facet: float | None) -> bool:
        """Lock the facet clock for one campaign facet.

        The single dispatch shared by the serial loop, the engine driver
        and engine workers.  A set facet coordinate is either a core×memory
        grid facet (``memory_frequencies`` campaigns lock that memory
        P-state) or one locked SM clock of a multi-facet swept-axis sweep
        (lock and settle the SM clock there); ``None`` defers to the swept
        axis's own facet preparation.
        """
        if facet is not None:
            if self.config.memory_frequencies is not None:
                return self.set_memory_clock(facet)
            self.current_locked_sm = float(facet)
            return self.settle_on(float(facet))
        return self.prepare_facet()

    def facet_sm_mhz(self) -> float:
        """The SM clock a memory- or power-axis campaign runs at.

        Multi-facet sweeps resolve to the facet
        :meth:`prepare_facet_clock` most recently locked.
        """
        if self.current_locked_sm is not None:
            return self.current_locked_sm
        locked = self.config.locked_sm_mhz
        if locked is not None and not isinstance(locked, tuple):
            return float(locked)
        if isinstance(locked, tuple):
            # Facet sweep before any facet was prepared: the first facet
            # is the campaign's entry point.
            return float(locked[0])
        return float(self.device.spec.max_sm_frequency_mhz)

    def set_memory_clock(self, mem_mhz: float) -> bool:
        """Lock the memory clock and wait (under load) until it settles.

        Memory retraining is one to two orders of magnitude slower than an
        SM relock, so the campaign must not characterize or measure before
        the P-state actually arrived.  Mirrors :meth:`settle_on`: filler
        chunks alternate with NVML memory-clock polls, bounded by
        ``max_settle_s`` of busy time.
        """
        self.handle.set_memory_locked_clocks(mem_mhz, mem_mhz)
        if abs(self.handle.clock_info_mem_mhz() - mem_mhz) < 1.0:
            return True
        return self._poll_settle(self.handle.clock_info_mem_mhz, mem_mhz)

    def power_capped_sm_mhz(self, limit_w: float) -> float:
        """Effective SM clock once ``limit_w`` is enforced.

        The locked facet clock clipped by the limit's sustainable clock —
        the settle target (and the capped-clock roofline input) of the
        power-cap axis.
        """
        cap = float(self.device.thermal.sustainable_clock_mhz(limit_w))
        return min(self.facet_sm_mhz(), cap)

    def set_power_limit(self, limit_w: float) -> bool:
        """Set the board power limit and wait until the cap is enforced.

        The power controller re-targets the sustainable clock only after
        its sensing-window latency, so the campaign must not characterize
        or measure before the cap actually arrived.  Mirrors
        :meth:`settle_on`: filler chunks alternate with NVML SM-clock
        polls (the enforced cap is observable as the effective clock),
        bounded by ``max_settle_s`` of busy time.
        """
        self.handle.set_power_limit(limit_w)
        expected = self.power_capped_sm_mhz(limit_w)
        if abs(self.handle.clock_info_sm_mhz() - expected) < 1.0:
            return True
        return self._poll_settle(self.handle.clock_info_sm_mhz, expected)

    def settle_on(self, freq_mhz: float) -> bool:
        """Bring the SM clock to ``freq_mhz`` under sustained load.

        Locks the clock, then alternates filler workload chunks with NVML
        ``clock_info`` polls until the effective SM clock matches the
        request.  Bounded by ``max_settle_s`` of busy time — transitions
        *into* some frequencies are themselves pathologically slow (GH200's
        special target bands), and both phase 1 (characterization) and
        phase 2 (initial condition) must not proceed before the clock is
        actually there.
        """
        cfg = self.config
        self.set_frequency(freq_mhz)
        if cfg.init_settle_s is not None:
            self.run_filler(cfg.init_settle_s, freq_mhz)
            return True
        return self._poll_settle(self.handle.clock_info_sm_mhz, freq_mhz)

    def _poll_settle(self, read_mhz, target: float) -> bool:
        """Filler chunks alternating with NVML polls until the readback
        reaches ``target``, bounded by ``max_settle_s`` of busy time.

        The shared settle loop of every clock actuator (SM lock, memory
        P-state, enforced power cap — the latter observed through the
        effective SM clock); callers differ only in the set call, the
        readback and any immediate pre-check.
        """
        cfg = self.config
        waited = 0.0
        while waited < cfg.max_settle_s:
            self.run_filler(cfg.settle_chunk_s, target)
            waited += cfg.settle_chunk_s
            if abs(read_mhz() - target) < 1.0:
                return True
        return False

    def run_filler(self, duration_s: float, freq_mhz: float) -> None:
        """Keep the device busy for ~duration without recording timestamps.

        Single-SM filler kernels are physically equivalent for the clock
        domain (frequency behaviour does not depend on how many SMs the
        simulator records) and keep warm-up phases cheap.
        """
        iter_s = self.config.iteration_duration_s
        n = max(1, int(round(duration_s / iter_s)))
        kernel = MicrobenchmarkKernel(
            n_iterations=n,
            cycles_per_iteration=self.config.iteration_duration_s
            * self.device.spec.max_sm_frequency_mhz
            * 1e6,
            sm_count=1,
            label="filler",
            aggregate=True,
        )
        self.cuda.launch(kernel)
        self.cuda.synchronize()
