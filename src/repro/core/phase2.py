"""Phase 2: the switching-latency benchmark (Algorithm 2, lines 1-8).

Per measurement:

1. synchronize the CPU and accelerator timers (IEEE 1588),
2. lock the initial frequency and run warm-up workload until the device
   settled on it,
3. launch the benchmark kernel (delay + switch window + confirmation
   iterations),
4. sleep through the delay period, take the CPU timestamp ``t_s``, issue
   the frequency change to the target,
5. synchronize the device and read back the per-iteration timestamps.

Which clock domain steps 2 and 4 act on is the campaign's *swept axis*
(:mod:`repro.core.axis`): the SM clock for the paper's setup, the memory
clock for memory-pair campaigns.  Everything else — timer sync, kernel
shape, timestamp readback — is axis-agnostic.

``t_s`` is converted into the accelerator timebase with the sync result,
exactly as Algorithm 2 line 6 (``clock_gettime() - cpu_sync + acc_sync``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.context import BenchContext
from repro.cuda.kernel import MicrobenchmarkKernel
from repro.gpusim.dvfs import TransitionRecord
from repro.gpusim.sm import DeviceTimestamps
from repro.gpusim.thermal import ThrottleReasons
from repro.timesync.ptp import SyncResult, synchronize_timers

__all__ = ["RawSwitchData", "run_switch_benchmark"]


@dataclass
class RawSwitchData:
    """Everything phase 3 needs to evaluate one switch measurement.

    ``timestamps`` may be ``None`` when the benchmark ran with
    ``defer_timestamps=True`` (the pass-block pipeline): the launched
    kernel is kept in ``pending`` and :meth:`materialize` produces the
    device view later, batched with the rest of the block.  The
    ground-truth fields are snapshotted at construction time — the live
    :class:`TransitionRecord` can be superseded by a *later* pass's
    request, and the methodology's record of a measurement must reflect
    the state at evaluation time, exactly as the scalar loop observes it.
    """

    init_mhz: float
    target_mhz: float
    sync: SyncResult
    ts_cpu: float
    ts_acc: float
    timestamps: DeviceTimestamps | None
    window_iterations: int
    kernel: MicrobenchmarkKernel
    ground_truth: TransitionRecord | None
    throttle_reasons: ThrottleReasons
    #: deferred-readback handle (pass-block pipeline only)
    pending: "LaunchedKernel | None" = None  # noqa: F821 - forward ref
    ground_truth_latency_s: float | None = None
    ground_truth_outlier: bool = False

    def __post_init__(self) -> None:
        gt = self.ground_truth
        if gt is not None and not gt.superseded and (
            self.ground_truth_latency_s is None
        ):
            # Ground truth measured from the same reference the
            # methodology uses: the CPU timestamp taken just before the
            # driver call.
            self.ground_truth_latency_s = gt.t_stable - gt.t_request
        if gt is not None and gt.sample.is_outlier:
            self.ground_truth_outlier = True

    def materialize(self, cuda) -> DeviceTimestamps:
        """Resolve the deferred timestamp view (idempotent)."""
        if self.timestamps is None:
            self.timestamps = cuda.timestamps(self.pending)
            self.pending = None
        return self.timestamps


def build_benchmark_kernel(
    bench: BenchContext,
    base: MicrobenchmarkKernel,
    init_mhz: float,
    target_mhz: float,
    window_iterations: int,
) -> MicrobenchmarkKernel:
    """Size the phase-2 kernel: delay + switch window + confirmation."""
    cfg = bench.config
    n = cfg.delay_iterations + window_iterations + cfg.confirm_iterations
    return MicrobenchmarkKernel(
        n_iterations=n,
        cycles_per_iteration=base.cycles_per_iteration,
        sm_count=bench.record_sm_count(),
        label=f"switch-{init_mhz:g}-{target_mhz:g}",
        # Inherited so phase-2 iteration times answer to the same clocks
        # as the phase-1 statistics they are tested against (the memory
        # axis runs a deliberately memory-bound workload).
        memory_intensity=base.memory_intensity,
    )


def settle_on_frequency(bench: BenchContext, freq_mhz: float) -> bool:
    """See :meth:`BenchContext.settle_on` (kept here for API stability)."""
    return bench.settle_on(freq_mhz)


def run_switch_benchmark(
    bench: BenchContext,
    init_mhz: float,
    target_mhz: float,
    base_kernel: MicrobenchmarkKernel,
    window_iterations: int,
    defer_timestamps: bool = False,
) -> RawSwitchData:
    """One phase-2 execution for one frequency pair.

    With ``defer_timestamps=True`` the device view of the kernel's
    iteration boundaries is not read back here; the caller materializes it
    later (see :class:`RawSwitchData`).  Every RNG draw and clock advance
    is identical either way — deferral only postpones pure array math.
    """
    from repro.errors import MeasurementError

    cfg = bench.config

    # (1) timer synchronization
    sync = synchronize_timers(
        bench.host, bench.device, rounds=cfg.ptp_rounds, link=cfg.ptp_link
    )

    # (2) settle on the initial frequency under sustained load
    if not bench.settle_swept(init_mhz):
        raise MeasurementError(
            f"{bench.axis.describe()} did not settle on {init_mhz:g} "
            f"{bench.axis.unit} within {cfg.max_settle_s:g} s of load"
        )

    # (3) benchmark kernel: delay + window + confirmation iterations
    kernel = build_benchmark_kernel(
        bench, base_kernel, init_mhz, target_mhz, window_iterations
    )
    launched = bench.cuda.launch(kernel)

    # (4) delay period on the initial frequency, then the change call
    delay_s = cfg.delay_iterations * bench.axis.iteration_duration_s(
        bench, base_kernel, init_mhz
    )
    bench.host.sleep(delay_s)
    ts_cpu = bench.host.clock_gettime()
    record = bench.set_swept_clock(target_mhz)

    # Throttle reasons are polled while the benchmark kernel is still
    # running (the tool checks them *during* execution; a post-drain poll
    # would only ever see GPU_IDLE).
    reasons = bench.handle.current_clocks_throttle_reasons()

    # (5) drain, then read back (possibly deferred)
    bench.cuda.synchronize()
    view = None if defer_timestamps else bench.cuda.timestamps(launched)

    return RawSwitchData(
        init_mhz=init_mhz,
        target_mhz=target_mhz,
        sync=sync,
        ts_cpu=ts_cpu,
        ts_acc=sync.cpu_to_acc(ts_cpu),
        timestamps=view,
        window_iterations=window_iterations,
        kernel=kernel,
        ground_truth=record,
        throttle_reasons=reasons,
        pending=launched if defer_timestamps else None,
    )
