"""The campaign event stream: one typed, ordered result pipeline.

Every execution tier — the strictly-serial loop, the process-pool engine,
the warm-pool SoA batch tier, and journal-resume replay — produces the
same stream of campaign events, and every consumer of campaign results is
a *sink* attached to it.  The stream is the seam incremental consumers
plug into: result accumulation
(:class:`~repro.core.results.ResultAccumulator`), the durable journal
(:class:`~repro.core.journal.JournalSink`), incremental CSV output
(:class:`~repro.core.csvio.CsvStreamSink`), live progress reporting
(:class:`ProgressSink`), and — the ROADMAP item-1 target — a service
front end streaming ``PairResult``s to clients as they land instead of
waiting for the last pair of a thousand-pair grid.

Event taxonomy
--------------
``CampaignStarted``
    First event, exactly once: campaign identity (device, hostname,
    frequencies, axis, facet plan) and the execution mode.
``FacetPrepared``
    Once per facet coordinate, before any pair event of that facet: the
    facet clock settled (or not) and, when it did, the facet's phase-1
    characterization and probe window estimate.
``PairMeasured``
    One completed measurement-path result (including worker-side skips
    and quarantined units) with its flat grid index and virtual cost.
    ``replayed=True`` marks journal-resume replay of an earlier run's
    result — synthetic, already durable, emitted before any live event.
``PairSkipped``
    One driver-side *planned* skip, decided from the facet's phase-1
    characterization before dispatch.  Recomputable, hence never
    journaled.
``PairRetried``
    Supervision event: a dispatch unit failed (crash / timeout /
    transport) and will be retried.  Informational — the same grid
    indices still produce exactly one terminal pair event each.
``CampaignFinished``
    Last event, exactly once on a completed campaign (absent when the
    campaign is interrupted): the total virtual wall clock and the
    resolved locked-SM complement.

Ordering & determinism contract
-------------------------------
* ``CampaignStarted`` precedes everything; ``CampaignFinished`` follows
  everything.
* A facet's ``FacetPrepared`` precedes every pair event of that facet.
  The serial loop interleaves (prepare facet, measure its pairs, next
  facet); the engine prepares all facets up front.
* Exactly one terminal pair event (``PairMeasured`` or ``PairSkipped``)
  is emitted per flat grid index (``facet_index * n_pairs +
  pair_index``).  The serial loop emits them in grid order; the pool
  tiers emit ``PairMeasured`` in *completion order* — sorting a tier's
  pair events by grid index reproduces the serial emission order, which
  is what index-keyed sinks rely on (and what
  ``tests/test_stream.py`` pins with a hypothesis sweep).
* On resume, every replayed ``PairMeasured`` (index order) precedes
  every live one.
* Events are immutable and carry their payloads by reference; sinks
  must not mutate ``pair`` objects.
* The measurement timeline never observes the stream: emitting events
  advances no virtual clock and draws no RNG state, so a campaign with
  zero sinks, ten sinks, or a crashing-then-replaced sink produces
  bit-identical results (``BENCH_campaign.json`` ``stream_overhead``
  tracks the real-time cost).
* An interrupted campaign emits no ``CampaignFinished``; instead the
  driver calls :meth:`StreamDispatcher.interrupt` after the last
  delivered event, which fans out to every sink's ``on_interrupt``
  hook exactly once — the seam partial-output writers (e.g. the
  ``# interrupted`` summary footer of
  :class:`~repro.core.csvio.CsvStreamSink`) hang off.

Sinks
-----
A sink is anything with an ``on_event(event)`` method
(:class:`CampaignSink` is the no-op base).  The
:class:`StreamDispatcher` fans each event out to its sinks in
registration order, synchronously, on the driver thread — sink effects
(journal fsync, CSV write) are therefore ordered with respect to each
other exactly as their events were emitted.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.campaign import ProbeInfo
    from repro.core.phase1 import Phase1Result
    from repro.core.results import PairResult

__all__ = [
    "CampaignEvent",
    "CampaignStarted",
    "FacetPrepared",
    "PairMeasured",
    "PairSkipped",
    "PairRetried",
    "CampaignFinished",
    "CampaignSink",
    "StreamDispatcher",
    "ProgressSink",
    "RecordingSink",
]


@dataclass(frozen=True)
class CampaignEvent:
    """Base class of every campaign stream event."""


@dataclass(frozen=True)
class CampaignStarted(CampaignEvent):
    """Campaign identity, emitted exactly once before everything else."""

    gpu_name: str
    architecture: str
    hostname: str
    device_index: int
    #: the swept-axis ladder (SM clocks, memory clocks, or power limits)
    frequencies: tuple[float, ...]
    #: swept clock domain (:mod:`repro.core.axis`)
    axis: str
    #: facet coordinates the campaign visits, in order (``(None,)`` for
    #: single-facet campaigns)
    facet_plan: tuple
    #: ordered swept-axis pairs per facet (``len`` = pairs per facet;
    #: flat grid index = ``facet_index * len(pairs) + pair_index``)
    n_pairs: int
    memory_frequencies: tuple[float, ...] | None = None
    locked_sm_frequencies: tuple[float, ...] | None = None
    #: execution tier producing the stream (``"serial"`` / ``"engine"``)
    mode: str = "serial"
    #: whether journaled pairs will be replayed before live measurement
    resumed: bool = False


@dataclass(frozen=True)
class FacetPrepared(CampaignEvent):
    """One facet's clock settled (or failed to) and was characterized."""

    facet_index: int
    facet: float | None
    #: whether the facet clock could be locked; ``False`` means every
    #: pair of this facet becomes a planned skip
    prepared: bool
    phase1: "Phase1Result | None" = None
    probe: "ProbeInfo | None" = None
    #: the calibration came from the persistent calibration cache
    #: (:mod:`repro.core.calibcache`, engine tiers with
    #: ``--calibration-cache``) instead of being measured this run
    cache_hit: bool = False


@dataclass(frozen=True)
class PairMeasured(CampaignEvent):
    """One measurement-path pair result (durable; journal-eligible)."""

    #: flat position in the facet-major campaign grid
    index: int
    pair: "PairResult"
    #: virtual seconds the pair's machine consumed
    elapsed_virtual_s: float
    #: journal-resume replay of a previous run's result (already durable;
    #: a :class:`~repro.core.journal.JournalSink` must not re-append it)
    replayed: bool = False


@dataclass(frozen=True)
class PairSkipped(CampaignEvent):
    """One planned (driver-side, recomputable) skip."""

    index: int
    #: a :class:`~repro.core.results.PairResult` with ``skipped=True``
    pair: "PairResult"


@dataclass(frozen=True)
class PairRetried(CampaignEvent):
    """A dispatch unit failed and its grid indices will be re-measured."""

    indices: tuple[int, ...]
    #: the unit's failure count so far (1 = first retry upcoming)
    attempt: int
    cause: str = ""


@dataclass(frozen=True)
class CampaignFinished(CampaignEvent):
    """Terminal event of a completed (non-interrupted) campaign."""

    wall_virtual_s: float
    #: SM clock a single-facet non-default-axis campaign was locked at
    locked_sm_mhz: float | None = None


class CampaignSink:
    """Base sink: receives every event; override :meth:`on_event`.

    Sinks run synchronously on the driver thread.  A sink must never
    mutate event payloads — the same ``PairResult`` object feeds every
    sink and the final :class:`~repro.core.results.CampaignResult`.
    """

    def on_event(self, event: CampaignEvent) -> None:  # pragma: no cover
        """Handle one event (default: ignore it)."""

    def on_interrupt(self) -> None:  # pragma: no cover
        """Campaign interrupted: no ``CampaignFinished`` will arrive.

        Called exactly once, after the last delivered event, when the
        campaign stops early (shutdown signal, service cancellation).
        Default: ignore it.  Sinks that write terminal artifacts use
        this to emit an explicitly-partial one instead of none.
        """


class StreamDispatcher:
    """Fan one campaign event stream out to many sinks, in order.

    ``None`` entries are dropped so call sites can pass optional sinks
    unconditionally.  Dispatch is synchronous: an event is delivered to
    every sink before :meth:`emit` returns, so per-sink side effects
    (journal append, CSV write) happen in emission order.
    """

    def __init__(self, *sinks: "CampaignSink | None") -> None:
        self.sinks: list[CampaignSink] = [s for s in sinks if s is not None]

    def emit(self, event: CampaignEvent) -> None:
        """Deliver one event to every sink, in registration order."""
        for sink in self.sinks:
            sink.on_event(event)

    def emit_all(self, events: Iterable[CampaignEvent]) -> None:
        """Deliver a sequence of events, preserving their order."""
        for event in events:
            self.emit(event)

    def interrupt(self) -> None:
        """Notify every sink the stream ended without ``CampaignFinished``.

        Sinks are duck-typed (anything with ``on_event``), so the hook is
        looked up tolerantly: a sink without ``on_interrupt`` is skipped.
        """
        for sink in self.sinks:
            hook = getattr(sink, "on_interrupt", None)
            if hook is not None:
                hook()


class ProgressSink(CampaignSink):
    """Live one-line campaign progress for interactive runs (``--progress``).

    Rewrites one carriage-return-terminated status line per pair event —
    measured/skipped/replayed counts against the grid total, plus
    supervision retries — and finishes it with the virtual wall clock at
    ``CampaignFinished``.  Writes to ``out`` (default stderr) so the
    stream never pollutes parseable stdout output.
    """

    def __init__(self, out=None) -> None:
        self.out = out if out is not None else sys.stderr
        self.total = 0
        self.measured = 0
        self.skipped = 0
        self.replayed = 0
        self.retries = 0
        self._label = "campaign"

    # ------------------------------------------------------------------
    def _render(self, suffix: str = "") -> None:
        done = self.measured + self.skipped
        line = (
            f"\r[{self._label}] {done}/{self.total} pairs"
            f" ({self.measured} measured"
            + (f", {self.replayed} replayed" if self.replayed else "")
            + f", {self.skipped} skipped, {self.retries} retried)"
            + suffix
        )
        self.out.write(line)
        self.out.flush()

    def on_event(self, event: CampaignEvent) -> None:
        """Update the counters and redraw the progress line."""
        if isinstance(event, CampaignStarted):
            self.total = len(event.facet_plan) * event.n_pairs
            self._label = f"{event.axis} campaign"
            self._render()
        elif isinstance(event, PairMeasured):
            self.measured += 1
            if event.replayed:
                self.replayed += 1
            self._render()
        elif isinstance(event, PairSkipped):
            self.skipped += 1
            self._render()
        elif isinstance(event, PairRetried):
            self.retries += 1
            self._render()
        elif isinstance(event, CampaignFinished):
            self._render(
                suffix=f" — done in {event.wall_virtual_s:.2f} virtual s\n"
            )


@dataclass
class RecordingSink(CampaignSink):
    """Test/service utility: records every event in arrival order."""

    events: list[CampaignEvent] = field(default_factory=list)

    def on_event(self, event: CampaignEvent) -> None:
        """Append the event to the record."""
        self.events.append(event)

    def of_type(self, *types) -> list[CampaignEvent]:
        """The recorded events that are instances of ``types``."""
        return [e for e in self.events if isinstance(e, types)]
