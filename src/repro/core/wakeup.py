"""Wake-up latency estimation (paper Sec. V, first bullet).

"The wake-up can be estimated using an artificial workload split into
several kernels. ... By looping through the iterations of the first
kernel, their execution time can be compared to the average iteration
execution time of the last kernel.  This helps determine when the
accelerator stabilized at the imposed frequency settings."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cuda.kernel import MicrobenchmarkKernel
from repro.errors import MeasurementError
from repro.machine import Machine
from repro.stats.descriptive import SampleStats, summarize
from repro.stats.intervals import two_sigma_band

__all__ = ["WakeupEstimate", "estimate_wakeup_latency"]


@dataclass(frozen=True)
class WakeupEstimate:
    """Result of one wake-up estimation run."""

    wakeup_s: float
    freq_mhz: float
    stabilization_iteration: int
    first_kernel_stats: SampleStats
    last_kernel_stats: SampleStats

    @property
    def slowdown_factor(self) -> float:
        """How much slower the first iterations ran vs. steady state."""
        return self.first_kernel_stats.maximum / self.last_kernel_stats.mean


def estimate_wakeup_latency(
    machine: Machine,
    freq_mhz: float | None = None,
    device_index: int = 0,
    idle_wait_s: float = 0.5,
    n_kernels: int = 4,
    kernel_duration_s: float = 0.4,
    iteration_duration_s: float = 60e-6,
    sm_count: int = 4,
    sigmas: float = 2.0,
) -> WakeupEstimate:
    """Measure how long the device takes to reach a locked clock from idle.

    Lets the device go idle, locks ``freq_mhz`` (default: nominal clock),
    runs ``n_kernels`` back-to-back kernels, and finds the first iteration
    of the first kernel whose execution time falls within the two-sigma
    band of the last kernel's statistics.
    """
    device = machine.device(device_index)
    ctx = machine.cuda_context(device_index)
    nvml = machine.nvml()
    handle = nvml.device_get_handle_by_index(device_index)

    if freq_mhz is None:
        freq_mhz = device.spec.nominal_sm_frequency_mhz

    # Ensure the device is asleep, then lock the clock while idle.
    machine.host.sleep(idle_wait_s)
    handle.set_gpu_locked_clocks(freq_mhz, freq_mhz)

    kernel = MicrobenchmarkKernel.sized_for(
        device.spec,
        iteration_duration_s=iteration_duration_s,
        total_duration_s=kernel_duration_s,
        sm_count=sm_count,
        label="wakeup-probe",
    )
    views = [ctx.run(kernel) for _ in range(n_kernels)]

    last_stats = summarize(views[-1].diffs)
    lo, hi = two_sigma_band(last_stats, sigmas)

    first = views[0]
    diffs = first.diffs
    in_band = (diffs >= lo) & (diffs <= hi)
    if not in_band.any(axis=1).all():
        raise MeasurementError(
            "device never stabilized within the first kernel; increase "
            "kernel_duration_s"
        )
    # Per SM: first stable iteration; the wake-up is over when the *last*
    # SM stabilizes.
    first_idx = np.argmax(in_band, axis=1)
    kernel_start = float(first.starts.min())
    stable_ends = np.take_along_axis(
        first.ends, first_idx[:, None], axis=1
    ).ravel()
    wakeup_s = float(stable_ends.max() - kernel_start)

    return WakeupEstimate(
        wakeup_s=wakeup_s,
        freq_mhz=float(freq_mhz),
        stabilization_iteration=int(first_idx.max()),
        first_kernel_stats=summarize(diffs),
        last_kernel_stats=last_stats,
    )
