"""Pair-parallel lockstep driver: N pair machines per evaluation sweep.

One level above the pass-block tier: where :func:`measure_pair_blocked`
amortizes per-pass fixed costs by evaluating one pair's speculated block
in a single array sweep, this module amortizes them *across pairs* by
stepping N independent :class:`~repro.core.passblock.PairBlockRunner`
machines in lockstep and evaluating all their speculated blocks in one
shape-grouped structure-of-arrays sweep
(:func:`repro.gpusim.soa.evaluate_entries_grouped`).

Batch formation
---------------
The execution engine chunks a facet's jobs, in pair-index order, into
batches of ``config.pair_batch_size`` replica machines.  Machines of
different pairs are fully independent — separate SFC64 streams, clocks,
thermal state — so interleaving their *simulation* steps is free, and
stacking their *evaluation* math is legal as long as every per-element
operation stays row-pure (it does; see the soa module's determinism
contract).

Peel-off rules
--------------
A runner leaves the lockstep batch when it diverges from the speculation
assumption:

* **window growth** — the runner rolled back through its checkpoint
  ledger and re-plans with a larger window; it peels off and finishes on
  the scalar blocked path (:func:`_finish_peeled`, the same
  speculate/evaluate/resolve loop ``measure_pair_blocked`` runs), since
  its block shape now disagrees with the batch and growth tends to recur;
* **early stop / abandon / phase-2 abort** — the runner is ``done`` and
  simply exits the live set, to be finalized with the rest.

Determinism contract
--------------------
Each runner's control flow is the shared :class:`PairBlockRunner`
implementation, its RNG draws happen machine-locally in scalar order
during speculation, and every evaluation it receives is bit-identical to
the single-pair block sweep.  Batched results therefore match the serial
loop exactly — CSV bytes and per-pair virtual wall clock — for any batch
size and any divergence pattern, which ``tests/test_core_pairbatch.py``
asserts across axes and architectures.
"""

from __future__ import annotations

from repro.core.passblock import PairBlockRunner, _evaluate_deferred_block
from repro.core.results import PairResult
from repro.gpusim.soa import SoaEvalEntry, evaluate_entries_grouped

__all__ = ["measure_pair_batch"]


def _finish_peeled(runner: PairBlockRunner) -> None:
    """Finish a diverged runner on the scalar blocked path.

    Identical to the :func:`~repro.core.passblock.measure_pair_blocked`
    loop body; a separate named function so profile breakdowns can
    attribute peel-off time (`--profile` stage summary).
    """
    while not runner.done:
        runner.speculate()
        evaluations = _evaluate_deferred_block(
            runner.pending_raws, runner.bench, runner.target_stats, runner.cfg
        )
        runner.resolve(evaluations)


def measure_pair_batch(items, block_cap: int) -> list[PairResult]:
    """Measure N pairs in lockstep, one evaluation sweep per round.

    ``items`` is a list of ``(bench, init_mhz, target_mhz, phase1,
    probe)`` tuples, one per pair, each with its own replica machine; all
    share one config instance.  Returns the finished
    :class:`~repro.core.results.PairResult` list in input order.
    """
    runners = [
        PairBlockRunner(bench, init_mhz, target_mhz, phase1, probe, block_cap)
        for bench, init_mhz, target_mhz, phase1, probe in items
    ]
    if not runners:
        return []
    cfg = runners[0].cfg

    live = [r for r in runners if not r.done]
    while live:
        # 1. lockstep speculation: each machine draws and advances locally
        pending: list[list] = []
        entries: list[SoaEvalEntry] = []
        for slot, runner in enumerate(live):
            runner.speculate()
            raws = runner.pending_raws
            pending.append(raws)
            entries.extend(
                SoaEvalEntry(
                    key=(slot, pos),
                    bench=runner.bench,
                    raw=raw,
                    target_stats=runner.target_stats,
                )
                for pos, raw in enumerate(raws)
            )

        # 2. one cross-pair SoA sweep over every speculated pass
        evaluations = evaluate_entries_grouped(entries, cfg)

        # 3. per-runner scalar resolution, then peel-off
        survivors = []
        for slot, runner in enumerate(live):
            runner.resolve(
                [evaluations[(slot, pos)] for pos in range(len(pending[slot]))]
            )
            if runner.done:
                continue
            if runner.window_grew:
                _finish_peeled(runner)
                continue
            survivors.append(runner)
        live = survivors

    return [runner.finalize() for runner in runners]
