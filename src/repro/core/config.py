"""Campaign configuration (mirrors the LATEST tool's arguments, Sec. VI).

The mandatory argument is the comma-separated benchmark frequency list; the
optional arguments reproduced here are the device index, the RSE threshold
(default 5 %), and the minimum/maximum switching-latency measurement
counts.  Everything else parameterizes the methodology internals with the
paper's defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.clustering.adaptive import AdaptiveDbscanConfig
from repro.core.axis import MeasurementAxis, axis_by_name
from repro.errors import ConfigError
from repro.stats.rse import RseStoppingRule

__all__ = ["LatestConfig"]


@dataclass(frozen=True)
class LatestConfig:
    """Full configuration of a switching-latency campaign."""

    # ----- the tool's CLI surface (paper Sec. VI) ---------------------
    #: the *swept axis* ladder: SM clocks for the default ``sm_core``
    #: axis, memory clocks for the ``memory`` axis, power limits in watts
    #: for the ``power`` axis
    frequencies: tuple[float, ...]
    #: which clock domain the campaign sweeps (:mod:`repro.core.axis`);
    #: ``"sm_core"`` is the paper's setup and stays bit-identical to the
    #: pre-axis pipeline
    axis: str = "sm_core"
    #: SM clock(s) a memory- or power-axis campaign locks.  A scalar (or
    #: ``None``, meaning the device's maximum SM frequency) runs the
    #: single-facet campaign; a tuple runs the full swept-axis pair grid
    #: once per locked SM clock — the transpose of the core×memory grid.
    #: Only valid with axes that lock the SM clock as their facet
    #: (``memory``, ``power``).
    locked_sm_mhz: "float | tuple[float, ...] | None" = None
    #: memory-bound fraction of the benchmark kernel; ``None`` uses the
    #: swept axis's default (0.30 for ``sm_core`` — the legacy value —
    #: and 0.70 for ``memory``, which must *see* the memory clock)
    kernel_memory_intensity: float | None = None
    device_index: int = 0
    rse_threshold: float = 0.05
    min_measurements: int = 25
    max_measurements: int = 200
    rse_check_every: int = 25
    #: memory clocks to sweep the SM pair grid over (the core×memory
    #: extension; paper Sec. VII names the memory domain as the next
    #: measurement axis).  ``None`` keeps the legacy fixed-memory campaign
    #: bit-identical: the memory domain is never touched.
    memory_frequencies: tuple[float, ...] | None = None

    # ----- workload sizing (paper Sec. V) -----------------------------
    #: per-iteration duration at the device's max clock; iterations must be
    #: tiny (they set the latency resolution) yet distinguishable between
    #: neighbouring frequencies
    iteration_duration_s: float = 60e-6
    #: SMs recorded by the benchmark kernel (None = every SM)
    record_sm_count: int | None = None
    #: warm-up kernels per frequency in phase 1 (thermal + wake-up settling)
    warmup_kernels: int = 2
    warmup_kernel_duration_s: float = 0.12
    #: duration of the phase-1 measurement kernel per frequency
    measure_kernel_duration_s: float = 0.20
    #: iterations executed on the initial frequency before the change call
    #: ("ideally several hundred", Sec. V)
    delay_iterations: int = 300
    #: identification iterations after the switch window ("several hundred
    #: up to a thousand", Sec. V)
    confirm_iterations: int = 300
    #: switch window = this factor times the longest probe latency
    switch_window_factor: float = 10.0
    #: probe pairs used for window estimation (small/medium/high levels)
    probe_pair_count: int = 3
    #: growth factor and retry budget when a latency is not captured
    window_growth_factor: float = 10.0
    max_window_retries: int = 2
    #: "probe-max" sizes every pair's window from the probe maximum (the
    #: paper's rule); "adaptive" starts from the probe median and relies on
    #: window growth, trading fidelity for speed on pathological pairs
    window_policy: str = "adaptive"
    #: fixed settle time on the initial frequency before the benchmark
    #: kernel; None enables NVML clock polling between filler chunks
    init_settle_s: float | None = None
    #: filler chunk length while polling for the initial clock to settle
    settle_chunk_s: float = 0.12
    #: give up on settling after this much busy time (counts as a failed
    #: attempt; pathological initial frequencies exist, see GH200)
    max_settle_s: float = 3.0
    #: switch-window length used by the probe measurements
    probe_window_s: float = 0.8

    # ----- statistics --------------------------------------------------
    alpha: float = 0.05
    confidence: float = 0.95
    #: width of the acceptance band in standard deviations (Sec. V-A)
    detection_sigmas: float = 2.0
    #: "two-sigma" (the paper's criterion) or "confidence-interval"
    #: (FTaLaT's criterion, kept for the ablation of Sec. V-A)
    detection_criterion: str = "two-sigma"
    #: relative tolerance on the tail-vs-target mean difference (the ``tol``
    #: input of Algorithm 2)
    tolerance_rel: float = 0.02
    #: minimum tail length for a trustworthy confirmation test
    min_confirm_tail: int = 30
    #: phase-1 workload growth retries for indistinguishable pairs
    max_workload_growth: int = 2
    workload_growth_factor: float = 2.0

    # ----- timer synchronization ----------------------------------------
    #: transport model for the IEEE-1588 handshake; None uses the default
    #: near-symmetric PCIe link (override to study sync-error impact)
    ptp_link: "PtpLink | None" = None  # noqa: F821 - forward ref
    ptp_rounds: int = 16

    # ----- resilience ---------------------------------------------------
    throttle_check_every: int = 5
    throttle_backoff_s: float = 10.0
    throttle_discard_count: int = 5
    #: consecutive evaluation failures before the pair is abandoned
    max_consecutive_failures: int = 12

    # ----- worker supervision (execution engine) ------------------------
    #: wall-clock seconds of job timeout per expected *virtual* second of
    #: pair cost (:class:`repro.exec.jobs.ProbeCostModel`); ``None``
    #: disables per-job timeouts (the default — there is no universal
    #: virtual→wall mapping, so opting in means calibrating the factor to
    #: the host)
    job_timeout_factor: float | None = None
    #: additive wall-clock floor under every per-job timeout
    job_timeout_floor_s: float = 5.0
    #: times a crashed/timed-out/transport-failed job is retried before
    #: its pair is quarantined (recorded as a skip reason instead of
    #: aborting the campaign); retries are bit-identical by the engine's
    #: determinism contract, so a transient fault loses nothing
    max_job_retries: int = 2
    #: exponential-backoff base between retries of the same unit
    #: (``base * 2**(attempt-1)``, capped), in real seconds
    retry_backoff_s: float = 0.25
    retry_backoff_max_s: float = 10.0
    #: deterministic fault-injection spec for the recovery test harness
    #: (:mod:`repro.exec.faults`); ``None`` (production) injects nothing
    inject_faults: str | None = None

    # ----- execution ----------------------------------------------------
    #: upper bound on the pass-block size of the batched per-pair loop
    #: (:mod:`repro.core.passblock`); blocks are additionally clipped so a
    #: stopping-rule check can only land on the final pass of a block.
    #: ``None`` forces the scalar reference loop
    #: (:func:`repro.core.campaign.measure_pair_reference`).  Results are
    #: bit-identical for every setting; this knob only trades batching
    #: efficiency against speculation (rolled back on mid-block state
    #: changes).  25 mirrors the paper's RSE check cadence.
    pass_block_size: int | None = 25

    #: pair-parallel SoA batch width of the execution engine
    #: (:mod:`repro.core.pairbatch`): chunks of up to this many pair jobs
    #: advance in lockstep, sharing one cross-pair evaluation sweep per
    #: round.  ``None`` (the default) keeps the one-job-at-a-time engine
    #: path.  Requires the pass-block pipeline (``pass_block_size`` not
    #: ``None``) underneath; results are bit-identical for every setting.
    pair_batch_size: int | None = None

    # ----- outlier filtering (Algorithm 3) ------------------------------
    outlier_config: AdaptiveDbscanConfig = field(default_factory=AdaptiveDbscanConfig)

    # ----- output --------------------------------------------------------
    output_dir: str | None = None

    #: directory of the persistent per-facet calibration cache
    #: (:mod:`repro.core.calibcache`): phase-1 characterizations and probe
    #: window estimates are stored content-addressed so repeat campaigns
    #: skip straight to phase 2/3, bit-identically.  Engine-only — the
    #: serial loop shares one RNG/clock timeline across calibration and
    #: measurement, so it cannot skip a cached calibration
    #: (:func:`~repro.core.campaign.run_campaign` rejects the combination).
    #: ``None`` (the default) disables caching.
    calibration_cache: str | None = None

    def __post_init__(self) -> None:
        axis_by_name(self.axis)  # validates the axis name
        if self.axis != "sm_core":
            if self.memory_frequencies is not None:
                raise ConfigError(
                    "memory_frequencies (core×memory grid facets) only "
                    "apply to the sm_core axis; the memory axis sweeps "
                    "memory clocks through `frequencies`"
                )
        if self.locked_sm_mhz is not None:
            if not self.swept_axis().locks_sm_facet:
                raise ConfigError(
                    "locked_sm_mhz only applies to axes that lock the SM "
                    "clock as their campaign facet (memory, power); the "
                    "sm_core axis sweeps the SM clock itself"
                )
            if isinstance(self.locked_sm_mhz, (tuple, list)):
                plan = tuple(float(f) for f in self.locked_sm_mhz)
                object.__setattr__(self, "locked_sm_mhz", plan)
                if not plan:
                    raise ConfigError(
                        "locked_sm_mhz facet tuple must be non-empty (or a "
                        "scalar for the single-facet campaign)"
                    )
                if any(f <= 0 for f in plan):
                    raise ConfigError("locked_sm_mhz clocks must be positive")
                if len(set(plan)) != len(plan):
                    raise ConfigError("duplicate locked_sm_mhz clocks")
            elif self.locked_sm_mhz <= 0:
                raise ConfigError("locked_sm_mhz must be positive")
        if self.kernel_memory_intensity is not None and not (
            0.0 <= self.kernel_memory_intensity < 1.0
        ):
            raise ConfigError("kernel_memory_intensity must be in [0, 1)")
        if len(self.frequencies) < 2:
            raise ConfigError("need at least two benchmark frequencies")
        if len(set(self.frequencies)) != len(self.frequencies):
            raise ConfigError("duplicate benchmark frequencies")
        if any(f <= 0 for f in self.frequencies):
            raise ConfigError("benchmark frequencies must be positive")
        if self.memory_frequencies is not None:
            if not self.memory_frequencies:
                raise ConfigError(
                    "memory_frequencies must be a non-empty tuple (or None "
                    "for the legacy fixed-memory campaign)"
                )
            if any(f <= 0 for f in self.memory_frequencies):
                raise ConfigError("memory frequencies must be positive")
            if len(set(self.memory_frequencies)) != len(self.memory_frequencies):
                raise ConfigError("duplicate memory frequencies")
        if self.detection_criterion not in ("two-sigma", "confidence-interval"):
            raise ConfigError(
                f"unknown detection criterion {self.detection_criterion!r}"
            )
        if self.window_policy not in ("adaptive", "probe-max"):
            raise ConfigError(f"unknown window policy {self.window_policy!r}")
        if not 0 < self.rse_threshold:
            raise ConfigError("rse_threshold must be positive")
        if self.min_measurements < 2:
            raise ConfigError("min_measurements must be >= 2")
        if self.max_measurements < self.min_measurements:
            raise ConfigError("max_measurements below min_measurements")
        if self.delay_iterations < 1 or self.confirm_iterations < 1:
            raise ConfigError("delay/confirm iteration counts must be >= 1")
        if self.pass_block_size is not None and self.pass_block_size < 1:
            raise ConfigError("pass_block_size must be >= 1 (or None)")
        if self.pair_batch_size is not None and self.pair_batch_size < 1:
            raise ConfigError("pair_batch_size must be >= 1 (or None)")
        if self.job_timeout_factor is not None and self.job_timeout_factor <= 0:
            raise ConfigError("job_timeout_factor must be positive (or None)")
        if self.job_timeout_floor_s < 0:
            raise ConfigError("job_timeout_floor_s must be >= 0")
        if self.max_job_retries < 0:
            raise ConfigError("max_job_retries must be >= 0")
        if self.retry_backoff_s < 0 or self.retry_backoff_max_s < 0:
            raise ConfigError("retry backoff times must be >= 0")
        if self.inject_faults is not None:
            # Parse eagerly so a malformed spec fails at configuration
            # time, not inside a worker process.  Imported lazily: the
            # exec package imports core at module load.
            from repro.exec.faults import FaultPlan

            FaultPlan.parse(self.inject_faults)

    # ------------------------------------------------------------------
    def swept_axis(self) -> MeasurementAxis:
        """The campaign's swept-axis object (:mod:`repro.core.axis`)."""
        return axis_by_name(self.axis)

    def resolved_kernel_intensity(self) -> float:
        """Kernel memory-bound fraction: explicit value or axis default."""
        if self.kernel_memory_intensity is not None:
            return self.kernel_memory_intensity
        return self.swept_axis().default_kernel_intensity

    def stopping_rule(self) -> RseStoppingRule:
        return RseStoppingRule(
            threshold=self.rse_threshold,
            min_measurements=self.min_measurements,
            max_measurements=self.max_measurements,
            check_every=self.rse_check_every,
        )

    def pairs(self) -> list[tuple[float, float]]:
        """All ordered swept-axis frequency pairs (latencies are
        non-symmetric); SM pairs on the default axis, memory pairs on the
        memory axis."""
        return [
            (a, b)
            for a in self.frequencies
            for b in self.frequencies
            if a != b
        ]

    def memory_plan(self) -> tuple[float | None, ...]:
        """Memory clocks the campaign visits, in order.

        ``(None,)`` for legacy campaigns — the sentinel means "whatever the
        device booted at, never touched".
        """
        if self.memory_frequencies is None:
            return (None,)
        return self.memory_frequencies

    def locked_sm_plan(self) -> tuple[float, ...] | None:
        """Locked-SM facet plan of a multi-facet swept-axis campaign.

        ``None`` for single-facet campaigns (scalar or unset
        ``locked_sm_mhz``); a tuple — even of length one — opts into the
        faceted result layout (facet-keyed pairs, facet-tagged CSV names).
        """
        if isinstance(self.locked_sm_mhz, tuple):
            return self.locked_sm_mhz
        return None

    def facet_plan(self) -> tuple[float | None, ...]:
        """Facet coordinates the campaign visits, in order.

        The locked memory clocks of a core×memory grid campaign, the
        locked SM clocks of a multi-facet swept-axis campaign, or
        ``(None,)`` — the single implicit facet every other campaign has
        (whatever the swept axis's ``prepare_facet`` establishes).
        """
        if self.memory_frequencies is not None:
            return self.memory_frequencies
        plan = self.locked_sm_plan()
        if plan is not None:
            return plan
        return (None,)

    def grid_points(self) -> list[tuple[float, float, float | None]]:
        """The full core×memory campaign grid, memory-major.

        Each point is ``(init_sm, target_sm, memory)``; the memory
        coordinate is ``None`` for legacy campaigns.  The enumeration
        order is the execution (and job-index) order.
        """
        return [
            (a, b, m) for m in self.memory_plan() for (a, b) in self.pairs()
        ]

    def with_frequencies(self, freqs) -> "LatestConfig":
        return replace(self, frequencies=tuple(freqs))

    def with_memory_frequencies(self, freqs) -> "LatestConfig":
        return replace(
            self,
            memory_frequencies=None if freqs is None else tuple(freqs),
        )
