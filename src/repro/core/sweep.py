"""Multi-device campaign sweeps.

The paper's Sec. VII-C benchmarks four A100 units of one Karolina node
with the same configuration.  This module runs a campaign per device and
feeds the variability analysis, plus a convenience for sweeping several
GPU *models* with per-model frequency subsets (how the paper's Table II
was produced).

Both sweeps accept ``workers``: ``None`` keeps the legacy sequential
semantics on the caller's machine; an integer runs one process per
simulated GPU.  Each campaign inside a sweep worker runs the classic
serial loop (pair-level :mod:`repro.exec` parallelism is a per-campaign
choice made through ``run_campaign(..., workers=...)`` directly).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace

from repro.core.campaign import run_campaign
from repro.core.config import LatestConfig
from repro.core.results import CampaignResult
from repro.errors import ConfigError
from repro.exec import mp_context
from repro.machine import Machine, MachineBlueprint, make_machine

__all__ = ["sweep_devices", "sweep_models"]


def _run_device_campaign(args: tuple[MachineBlueprint, LatestConfig]) -> CampaignResult:
    """Worker entry: rebuild the node and run one device's campaign."""
    blueprint, cfg = args
    return run_campaign(blueprint.build(), cfg)


def _run_model_campaign(
    args: tuple[str, LatestConfig, int, str]
) -> CampaignResult:
    """Worker entry: build one model's machine and run its campaign."""
    model, cfg, seed, hostname = args
    machine = make_machine(model, seed=seed, hostname=hostname)
    return run_campaign(machine, cfg)


def sweep_devices(
    machine: Machine,
    config: LatestConfig,
    device_indices: list[int] | None = None,
    workers: int | None = None,
) -> list[CampaignResult]:
    """Run the same campaign on several GPUs of one machine.

    Each device gets a config copy with its own ``device_index`` (and its
    own output directory suffix when CSV output is enabled); results come
    back in index order, ready for
    :func:`repro.analysis.variability.variability_report`.

    With ``workers`` set, every device runs in its own process against a
    blueprint replica of the (freshly built) node: results are
    deterministic for any worker count, but the devices no longer share
    one sequential timeline, so they differ from the ``workers=None``
    ordering-dependent run.
    """
    if device_indices is None:
        device_indices = list(range(len(machine.devices)))
    if not device_indices:
        raise ConfigError("device sweep needs at least one index")
    for index in device_indices:
        machine.device(index)  # validates the index early
    configs = [replace(config, device_index=i) for i in device_indices]

    if workers is None:
        return [run_campaign(machine, cfg) for cfg in configs]

    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    if machine.blueprint is None:
        raise ConfigError(
            "parallel device sweep needs a machine built by make_machine()"
        )
    jobs = [(machine.blueprint, cfg) for cfg in configs]
    if workers == 1 or len(jobs) == 1:
        return [_run_device_campaign(job) for job in jobs]
    with ProcessPoolExecutor(
        max_workers=min(workers, len(jobs)), mp_context=mp_context()
    ) as pool:
        return list(pool.map(_run_device_campaign, jobs))


def sweep_models(
    model_configs: dict[str, LatestConfig],
    seed: int = 0,
    hostname: str = "simnode01",
    workers: int | None = None,
    memory_subsets: dict[str, tuple[float, ...]] | None = None,
) -> dict[str, CampaignResult]:
    """Run one campaign per GPU model (e.g. the paper's three devices).

    ``model_configs`` maps model names (``"A100"``, ``"GH200"``,
    ``"RTX6000"``) to their frequency-subset configurations.  Each model
    gets its own machine derived from ``seed`` so results are independent
    and reproducible — which also makes the parallel path (one process per
    model) bit-identical to the sequential one for any ``workers``.

    ``memory_subsets`` optionally assigns per-model memory-clock subsets
    (each must come from the model's
    :attr:`~repro.gpusim.spec.GpuSpec.supported_memory_clocks_mhz` ladder);
    models not listed keep their config's ``memory_frequencies``.
    """
    if not model_configs:
        raise ConfigError("model sweep needs at least one model")
    if workers is not None and workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    if memory_subsets:
        unknown = set(memory_subsets) - set(model_configs)
        if unknown:
            raise ConfigError(
                f"memory_subsets names models not in the sweep: {sorted(unknown)}"
            )
        model_configs = {
            model: (
                replace(cfg, memory_frequencies=tuple(memory_subsets[model]))
                if model in memory_subsets
                else cfg
            )
            for model, cfg in model_configs.items()
        }
    ordered = sorted(model_configs.items())
    jobs = [
        (model, config, seed + 1000 * offset, hostname)
        for offset, (model, config) in enumerate(ordered)
    ]

    if workers is None or workers == 1 or len(jobs) == 1:
        results = [_run_model_campaign(job) for job in jobs]
    else:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(jobs)), mp_context=mp_context()
        ) as pool:
            results = list(pool.map(_run_model_campaign, jobs))
    return {model: res for (model, _, _, _), res in zip(jobs, results)}
