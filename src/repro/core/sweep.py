"""Multi-device campaign sweeps.

The paper's Sec. VII-C benchmarks four A100 units of one Karolina node
with the same configuration.  This module runs a campaign per device and
feeds the variability analysis, plus a convenience for sweeping several
GPU *models* with per-model frequency subsets (how the paper's Table II
was produced).
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.campaign import run_campaign
from repro.core.config import LatestConfig
from repro.core.results import CampaignResult
from repro.errors import ConfigError
from repro.machine import Machine, make_machine

__all__ = ["sweep_devices", "sweep_models"]


def sweep_devices(
    machine: Machine,
    config: LatestConfig,
    device_indices: list[int] | None = None,
) -> list[CampaignResult]:
    """Run the same campaign on several GPUs of one machine.

    Each device gets a config copy with its own ``device_index`` (and its
    own output directory suffix when CSV output is enabled); results come
    back in index order, ready for
    :func:`repro.analysis.variability.variability_report`.
    """
    if device_indices is None:
        device_indices = list(range(len(machine.devices)))
    if not device_indices:
        raise ConfigError("device sweep needs at least one index")
    results = []
    for index in device_indices:
        machine.device(index)  # validates the index early
        cfg = replace(config, device_index=index)
        results.append(run_campaign(machine, cfg))
    return results


def sweep_models(
    model_configs: dict[str, LatestConfig],
    seed: int = 0,
    hostname: str = "simnode01",
) -> dict[str, CampaignResult]:
    """Run one campaign per GPU model (e.g. the paper's three devices).

    ``model_configs`` maps model names (``"A100"``, ``"GH200"``,
    ``"RTX6000"``) to their frequency-subset configurations.  Each model
    gets its own machine derived from ``seed`` so results are independent
    and reproducible.
    """
    if not model_configs:
        raise ConfigError("model sweep needs at least one model")
    results: dict[str, CampaignResult] = {}
    for offset, (model, config) in enumerate(sorted(model_configs.items())):
        machine = make_machine(
            model, seed=seed + 1000 * offset, hostname=hostname
        )
        results[model] = run_campaign(machine, config)
    return results
