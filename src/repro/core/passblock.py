"""Batched pass-block execution of the per-pair measurement loop.

The scalar reference loop (:func:`repro.core.campaign.measure_pair_reference`)
runs one full measurement pass at a time: PTP handshake, settle, benchmark
kernel, frequency change, then the phase-3 evaluation — and only then
decides what the next pass looks like.  Almost all of that decision logic
is cheap scalar state, while almost all of the *work* is array math whose
per-pass fixed costs dominate at campaign scale.

This module restructures the loop around **pass blocks**:

1.  *Speculate.*  Up to ``B`` passes are simulated back to back under the
    assumption that every deferred evaluation will succeed with the current
    switch window.  Each pass performs exactly the scalar path's RNG draws
    and clock advances (the simulation side is untouched); only the pure
    array analysis — per-iteration boundary inversion, device-clock
    conversion, phase-3 detection and CI confirmation — is deferred.
    Throttle checks and settle failures depend on nothing deferred, so
    they are handled eagerly at the scalar cadence.  After every pass a
    :class:`~repro.machine.MachineCheckpoint` is appended to the block's
    **ledger**.

2.  *Batch.*  At block end the deferred kernels materialize straight into
    contiguous block buffers and
    :func:`repro.core.phase3.evaluate_switch_block_deferred` evaluates the
    whole block in one array sweep (bit-identical per pass to
    :func:`~repro.core.phase3.evaluate_switch`).

3.  *Resolve.*  The scalar control flow is replayed over the real
    outcomes.  While the speculation assumption holds this commits
    measurements; at the first divergence — a failed evaluation that grows
    the window, an abandon threshold, a mid-block stopping-rule hit — the
    machine is rolled back to the ledger checkpoint taken right after the
    diverging pass, i.e. to exactly the state the scalar loop would be in,
    and the loop re-plans from there.  A failed evaluation that changes
    *no* simulation state (no window growth, no abandon) is not a
    divergence at all: the speculated suffix remains valid and resolution
    simply keeps walking.

Because every RNG draw happens in scalar order and every discarded suffix
is rolled back through the ledger, the batched loop is bit-identical to the
scalar reference — same measurements, outlier labels, and CSV bytes — for
every block size, which ``tests/test_core_passblock.py`` asserts across
architectures.

Scalar fallback
---------------
``measure_pair`` (the dispatcher in :mod:`repro.core.campaign`) routes to
the reference loop when ``config.pass_block_size`` is ``None`` or the
machine carries an active tracer (speculative passes would emit trace
events for work that is later rolled back; the reference loop's trace is
the meaningful one).  Within the batched loop itself, blocks degrade to
size 1 near stopping-rule boundaries — identical semantics, just without
batching gains.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.context import BenchContext
from repro.core.phase2 import RawSwitchData, run_switch_benchmark
from repro.core.phase3 import (
    block_scratch,
    evaluate_switch,
    evaluate_switch_block_deferred,
)
from repro.core.results import PairResult, SwitchingLatencyMeasurement
from repro.errors import MeasurementError
from repro.gpusim.thermal import ThrottleReasons
from repro.machine import MachineCheckpoint
from repro.stats.rse import RseStoppingRule

__all__ = ["PairBlockRunner", "measure_pair_blocked", "plan_block_size"]


def plan_block_size(
    n_measurements: int, rule: RseStoppingRule, cap: int
) -> int:
    """Passes to speculate so a stop check can only land on the last one.

    The stopping rule fires only when the measurement count reaches
    ``max_measurements`` or a multiple of ``check_every`` at or above
    ``min_measurements``; assuming every speculated pass yields a
    measurement, the distance to the nearest such count bounds the block.
    Failed passes only shorten the real distance, which is safe — the
    resolution walk re-checks the rule after every commit and rolls back
    on a genuine mid-block stop (possible only after thermal discards).
    """
    n = n_measurements
    d_max = max(rule.max_measurements - n, 1)
    first_checkable = max(rule.min_measurements, n + 1)
    next_multiple = -(-first_checkable // rule.check_every) * rule.check_every
    d_check = next_multiple - n
    return max(1, min(cap, d_max, d_check))


@dataclass
class _BlockEvent:
    """One speculated step of a block, with its post-state ledger entry."""

    kind: str  # "raw" | "settle-fail" | "throttle-thermal" | "throttle-power"
    raw: RawSwitchData | None
    checkpoint: MachineCheckpoint


def _evaluate_deferred_block(raws, bench, target_stats, cfg):
    """Materialize a block's deferred kernels into contiguous buffers.

    The per-kernel true-time end boundaries are device-clock converted
    directly into one ``(n_pass, n_sm, n_iter)`` matrix (no per-pass
    DeviceTimestamps, no starts matrices — back-to-back iterations make
    them shifted views of the ends), then the whole block is evaluated in
    one sweep.  Per-element arithmetic is identical to the scalar path's
    ``as_device_view`` + ``evaluate_switch`` chain.
    """
    if not raws:
        return []
    if len(raws) == 1:
        raws[0].materialize(bench.cuda)
        return [evaluate_switch(raws[0], target_stats, cfg)]

    gpu_clock = bench.device.gpu_clock
    deferreds = [raw.pending.handle.deferred for raw in raws]
    n_sm, n_iter = deferreds[0].cycles_shape
    ends = block_scratch("ends", (len(raws), n_sm, n_iter))
    start0_true = np.empty((len(raws), n_sm))
    for b, deferred in enumerate(deferreds):
        gpu_clock.convert_array(deferred.ends_true(), out=ends[b])
        start0_true[b] = deferred.sm_start_times
    start0 = gpu_clock.convert_array(start0_true)
    return evaluate_switch_block_deferred(
        start0, ends, [raw.ts_acc for raw in raws], target_stats, cfg
    )


class PairBlockRunner:
    """Resumable speculate/resolve state machine of one pair's blocked loop.

    The blocked measurement loop factored into explicit phases so two
    drivers can share one control-flow implementation:

    * :func:`measure_pair_blocked` drives a single runner to completion —
      speculate, evaluate the block, resolve, repeat;
    * the pair-parallel tier (:mod:`repro.core.pairbatch`) drives N
      runners in lockstep, evaluating all speculated blocks in one
      cross-pair array sweep between the per-runner speculate and resolve
      steps.

    Because the scalar decision logic lives here exactly once, any driver
    that feeds each runner the per-pass evaluations in speculation order
    reproduces ``measure_pair_blocked`` — and therefore the scalar
    reference loop — bit for bit.
    """

    def __init__(
        self,
        bench: BenchContext,
        init_mhz: float,
        target_mhz: float,
        phase1,
        probe,
        block_cap: int,
    ) -> None:
        # Imported here: campaign imports this module lazily from its own
        # measure_pair dispatcher.
        from repro.core.campaign import _initial_window_iters

        self.bench = bench
        self.cfg = bench.config
        self.machine = bench.machine
        self.kernel = phase1.kernel
        self.init_mhz = init_mhz
        self.target_mhz = target_mhz
        self.target_stats = phase1.stats_for(target_mhz)
        self.rule = self.cfg.stopping_rule()
        self.block_cap = block_cap
        self.pair = PairResult(
            init_mhz=float(init_mhz),
            target_mhz=float(target_mhz),
            axis=self.cfg.axis,
        )
        self.window_iters = _initial_window_iters(
            bench, init_mhz, target_mhz, probe, self.kernel
        )
        self.growths = 0
        self.consecutive_failures = 0
        self.passes = 0
        self.done = False
        #: True when the last resolve grew the window (and rolled the
        #: speculated suffix back) — the batch tier's peel-off signal
        self.window_grew = False
        self._events: list[_BlockEvent] = []

    # ------------------------------------------------------------------
    # 1. speculate: simulate up to one block of passes, deferring evaluation
    # ------------------------------------------------------------------
    def speculate(self) -> None:
        bench, cfg, machine = self.bench, self.cfg, self.machine
        block = plan_block_size(
            len(self.pair.measurements), self.rule, self.block_cap
        )
        events: list[_BlockEvent] = []
        spec_consecutive = self.consecutive_failures
        spec_passes = self.passes
        for _ in range(block):
            try:
                raw = run_switch_benchmark(
                    bench, self.init_mhz, self.target_mhz, self.kernel,
                    self.window_iters, defer_timestamps=True,
                )
            except MeasurementError:
                spec_consecutive += 1
                events.append(
                    _BlockEvent("settle-fail", None, machine.checkpoint())
                )
                if spec_consecutive >= cfg.max_consecutive_failures:
                    break
                continue
            spec_passes += 1

            # Throttle handling (paper Sec. VI) depends only on the NVML
            # poll taken during the pass — nothing deferred — so it runs
            # eagerly at the exact scalar cadence.  SW_POWER_CAP is masked
            # on the power-cap axis (it is the measured signal there).
            if spec_passes % cfg.throttle_check_every == 0:
                reasons = raw.throttle_reasons
                if reasons & (
                    ThrottleReasons.SW_POWER_CAP & ~bench.axis.benign_throttle
                ):
                    events.append(
                        _BlockEvent("throttle-power", raw, machine.checkpoint())
                    )
                    break
                if reasons & (
                    ThrottleReasons.SW_THERMAL | ThrottleReasons.HW_THERMAL
                ):
                    bench.host.sleep(cfg.throttle_backoff_s)
                    events.append(
                        _BlockEvent("throttle-thermal", raw, machine.checkpoint())
                    )
                    continue

            spec_consecutive = 0  # speculation assumes the pass evaluates ok
            events.append(_BlockEvent("raw", raw, machine.checkpoint()))
        self._events = events
        self.window_grew = False

    @property
    def pending_raws(self) -> list[RawSwitchData]:
        """The speculated block's deferred measurement passes, in order."""
        return [e.raw for e in self._events if e.kind == "raw"]

    # ------------------------------------------------------------------
    # 3. resolve: replay the scalar control flow over real outcomes
    # ------------------------------------------------------------------
    def resolve(self, evaluations) -> None:
        """Walk the speculated block against its per-pass evaluations.

        ``evaluations`` must hold one :class:`SwitchEvaluation` per entry
        of :attr:`pending_raws`, in order — however they were computed
        (single-pair block sweep or cross-pair group sweep).
        """
        cfg, machine, pair = self.cfg, self.machine, self.pair
        events = self._events
        self._events = []
        evaluations = iter(evaluations)
        for index, event in enumerate(events):
            is_last = index == len(events) - 1

            if event.kind == "settle-fail":
                pair.n_failed_attempts += 1
                self.consecutive_failures += 1
                if self.consecutive_failures >= cfg.max_consecutive_failures:
                    pair.skipped = True
                    pair.skip_reason = "initial-frequency-never-settled"
                    if not is_last:
                        machine.restore(event.checkpoint)
                    self.done = True
                    break
                continue

            if event.kind == "throttle-power":
                # Power events always terminate speculation, so the machine
                # already sits at this event's checkpoint.
                self.passes += 1
                pair.skipped = True
                pair.skip_reason = "power-throttled"
                self.done = True
                break

            if event.kind == "throttle-thermal":
                self.passes += 1
                drop = min(cfg.throttle_discard_count, len(pair.measurements))
                if drop:
                    del pair.measurements[-drop:]
                pair.n_throttle_discards += drop
                continue

            # kind == "raw"
            self.passes += 1
            ev = next(evaluations)
            if ev.ok:
                self.consecutive_failures = 0
                raw = event.raw
                pair.measurements.append(
                    SwitchingLatencyMeasurement(
                        latency_s=float(ev.latency_s),
                        ts_acc=raw.ts_acc,
                        te_acc=float(ev.te_acc),
                        n_valid_sm=ev.n_valid_sm,
                        window_iterations=self.window_iters,
                        ground_truth_s=raw.ground_truth_latency_s,
                        ground_truth_outlier=raw.ground_truth_outlier,
                    )
                )
                if self.rule.should_stop(
                    [m.latency_s for m in pair.measurements]
                ):
                    if not is_last:
                        machine.restore(event.checkpoint)
                    self.done = True
                    break
                continue

            # Failed evaluation: scalar bookkeeping, then decide whether the
            # speculated suffix is still valid.
            pair.n_failed_attempts += 1
            self.consecutive_failures += 1
            if ev.window_too_short and self.growths < cfg.max_window_retries:
                self.window_iters = int(
                    math.ceil(self.window_iters * cfg.window_growth_factor)
                )
                self.growths += 1
                pair.n_window_growths += 1
                self.consecutive_failures = 0
                # The suffix ran with the stale window — divergence.
                if not is_last:
                    machine.restore(event.checkpoint)
                self.window_grew = True
                break
            if self.consecutive_failures >= cfg.max_consecutive_failures:
                if not pair.measurements:
                    pair.skipped = True
                    pair.skip_reason = "no-viable-measurements"
                if not is_last:
                    machine.restore(event.checkpoint)
                self.done = True
                break
            # Plain failure: consumes no draws and no time, so the
            # speculated suffix is exactly what the scalar loop would have
            # run next — keep walking, no rollback.
            continue

    # ------------------------------------------------------------------
    def finalize(self) -> PairResult:
        """The finished pair, with the Algorithm-3 outlier labelling."""
        from repro.core.campaign import _MIN_FOR_OUTLIER_FILTER
        from repro.clustering.adaptive import adaptive_dbscan

        pair = self.pair
        if len(pair.measurements) >= _MIN_FOR_OUTLIER_FILTER:
            pair.outliers = adaptive_dbscan(
                [m.latency_s for m in pair.measurements],
                self.cfg.outlier_config,
            )
        return pair


def measure_pair_blocked(
    bench: BenchContext,
    init_mhz: float,
    target_mhz: float,
    phase1,
    probe,
    block_cap: int,
) -> PairResult:
    """Pass-block batched equivalent of ``measure_pair_reference``."""
    runner = PairBlockRunner(
        bench, init_mhz, target_mhz, phase1, probe, block_cap
    )
    while not runner.done:
        runner.speculate()
        evaluations = _evaluate_deferred_block(
            runner.pending_raws, bench, runner.target_stats, runner.cfg
        )
        runner.resolve(evaluations)
    return runner.finalize()
