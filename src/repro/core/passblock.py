"""Batched pass-block execution of the per-pair measurement loop.

The scalar reference loop (:func:`repro.core.campaign.measure_pair_reference`)
runs one full measurement pass at a time: PTP handshake, settle, benchmark
kernel, frequency change, then the phase-3 evaluation — and only then
decides what the next pass looks like.  Almost all of that decision logic
is cheap scalar state, while almost all of the *work* is array math whose
per-pass fixed costs dominate at campaign scale.

This module restructures the loop around **pass blocks**:

1.  *Speculate.*  Up to ``B`` passes are simulated back to back under the
    assumption that every deferred evaluation will succeed with the current
    switch window.  Each pass performs exactly the scalar path's RNG draws
    and clock advances (the simulation side is untouched); only the pure
    array analysis — per-iteration boundary inversion, device-clock
    conversion, phase-3 detection and CI confirmation — is deferred.
    Throttle checks and settle failures depend on nothing deferred, so
    they are handled eagerly at the scalar cadence.  After every pass a
    :class:`~repro.machine.MachineCheckpoint` is appended to the block's
    **ledger**.

2.  *Batch.*  At block end the deferred kernels materialize straight into
    contiguous block buffers and
    :func:`repro.core.phase3.evaluate_switch_block_deferred` evaluates the
    whole block in one array sweep (bit-identical per pass to
    :func:`~repro.core.phase3.evaluate_switch`).

3.  *Resolve.*  The scalar control flow is replayed over the real
    outcomes.  While the speculation assumption holds this commits
    measurements; at the first divergence — a failed evaluation that grows
    the window, an abandon threshold, a mid-block stopping-rule hit — the
    machine is rolled back to the ledger checkpoint taken right after the
    diverging pass, i.e. to exactly the state the scalar loop would be in,
    and the loop re-plans from there.  A failed evaluation that changes
    *no* simulation state (no window growth, no abandon) is not a
    divergence at all: the speculated suffix remains valid and resolution
    simply keeps walking.

Because every RNG draw happens in scalar order and every discarded suffix
is rolled back through the ledger, the batched loop is bit-identical to the
scalar reference — same measurements, outlier labels, and CSV bytes — for
every block size, which ``tests/test_core_passblock.py`` asserts across
architectures.

Scalar fallback
---------------
``measure_pair`` (the dispatcher in :mod:`repro.core.campaign`) routes to
the reference loop when ``config.pass_block_size`` is ``None`` or the
machine carries an active tracer (speculative passes would emit trace
events for work that is later rolled back; the reference loop's trace is
the meaningful one).  Within the batched loop itself, blocks degrade to
size 1 near stopping-rule boundaries — identical semantics, just without
batching gains.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.context import BenchContext
from repro.core.phase2 import RawSwitchData, run_switch_benchmark
from repro.core.phase3 import (
    block_scratch,
    evaluate_switch,
    evaluate_switch_block_deferred,
)
from repro.core.results import PairResult, SwitchingLatencyMeasurement
from repro.errors import MeasurementError
from repro.gpusim.thermal import ThrottleReasons
from repro.machine import MachineCheckpoint
from repro.stats.rse import RseStoppingRule

__all__ = ["measure_pair_blocked", "plan_block_size"]


def plan_block_size(
    n_measurements: int, rule: RseStoppingRule, cap: int
) -> int:
    """Passes to speculate so a stop check can only land on the last one.

    The stopping rule fires only when the measurement count reaches
    ``max_measurements`` or a multiple of ``check_every`` at or above
    ``min_measurements``; assuming every speculated pass yields a
    measurement, the distance to the nearest such count bounds the block.
    Failed passes only shorten the real distance, which is safe — the
    resolution walk re-checks the rule after every commit and rolls back
    on a genuine mid-block stop (possible only after thermal discards).
    """
    n = n_measurements
    d_max = max(rule.max_measurements - n, 1)
    first_checkable = max(rule.min_measurements, n + 1)
    next_multiple = -(-first_checkable // rule.check_every) * rule.check_every
    d_check = next_multiple - n
    return max(1, min(cap, d_max, d_check))


@dataclass
class _BlockEvent:
    """One speculated step of a block, with its post-state ledger entry."""

    kind: str  # "raw" | "settle-fail" | "throttle-thermal" | "throttle-power"
    raw: RawSwitchData | None
    checkpoint: MachineCheckpoint


def _evaluate_deferred_block(raws, bench, target_stats, cfg):
    """Materialize a block's deferred kernels into contiguous buffers.

    The per-kernel true-time end boundaries are device-clock converted
    directly into one ``(n_pass, n_sm, n_iter)`` matrix (no per-pass
    DeviceTimestamps, no starts matrices — back-to-back iterations make
    them shifted views of the ends), then the whole block is evaluated in
    one sweep.  Per-element arithmetic is identical to the scalar path's
    ``as_device_view`` + ``evaluate_switch`` chain.
    """
    if not raws:
        return []
    if len(raws) == 1:
        raws[0].materialize(bench.cuda)
        return [evaluate_switch(raws[0], target_stats, cfg)]

    gpu_clock = bench.device.gpu_clock
    deferreds = [raw.pending.handle.deferred for raw in raws]
    n_sm, n_iter = deferreds[0].cycles_shape
    ends = block_scratch("ends", (len(raws), n_sm, n_iter))
    start0_true = np.empty((len(raws), n_sm))
    for b, deferred in enumerate(deferreds):
        gpu_clock.convert_array(deferred.ends_true(), out=ends[b])
        start0_true[b] = deferred.sm_start_times
    start0 = gpu_clock.convert_array(start0_true)
    return evaluate_switch_block_deferred(
        start0, ends, [raw.ts_acc for raw in raws], target_stats, cfg
    )


def measure_pair_blocked(
    bench: BenchContext,
    init_mhz: float,
    target_mhz: float,
    phase1,
    probe,
    block_cap: int,
) -> PairResult:
    """Pass-block batched equivalent of ``measure_pair_reference``."""
    # Imported here: campaign imports this module lazily from its own
    # measure_pair dispatcher.
    from repro.core.campaign import (
        _MIN_FOR_OUTLIER_FILTER,
        _initial_window_iters,
    )
    from repro.clustering.adaptive import adaptive_dbscan

    cfg = bench.config
    machine = bench.machine
    kernel = phase1.kernel
    target_stats = phase1.stats_for(target_mhz)
    rule = cfg.stopping_rule()

    pair = PairResult(
        init_mhz=float(init_mhz), target_mhz=float(target_mhz), axis=cfg.axis
    )
    window_iters = _initial_window_iters(bench, init_mhz, target_mhz, probe, kernel)
    growths = 0
    consecutive_failures = 0
    passes = 0
    done = False

    while not done:
        block = plan_block_size(len(pair.measurements), rule, block_cap)

        # ------------------------------------------------------------------
        # 1. speculate: simulate up to `block` passes, deferring evaluation
        # ------------------------------------------------------------------
        events: list[_BlockEvent] = []
        spec_consecutive = consecutive_failures
        spec_passes = passes
        for _ in range(block):
            try:
                raw = run_switch_benchmark(
                    bench, init_mhz, target_mhz, kernel, window_iters,
                    defer_timestamps=True,
                )
            except MeasurementError:
                spec_consecutive += 1
                events.append(
                    _BlockEvent("settle-fail", None, machine.checkpoint())
                )
                if spec_consecutive >= cfg.max_consecutive_failures:
                    break
                continue
            spec_passes += 1

            # Throttle handling (paper Sec. VI) depends only on the NVML
            # poll taken during the pass — nothing deferred — so it runs
            # eagerly at the exact scalar cadence.  SW_POWER_CAP is masked
            # on the power-cap axis (it is the measured signal there).
            if spec_passes % cfg.throttle_check_every == 0:
                reasons = raw.throttle_reasons
                if reasons & (
                    ThrottleReasons.SW_POWER_CAP & ~bench.axis.benign_throttle
                ):
                    events.append(
                        _BlockEvent("throttle-power", raw, machine.checkpoint())
                    )
                    break
                if reasons & (
                    ThrottleReasons.SW_THERMAL | ThrottleReasons.HW_THERMAL
                ):
                    bench.host.sleep(cfg.throttle_backoff_s)
                    events.append(
                        _BlockEvent("throttle-thermal", raw, machine.checkpoint())
                    )
                    continue

            spec_consecutive = 0  # speculation assumes the pass evaluates ok
            events.append(_BlockEvent("raw", raw, machine.checkpoint()))

        # ------------------------------------------------------------------
        # 2. batch: materialize deferred kernels, evaluate the whole block
        # ------------------------------------------------------------------
        raw_events = [e for e in events if e.kind == "raw"]
        evaluations = iter(
            _evaluate_deferred_block(
                [e.raw for e in raw_events], bench, target_stats, cfg
            )
        )

        # ------------------------------------------------------------------
        # 3. resolve: replay the scalar control flow over real outcomes
        # ------------------------------------------------------------------
        for index, event in enumerate(events):
            is_last = index == len(events) - 1

            if event.kind == "settle-fail":
                pair.n_failed_attempts += 1
                consecutive_failures += 1
                if consecutive_failures >= cfg.max_consecutive_failures:
                    pair.skipped = True
                    pair.skip_reason = "initial-frequency-never-settled"
                    if not is_last:
                        machine.restore(event.checkpoint)
                    done = True
                    break
                continue

            if event.kind == "throttle-power":
                # Power events always terminate speculation, so the machine
                # already sits at this event's checkpoint.
                passes += 1
                pair.skipped = True
                pair.skip_reason = "power-throttled"
                done = True
                break

            if event.kind == "throttle-thermal":
                passes += 1
                drop = min(cfg.throttle_discard_count, len(pair.measurements))
                if drop:
                    del pair.measurements[-drop:]
                pair.n_throttle_discards += drop
                continue

            # kind == "raw"
            passes += 1
            ev = next(evaluations)
            if ev.ok:
                consecutive_failures = 0
                raw = event.raw
                pair.measurements.append(
                    SwitchingLatencyMeasurement(
                        latency_s=float(ev.latency_s),
                        ts_acc=raw.ts_acc,
                        te_acc=float(ev.te_acc),
                        n_valid_sm=ev.n_valid_sm,
                        window_iterations=window_iters,
                        ground_truth_s=raw.ground_truth_latency_s,
                        ground_truth_outlier=raw.ground_truth_outlier,
                    )
                )
                if rule.should_stop([m.latency_s for m in pair.measurements]):
                    if not is_last:
                        machine.restore(event.checkpoint)
                    done = True
                    break
                continue

            # Failed evaluation: scalar bookkeeping, then decide whether the
            # speculated suffix is still valid.
            pair.n_failed_attempts += 1
            consecutive_failures += 1
            if ev.window_too_short and growths < cfg.max_window_retries:
                window_iters = int(
                    math.ceil(window_iters * cfg.window_growth_factor)
                )
                growths += 1
                pair.n_window_growths += 1
                consecutive_failures = 0
                # The suffix ran with the stale window — divergence.
                if not is_last:
                    machine.restore(event.checkpoint)
                break
            if consecutive_failures >= cfg.max_consecutive_failures:
                if not pair.measurements:
                    pair.skipped = True
                    pair.skip_reason = "no-viable-measurements"
                if not is_last:
                    machine.restore(event.checkpoint)
                done = True
                break
            # Plain failure: consumes no draws and no time, so the
            # speculated suffix is exactly what the scalar loop would have
            # run next — keep walking, no rollback.
            continue

    if len(pair.measurements) >= _MIN_FOR_OUTLIER_FILTER:
        pair.outliers = adaptive_dbscan(
            [m.latency_s for m in pair.measurements], cfg.outlier_config
        )
    return pair
