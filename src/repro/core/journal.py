"""Durable campaign journal: crash-safe partial results, verifiable resume.

Long campaigns (thousand-pair core×memory grids, soak sweeps) must not
lose every measured :class:`~repro.core.results.PairResult` to one worker
crash or Ctrl-C.  This module is the durability substrate underneath
:mod:`repro.exec.engine` and the serial loop: an **append-only on-disk
ledger** that records each completed pair result the moment it lands on
the driver, keyed by a **campaign fingerprint** so a resumed run can
prove it continues *the same* campaign.

Why resume preserves bit-identity
---------------------------------
The execution engine measures every pair on a blueprint-replica machine
whose seed stream derives only from the campaign seed and the pair's grid
index (:func:`repro.exec.jobs.pair_seed_sequence`) — never from execution
order, worker count, or wall-clock time.  A journaled pair result is
therefore *the* result that pair can ever have under its fingerprint;
skipping it on resume and merging the stored record is indistinguishable
from re-measuring it.  Phase 1 and the probe stage re-run deterministically
on the resumed driver machine (same draws, same virtual-clock advance), so
the reconstructed :class:`~repro.core.results.CampaignResult` — CSV bytes
and ``wall_virtual_s`` included — equals an uninterrupted run's.

The serial single-timeline loop (``workers=None``) *records* into a
journal just as durably, but cannot be resumed bit-identically: its pairs
share one clock/RNG stream, so the machine state needed to continue pair
k+1 exists only in the process that measured pair k.  Resume therefore
requires the engine execution model; a serial-mode journal is a durable
partial record, and resuming it raises a clear error.

On-disk format
--------------
``<dir>/meta.json``
    Written once at journal creation: format version, the campaign
    fingerprint, the execution mode (``"engine"`` / ``"serial"``) and a
    human-readable campaign synopsis.
``<dir>/pairs.log``
    Append-only framed records.  Each frame is an 8-byte header
    (``<II``: payload length, CRC32) followed by a pickled
    ``(index, elapsed_virtual_s, PairResult)`` tuple.  Appends are
    flushed and fsync'd per record, so even a SIGKILL mid-campaign loses
    at most the in-flight pairs; a torn tail frame (crash mid-write) is
    detected by length/CRC and ignored on load.

The fingerprint covers every result-affecting configuration field plus
the machine blueprint (architecture, seed, hostname, thermal setup, ...).
Fields that provably cannot change results are excluded so a resume may
legitimately vary them: ``output_dir``, fault injection, the supervision
knobs (timeouts/retries/backoff), and the ``pass_block_size`` /
``pair_batch_size`` batching widths — the executor's bit-identity
contract guarantees those only change scheduling, never measurements.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import signal
import struct
import threading
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.errors import ConfigError, JournalModeError, MeasurementError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import LatestConfig
    from repro.core.results import PairResult
    from repro.machine import MachineBlueprint

__all__ = [
    "CampaignJournal",
    "JournalSink",
    "ShutdownGuard",
    "campaign_fingerprint",
    "campaign_synopsis",
    "read_journal_mode",
    "replay_events",
]

#: journal format version (bump on incompatible layout changes)
JOURNAL_VERSION = 1

#: frame header: payload length, CRC32 of the payload
_FRAME = struct.Struct("<II")

#: config fields excluded from the fingerprint — documented in the module
#: docstring; every one is execution-only and cannot change measurements
_FINGERPRINT_EXCLUDED = frozenset(
    {
        "output_dir",
        "inject_faults",
        "job_timeout_factor",
        "job_timeout_floor_s",
        "max_job_retries",
        "retry_backoff_s",
        "retry_backoff_max_s",
        "pass_block_size",
        "pair_batch_size",
        "calibration_cache",
    }
)


def campaign_fingerprint(
    config: "LatestConfig", blueprint: "MachineBlueprint"
) -> str:
    """Content digest identifying a campaign's result space.

    Two campaigns share a fingerprint iff they are guaranteed to produce
    bit-identical pair results for every grid index — same config (minus
    the excluded execution-only knobs) on the same machine blueprint.
    """
    if blueprint is None:
        raise ConfigError(
            "campaign journaling needs a machine built by make_machine() "
            "(hand-assembled machines carry no replication blueprint)"
        )
    items = tuple(
        (f.name, getattr(config, f.name))
        for f in dataclasses.fields(config)
        if f.name not in _FINGERPRINT_EXCLUDED
    )
    # Multi-facet engine campaigns calibrate each facet on an independent
    # replica seed stream (the replica scheme, PR 9) rather than the
    # shared driver timeline, which moved their result space; the scheme
    # revision keys the fingerprint so a journal recorded under the old
    # timeline can never resume into mixed-epoch results.
    facet_scheme = 1 if config.facet_plan() == (None,) else 2
    # Fixed protocol so the digest is stable across interpreter versions.
    blob = pickle.dumps(
        (JOURNAL_VERSION, facet_scheme, items, blueprint), protocol=4
    )
    return hashlib.sha256(blob).hexdigest()


def campaign_synopsis(
    config: "LatestConfig", blueprint: "MachineBlueprint"
) -> dict:
    """Human-readable campaign summary stored in ``meta.json``.

    Purely informational (the fingerprint is what resume validates) — a
    sysadmin inspecting a journal directory should be able to tell which
    campaign it belongs to without unpickling anything.
    """
    return {
        "axis": config.axis,
        "hostname": getattr(blueprint, "hostname", None),
        "n_frequencies": len(config.frequencies),
        "n_pairs": len(config.pairs()),
        "n_facets": len(config.facet_plan()),
    }


class CampaignJournal:
    """Append-only ledger of completed pair results for one campaign.

    Use :meth:`open` — it creates a fresh journal or (with
    ``resume=True``) validates and reopens an existing one.  ``append``
    is durable per call (flush + fsync); ``load`` returns every intact
    record.  Instances are context managers.
    """

    def __init__(
        self,
        directory: Path,
        fingerprint: str,
        mode: str,
        meta: dict,
    ) -> None:
        self.directory = directory
        self.fingerprint = fingerprint
        self.mode = mode
        self.meta = meta
        self._fh = (directory / "pairs.log").open("ab")
        #: torn/corrupt tail frames detected by the last :meth:`load`
        self.n_corrupt_tail = 0

    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        directory: "str | Path",
        fingerprint: str,
        mode: str,
        resume: bool = False,
        synopsis: "dict | None" = None,
    ) -> "CampaignJournal":
        """Create a fresh journal, or reopen one for a resumed campaign.

        A fresh open refuses a directory that already holds a journal
        (silently mixing two campaigns' records would corrupt both); a
        resume open refuses a missing journal, a fingerprint mismatch
        (the config or machine changed — the stored results provably
        belong to a different campaign) and a serial-mode journal being
        resumed through the engine.
        """
        if mode not in ("engine", "serial"):
            raise ConfigError(f"unknown journal mode {mode!r}")
        directory = Path(directory)
        meta_path = directory / "meta.json"
        if meta_path.exists():
            try:
                meta = json.loads(meta_path.read_text())
            except json.JSONDecodeError as exc:
                raise MeasurementError(
                    f"corrupt journal metadata at {meta_path}: {exc}"
                ) from None
            if not resume:
                raise ConfigError(
                    f"journal at {directory} already exists; pass "
                    "resume=True (--resume) to continue it, or point "
                    "--journal at a fresh directory"
                )
            if meta.get("version") != JOURNAL_VERSION:
                raise MeasurementError(
                    f"journal at {directory} has format version "
                    f"{meta.get('version')}, this build writes "
                    f"{JOURNAL_VERSION}"
                )
            if meta.get("fingerprint") != fingerprint:
                raise MeasurementError(
                    f"journal at {directory} belongs to a different "
                    "campaign (config/seed fingerprint mismatch: journal "
                    f"{str(meta.get('fingerprint'))[:12]}…, this run "
                    f"{fingerprint[:12]}…); resume needs the identical "
                    "configuration and machine"
                )
            if meta.get("mode") != mode:
                raise JournalModeError(
                    f"journal at {directory} was written by a "
                    f"{meta.get('mode')}-mode campaign and cannot be "
                    f"resumed in {mode} mode (the serial loop shares one "
                    "RNG/clock timeline across pairs, so only engine-mode "
                    "journals resume bit-identically)",
                    recorded_mode=str(meta.get("mode")),
                )
            return cls(directory, fingerprint, mode, meta)
        if resume:
            raise ConfigError(
                f"cannot resume: no journal at {directory} "
                "(run once with --journal to create it)"
            )
        directory.mkdir(parents=True, exist_ok=True)
        meta = {
            "version": JOURNAL_VERSION,
            "fingerprint": fingerprint,
            "mode": mode,
            "synopsis": synopsis or {},
        }
        # Atomic metadata write: a crash here leaves either no journal or
        # a complete one, never a half-written meta.json.
        tmp = meta_path.with_name(meta_path.name + ".tmp")
        tmp.write_text(json.dumps(meta, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, meta_path)
        return cls(directory, fingerprint, mode, meta)

    # ------------------------------------------------------------------
    def append(
        self, index: int, pair: "PairResult", elapsed_virtual_s: float
    ) -> None:
        """Durably record one completed pair (flushed + fsync'd)."""
        blob = pickle.dumps(
            (int(index), float(elapsed_virtual_s), pair),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        self._fh.write(_FRAME.pack(len(blob), zlib.crc32(blob)))
        self._fh.write(blob)
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def _iter_records(self) -> Iterator[tuple[int, float, "PairResult"]]:
        path = self.directory / "pairs.log"
        self.n_corrupt_tail = 0
        if not path.exists():
            return
        with path.open("rb") as fh:
            while True:
                header = fh.read(_FRAME.size)
                if not header:
                    return
                if len(header) < _FRAME.size:
                    self.n_corrupt_tail += 1
                    return
                length, crc = _FRAME.unpack(header)
                blob = fh.read(length)
                if len(blob) < length or zlib.crc32(blob) != crc:
                    # Torn tail frame: the campaign died mid-append.  The
                    # record was never acknowledged, so dropping it (and
                    # anything after it) is safe — the pair simply re-runs.
                    self.n_corrupt_tail += 1
                    return
                index, elapsed, pair = pickle.loads(blob)
                yield index, elapsed, pair

    def load(self) -> "dict[int, tuple[PairResult, float]]":
        """Every intact journaled record, keyed by grid index.

        Duplicate indices keep the first occurrence — a duplicate can
        only come from an at-least-once redelivery of the same
        deterministic result, so the copies are bit-identical anyway.
        """
        records: dict[int, tuple["PairResult", float]] = {}
        for index, elapsed, pair in self._iter_records():
            records.setdefault(index, (pair, elapsed))
        return records

    # ------------------------------------------------------------------
    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_journal_mode(directory: "str | Path") -> "str | None":
    """The execution mode recorded in a journal's metadata, if readable.

    Diagnostic helper (no validation): returns ``None`` when the
    directory holds no parseable journal metadata.
    """
    meta_path = Path(directory) / "meta.json"
    try:
        meta = json.loads(meta_path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    mode = meta.get("mode")
    return str(mode) if mode is not None else None


class JournalSink:
    """Stream sink making the journal a durable consumer of pair events.

    Appends every live ``PairMeasured`` event the moment it is dispatched
    (flush + fsync per record).  Replayed events are already durable —
    they *came* from this journal — and planned ``PairSkipped`` events
    are recomputed from phase 1 on every run, so neither is re-appended;
    the on-disk ledger stays exactly the set of measured pairs.
    """

    def __init__(self, journal: CampaignJournal) -> None:
        self.journal = journal

    def on_event(self, event) -> None:
        from repro.core.stream import PairMeasured

        if isinstance(event, PairMeasured) and not event.replayed:
            self.journal.append(event.index, event.pair, event.elapsed_virtual_s)


def replay_events(
    loaded: "dict[int, tuple[PairResult, float]]",
) -> "Iterator":
    """Journaled records as synthetic ``PairMeasured`` events, index order.

    The resume producer emits these before any live measurement so sinks
    observe one coherent stream: every replayed event precedes every live
    one, and ``replayed=True`` tells durable sinks not to double-append.
    """
    from repro.core.stream import PairMeasured

    for index in sorted(loaded):
        pair, elapsed = loaded[index]
        yield PairMeasured(
            index=index, pair=pair, elapsed_virtual_s=elapsed, replayed=True
        )


class ShutdownGuard:
    """Scoped SIGINT/SIGTERM trap for graceful campaign shutdown.

    While active, the first signal only sets :attr:`requested`; the
    campaign driver polls it between dispatch rounds, stops submitting
    new jobs, drains the in-flight ones (their results still reach the
    journal) and raises
    :class:`~repro.errors.CampaignInterrupted`.  A second signal restores
    impatient semantics and raises :class:`KeyboardInterrupt` on the
    spot.  Off the main thread (where ``signal.signal`` is unavailable)
    the guard degrades to an inert flag that fault hooks may still set.
    """

    def __init__(self) -> None:
        self.requested = False
        self._previous: dict[int, object] = {}

    # ------------------------------------------------------------------
    def _handle(self, signum, frame) -> None:
        if self.requested:
            raise KeyboardInterrupt
        self.requested = True

    def __enter__(self) -> "ShutdownGuard":
        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    self._previous[signum] = signal.signal(
                        signum, self._handle
                    )
                except (ValueError, OSError):  # pragma: no cover
                    pass
        return self

    def __exit__(self, *exc) -> None:
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):  # pragma: no cover
                pass
        self._previous.clear()
