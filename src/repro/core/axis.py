"""Measurement axes: which clock domain a campaign sweeps.

The paper's methodology (phase 1 distinguishability → probe-sized switch
window → phase 2/3 RSE-driven measurement → DBSCAN labelling) is written
for the SM clock, but nothing in it is SM-specific.  A
:class:`MeasurementAxis` bundles everything the three phases need to know
about one swept clock domain:

* the driver operations — issue a locked-clock request, read the current
  clock back, settle on a frequency under load (phase 1 characterization
  and the phase-2 initial condition),
* the *facet* preparation — locking the complementary domain before the
  campaign (the memory axis measures memory pairs at a locked SM clock,
  mirroring how core×memory grid campaigns lock the memory clock per
  facet),
* the phase-1 distinguishability workload (how memory-bound the
  microbenchmark kernel must be so iteration times respond to the swept
  clock at all),
* probe/window sizing (the expected iteration duration at a swept
  frequency — for the memory axis that is the roofline stall model at the
  locked SM clock),
* naming (CSV prefix, human label, skip-reason strings).

Three axes ship today — :data:`SM_CORE` (the paper's setup, and the
default), :data:`MEMORY` (memory-clock pair switching latency, against
the simulator's ``MemoryLatencyProfile`` ground truth) and
:data:`POWER_CAP` (board power-limit switching latency, against
``PowerCapLatencyProfile``; the swept "frequencies" are limits in watts
and the observable is the sustainable-clock cap the limit enforces).  The
default axis is guaranteed **bit-identical** to the pre-axis pipeline:
every ``SM_CORE`` hook delegates to exactly the calls the hard-coded loop
made, with no extra RNG draws or float operations.

Adding an axis means subclassing :class:`MeasurementAxis`, implementing
the five driver hooks, and registering the instance in :data:`AXES`; the
campaign loop, probe stage, execution engine, CSV layer and analysis
labels all pick it up through the registry.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.gpusim.thermal import ThrottleReasons

__all__ = [
    "MeasurementAxis",
    "SmCoreAxis",
    "MemoryAxis",
    "PowerCapAxis",
    "SM_CORE",
    "MEMORY",
    "POWER_CAP",
    "AXES",
    "axis_by_name",
    "axis_stream_id",
]


class MeasurementAxis:
    """One swept clock domain of the measurement pipeline.

    Subclasses provide the driver-level operations; everything above
    (phases 1-3, probe stage, campaign loop, engine workers) is generic
    over the axis.  ``bench`` arguments are
    :class:`~repro.core.context.BenchContext` instances.
    """

    #: registry/config name (``LatestConfig.axis``)
    name: str
    #: short human label used in messages and report headers
    pretty: str
    #: per-pair CSV file prefix (``swlat`` family, see :mod:`repro.core.csvio`)
    csv_prefix: str
    #: default memory-bound fraction of the benchmark kernel when the
    #: config does not override it (``kernel_memory_intensity``)
    default_kernel_intensity: float
    #: skip reason recorded when this axis's *facet* clock never settles
    facet_fail_reason: str
    #: throttle reasons that are an *expected signal* on this axis rather
    #: than a hazard: the power-cap axis deliberately drives the device
    #: into ``SW_POWER_CAP``, so the campaign's power-throttle skip rule
    #: must ignore it there (and only there)
    benign_throttle: ThrottleReasons = ThrottleReasons.NONE
    #: True when the axis locks the SM clock as its campaign facet (and
    #: therefore supports multi-facet ``locked_sm_mhz`` sweeps)
    locks_sm_facet: bool = False
    #: unit of the swept coordinate (clock domains sweep MHz; the
    #: power-cap axis sweeps watts)
    unit: str = "MHz"

    # -- driver operations --------------------------------------------
    def set_clock(self, bench, freq_mhz: float):
        """Issue the locked-clock request; returns the ground-truth record."""
        raise NotImplementedError

    def clock_info_mhz(self, bench) -> float:
        """Current effective clock of this domain (NVML readback)."""
        raise NotImplementedError

    def settle(self, bench, freq_mhz: float) -> bool:
        """Bring the swept clock to ``freq_mhz`` under sustained load."""
        raise NotImplementedError

    def prepare_facet(self, bench) -> bool:
        """Lock the complementary domain before characterization/measurement.

        Called once per campaign facet (and once per engine pair job, which
        starts from a fresh replica machine).  Returns ``False`` when the
        facet clock cannot be reached — every pair is then skipped with
        :attr:`facet_fail_reason`.
        """
        raise NotImplementedError

    def iteration_duration_s(self, bench, kernel, freq_mhz: float) -> float:
        """Expected duration of one kernel iteration at a swept frequency.

        Monotonically decreasing in ``freq_mhz`` for both shipped axes, so
        window sizing with ``max(init, target)`` never undershoots in time.
        """
        raise NotImplementedError

    def locked_complement_mhz(self, bench) -> "float | None":
        """The complementary clock :meth:`prepare_facet` locks, if any.

        Feeds ``CampaignResult.locked_sm_mhz`` (reports, CLI banner, the
        summary-CSV footer); ``None`` when the axis locks nothing.
        """
        return None

    # -- presentation helpers -----------------------------------------
    @property
    def is_default(self) -> bool:
        return self.name == "sm_core"

    def describe(self) -> str:
        return f"{self.pretty} clock"


class SmCoreAxis(MeasurementAxis):
    """The paper's setup: sweep the SM (graphics) clock.

    Every hook delegates to the exact call the pre-axis pipeline made —
    the default axis stays bit-identical by construction.
    """

    name = "sm_core"
    pretty = "SM"
    csv_prefix = "swlat"
    default_kernel_intensity = 0.30
    #: the SM axis's facet is the (optional) locked memory clock of a
    #: core×memory grid campaign
    facet_fail_reason = "memory-clock-never-settled"

    def set_clock(self, bench, freq_mhz: float):
        return bench.set_frequency(freq_mhz)

    def clock_info_mhz(self, bench) -> float:
        return bench.handle.clock_info_sm_mhz()

    def settle(self, bench, freq_mhz: float) -> bool:
        return bench.settle_on(freq_mhz)

    def prepare_facet(self, bench) -> bool:
        # Legacy campaigns touch nothing; grid campaigns lock their memory
        # facet through the campaign loop's per-facet set_memory_clock.
        return True

    def iteration_duration_s(self, bench, kernel, freq_mhz: float) -> float:
        return kernel.iteration_duration_s(freq_mhz)


class MemoryAxis(MeasurementAxis):
    """Sweep the memory clock at a locked SM clock.

    Memory-clock changes retrain the DRAM interface (one to two orders of
    magnitude slower than an SM PLL relock); the campaign measures them
    through the same phase-1/2/3 machinery, with the SM clock held at
    ``LatestConfig.locked_sm_mhz`` (device maximum when unset) so the only
    thing shaping iteration times is the roofline memory stall.
    """

    name = "memory"
    pretty = "memory"
    csv_prefix = "swlatmem"
    #: memory-bound enough that the stall factor separates neighbouring
    #: P-states well beyond iteration noise, while staying < 1 (a pure
    #: memory workload would make the compute term vanish entirely)
    default_kernel_intensity = 0.70
    facet_fail_reason = "locked-sm-clock-never-settled"
    locks_sm_facet = True

    def set_clock(self, bench, freq_mhz: float):
        return bench.handle.set_memory_locked_clocks(freq_mhz, freq_mhz)

    def clock_info_mhz(self, bench) -> float:
        return bench.handle.clock_info_mem_mhz()

    def settle(self, bench, freq_mhz: float) -> bool:
        """Lock the memory clock and wait (under load) until it settles.

        Delegates to :meth:`BenchContext.set_memory_clock` — one settle
        procedure for the memory domain, whether it is the swept clock or
        a grid campaign's facet.
        """
        return bench.set_memory_clock(freq_mhz)

    def prepare_facet(self, bench) -> bool:
        """Lock and settle the SM clock the whole campaign runs at."""
        return bench.settle_on(bench.facet_sm_mhz())

    def locked_complement_mhz(self, bench) -> float:
        return bench.facet_sm_mhz()

    def iteration_duration_s(self, bench, kernel, freq_mhz: float) -> float:
        """Iteration duration at the locked SM clock, stalled by memory.

        The roofline stall factor is exactly 1.0 at the reference memory
        clock and grows as the memory clock drops, so duration decreases
        monotonically in ``freq_mhz`` — the window-sizing contract.
        """
        from repro.gpusim.sm import memory_stall_factor

        stall = float(
            memory_stall_factor(
                freq_mhz,
                bench.device.spec.memory_frequency_mhz,
                kernel.memory_intensity,
            )
        )
        return kernel.iteration_duration_s(bench.facet_sm_mhz()) * stall


class PowerCapAxis(MeasurementAxis):
    """Sweep the board power limit at a locked SM clock.

    The swept "frequencies" are power limits in watts.  A limit below the
    locked clock's draw caps the sustainable SM clock (the
    ``SW_POWER_CAP`` throttle path), so iteration times respond to the
    enforced limit through the clock itself — the capped-clock roofline.
    Ground truth is the simulator's ``PowerCapLatencyProfile``: the span
    from the limit write to the power controller enforcing the new cap.

    Driving the device into ``SW_POWER_CAP`` is the whole point here, so
    that reason is *benign* on this axis: the campaign's power-throttle
    skip rule (paper Sec. VI) must not abandon pairs over the very signal
    being measured.
    """

    name = "power"
    pretty = "power-limit"
    csv_prefix = "swlatpow"
    #: the cap acts on the SM clock, so the legacy compute-bound workload
    #: already responds to it; no memory-bound bias needed
    default_kernel_intensity = 0.30
    facet_fail_reason = "power-axis-sm-clock-never-settled"
    benign_throttle = ThrottleReasons.SW_POWER_CAP
    locks_sm_facet = True
    unit = "W"

    def set_clock(self, bench, limit_w: float):
        return bench.handle.set_power_limit(limit_w)

    def clock_info_mhz(self, bench) -> float:
        """Readback of the swept coordinate: the *enforced* limit in W."""
        return bench.handle.enforced_power_limit_w()

    def settle(self, bench, limit_w: float) -> bool:
        """Set the limit and wait (under load) for the cap to be enforced."""
        return bench.set_power_limit(limit_w)

    def prepare_facet(self, bench) -> bool:
        """Lock and settle the SM clock the whole campaign runs at."""
        return bench.settle_on(bench.facet_sm_mhz())

    def locked_complement_mhz(self, bench) -> float:
        return bench.facet_sm_mhz()

    def iteration_duration_s(self, bench, kernel, limit_w: float) -> float:
        """Iteration duration at the clock the limit sustains.

        The capped-clock roofline: the effective SM clock is the locked
        facet clock clipped by the limit's sustainable clock, so duration
        decreases monotonically in ``limit_w`` — the window-sizing
        contract (watts play the role of the swept frequency).
        """
        capped = min(
            bench.facet_sm_mhz(),
            float(bench.device.thermal.sustainable_clock_mhz(limit_w)),
        )
        return kernel.iteration_duration_s(capped)

    def describe(self) -> str:
        return "board power limit"


SM_CORE = SmCoreAxis()
MEMORY = MemoryAxis()
POWER_CAP = PowerCapAxis()

#: axis registry, in declaration order; the position is also the axis's
#: stable id inside engine seed spawn keys — append-only
AXES: dict[str, MeasurementAxis] = {
    SM_CORE.name: SM_CORE,
    MEMORY.name: MEMORY,
    POWER_CAP.name: POWER_CAP,
}


def axis_by_name(name: str) -> MeasurementAxis:
    """Resolve a config/CLI axis name; raises :class:`ConfigError`."""
    try:
        return AXES[name]
    except KeyError:
        raise ConfigError(
            f"unknown measurement axis {name!r}; known: {sorted(AXES)}"
        ) from None


def axis_stream_id(name: str) -> int:
    """The axis's stable position for seed spawn keys (append-only)."""
    try:
        return list(AXES).index(name)
    except ValueError:
        raise ConfigError(f"unknown measurement axis {name!r}") from None
