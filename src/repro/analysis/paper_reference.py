"""Published values from the paper, used for paper-vs-measured comparison.

All latencies in milliseconds.  Source: Table II and Sec. VII of
arXiv:2502.20075.  The reproduction targets the *shape* of these values
(ordering, factors, asymmetries), not exact milliseconds — see
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PaperCaseSummary",
    "PaperGpuReference",
    "PAPER_TABLE2",
    "PAPER_SINGLE_CLUSTER_SHARE",
    "PAPER_MIN_SILHOUETTE",
    "PAPER_AVG_SILHOUETTE",
    "CPU_TRANSITION_RANGE_MS",
]


@dataclass(frozen=True)
class PaperCaseSummary:
    """One half of Table II (best-case or worst-case row block)."""

    min_ms: float
    min_pair: tuple[float, float]
    mean_ms: float
    max_ms: float
    max_pair: tuple[float, float]


@dataclass(frozen=True)
class PaperGpuReference:
    """Published per-GPU summary (Table II)."""

    name: str
    worst: PaperCaseSummary
    best: PaperCaseSummary


PAPER_TABLE2: dict[str, PaperGpuReference] = {
    "RTX Quadro 6000": PaperGpuReference(
        name="RTX Quadro 6000",
        worst=PaperCaseSummary(
            min_ms=13.249, min_pair=(1650.0, 1560.0),
            mean_ms=81.891,
            max_ms=350.436, max_pair=(930.0, 990.0),
        ),
        best=PaperCaseSummary(
            min_ms=0.558, min_pair=(1650.0, 1560.0),
            mean_ms=73.082,
            max_ms=222.751, max_pair=(750.0, 990.0),
        ),
    ),
    "A100 SXM-4": PaperGpuReference(
        name="A100 SXM-4",
        worst=PaperCaseSummary(
            min_ms=7.413, min_pair=(1350.0, 1260.0),
            mean_ms=15.637,
            max_ms=22.716, max_pair=(1125.0, 795.0),
        ),
        best=PaperCaseSummary(
            min_ms=4.435, min_pair=(1215.0, 1125.0),
            mean_ms=5.007,
            max_ms=5.976, max_pair=(840.0, 705.0),
        ),
    ),
    "GH200": PaperGpuReference(
        name="GH200",
        worst=PaperCaseSummary(
            min_ms=5.554, min_pair=(1980.0, 1605.0),
            mean_ms=23.448,
            max_ms=477.318, max_pair=(1095.0, 1260.0),
        ),
        best=PaperCaseSummary(
            min_ms=4.914, min_pair=(1665.0, 1935.0),
            mean_ms=7.866,
            max_ms=140.352, max_pair=(1665.0, 1920.0),
        ),
    ),
}

#: Sec. VII-B: share of frequency pairs with exactly one latency cluster.
PAPER_SINGLE_CLUSTER_SHARE: dict[str, float] = {
    "GH200": 0.85,
    "A100 SXM-4": 0.96,
    "RTX Quadro 6000": 0.70,
}

#: Sec. VII-B: silhouette score of multi-cluster pairs is always > 0.4;
#: the average over all three GPUs is 0.84.
PAPER_MIN_SILHOUETTE = 0.4
PAPER_AVG_SILHOUETTE = 0.84

#: Sec. VII: modern CPUs complete frequency transitions in microseconds to
#: "units of milliseconds at most"; GPUs take tens to hundreds of ms.
CPU_TRANSITION_RANGE_MS = (0.01, 5.0)
