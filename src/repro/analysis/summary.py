"""Campaign summaries reproducing Table II.

For every measured pair the *best case* is the minimum observed switching
latency and the *worst case* the maximum (outliers removed, as the paper
presents its results).  Table II then reports the min/mean/max of those
per-pair values across all pairs, with the pairs achieving the extremes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.results import CampaignResult
from repro.errors import MeasurementError

__all__ = ["CaseSummary", "Table2Row", "summarize_campaign", "summarize_by_memory"]


@dataclass(frozen=True)
class CaseSummary:
    """min/mean/max over per-pair case values (ms), with extreme pairs."""

    min_ms: float
    min_pair: tuple[float, float]
    mean_ms: float
    max_ms: float
    max_pair: tuple[float, float]

    def as_dict(self) -> dict:
        return {
            "min_ms": self.min_ms,
            "min_pair": self.min_pair,
            "mean_ms": self.mean_ms,
            "max_ms": self.max_ms,
            "max_pair": self.max_pair,
        }


@dataclass(frozen=True)
class Table2Row:
    """One GPU's row block of Table II.

    ``axis`` labels the swept clock domain the pair frequencies belong to
    (:mod:`repro.core.axis`).
    """

    gpu_name: str
    worst: CaseSummary
    best: CaseSummary
    n_pairs: int
    axis: str = "sm_core"


def _case_summary(values_ms: np.ndarray, pairs: list) -> CaseSummary:
    i_min = int(np.argmin(values_ms))
    i_max = int(np.argmax(values_ms))
    return CaseSummary(
        min_ms=float(values_ms[i_min]),
        min_pair=pairs[i_min],
        mean_ms=float(values_ms.mean()),
        max_ms=float(values_ms[i_max]),
        max_pair=pairs[i_max],
    )


def summarize_campaign(
    result: CampaignResult,
    without_outliers: bool = True,
    memory_mhz: "float | None" = ...,
    locked_sm_mhz: "float | None" = ...,
) -> Table2Row:
    """Compute the Table II row block for one campaign.

    ``memory_mhz`` restricts the summary to one memory facet of a
    core×memory campaign, ``locked_sm_mhz`` to one locked-SM facet of a
    multi-facet swept-axis campaign; the default aggregates across every
    facet (per-pair extremes are still per grid point).
    """
    pairs = []
    worst_ms = []
    best_ms = []
    for p in result.iter_measured(memory_mhz, locked_sm_mhz):
        values = p.latencies_s(without_outliers)
        if values.size == 0:
            continue
        pairs.append(p.key)
        worst_ms.append(values.max() * 1e3)
        best_ms.append(values.min() * 1e3)
    if not pairs:
        raise MeasurementError("campaign has no measured pairs")
    return Table2Row(
        gpu_name=result.gpu_name,
        worst=_case_summary(np.asarray(worst_ms), pairs),
        best=_case_summary(np.asarray(best_ms), pairs),
        n_pairs=len(pairs),
        axis=result.axis,
    )


def summarize_by_memory(
    result: CampaignResult, without_outliers: bool = True
) -> dict[float | None, Table2Row]:
    """One Table II row block per campaign facet, in sweep order.

    Facets are the memory clocks of a core×memory campaign or the locked
    SM clocks of a multi-facet swept-axis campaign; legacy campaigns
    return a single entry keyed ``None``.  Facets whose pairs were all
    skipped (e.g. a memory clock that never settled) are omitted rather
    than raising.
    """
    out: dict[float | None, Table2Row] = {}
    if result.locked_sm_frequencies is not None:
        for sm in result.locked_sm_frequencies:
            try:
                out[sm] = summarize_campaign(
                    result, without_outliers, locked_sm_mhz=sm
                )
            except MeasurementError:
                continue
        return out
    plan = result.memory_frequencies or (None,)
    for mem in plan:
        try:
            out[mem] = summarize_campaign(result, without_outliers, mem)
        except MeasurementError:
            continue
    return out
