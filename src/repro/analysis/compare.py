"""Campaign-to-campaign comparison (repeatability and drift detection).

The paper stresses that "the process of the GPU stabilizing itself at the
desired frequency level may vary if measured multiple times" — per-pair
distributions are a *property of the device* that repeated campaigns must
agree on.  This module compares two campaigns over the same frequency set:

* per-pair Welch tests on the latency means (statistical agreement),
* relative shifts of the per-pair best/worst cases,
* a drift verdict usable in commissioning pipelines ("did this GPU's DVFS
  behaviour change after the driver update?").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.results import CampaignResult, PairKey
from repro.errors import MeasurementError
from repro.stats.descriptive import summarize
from repro.stats.hypothesis_tests import welch_t_test

__all__ = ["PairComparison", "CampaignComparison", "compare_campaigns"]


@dataclass(frozen=True)
class PairComparison:
    """Agreement metrics for one pair across two campaigns."""

    key: PairKey
    mean_a_s: float
    mean_b_s: float
    relative_shift: float       # (b - a) / a of the means
    pvalue: float               # Welch test on the raw measurements
    worst_shift: float          # relative shift of the per-pair maxima

    def agrees(self, alpha: float = 0.01, max_shift: float = 0.5) -> bool:
        """Statistically compatible, or practically close despite p < alpha.

        Per-pair distributions are heavy-tailed; with enough samples tiny
        mean differences become "significant", so practical equivalence
        (small relative shift) also counts as agreement.
        """
        return self.pvalue >= alpha or abs(self.relative_shift) <= max_shift


@dataclass
class CampaignComparison:
    """Full comparison of two campaigns on the same frequency set."""

    gpu_name: str
    pairs: list[PairComparison] = field(default_factory=list)

    @property
    def n_pairs(self) -> int:
        return len(self.pairs)

    def agreement_share(self, alpha: float = 0.01, max_shift: float = 0.5) -> float:
        if not self.pairs:
            raise MeasurementError("no common pairs to compare")
        agreeing = sum(1 for p in self.pairs if p.agrees(alpha, max_shift))
        return agreeing / len(self.pairs)

    @property
    def median_relative_shift(self) -> float:
        return float(np.median([abs(p.relative_shift) for p in self.pairs]))

    def drifted_pairs(
        self, alpha: float = 0.01, max_shift: float = 0.5
    ) -> list[PairComparison]:
        return [p for p in self.pairs if not p.agrees(alpha, max_shift)]

    def verdict(self, max_drifted_share: float = 0.2) -> str:
        """"stable" when most pairs agree, "drifted" otherwise."""
        share = 1.0 - self.agreement_share()
        return "drifted" if share > max_drifted_share else "stable"


def compare_campaigns(
    a: CampaignResult, b: CampaignResult, without_outliers: bool = True
) -> CampaignComparison:
    """Compare two campaigns pair by pair.

    Requires a common frequency set; pairs measured in only one campaign
    are skipped (both campaigns may have skipped different pairs for
    legitimate reasons, e.g. throttling).
    """
    if set(a.frequencies) != set(b.frequencies):
        raise MeasurementError(
            "campaigns use different frequency sets: "
            f"{a.frequencies} vs {b.frequencies}"
        )
    comparison = CampaignComparison(gpu_name=a.gpu_name)
    # Match on the full grid key so core×memory campaigns compare facet
    # against facet rather than collapsing memory clocks onto one SM pair.
    measured_b = {p.grid_key: p for p in b.iter_measured()}
    for pair_a in a.iter_measured():
        pair_b = measured_b.get(pair_a.grid_key)
        if pair_b is None:
            continue
        values_a = pair_a.latencies_s(without_outliers)
        values_b = pair_b.latencies_s(without_outliers)
        if values_a.size < 2 or values_b.size < 2:
            continue
        stats_a, stats_b = summarize(values_a), summarize(values_b)
        comparison.pairs.append(
            PairComparison(
                key=pair_a.key,
                mean_a_s=stats_a.mean,
                mean_b_s=stats_b.mean,
                relative_shift=(stats_b.mean - stats_a.mean) / stats_a.mean,
                pvalue=welch_t_test(stats_a, stats_b).pvalue,
                worst_shift=(
                    (stats_b.maximum - stats_a.maximum) / stats_a.maximum
                ),
            )
        )
    if not comparison.pairs:
        raise MeasurementError("campaigns share no measured pairs")
    return comparison
