"""Cluster statistics over campaign pairs (paper Sec. VII-B, Figs. 5/6).

The paper reports, per GPU, the share of frequency pairs whose switching
latencies form a single DBSCAN cluster (GH200 85 %, A100 96 %, RTX Quadro
6000 70 %), the maximum cluster count (five, GH200 only), and validates
multi-cluster pairs with the silhouette score (always > 0.4; average 0.84
over the three GPUs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.clustering.silhouette import silhouette_score
from repro.core.results import CampaignResult, PairKey, PairResult
from repro.errors import MeasurementError

__all__ = ["PairClusterInfo", "ClusterReport", "cluster_report", "scatter_data"]


@dataclass(frozen=True)
class PairClusterInfo:
    """Clustering facts for one pair."""

    key: PairKey
    n_clusters: int
    n_outliers: int
    n_measurements: int
    silhouette: float | None  # only defined for >= 2 clusters


@dataclass
class ClusterReport:
    """Aggregate cluster statistics for one campaign."""

    gpu_name: str
    pairs: list[PairClusterInfo] = field(default_factory=list)

    @property
    def n_pairs(self) -> int:
        return len(self.pairs)

    @property
    def single_cluster_share(self) -> float:
        """Fraction of pairs with exactly one cluster."""
        if not self.pairs:
            raise MeasurementError("no pairs in cluster report")
        singles = sum(1 for p in self.pairs if p.n_clusters == 1)
        return singles / len(self.pairs)

    @property
    def max_clusters(self) -> int:
        return max((p.n_clusters for p in self.pairs), default=0)

    @property
    def multi_cluster_silhouettes(self) -> np.ndarray:
        return np.asarray(
            [p.silhouette for p in self.pairs if p.silhouette is not None]
        )

    @property
    def mean_silhouette(self) -> float:
        s = self.multi_cluster_silhouettes
        if s.size == 0:
            raise MeasurementError("no multi-cluster pairs")
        return float(s.mean())

    @property
    def min_silhouette(self) -> float:
        s = self.multi_cluster_silhouettes
        if s.size == 0:
            raise MeasurementError("no multi-cluster pairs")
        return float(s.min())

    def outlier_share(self) -> float:
        """Overall fraction of measurements labelled as outliers."""
        total = sum(p.n_measurements for p in self.pairs)
        out = sum(p.n_outliers for p in self.pairs)
        return out / total if total else 0.0


def cluster_report(result: CampaignResult) -> ClusterReport:
    """Aggregate DBSCAN outcomes over all measured pairs."""
    report = ClusterReport(gpu_name=result.gpu_name)
    for p in result.iter_measured():
        if p.outliers is None:
            continue
        values = np.asarray([m.latency_s for m in p.measurements])
        labels = p.outliers.labels
        sil = None
        if p.n_clusters >= 2:
            try:
                sil = silhouette_score(values, labels)
            except Exception:
                sil = None
        report.pairs.append(
            PairClusterInfo(
                key=p.key,
                n_clusters=p.n_clusters,
                n_outliers=int(p.outliers.outlier_mask.sum()),
                n_measurements=p.n_measurements,
                silhouette=sil,
            )
        )
    return report


def scatter_data(pair: PairResult) -> dict:
    """Fig. 5/6-style scatter data: measurement index vs latency, labelled.

    Returns arrays ``index``, ``latency_ms``, ``label`` (cluster id, -1 for
    outliers).
    """
    values = np.asarray([m.latency_s for m in pair.measurements]) * 1e3
    labels = (
        pair.outliers.labels
        if pair.outliers is not None
        else np.zeros(values.size, dtype=int)
    )
    return {
        "index": np.arange(values.size),
        "latency_ms": values,
        "label": labels,
        "pair": pair.key,
    }
