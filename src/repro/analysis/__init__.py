"""Analysis and figure/table reproduction helpers.

Each module maps to artifacts of the paper's evaluation (Sec. VII):

* :mod:`repro.analysis.summary` — Table II (best/worst-case summaries),
* :mod:`repro.analysis.heatmap` — Fig. 3 heatmap grids,
* :mod:`repro.analysis.distributions` — Fig. 4 violin splits,
* :mod:`repro.analysis.clusters` — Sec. VII-B cluster statistics and
  Figs. 5/6 scatter data,
* :mod:`repro.analysis.variability` — Sec. VII-C manufacturing
  variability (Figs. 7-9),
* :mod:`repro.analysis.paper_reference` — the published values we compare
  against,
* :mod:`repro.analysis.render` — plain-text rendering of grids/tables.
"""

from repro.analysis.advisor import RuntimeAdvisor
from repro.analysis.clusters import ClusterReport, cluster_report
from repro.analysis.compare import CampaignComparison, compare_campaigns
from repro.analysis.grid_io import read_grid_csv, write_grid_csv
from repro.analysis.distributions import DirectionSplit, split_by_direction
from repro.analysis.heatmap import (
    HeatmapGrid,
    heatmap_from_campaign,
    heatmaps_by_memory,
)
from repro.analysis.report import campaign_report, write_campaign_report
from repro.analysis.summary import (
    CaseSummary,
    Table2Row,
    summarize_by_memory,
    summarize_campaign,
)
from repro.analysis.validation import RecoveryReport, score_recovery
from repro.analysis.variability import VariabilityReport, variability_report

__all__ = [
    "HeatmapGrid",
    "heatmap_from_campaign",
    "heatmaps_by_memory",
    "Table2Row",
    "CaseSummary",
    "summarize_by_memory",
    "summarize_campaign",
    "DirectionSplit",
    "split_by_direction",
    "ClusterReport",
    "cluster_report",
    "VariabilityReport",
    "variability_report",
    "RuntimeAdvisor",
    "RecoveryReport",
    "score_recovery",
    "campaign_report",
    "write_campaign_report",
    "CampaignComparison",
    "compare_campaigns",
    "read_grid_csv",
    "write_grid_csv",
]
