"""Manufacturing variability across device instances (paper Sec. VII-C).

The paper benchmarks four A100 units on one Karolina node and reports:

* Fig. 7 — per-pair range (max - min across units) of the *best-case*
  switching latencies,
* Fig. 8 — per-pair range of the *worst-case* latencies,
* Fig. 9 — boxplots of the pairs with the highest spread across units,
* the conclusion that no single unit is consistently slower.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.results import CampaignResult, PairKey
from repro.errors import MeasurementError

__all__ = ["PairSpread", "VariabilityReport", "variability_report"]


@dataclass(frozen=True)
class PairSpread:
    """Cross-unit spread for one frequency pair."""

    key: PairKey
    per_unit_values_ms: np.ndarray  # one value per unit (case statistic)
    range_ms: float
    slowest_unit: int


@dataclass
class VariabilityReport:
    """Cross-unit variability over a set of campaigns (one per unit)."""

    gpu_name: str
    n_units: int
    frequencies_mhz: tuple[float, ...]
    best_spreads: dict[PairKey, PairSpread]
    worst_spreads: dict[PairKey, PairSpread]

    # ------------------------------------------------------------------
    def range_matrix_ms(self, case: str = "min") -> np.ndarray:
        """Fig. 7 ("min") / Fig. 8 ("max") range grids."""
        spreads = self.best_spreads if case == "min" else self.worst_spreads
        freqs = list(self.frequencies_mhz)
        grid = np.full((len(freqs), len(freqs)), np.nan)
        for (init, target), spread in spreads.items():
            grid[freqs.index(init), freqs.index(target)] = spread.range_ms
        return grid

    def top_spread_pairs(self, n: int = 3, case: str = "min") -> list[PairSpread]:
        """Pairs with the highest cross-unit spread (Fig. 9 selection)."""
        spreads = self.best_spreads if case == "min" else self.worst_spreads
        return sorted(spreads.values(), key=lambda s: -s.range_ms)[:n]

    def slowest_unit_histogram(self, case: str = "max") -> np.ndarray:
        """How often each unit is the slowest; near-uniform supports the
        paper's "no single hardware instance consistently exhibits worse"
        conclusion."""
        spreads = self.best_spreads if case == "min" else self.worst_spreads
        counts = np.zeros(self.n_units, dtype=int)
        for s in spreads.values():
            counts[s.slowest_unit] += 1
        return counts

    def consistently_slowest_unit(self, case: str = "max") -> int | None:
        """A unit slowest on > 60 % of pairs, or None (the paper's finding)."""
        counts = self.slowest_unit_histogram(case)
        total = counts.sum()
        if total == 0:
            return None
        worst = int(np.argmax(counts))
        return worst if counts[worst] / total > 0.6 else None


def _case_values(results: list[CampaignResult], key: PairKey, case: str):
    values = []
    for r in results:
        pair = r.pairs.get(key)
        if pair is None or pair.skipped or pair.n_measurements == 0:
            return None
        v = pair.latencies_s(without_outliers=True)
        if v.size == 0:
            return None
        values.append((v.min() if case == "min" else v.max()) * 1e3)
    return np.asarray(values)


def variability_report(results: list[CampaignResult]) -> VariabilityReport:
    """Build the Sec. VII-C report from per-unit campaigns.

    All campaigns must share the frequency list (same benchmark config run
    against each device index / unit).
    """
    if len(results) < 2:
        raise MeasurementError("variability needs at least two units")
    freqs = results[0].frequencies
    for r in results[1:]:
        if r.frequencies != freqs:
            raise MeasurementError("campaigns use different frequency lists")

    best: dict[PairKey, PairSpread] = {}
    worst: dict[PairKey, PairSpread] = {}
    for key in results[0].pairs:
        for case, store in (("min", best), ("max", worst)):
            values = _case_values(results, key, case)
            if values is None:
                continue
            store[key] = PairSpread(
                key=key,
                per_unit_values_ms=values,
                range_ms=float(values.max() - values.min()),
                slowest_unit=int(np.argmax(values)),
            )
    return VariabilityReport(
        gpu_name=results[0].gpu_name,
        n_units=len(results),
        frequencies_mhz=tuple(float(f) for f in freqs),
        best_spreads=best,
        worst_spreads=worst,
    )
