"""Runtime-design advisor: actionable rules from a latency campaign.

The paper's summary (Sec. VIII) names two ways measured switching
latencies help an energy-efficiency runtime: "the frequency changes can be
performed with better timing" and "the runtime system may avoid some
frequency transitions, which show overhead higher than other frequency
pairs".  This module turns a :class:`CampaignResult` into exactly those
artifacts:

* a **minimum residency** per pair — how long a region must be for a
  switch into it to pay off (COUNTDOWN's boundary-classification idea,
  generalized from its fixed 500 us to the measured latency),
* a list of **pairs to avoid**, whose worst case exceeds the device's
  typical transition by a configurable factor, each with the best cheap
  **detour** target nearby,
* per-target-frequency reachability summaries (the heatmaps' dominant
  "row pattern" is a per-target property, so the advice is too).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.results import CampaignResult, PairKey
from repro.errors import MeasurementError

__all__ = ["PairAdvice", "TargetAdvice", "RuntimeAdvisor"]


@dataclass(frozen=True)
class PairAdvice:
    """Advice for one (init -> target) transition."""

    key: PairKey
    worst_case_s: float
    typical_s: float
    min_residency_s: float
    avoid: bool
    detour_target_mhz: float | None
    detour_worst_case_s: float | None


@dataclass(frozen=True)
class TargetAdvice:
    """Per-target-frequency summary (the heatmaps' column structure)."""

    target_mhz: float
    median_worst_case_s: float
    max_worst_case_s: float
    pathological: bool


@dataclass
class RuntimeAdvisor:
    """Derives runtime-system guidance from a measured campaign.

    Parameters
    ----------
    result:
        A completed campaign.
    residency_factor:
        A switch is worthwhile only if the region lasts at least this many
        times the worst-case transition latency.
    avoid_factor:
        Pairs whose worst case exceeds ``avoid_factor`` x the campaign
        median worst case are flagged for avoidance.
    detour_tolerance_mhz:
        How far a detour target may sit from the intended one.
    """

    result: CampaignResult
    residency_factor: float = 3.0
    avoid_factor: float = 5.0
    detour_tolerance_mhz: float = 120.0
    _worst: dict[PairKey, float] = field(init=False, default_factory=dict)
    _typical: dict[PairKey, float] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        for pair in self.result.iter_measured():
            values = pair.latencies_s(without_outliers=True)
            if values.size == 0:
                continue
            worst = float(values.max())
            # Core×memory campaigns measure each SM pair once per memory
            # clock; runtime advice is keyed by SM pair, so keep the
            # facet-conservative view: the facet with the largest worst
            # case wins (and contributes its typical value too).
            if pair.key in self._worst and self._worst[pair.key] >= worst:
                continue
            self._worst[pair.key] = worst
            self._typical[pair.key] = float(np.median(values))
        if not self._worst:
            raise MeasurementError("campaign has no measured pairs to advise on")

    # ------------------------------------------------------------------
    @property
    def median_worst_case_s(self) -> float:
        return float(np.median(list(self._worst.values())))

    def pair_advice(self, init_mhz: float, target_mhz: float) -> PairAdvice:
        key = (float(init_mhz), float(target_mhz))
        if key not in self._worst:
            raise MeasurementError(f"pair {key} was not measured")
        worst = self._worst[key]
        avoid = worst > self.avoid_factor * self.median_worst_case_s
        detour_target = detour_worst = None
        if avoid:
            detour = self._find_detour(key)
            if detour is not None:
                detour_target, detour_worst = detour
        return PairAdvice(
            key=key,
            worst_case_s=worst,
            typical_s=self._typical[key],
            min_residency_s=self.residency_factor * worst,
            avoid=avoid,
            detour_target_mhz=detour_target,
            detour_worst_case_s=detour_worst,
        )

    def _find_detour(self, key: PairKey) -> tuple[float, float] | None:
        """Cheapest alternative target near the intended one."""
        init, target = key
        best: tuple[float, float] | None = None
        for (i, t), worst in self._worst.items():
            if i != init or t == target:
                continue
            if abs(t - target) > self.detour_tolerance_mhz:
                continue
            if worst >= self._worst[key]:
                continue
            if best is None or worst < best[1]:
                best = (t, worst)
        return best

    def all_advice(self) -> list[PairAdvice]:
        return [self.pair_advice(*key) for key in sorted(self._worst)]

    def pairs_to_avoid(self) -> list[PairAdvice]:
        return [a for a in self.all_advice() if a.avoid]

    # ------------------------------------------------------------------
    def target_advice(self) -> list[TargetAdvice]:
        """Per-target summaries; pathological targets are column-wise slow."""
        by_target: dict[float, list[float]] = {}
        for (_, target), worst in self._worst.items():
            by_target.setdefault(target, []).append(worst)
        median_all = self.median_worst_case_s
        out = []
        for target, values in sorted(by_target.items()):
            arr = np.asarray(values)
            out.append(
                TargetAdvice(
                    target_mhz=target,
                    median_worst_case_s=float(np.median(arr)),
                    max_worst_case_s=float(arr.max()),
                    pathological=bool(
                        np.median(arr) > self.avoid_factor * median_all
                    ),
                )
            )
        return out

    def pathological_targets(self) -> list[float]:
        return [t.target_mhz for t in self.target_advice() if t.pathological]

    # ------------------------------------------------------------------
    def min_residency_table(self) -> dict[PairKey, float]:
        """The better-timing rule: region length needed per pair."""
        return {
            key: self.residency_factor * worst
            for key, worst in self._worst.items()
        }

    def classify_region(
        self, init_mhz: float, target_mhz: float, region_s: float
    ) -> str:
        """COUNTDOWN-style boundary classification against measured data.

        Returns ``"switch"`` when the region is long enough to amortize the
        worst-case transition, ``"detour"`` when the direct pair should be
        avoided but a cheap neighbour exists and pays off, and ``"stay"``
        otherwise.
        """
        advice = self.pair_advice(init_mhz, target_mhz)
        if advice.avoid and advice.detour_target_mhz is not None:
            detour_residency = self.residency_factor * (
                advice.detour_worst_case_s or 0.0
            )
            if region_s >= detour_residency:
                return "detour"
        if region_s >= advice.min_residency_s and not advice.avoid:
            return "switch"
        return "stay"
