"""Heatmap grid persistence (CSV) for downstream plotting tools.

The paper's figures are rendered from exactly these per-pair grids; this
module round-trips them through a simple labelled-CSV format so external
plotting (matplotlib, gnuplot, spreadsheets) can consume campaign output
without touching the library.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.analysis.heatmap import HeatmapGrid
from repro.errors import MeasurementError

__all__ = ["write_grid_csv", "read_grid_csv"]


def write_grid_csv(grid: HeatmapGrid, path: str | Path) -> Path:
    """Write a labelled grid: first row/column are frequencies in MHz."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["init_mhz\\target_mhz", *(f"{f:g}" for f in grid.frequencies_mhz)]
        )
        for freq, row in zip(grid.frequencies_mhz, grid.values_ms):
            writer.writerow(
                [f"{freq:g}"]
                + [f"{v:.6f}" if np.isfinite(v) else "" for v in row]
            )
        # Metadata footer rows (ignored by spreadsheet tools, recovered by
        # the reader).
        writer.writerow(["#gpu_name", grid.gpu_name])
        writer.writerow(["#statistic", grid.statistic])
    return path


def read_grid_csv(path: str | Path) -> HeatmapGrid:
    """Load a grid written by :func:`write_grid_csv`."""
    path = Path(path)
    rows: list[list[str]] = []
    meta: dict[str, str] = {}
    with path.open() as fh:
        for record in csv.reader(fh):
            if not record:
                continue
            if record[0].startswith("#"):
                meta[record[0][1:]] = record[1] if len(record) > 1 else ""
            else:
                rows.append(record)
    if len(rows) < 2:
        raise MeasurementError(f"not a grid CSV: {path}")
    header = rows[0][1:]
    frequencies = tuple(float(f) for f in header)
    values = np.full((len(rows) - 1, len(frequencies)), np.nan)
    for i, row in enumerate(rows[1:]):
        if abs(float(row[0]) - frequencies[i]) > 0.5:
            raise MeasurementError(
                f"grid CSV row label {row[0]} does not match column order"
            )
        for j, cell in enumerate(row[1 : len(frequencies) + 1]):
            if cell != "":
                values[i, j] = float(cell)
    return HeatmapGrid(
        frequencies_mhz=frequencies,
        values_ms=values,
        statistic=meta.get("statistic", "unknown"),
        gpu_name=meta.get("gpu_name", "unknown"),
    )
