"""Direction-split latency distributions (paper Fig. 4 violin plots).

The violins compare per-pair worst-case switching latencies for frequency
*increasing* transitions (init < target, left half) against *decreasing*
ones (init > target, right half).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.results import CampaignResult
from repro.errors import MeasurementError
from repro.stats.descriptive import SampleStats, summarize

__all__ = ["ViolinData", "DirectionSplit", "split_by_direction"]


@dataclass(frozen=True)
class ViolinData:
    """One violin: raw values plus a kernel-density-style histogram."""

    values_ms: np.ndarray
    stats: SampleStats
    bin_edges_ms: np.ndarray
    density: np.ndarray

    @classmethod
    def from_values(cls, values_ms: np.ndarray, bins: int = 40) -> "ViolinData":
        if values_ms.size == 0:
            raise MeasurementError("no values for violin")
        density, edges = np.histogram(values_ms, bins=bins, density=True)
        return cls(
            values_ms=values_ms,
            stats=summarize(values_ms),
            bin_edges_ms=edges,
            density=density,
        )

    def quantiles_ms(self, qs=(0.25, 0.5, 0.75)) -> np.ndarray:
        return np.quantile(self.values_ms, qs)

    def modality_count(self, min_prominence: float = 0.15) -> int:
        """Rough count of density modes (multimodality of the RTX violins).

        A mode is a local maximum of the smoothed histogram exceeding
        ``min_prominence`` times the global peak.
        """
        d = self.density
        if d.size < 3:
            return 1
        kernel = np.array([0.25, 0.5, 0.25])
        smooth = np.convolve(d, kernel, mode="same")
        smooth = np.convolve(smooth, kernel, mode="same")
        peak = smooth.max()
        if peak == 0:
            return 1
        count = 0
        for i in range(1, len(smooth) - 1):
            if (
                smooth[i] >= smooth[i - 1]
                and smooth[i] > smooth[i + 1]
                and smooth[i] >= min_prominence * peak
            ):
                count += 1
        return max(count, 1)


@dataclass(frozen=True)
class DirectionSplit:
    """The Fig. 4 data for one GPU."""

    gpu_name: str
    increasing: ViolinData
    decreasing: ViolinData

    @property
    def asymmetry(self) -> float:
        """mean(increasing) / mean(decreasing) of the per-pair worst cases."""
        return self.increasing.stats.mean / self.decreasing.stats.mean


def split_by_direction(
    result: CampaignResult,
    statistic: str = "max",
    without_outliers: bool = True,
    bins: int = 40,
) -> DirectionSplit:
    """Build Fig. 4 violin data from a campaign."""
    inc, dec = [], []
    for p in result.iter_measured():
        values = p.latencies_s(without_outliers)
        if values.size == 0:
            continue
        v = {
            "max": values.max(),
            "min": values.min(),
            "mean": values.mean(),
            "all": values,
        }[statistic]
        bucket = inc if p.increasing else dec
        if statistic == "all":
            bucket.extend(np.atleast_1d(v) * 1e3)
        else:
            bucket.append(v * 1e3)
    if not inc or not dec:
        raise MeasurementError("need both increasing and decreasing pairs")
    return DirectionSplit(
        gpu_name=result.gpu_name,
        increasing=ViolinData.from_values(np.asarray(inc), bins),
        decreasing=ViolinData.from_values(np.asarray(dec), bins),
    )
