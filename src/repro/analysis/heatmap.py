"""Heatmap grids of per-pair switching latencies (paper Fig. 3).

Rows are initial frequencies, columns target frequencies, matching the
orientation stated in the paper's figure caption.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.results import CampaignResult
from repro.errors import MeasurementError

__all__ = ["HeatmapGrid", "heatmap_from_campaign"]


@dataclass(frozen=True)
class HeatmapGrid:
    """A labelled latency grid in milliseconds."""

    frequencies_mhz: tuple[float, ...]
    values_ms: np.ndarray  # (init, target); NaN on the diagonal/unmeasured
    statistic: str
    gpu_name: str

    def value(self, init_mhz: float, target_mhz: float) -> float:
        i = self.frequencies_mhz.index(float(init_mhz))
        j = self.frequencies_mhz.index(float(target_mhz))
        return float(self.values_ms[i, j])

    @property
    def finite_values(self) -> np.ndarray:
        v = self.values_ms[np.isfinite(self.values_ms)]
        return v

    def global_max(self) -> tuple[float, tuple[float, float]]:
        """Largest value and its (init, target) pair."""
        if not np.isfinite(self.values_ms).any():
            raise MeasurementError("empty heatmap")
        idx = np.unravel_index(
            np.nanargmax(self.values_ms), self.values_ms.shape
        )
        pair = (self.frequencies_mhz[idx[0]], self.frequencies_mhz[idx[1]])
        return float(self.values_ms[idx]), pair

    def global_min(self) -> tuple[float, tuple[float, float]]:
        if not np.isfinite(self.values_ms).any():
            raise MeasurementError("empty heatmap")
        idx = np.unravel_index(
            np.nanargmin(self.values_ms), self.values_ms.shape
        )
        pair = (self.frequencies_mhz[idx[0]], self.frequencies_mhz[idx[1]])
        return float(self.values_ms[idx]), pair

    def row_means_ms(self) -> np.ndarray:
        """Mean per initial frequency (ignoring NaN)."""
        return np.nanmean(self.values_ms, axis=1)

    def column_means_ms(self) -> np.ndarray:
        """Mean per target frequency — the dominant pattern of Fig. 3."""
        return np.nanmean(self.values_ms, axis=0)

    def target_dominance_ratio(self) -> float:
        """Column-structure strength over row-structure strength.

        The paper observes "the target frequency has a much higher impact
        (visible row pattern in the heatmaps)": variance explained by
        column (target) means should exceed variance explained by row
        (init) means.  Values > 1 confirm target dominance.
        """
        v = self.values_ms
        finite = np.isfinite(v)
        grand = np.nanmean(v)
        col_var = np.nansum(
            (np.where(finite, np.nanmean(v, axis=0)[None, :], np.nan) - grand) ** 2
        )
        row_var = np.nansum(
            (np.where(finite, np.nanmean(v, axis=1)[:, None], np.nan) - grand) ** 2
        )
        if row_var == 0.0:
            return float("inf")
        return float(col_var / row_var)


def heatmap_from_campaign(
    result: CampaignResult,
    statistic: str = "max",
    without_outliers: bool = True,
) -> HeatmapGrid:
    """Build the Fig. 3-style grid from a campaign."""
    grid_s = result.latency_matrix(statistic, without_outliers)
    return HeatmapGrid(
        frequencies_mhz=tuple(float(f) for f in result.frequencies),
        values_ms=grid_s * 1e3,
        statistic=statistic,
        gpu_name=result.gpu_name,
    )
