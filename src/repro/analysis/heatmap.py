"""Heatmap grids of per-pair switching latencies (paper Fig. 3).

Rows are initial frequencies, columns target frequencies, matching the
orientation stated in the paper's figure caption.  Core×memory campaigns
render one grid per memory clock (:func:`heatmaps_by_memory`) — the
faceted view of the 2-D frequency domain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.results import CampaignResult
from repro.errors import MeasurementError

__all__ = ["HeatmapGrid", "heatmap_from_campaign", "heatmaps_by_memory"]


@dataclass(frozen=True)
class HeatmapGrid:
    """A labelled latency grid in milliseconds."""

    frequencies_mhz: tuple[float, ...]
    values_ms: np.ndarray  # (init, target); NaN on the diagonal/unmeasured
    statistic: str
    gpu_name: str
    #: memory clock the grid was measured at (None: legacy fixed memory)
    memory_mhz: float | None = None
    #: swept clock domain the row/column frequencies belong to
    #: (:mod:`repro.core.axis`); ``"memory"`` grids hold memory-clock
    #: pairs, ``"power"`` grids power-limit pairs in watts
    axis: str = "sm_core"
    #: locked-SM facet of a multi-facet swept-axis campaign (None: single
    #: facet)
    locked_sm_mhz: float | None = None

    @property
    def facet_label(self) -> str:
        """Short label of the facet this grid was measured at ('' if none)."""
        if self.memory_mhz is not None:
            return f"@ mem {self.memory_mhz:g} MHz"
        if self.locked_sm_mhz is not None:
            return f"@ SM {self.locked_sm_mhz:g} MHz"
        return ""

    def value(self, init_mhz: float, target_mhz: float) -> float:
        i = self.frequencies_mhz.index(float(init_mhz))
        j = self.frequencies_mhz.index(float(target_mhz))
        return float(self.values_ms[i, j])

    @property
    def finite_values(self) -> np.ndarray:
        v = self.values_ms[np.isfinite(self.values_ms)]
        return v

    def global_max(self) -> tuple[float, tuple[float, float]]:
        """Largest value and its (init, target) pair."""
        if not np.isfinite(self.values_ms).any():
            raise MeasurementError("empty heatmap")
        idx = np.unravel_index(
            np.nanargmax(self.values_ms), self.values_ms.shape
        )
        pair = (self.frequencies_mhz[idx[0]], self.frequencies_mhz[idx[1]])
        return float(self.values_ms[idx]), pair

    def global_min(self) -> tuple[float, tuple[float, float]]:
        if not np.isfinite(self.values_ms).any():
            raise MeasurementError("empty heatmap")
        idx = np.unravel_index(
            np.nanargmin(self.values_ms), self.values_ms.shape
        )
        pair = (self.frequencies_mhz[idx[0]], self.frequencies_mhz[idx[1]])
        return float(self.values_ms[idx]), pair

    def row_means_ms(self) -> np.ndarray:
        """Mean per initial frequency (ignoring NaN)."""
        return np.nanmean(self.values_ms, axis=1)

    def column_means_ms(self) -> np.ndarray:
        """Mean per target frequency — the dominant pattern of Fig. 3."""
        return np.nanmean(self.values_ms, axis=0)

    def target_dominance_ratio(self) -> float:
        """Column-structure strength over row-structure strength.

        The paper observes "the target frequency has a much higher impact
        (visible row pattern in the heatmaps)": variance explained by
        column (target) means should exceed variance explained by row
        (init) means.  Values > 1 confirm target dominance.
        """
        v = self.values_ms
        finite = np.isfinite(v)
        grand = np.nanmean(v)
        col_var = np.nansum(
            (np.where(finite, np.nanmean(v, axis=0)[None, :], np.nan) - grand) ** 2
        )
        row_var = np.nansum(
            (np.where(finite, np.nanmean(v, axis=1)[:, None], np.nan) - grand) ** 2
        )
        if row_var == 0.0:
            return float("inf")
        return float(col_var / row_var)


def heatmap_from_campaign(
    result: CampaignResult,
    statistic: str = "max",
    without_outliers: bool = True,
    memory_mhz: "float | None" = ...,
    locked_sm_mhz: "float | None" = ...,
) -> HeatmapGrid:
    """Build the Fig. 3-style grid from a campaign.

    ``memory_mhz`` selects one facet of a core×memory campaign,
    ``locked_sm_mhz`` one locked-SM facet of a multi-facet swept-axis
    campaign (required when several facets were swept); the defaults
    cover legacy and single-facet campaigns.
    """
    grid_s = result.latency_matrix(
        statistic, without_outliers, memory_mhz, locked_sm_mhz
    )
    if memory_mhz is ...:
        memory_mhz = (
            result.memory_frequencies[0]
            if result.memory_frequencies is not None
            else None
        )
    if locked_sm_mhz is ...:
        locked_sm_mhz = (
            result.locked_sm_frequencies[0]
            if result.locked_sm_frequencies is not None
            else None
        )
    return HeatmapGrid(
        frequencies_mhz=tuple(float(f) for f in result.frequencies),
        values_ms=grid_s * 1e3,
        statistic=statistic,
        gpu_name=result.gpu_name,
        memory_mhz=memory_mhz,
        axis=result.axis,
        locked_sm_mhz=locked_sm_mhz,
    )


def heatmaps_by_memory(
    result: CampaignResult,
    statistic: str = "max",
    without_outliers: bool = True,
) -> dict[float | None, HeatmapGrid]:
    """One Fig. 3-style grid per campaign facet, in sweep order.

    Facets are the memory clocks of a core×memory campaign or the locked
    SM clocks of a multi-facet swept-axis campaign; legacy and
    single-facet campaigns return a single entry keyed ``None``.
    """
    if result.locked_sm_frequencies is not None:
        return {
            sm: heatmap_from_campaign(
                result, statistic, without_outliers, locked_sm_mhz=sm
            )
            for sm in result.locked_sm_frequencies
        }
    plan = result.memory_frequencies or (None,)
    return {
        mem: heatmap_from_campaign(result, statistic, without_outliers, mem)
        for mem in plan
    }
