"""Methodology-recovery scoring against simulator ground truth.

On physical hardware the true switching latency of a transition is
unobservable — the methodology's output *is* the best estimate.  The
simulator knows the injected latency of every transition, so a campaign
can be scored end-to-end: detection bias (the granularity cost of the
iteration size), relative recovery error, and the outlier filter's
precision/recall against the injected driver-noise events.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.results import CampaignResult, PairKey
from repro.errors import MeasurementError

__all__ = ["PairRecovery", "RecoveryReport", "score_recovery"]


@dataclass(frozen=True)
class PairRecovery:
    """Recovery quality for one pair."""

    key: PairKey
    n: int
    bias_s: float          # mean(measured - truth)
    max_abs_error_s: float
    median_rel_error: float


@dataclass
class RecoveryReport:
    """Campaign-level recovery scores."""

    gpu_name: str
    pairs: list[PairRecovery]
    outlier_true_positives: int
    outlier_false_negatives: int
    outlier_false_positives: int

    @property
    def overall_bias_s(self) -> float:
        return float(np.mean([p.bias_s for p in self.pairs]))

    @property
    def overall_median_rel_error(self) -> float:
        return float(np.median([p.median_rel_error for p in self.pairs]))

    @property
    def worst_abs_error_s(self) -> float:
        return float(max(p.max_abs_error_s for p in self.pairs))

    @property
    def outlier_recall(self) -> float:
        denom = self.outlier_true_positives + self.outlier_false_negatives
        return self.outlier_true_positives / denom if denom else 1.0

    @property
    def outlier_precision(self) -> float:
        denom = self.outlier_true_positives + self.outlier_false_positives
        return self.outlier_true_positives / denom if denom else 1.0

    def summary_lines(self) -> list[str]:
        return [
            f"recovery on {self.gpu_name}: "
            f"{len(self.pairs)} pairs",
            f"  mean bias: {self.overall_bias_s * 1e6:+.1f} us "
            f"(detection granularity)",
            f"  median relative error: "
            f"{self.overall_median_rel_error * 100:.1f} %",
            f"  worst absolute error: "
            f"{self.worst_abs_error_s * 1e3:.3f} ms",
            f"  outlier filter: precision "
            f"{self.outlier_precision:.2f}, recall {self.outlier_recall:.2f}",
        ]


def score_recovery(
    result: CampaignResult, small_outlier_floor_s: float = 0.02
) -> RecoveryReport:
    """Score a campaign against its embedded ground truth.

    Outlier scoring counts an injected driver-noise event as *caught* when
    DBSCAN labels it noise; events whose extra delay stayed small (below
    ``small_outlier_floor_s`` above the pair median) are excluded — they
    hide inside the regular distribution by construction and no filter can
    (or needs to) find them.
    """
    pairs: list[PairRecovery] = []
    tp = fn = fp = 0
    for pair in result.iter_measured():
        measured = pair.latencies_s(without_outliers=False)
        truth = pair.ground_truths_s(without_outliers=False)
        ok = ~np.isnan(truth)
        if not ok.any():
            continue
        err = measured[ok] - truth[ok]
        rel = np.abs(err) / np.maximum(truth[ok], 1e-9)
        pairs.append(
            PairRecovery(
                key=pair.key,
                n=int(ok.sum()),
                bias_s=float(err.mean()),
                max_abs_error_s=float(np.abs(err).max()),
                median_rel_error=float(np.median(rel)),
            )
        )
        if pair.outliers is None:
            continue
        labels = pair.outliers.labels
        median = float(np.median(measured))
        for i, m in enumerate(pair.measurements):
            flagged = labels[i] == -1
            if m.ground_truth_outlier:
                if m.latency_s < median + small_outlier_floor_s:
                    continue  # hidden in-band by construction
                if flagged:
                    tp += 1
                else:
                    fn += 1
            elif flagged:
                fp += 1
    if not pairs:
        raise MeasurementError("no ground truth available to score")
    return RecoveryReport(
        gpu_name=result.gpu_name,
        pairs=pairs,
        outlier_true_positives=tp,
        outlier_false_negatives=fn,
        outlier_false_positives=fp,
    )
