"""Markdown campaign report generation.

Combines every analysis the library offers — Table II summary, heatmaps,
direction split, cluster structure, runtime advice, and (when ground truth
is available) methodology-recovery scores — into one self-contained
markdown document, the artifact a user would attach to a cluster
commissioning ticket.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.analysis.advisor import RuntimeAdvisor
from repro.analysis.clusters import cluster_report
from repro.analysis.distributions import split_by_direction
from repro.analysis.heatmap import heatmaps_by_memory
from repro.analysis.render import render_facet_grid
from repro.analysis.summary import summarize_campaign
from repro.analysis.validation import score_recovery
from repro.core.results import CampaignResult
from repro.errors import MeasurementError

__all__ = ["campaign_report", "write_campaign_report"]


def _heatmap_section(result: CampaignResult, statistic: str) -> list[str]:
    """One side-by-side facet grid (a single panel for legacy campaigns)."""
    grids = heatmaps_by_memory(result, statistic)
    header = f"### {statistic.capitalize()} switching latencies [ms]"
    if len(grids) > 1:
        header += f" — one panel per {result.facet_kind}"
    return [
        header,
        "",
        "```",
        render_facet_grid(grids),
        "```",
        "",
    ]


def _summary_section(result: CampaignResult) -> list[str]:
    row = summarize_campaign(result)
    lines = [
        "## Summary (Table II format)",
        "",
        "| case | min [ms] | mean [ms] | max [ms] | min pair | max pair |",
        "|---|---|---|---|---|---|",
    ]
    for label, case in (("worst", row.worst), ("best", row.best)):
        lines.append(
            f"| {label} | {case.min_ms:.3f} | {case.mean_ms:.3f} | "
            f"{case.max_ms:.3f} | {case.min_pair[0]:g}→{case.min_pair[1]:g} | "
            f"{case.max_pair[0]:g}→{case.max_pair[1]:g} |"
        )
    lines.append("")
    return lines


def _direction_section(result: CampaignResult) -> list[str]:
    try:
        split = split_by_direction(result, "max")
    except MeasurementError:
        return []
    lines = ["## Direction split (Fig. 4 format)", ""]
    for name, violin in (
        ("increasing", split.increasing),
        ("decreasing", split.decreasing),
    ):
        q25, q50, q75 = violin.quantiles_ms()
        lines.append(
            f"- **{name}**: n={violin.values_ms.size}, "
            f"median {q50:.2f} ms (IQR {q25:.2f}–{q75:.2f}), "
            f"max {violin.stats.maximum:.2f} ms, "
            f"~{violin.modality_count()} mode(s)"
        )
    lines.append("")
    return lines


def _cluster_section(result: CampaignResult) -> list[str]:
    report = cluster_report(result)
    if not report.pairs:
        return []
    lines = [
        "## Cluster structure (Sec. VII-B format)",
        "",
        f"- single-cluster pairs: {report.single_cluster_share * 100:.0f} %",
        f"- maximum clusters on one pair: {report.max_clusters}",
        f"- outlier share: {report.outlier_share() * 100:.1f} %",
    ]
    sils = report.multi_cluster_silhouettes
    if sils.size:
        lines.append(
            f"- silhouette of multi-cluster pairs: "
            f"min {sils.min():.2f}, mean {sils.mean():.2f}"
        )
    lines.append("")
    return lines


def _advice_section(result: CampaignResult) -> list[str]:
    try:
        advisor = RuntimeAdvisor(result)
    except MeasurementError:
        return []
    lines = ["## Runtime-design advice (Sec. VIII)", ""]
    pathological = advisor.pathological_targets()
    if pathological:
        lines.append(
            "- **pathological target frequencies** (avoid or detour): "
            + ", ".join(f"{t:g} MHz" for t in pathological)
        )
    avoid = advisor.pairs_to_avoid()
    if avoid:
        lines.append("- **pairs to avoid** (worst case ≫ device median):")
        for advice in avoid[:10]:
            detour = (
                f"; detour via {advice.detour_target_mhz:g} MHz "
                f"({advice.detour_worst_case_s * 1e3:.1f} ms)"
                if advice.detour_target_mhz is not None
                else ""
            )
            lines.append(
                f"  - {advice.key[0]:g}→{advice.key[1]:g}: "
                f"{advice.worst_case_s * 1e3:.1f} ms worst case{detour}"
            )
    residencies = [r for r in advisor.min_residency_table().values()]
    lines.append(
        f"- minimum region length for a profitable switch: "
        f"median {np.median(residencies) * 1e3:.1f} ms, "
        f"max {max(residencies) * 1e3:.1f} ms "
        f"(at {advisor.residency_factor:g}× the worst-case latency)"
    )
    lines.append("")
    return lines


def _recovery_section(result: CampaignResult) -> list[str]:
    try:
        recovery = score_recovery(result)
    except MeasurementError:
        return []
    lines = ["## Ground-truth recovery (simulator-only validation)", ""]
    lines.extend(f"- {line.strip()}" for line in recovery.summary_lines()[1:])
    lines.append("")
    return lines


def campaign_report(result: CampaignResult) -> str:
    """Render the full markdown report for one campaign."""
    from repro.core.axis import axis_by_name

    if result.locked_sm_mhz is not None:
        locked = f" (SM clock locked at {result.locked_sm_mhz:g} MHz)"
    elif result.locked_sm_frequencies is not None:
        clocks = ", ".join(f"{f:g}" for f in result.locked_sm_frequencies)
        locked = f" (one facet per locked SM clock: {clocks} MHz)"
    else:
        locked = ""
    swept = f"- swept axis: {result.swept_label}{locked}"
    unit = axis_by_name(result.axis).unit
    lines = [
        f"# Switching-latency campaign report — {result.gpu_name}",
        "",
        f"- host: `{result.hostname}`, GPU index {result.device_index}"
        f" ({result.architecture})",
        swept,
        f"- swept values: "
        f"{', '.join(f'{f:g}' for f in result.frequencies)} {unit}",
        f"- measured pairs: {result.n_measured_pairs}"
        f" (skipped: {len(result.skipped_pairs)})",
        f"- simulated device time: {result.wall_virtual_s:.1f} s",
        "",
    ]
    lines.extend(_summary_section(result))
    lines.extend(["## Heatmaps (Fig. 3 format)", ""])
    lines.extend(_heatmap_section(result, "min"))
    lines.extend(_heatmap_section(result, "max"))
    lines.extend(_direction_section(result))
    lines.extend(_cluster_section(result))
    lines.extend(_advice_section(result))
    lines.extend(_recovery_section(result))
    skipped = result.skipped_pairs
    if skipped:
        lines.extend(["## Skipped pairs", ""])
        for pair in skipped:
            lines.append(
                f"- {pair.init_mhz:g}→{pair.target_mhz:g}: {pair.skip_reason}"
            )
        lines.append("")
    return "\n".join(lines)


def write_campaign_report(
    result: CampaignResult, path: str | Path
) -> Path:
    """Write :func:`campaign_report` to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(campaign_report(result))
    return path
