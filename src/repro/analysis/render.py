"""Plain-text rendering of grids and tables for bench/CLI output."""

from __future__ import annotations

import numpy as np

from repro.analysis.heatmap import HeatmapGrid
from repro.analysis.summary import Table2Row

__all__ = [
    "render_heatmap",
    "render_facet_grid",
    "render_table2",
    "render_matrix",
]


def render_matrix(
    values: np.ndarray,
    row_labels,
    col_labels,
    corner: str = "",
    fmt: str = "{:8.2f}",
    na: str = "       -",
) -> str:
    """Format a labelled 2-D grid as fixed-width text."""
    width = max(len(fmt.format(0.0)), 8)
    head = f"{corner:>8} " + " ".join(f"{c:>{width}g}" for c in col_labels)
    lines = [head]
    for label, row in zip(row_labels, values):
        cells = " ".join(
            fmt.format(v) if np.isfinite(v) else na for v in row
        )
        lines.append(f"{label:>8g} {cells}")
    return "\n".join(lines)


def render_heatmap(grid: HeatmapGrid) -> str:
    """Fig. 3-style text heatmap (initial freq in rows, target in columns)."""
    mem = f" {grid.facet_label}" if grid.facet_label else ""
    axis = " (memory-clock pairs)" if grid.axis == "memory" else ""
    title = (
        f"{grid.gpu_name}{mem}{axis} — "
        f"{grid.statistic} switching latencies [ms]"
    )
    body = render_matrix(
        grid.values_ms,
        grid.frequencies_mhz,
        grid.frequencies_mhz,
        corner="init\\tgt",
    )
    return f"{title}\n{body}"


def render_facet_grid(
    grids: "dict[float | None, HeatmapGrid]",
    gap: str = "   |   ",
) -> str:
    """All facet heatmaps side by side in one fixed-width text block.

    One panel per facet (campaign sweep order preserved), each headed by
    its facet label — the memory clocks of a core×memory grid compare at
    a glance instead of scrolling through per-facet sections.  Legacy
    single-facet campaigns render one untitled panel, identical in body
    to :func:`render_matrix`.
    """
    panels: list[list[str]] = []
    for grid in grids.values():
        body = render_matrix(
            grid.values_ms,
            grid.frequencies_mhz,
            grid.frequencies_mhz,
            corner="init\\tgt",
        )
        lines = body.split("\n")
        if grid.facet_label:
            lines = [grid.facet_label, *lines]
        panels.append(lines)
    height = max(len(p) for p in panels)
    widths = [max(len(line) for line in p) for p in panels]
    rows = []
    for i in range(height):
        cells = (
            (p[i] if i < len(p) else "").ljust(w)
            for p, w in zip(panels, widths)
        )
        rows.append(gap.join(cells).rstrip())
    return "\n".join(rows)


def render_table2(rows: list[Table2Row]) -> str:
    """Table II-style summary across GPUs.

    Non-default-axis rows are tagged (e.g. ``[memory]``) so a
    memory-clock pair table can never be mistaken for SM relocks.
    """
    lines = ["Summary of switching latencies across GPUs"]

    def name(r: Table2Row) -> str:
        if r.axis != "sm_core":
            return f"{r.gpu_name} [{r.axis}]"
        return r.gpu_name

    header = f"{'':28} " + " ".join(f"{name(r):>18}" for r in rows)
    lines.append(header)

    def block(title: str, attr: str) -> None:
        lines.append(f"{title}")
        for field, label in (
            ("min_ms", "Min [ms]"),
            ("mean_ms", "Mean [ms]"),
            ("max_ms", "Max [ms]"),
        ):
            cells = " ".join(
                f"{getattr(getattr(r, attr), field):>18.3f}" for r in rows
            )
            lines.append(f"  {label:26} {cells}")
        for field, label in (
            ("min_pair", "  min transition [MHz]"),
            ("max_pair", "  max transition [MHz]"),
        ):
            cells = " ".join(
                "{:>18}".format(
                    "{:g}->{:g}".format(*getattr(getattr(r, attr), field))
                )
                for r in rows
            )
            lines.append(f"  {label:26} {cells}")

    block("The worst-case latencies", "worst")
    block("The best-case latencies", "best")
    return "\n".join(lines)
