"""True-time and hardware-timer models.

Units are float64 seconds throughout.  float64 keeps ~0.1 ns of absolute
precision out to 10^6 s of simulated time, far below the 1 us GPU timer
granularity the methodology has to cope with.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ClockError

__all__ = ["VirtualClock", "HardwareClock"]


class VirtualClock:
    """The single true timeline of a simulated machine.

    Only ever moves forward.  Every actor (host, driver, device) advances it
    explicitly; there is no hidden global state.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current true time in seconds."""
        return self._now

    def advance(self, dt: float) -> float:
        """Move true time forward by ``dt`` seconds and return the new time."""
        if dt < 0.0 or not math.isfinite(dt):
            raise ClockError(f"cannot advance time by {dt!r} s")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Move true time forward to absolute time ``t`` (no-op if past)."""
        if not math.isfinite(t):
            raise ClockError(f"cannot advance to {t!r}")
        if t > self._now:
            self._now = t
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(now={self._now:.9f})"


@dataclass
class HardwareClock:
    """A hardware timer domain observing the true timeline.

    Reading the clock at true time ``t`` returns::

        quantize((t - epoch) * (1 + drift) + offset, granularity)

    ``drift`` is the fractional rate error of the oscillator (1e-6 means the
    timer gains 1 us per true second).  ``granularity`` models the refresh
    period of the timer register: CUDA's ``%globaltimer`` advances in ~1 us
    steps (paper, footnote 1), while a CPU ``clock_gettime`` is ~ns.
    """

    clock: VirtualClock
    offset: float = 0.0
    drift: float = 0.0
    granularity: float = 0.0
    epoch: float = 0.0
    name: str = "hwclock"
    _last_read: float = field(default=-math.inf, repr=False)

    def convert(self, true_t: float) -> float:
        """Hardware timestamp corresponding to true time ``true_t``."""
        raw = (true_t - self.epoch) * (1.0 + self.drift) + self.offset
        return self._quantize(raw)

    def invert(self, hw_t: float) -> float:
        """Approximate true time at which the timer read ``hw_t``.

        Exact up to the quantization step (the timer register holds its value
        for one granularity period).
        """
        return (hw_t - self.offset) / (1.0 + self.drift) + self.epoch

    def read(self) -> float:
        """Read the timer now.  Monotonic by construction."""
        value = self.convert(self.clock.now)
        if value < self._last_read:
            # Quantization can only hold a value flat, never regress; a
            # regression means the configuration is inconsistent.
            raise ClockError(
                f"{self.name}: non-monotonic read ({value} < {self._last_read})"
            )
        self._last_read = value
        return value

    def _quantize(self, raw: float) -> float:
        if self.granularity <= 0.0:
            return raw
        return math.floor(raw / self.granularity) * self.granularity

    def convert_array(self, true_t):
        """Vectorized :meth:`convert` for numpy arrays (used by the SM engine)."""
        import numpy as np

        raw = np.asarray(true_t, dtype=np.float64) - self.epoch
        raw *= 1.0 + self.drift
        raw += self.offset
        if self.granularity <= 0.0:
            return raw
        raw /= self.granularity
        np.floor(raw, out=raw)
        raw *= self.granularity
        return raw
