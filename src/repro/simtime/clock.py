"""True-time and hardware-timer models.

Units are float64 seconds throughout.  float64 keeps ~0.1 ns of absolute
precision out to 10^6 s of simulated time, far below the 1 us GPU timer
granularity the methodology has to cope with.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ClockError

__all__ = ["VirtualClock", "HardwareClock"]


class VirtualClock:
    """The single true timeline of a simulated machine.

    Only ever moves forward.  Every actor (host, driver, device) advances it
    explicitly; there is no hidden global state.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current true time in seconds."""
        return self._now

    def advance(self, dt: float) -> float:
        """Move true time forward by ``dt`` seconds and return the new time."""
        if dt < 0.0 or not math.isfinite(dt):
            raise ClockError(f"cannot advance time by {dt!r} s")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Move true time forward to absolute time ``t`` (no-op if past)."""
        if not math.isfinite(t):
            raise ClockError(f"cannot advance to {t!r}")
        if t > self._now:
            self._now = t
        return self._now

    def _restore(self, t: float) -> None:
        """Rewind to ``t`` — machine-checkpoint rollback support only.

        The public timeline API only moves forward; this hook exists for
        :meth:`repro.machine.Machine.restore`, which discards a speculative
        simulation suffix as a whole (every actor's state rewinds with it).
        """
        if not math.isfinite(t):
            raise ClockError(f"cannot restore to {t!r}")
        self._now = float(t)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(now={self._now:.9f})"


@dataclass
class HardwareClock:
    """A hardware timer domain observing the true timeline.

    Reading the clock at true time ``t`` returns::

        quantize((t - epoch) * (1 + drift) + offset, granularity)

    ``drift`` is the fractional rate error of the oscillator (1e-6 means the
    timer gains 1 us per true second).  ``granularity`` models the refresh
    period of the timer register: CUDA's ``%globaltimer`` advances in ~1 us
    steps (paper, footnote 1), while a CPU ``clock_gettime`` is ~ns.
    """

    clock: VirtualClock
    offset: float = 0.0
    drift: float = 0.0
    granularity: float = 0.0
    epoch: float = 0.0
    name: str = "hwclock"
    _last_read: float = field(default=-math.inf, repr=False)

    def convert(self, true_t: float) -> float:
        """Hardware timestamp corresponding to true time ``true_t``."""
        raw = (true_t - self.epoch) * (1.0 + self.drift) + self.offset
        return self._quantize(raw)

    def invert(self, hw_t: float) -> float:
        """Approximate true time at which the timer read ``hw_t``.

        Exact up to the quantization step (the timer register holds its value
        for one granularity period).
        """
        return (hw_t - self.offset) / (1.0 + self.drift) + self.epoch

    def read(self) -> float:
        """Read the timer now.  Monotonic by construction."""
        value = self.convert(self.clock.now)
        if value < self._last_read:
            # Quantization can only hold a value flat, never regress; a
            # regression means the configuration is inconsistent.
            raise ClockError(
                f"{self.name}: non-monotonic read ({value} < {self._last_read})"
            )
        self._last_read = value
        return value

    def _quantize(self, raw: float) -> float:
        if self.granularity <= 0.0:
            return raw
        return math.floor(raw / self.granularity) * self.granularity

    def convert_array(self, true_t, out=None):
        """Vectorized :meth:`convert` for numpy arrays (used by the SM engine).

        The affine map and the granularity division are folded into one
        multiply-add per element (``t * scale/g + shift/g``, floor, ``*g``)
        — algebraically identical to the scalar formula; last-ulp rounding
        may differ, which only matters at exact quantization boundaries.
        ``out`` reuses a caller buffer (e.g. a slice of a pass-block
        matrix) instead of allocating.
        """
        import numpy as np

        scale = 1.0 + self.drift
        shift = self.offset - self.epoch * scale
        if self.granularity > 0.0:
            inv_g = 1.0 / self.granularity
            raw = np.multiply(true_t, scale * inv_g, out=out)
            raw += shift * inv_g
            np.floor(raw, out=raw)
            raw *= self.granularity
            return raw
        raw = np.multiply(true_t, scale, out=out)
        raw += shift
        return raw
