"""Simulated host CPU.

The host is the originator of every driver call in the methodology: it sets
frequencies through NVML, launches kernels, sleeps through the delay period,
and reads its own OS clock for the ``t_s`` timestamp of Algorithm 2.  Its
time costs matter because the switching latency *includes* the CPU-side
driver call and bus traversal (paper, Fig. 2).

``usleep`` never undersleeps and typically oversleeps by a scheduling
quantum, mirroring POSIX semantics; HPC monitoring daemons occasionally
steal the core for much longer, which is one of the outlier sources the
paper's DBSCAN pass (Sec. V-C) exists to remove.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ClockError
from repro.simtime.clock import HardwareClock, VirtualClock

__all__ = ["SleepModel", "HostCpu"]


@dataclass(frozen=True)
class SleepModel:
    """Stochastic model of ``usleep`` overshoot and CPU-side interruptions.

    Attributes
    ----------
    base_overshoot:
        Deterministic scheduling overhead added to every sleep (seconds).
    jitter_scale:
        Scale of the exponential oversleep jitter (seconds).
    interruption_prob:
        Per-sleep probability that a system-noise event (monitoring daemon,
        interrupt storm) extends the sleep substantially.
    interruption_scale:
        Scale of the exponential interruption duration (seconds).
    """

    base_overshoot: float = 5e-6
    jitter_scale: float = 15e-6
    interruption_prob: float = 0.0
    interruption_scale: float = 2e-3

    def sample_overshoot(self, rng: np.random.Generator) -> float:
        extra = self.base_overshoot + rng.exponential(self.jitter_scale)
        if self.interruption_prob > 0.0 and rng.random() < self.interruption_prob:
            extra += rng.exponential(self.interruption_scale)
        return extra


class HostCpu:
    """The CPU side of the simulated machine.

    Parameters
    ----------
    clock:
        The machine's true timeline.
    os_clock:
        The clock behind ``clock_gettime``.  Defaults to a nanosecond-
        granularity timer with zero offset (the host timebase is the
        reference domain).
    rng:
        Generator used for sleep jitter and interruption noise.
    sleep_model:
        Stochastic sleep behaviour; see :class:`SleepModel`.
    """

    def __init__(
        self,
        clock: VirtualClock,
        rng: np.random.Generator,
        os_clock: HardwareClock | None = None,
        sleep_model: SleepModel | None = None,
    ) -> None:
        self.clock = clock
        self.rng = rng
        self.os_clock = os_clock or HardwareClock(
            clock, granularity=1e-9, name="cpu-os-clock"
        )
        self.sleep_model = sleep_model or SleepModel()

    # ------------------------------------------------------------------
    # time queries
    # ------------------------------------------------------------------
    def clock_gettime(self) -> float:
        """Read the OS monotonic clock (the CPU timebase of Algorithm 2)."""
        return self.os_clock.read()

    @property
    def true_now(self) -> float:
        return self.clock.now

    # ------------------------------------------------------------------
    # time consumption
    # ------------------------------------------------------------------
    def sleep(self, seconds: float) -> float:
        """Sleep at least ``seconds``; returns the actual slept duration."""
        if seconds < 0.0:
            raise ClockError(f"negative sleep: {seconds!r}")
        actual = seconds + self.sleep_model.sample_overshoot(self.rng)
        self.clock.advance(actual)
        return actual

    def usleep(self, microseconds: float) -> float:
        """POSIX-style microsecond sleep (paper Algorithm 2, line 5)."""
        return self.sleep(microseconds * 1e-6)

    def busy(self, seconds: float) -> None:
        """Consume exactly ``seconds`` of CPU time (deterministic work)."""
        if seconds < 0.0:
            raise ClockError(f"negative busy time: {seconds!r}")
        self.clock.advance(seconds)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HostCpu(now={self.clock.now:.6f})"
