"""Virtual-time infrastructure.

Everything in the simulated machine — the host CPU, the GPU device, the
driver stack — advances a single :class:`VirtualClock` that represents *true*
physical time.  Components never read true time directly; they observe it
through a :class:`HardwareClock`, which applies an offset, a rate drift and a
quantization step, exactly like the distinct oscillator domains of a CPU TSC
and a GPU ``%globaltimer``.

The separation is what makes the paper's IEEE-1588 synchronization step
(:mod:`repro.timesync`) meaningful: the CPU-side timestamp of the frequency
change request must be converted into the accelerator's timebase before it
can be compared against device-side iteration timestamps.
"""

from repro.simtime.clock import HardwareClock, VirtualClock
from repro.simtime.host import HostCpu, SleepModel

__all__ = ["VirtualClock", "HardwareClock", "HostCpu", "SleepModel"]
