"""Simulated machine: one host CPU plus one or more GPUs on a shared timeline.

This is the top-level factory most users start from::

    from repro.machine import make_machine

    machine = make_machine("A100", seed=42)
    ctx = machine.cuda_context()          # CUDA-like runtime
    nvml = machine.nvml()                 # NVML-like management session
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.gpusim.device import GpuDevice
from repro.gpusim.spec import GpuSpec, lookup_spec
from repro.gpusim.thermal import ThermalModel
from repro.simtime.clock import VirtualClock
from repro.simtime.host import HostCpu, SleepModel
from repro.trace import NULL_TRACER, Tracer

__all__ = ["Machine", "MachineBlueprint", "MachineCheckpoint", "make_machine"]


def _machine_rng(seed_seq: np.random.SeedSequence) -> np.random.Generator:
    """Machine-stream generator: SFC64 behind the numpy Generator API.

    The simulator burns tens of millions of draws per campaign (iteration
    cycle matrices above all); SFC64 generates roughly twice as fast as the
    default PCG64 with ample statistical quality for a physical-noise
    model, and it seeds from the same :class:`~numpy.random.SeedSequence`
    streams, so blueprint replication and the exec engine's per-pair
    spawn-key derivation are unchanged.
    """
    return np.random.Generator(np.random.SFC64(seed_seq))


@dataclass(frozen=True)
class MachineCheckpoint:
    """A restorable snapshot of a machine's simulation state.

    One entry of the pass-block runner's RNG draw-order ledger
    (:mod:`repro.core.passblock`): taken at a pass boundary, it captures
    every piece of mutable state a speculative measurement pass can touch —
    the true clock, each generator's bit-generator state, hardware-timer
    monotonic guards, the DVFS event timeline, thermal/energy bookkeeping.
    Restoring rewinds the machine to exactly the state the scalar reference
    loop would be in, which is what makes speculative pass blocks safe to
    discard.  Checkpoints are cheap (list copies of event timelines plus a
    handful of scalars) and single-use by convention, though restoring one
    twice is supported.
    """

    clock_now: float
    host_rng_state: dict
    machine_rng_state: dict
    os_clock_last_read: float
    device_states: tuple


@dataclass(frozen=True)
class MachineBlueprint:
    """Everything needed to rebuild a :func:`make_machine` machine.

    The campaign execution engine ships blueprints to worker processes so
    each frequency-pair job can materialize an identical machine with its
    own deterministic random stream (a :class:`numpy.random.SeedSequence`
    derived from ``entropy``).  Machines constructed by hand (not via
    :func:`make_machine`) carry no blueprint and cannot be replicated.
    """

    gpu_model: GpuSpec
    n_gpus: int
    entropy: "int | None"
    #: spawn key of the master SeedSequence (non-empty when the machine
    #: was seeded with a spawned SeedSequence rather than a plain int)
    seed_spawn_key: tuple[int, ...]
    hostname: str
    thermal_enabled: bool
    ambient_c: float
    power_limit_w: float | None
    sleep_model: SleepModel | None
    unit_seeds: tuple[int, ...] | None
    start_time: float

    def build(
        self,
        seed: "int | np.random.SeedSequence | None" = None,
        start_time: float | None = None,
    ) -> "Machine":
        """Rebuild the machine, optionally with a derived seed/epoch.

        Without overrides this reproduces the original machine exactly
        (same streams, same start time).  Worker processes pass a spawned
        :class:`~numpy.random.SeedSequence` and the campaign epoch.
        """
        if seed is None:
            seed = np.random.SeedSequence(
                entropy=self.entropy, spawn_key=self.seed_spawn_key
            )
        return make_machine(
            self.gpu_model,
            n_gpus=self.n_gpus,
            seed=seed,
            hostname=self.hostname,
            thermal_enabled=self.thermal_enabled,
            ambient_c=self.ambient_c,
            power_limit_w=self.power_limit_w,
            sleep_model=self.sleep_model,
            unit_seeds=list(self.unit_seeds) if self.unit_seeds else None,
            start_time=self.start_time if start_time is None else start_time,
        )


@dataclass
class Machine:
    """A simulated node: true timeline, host CPU, and GPU devices."""

    clock: VirtualClock
    host: HostCpu
    devices: list[GpuDevice]
    hostname: str = "simnode01"
    rng: np.random.Generator = field(default_factory=np.random.default_rng)
    tracer: Tracer = field(default_factory=lambda: NULL_TRACER)
    #: construction record for process-pool replication (None when the
    #: machine was assembled by hand)
    blueprint: MachineBlueprint | None = None

    def device(self, index: int = 0) -> GpuDevice:
        try:
            return self.devices[index]
        except IndexError:
            raise ConfigError(
                f"device index {index} out of range (machine has "
                f"{len(self.devices)} GPUs)"
            ) from None

    def cuda_context(self, device_index: int = 0):
        from repro.cuda.runtime import CudaContext

        return CudaContext(self.host, self.device(device_index))

    # ------------------------------------------------------------------
    # checkpoint / rollback (pass-block ledger support)
    # ------------------------------------------------------------------
    def checkpoint(self) -> MachineCheckpoint:
        """Snapshot all mutable simulation state (see MachineCheckpoint).

        Every device must be quiescent (no pending kernels): campaign code
        checkpoints at pass boundaries, right after ``synchronize()``.
        """
        return MachineCheckpoint(
            clock_now=self.clock.now,
            host_rng_state=self.host.rng.bit_generator.state,
            machine_rng_state=self.rng.bit_generator.state,
            os_clock_last_read=self.host.os_clock._last_read,
            device_states=tuple(d.snapshot_state() for d in self.devices),
        )

    def restore(self, cp: MachineCheckpoint) -> None:
        """Rewind the machine to a checkpoint taken earlier on it."""
        self.clock._restore(cp.clock_now)
        self.host.rng.bit_generator.state = cp.host_rng_state
        self.rng.bit_generator.state = cp.machine_rng_state
        self.host.os_clock._last_read = cp.os_clock_last_read
        for device, state in zip(self.devices, cp.device_states):
            device.restore_state(state)

    def nvml(self):
        from repro.nvml.api import NvmlSession

        return NvmlSession(self)


def make_machine(
    gpu_model: str | GpuSpec = "A100",
    n_gpus: int = 1,
    seed: "int | np.random.SeedSequence | None" = 0,
    hostname: str = "simnode01",
    thermal_enabled: bool = False,
    ambient_c: float = 30.0,
    power_limit_w: float | None = None,
    sleep_model: SleepModel | None = None,
    unit_seeds: list[int] | None = None,
    start_time: float = 0.0,
    tracer: Tracer | None = None,
) -> Machine:
    """Build a simulated machine.

    Parameters
    ----------
    gpu_model:
        Model name (``"A100"``, ``"GH200"``, ``"RTX6000"``) or an explicit
        :class:`GpuSpec`.
    n_gpus:
        Number of identical GPUs (multi-GPU nodes, paper Sec. VII-C).
    seed:
        Master seed; every stochastic component derives from it.  A
        :class:`numpy.random.SeedSequence` may be passed directly (the
        execution engine derives per-pair sequences this way).
    thermal_enabled / ambient_c / power_limit_w:
        Thermal-model controls.  Disabled by default (the paper's
        front-row, thermally unconstrained configuration).
    unit_seeds:
        Per-device manufacturing serials.  Defaults to ``100 + index`` so
        each GPU on a node exhibits distinct unit-level variability.
    tracer:
        Event tracer shared by all components; None disables tracing.
    """
    if n_gpus < 1:
        raise ConfigError("machine needs at least one GPU")
    spec = gpu_model if isinstance(gpu_model, GpuSpec) else lookup_spec(gpu_model)
    master = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    host_ss, *gpu_ss = master.spawn(1 + n_gpus)

    clock = VirtualClock(start=start_time)
    host = HostCpu(
        clock,
        rng=_machine_rng(host_ss),
        sleep_model=sleep_model,
    )
    if unit_seeds is None:
        unit_seeds = [100 + i for i in range(n_gpus)]
    if len(unit_seeds) != n_gpus:
        raise ConfigError("unit_seeds length must match n_gpus")

    trace = tracer if tracer is not None else NULL_TRACER
    devices = []
    for i in range(n_gpus):
        thermal = ThermalModel(
            spec,
            ambient_c=ambient_c,
            power_limit_w=power_limit_w,
            enabled=thermal_enabled,
        )
        devices.append(
            GpuDevice(
                spec,
                clock,
                rng=_machine_rng(gpu_ss[i]),
                index=i,
                unit_seed=unit_seeds[i],
                thermal=thermal,
                tracer=trace,
            )
        )
    blueprint = MachineBlueprint(
        gpu_model=spec,
        n_gpus=n_gpus,
        entropy=master.entropy,
        seed_spawn_key=tuple(master.spawn_key),
        hostname=hostname,
        thermal_enabled=thermal_enabled,
        ambient_c=ambient_c,
        power_limit_w=power_limit_w,
        sleep_model=sleep_model,
        unit_seeds=tuple(unit_seeds),
        start_time=start_time,
    )
    return Machine(
        clock=clock,
        host=host,
        devices=devices,
        hostname=hostname,
        rng=_machine_rng(master.spawn(1)[0]),
        tracer=trace,
        blueprint=blueprint,
    )
