"""NVML session and device-handle objects.

The API shape intentionally follows NVML (``nvmlDeviceGetHandleByIndex``,
``nvmlDeviceSetGpuLockedClocks``, ...) with pythonic naming.  Errors raise
:class:`~repro.errors.NvmlError` with NVML-style codes.

Driver-call costs are drawn from a lognormal around a per-call-type median;
an occasional scheduling hiccup stretches a call by milliseconds.  Those
hiccups land inside measured switching latencies and are one of the outlier
sources the paper's DBSCAN filter (Sec. V-C) removes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, NvmlError
from repro.gpusim.device import GpuDevice
from repro.gpusim.dvfs import TransitionRecord
from repro.gpusim.thermal import ThrottleReasons

__all__ = ["NvmlCallCosts", "NvmlDeviceHandle", "NvmlSession"]


@dataclass(frozen=True)
class NvmlCallCosts:
    """CPU-side latency model for NVML entry points (seconds)."""

    query_median_s: float = 25e-6
    query_sigma_log: float = 0.30
    set_clocks_median_s: float = 120e-6
    set_clocks_sigma_log: float = 0.35
    hiccup_prob: float = 0.002
    hiccup_scale_s: float = 2e-3

    def sample(
        self, rng: np.random.Generator, kind: str = "query"
    ) -> float:
        if kind == "set":
            median, sigma = self.set_clocks_median_s, self.set_clocks_sigma_log
        else:
            median, sigma = self.query_median_s, self.query_sigma_log
        cost = median * float(np.exp(sigma * rng.standard_normal()))
        if rng.random() < self.hiccup_prob:
            cost += float(rng.exponential(self.hiccup_scale_s))
        return cost


class NvmlSession:
    """An initialized NVML library instance (``nvmlInit`` .. ``nvmlShutdown``)."""

    def __init__(self, machine, call_costs: NvmlCallCosts | None = None) -> None:
        self.machine = machine
        self.call_costs = call_costs or NvmlCallCosts()
        self._initialized = True

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        self._initialized = False

    def __enter__(self) -> "NvmlSession":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def _check(self) -> None:
        if not self._initialized:
            raise NvmlError("NVML_ERROR_UNINITIALIZED", "session is shut down")

    def _spend(self, kind: str = "query") -> None:
        self.machine.host.busy(self.call_costs.sample(self.machine.host.rng, kind))

    # ------------------------------------------------------------------
    def device_count(self) -> int:
        self._check()
        self._spend()
        return len(self.machine.devices)

    def device_get_handle_by_index(self, index: int) -> "NvmlDeviceHandle":
        self._check()
        self._spend()
        if not 0 <= index < len(self.machine.devices):
            raise NvmlError(
                "NVML_ERROR_INVALID_ARGUMENT", f"no device at index {index}"
            )
        return NvmlDeviceHandle(self, self.machine.devices[index])


class NvmlDeviceHandle:
    """Handle to one GPU, exposing the management calls the tool needs."""

    def __init__(self, session: NvmlSession, device: GpuDevice) -> None:
        self.session = session
        self.device = device

    # -- identity ------------------------------------------------------
    def name(self) -> str:
        self.session._check()
        self.session._spend()
        return self.device.spec.name

    def driver_version(self) -> str:
        self.session._check()
        self.session._spend()
        return self.device.spec.driver_version

    # -- clocks --------------------------------------------------------
    def supported_memory_clocks(self) -> tuple[float, ...]:
        """Memory P-state ladder, descending (NVML order)."""
        self.session._check()
        self.session._spend()
        return self.device.spec.supported_memory_clocks_mhz

    def supported_graphics_clocks(
        self, memory_clock_mhz: float | None = None
    ) -> tuple[float, ...]:
        """SM clock ladder for a memory clock, descending (NVML order)."""
        self.session._check()
        self.session._spend()
        spec = self.device.spec
        if memory_clock_mhz is not None:
            try:
                spec.validate_memory_clock(memory_clock_mhz)
            except ConfigError:
                raise NvmlError(
                    "NVML_ERROR_INVALID_ARGUMENT",
                    f"unsupported memory clock {memory_clock_mhz} MHz",
                ) from None
        return spec.supported_clocks_mhz

    def set_memory_locked_clocks(
        self, min_mhz: float, max_mhz: float
    ) -> TransitionRecord | None:
        """Lock the memory clock (``nvmlDeviceSetMemoryLockedClocks``)."""
        self.session._check()
        if min_mhz > max_mhz:
            raise NvmlError(
                "NVML_ERROR_INVALID_ARGUMENT",
                f"min {min_mhz} MHz exceeds max {max_mhz} MHz",
            )
        self.session._spend("set")
        return self.device.set_memory_locked_clocks(max_mhz)

    def reset_memory_locked_clocks(self) -> None:
        self.session._check()
        self.session._spend("set")
        self.device.reset_memory_locked_clocks()

    def set_gpu_locked_clocks(
        self, min_mhz: float, max_mhz: float
    ) -> TransitionRecord | None:
        """Lock the SM clock range (``nvmlDeviceSetGpuLockedClocks``).

        The methodology always locks a single frequency
        (``min == max``); the returned ground-truth record is simulator
        introspection unavailable on real hardware (may be ``None`` when
        the device is idle).
        """
        self.session._check()
        if min_mhz > max_mhz:
            raise NvmlError(
                "NVML_ERROR_INVALID_ARGUMENT",
                f"min {min_mhz} MHz exceeds max {max_mhz} MHz",
            )
        self.session._spend("set")
        return self.device.set_locked_clocks(max_mhz)

    def reset_gpu_locked_clocks(self) -> None:
        self.session._check()
        self.session._spend("set")
        self.device.reset_locked_clocks()

    def clock_info_sm_mhz(self) -> float:
        self.session._check()
        self.session._spend()
        return self.device.current_sm_clock_mhz()

    def clock_info_mem_mhz(self) -> float:
        self.session._check()
        self.session._spend()
        return self.device.current_memory_clock_mhz()

    # -- power limits --------------------------------------------------
    def supported_power_limits_w(self) -> tuple[float, ...]:
        """Settable power-limit ladder in watts, descending."""
        self.session._check()
        self.session._spend()
        return self.device.spec.supported_power_limits_w

    def set_power_limit(self, limit_w: float) -> TransitionRecord | None:
        """Set the board power limit
        (``nvmlDeviceSetPowerManagementLimit``).

        The returned ground-truth record is simulator introspection
        unavailable on real hardware; the new limit is enforced only after
        the power controller's re-target latency.
        """
        self.session._check()
        if limit_w <= 0:
            raise NvmlError(
                "NVML_ERROR_INVALID_ARGUMENT",
                f"power limit must be positive, got {limit_w} W",
            )
        self.session._spend("set")
        return self.device.set_power_limit(limit_w)

    def reset_power_limit(self) -> None:
        """Return the power limit to the TDP default."""
        self.session._check()
        self.session._spend("set")
        self.device.reset_power_limit()

    def power_limit_w(self) -> float:
        """Requested power limit (``nvmlDeviceGetPowerManagementLimit``)."""
        self.session._check()
        self.session._spend()
        return self.device.current_power_limit_w()

    def enforced_power_limit_w(self) -> float:
        """Limit currently enforced (``nvmlDeviceGetEnforcedPowerLimit``)."""
        self.session._check()
        self.session._spend()
        return self.device.enforced_power_limit_w()

    # -- sensors -------------------------------------------------------
    def current_clocks_throttle_reasons(self) -> ThrottleReasons:
        self.session._check()
        self.session._spend()
        return self.device.throttle_reasons()

    def temperature_c(self) -> float:
        self.session._check()
        self.session._spend()
        return self.device.temperature_c()

    def power_usage_w(self) -> float:
        self.session._check()
        self.session._spend()
        return self.device.power_usage_w()

    def total_energy_consumption_j(self) -> float:
        """Board energy since driver load
        (``nvmlDeviceGetTotalEnergyConsumption``)."""
        self.session._check()
        self.session._spend()
        return self.device.total_energy_j()
