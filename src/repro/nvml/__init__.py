"""NVML-like management API over the simulated GPUs.

Mirrors the NVML entry points the LATEST tool uses (paper Sec. I, VI):
device handles, supported graphics clocks, GPU locked clocks, throttle
reasons, temperature and power queries.  Every call consumes realistic
CPU-side driver time — which matters, because the switching latency as
defined by the paper *includes* the driver call issued from the CPU.
"""

from repro.nvml.api import NvmlDeviceHandle, NvmlSession
from repro.gpusim.thermal import ThrottleReasons

__all__ = ["NvmlSession", "NvmlDeviceHandle", "ThrottleReasons"]
