"""Thermal and power model with NVML-style throttle reasons.

The methodology must survive two hardware self-defence mechanisms the paper
calls out explicitly (Sec. VI): *thermal* throttling — handled by discarding
the latest measurements and backing off for ten seconds — and *power*
throttling — which makes a frequency pair unmeasurable and skips it.

The model is a first-order thermal RC circuit: the die temperature relaxes
exponentially toward ``ambient + power * resistance`` with time constant
``tau``.  Power is a convex function of SM frequency under load plus an
idle floor.  Crossing the slowdown temperature raises ``SW_THERMAL`` and
caps the SM clock; exceeding the board power limit raises ``SW_POWER_CAP``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.gpusim.spec import GpuSpec

__all__ = ["ThrottleReasons", "ThermalModel", "ThermalState"]


class ThrottleReasons(enum.IntFlag):
    """Bitmask mirroring ``nvmlClocksThrottleReasons``."""

    NONE = 0x0
    GPU_IDLE = 0x1
    APPLICATIONS_CLOCKS_SETTING = 0x2
    SW_POWER_CAP = 0x4
    HW_SLOWDOWN = 0x8
    SYNC_BOOST = 0x10
    SW_THERMAL = 0x20
    HW_THERMAL = 0x40
    HW_POWER_BRAKE = 0x80


@dataclass
class ThermalState:
    """Mutable thermal bookkeeping for one device."""

    temperature_c: float
    last_update: float
    reasons: ThrottleReasons = ThrottleReasons.NONE


@dataclass
class ThermalModel:
    """First-order thermal RC model bound to a :class:`GpuSpec`.

    Parameters
    ----------
    spec:
        Device whose TDP/temperature envelope applies.
    ambient_c:
        Inlet temperature.  The paper's Karolina experiments only analysed
        front-row GPUs "to avoid thermal impact"; raising this reproduces
        the back-row situation.
    resistance_c_per_w:
        Steady-state degrees above ambient per watt dissipated.
    tau_s:
        Thermal time constant of die + heatsink.
    power_limit_w:
        Board power limit; ``None`` uses the spec TDP.
    enabled:
        When False the device stays at ambient and never throttles — the
        default for statistical experiments, matching the paper's choice of
        thermally unconstrained GPUs.
    """

    spec: GpuSpec
    ambient_c: float = 30.0
    resistance_c_per_w: float = 0.115
    tau_s: float = 35.0
    power_limit_w: float | None = None
    enabled: bool = False
    #: share of the dynamic power band attributed to the memory subsystem;
    #: scales roughly linearly with the memory clock around the reference
    memory_power_fraction: float = 0.18

    def __post_init__(self) -> None:
        if self.power_limit_w is None:
            self.power_limit_w = self.spec.tdp_watts

    # ------------------------------------------------------------------
    def initial_state(self, t: float) -> ThermalState:
        return ThermalState(temperature_c=self.ambient_c, last_update=t)

    def power_watts(
        self, freq_mhz: float, load: float, mem_freq_mhz: float | None = None
    ) -> float:
        """Board power at ``freq_mhz`` under fractional SM ``load``.

        Dynamic power scales ~ f * V(f)^2; with the near-linear V-f curves
        of these parts that is well approximated by f^2.4 normalized to TDP
        at the maximum clock.  ``mem_freq_mhz`` (when given and away from
        the reference memory clock) adds the memory subsystem's roughly
        linear clock sensitivity: downclocked memory returns power to the
        budget, overclocked memory spends it.  At the reference clock the
        term is skipped outright, so single-memory-clock campaigns see
        bit-identical power and energy numbers.
        """
        f_rel = freq_mhz / self.spec.max_sm_frequency_mhz
        dynamic = (self.spec.tdp_watts - self.spec.idle_power_watts) * (
            f_rel**2.4
        )
        power = self.spec.idle_power_watts + load * dynamic
        if (
            mem_freq_mhz is not None
            and mem_freq_mhz != self.spec.memory_frequency_mhz
        ):
            mem_rel = mem_freq_mhz / self.spec.memory_frequency_mhz
            delta = (
                self.memory_power_fraction
                * (self.spec.tdp_watts - self.spec.idle_power_watts)
                * (mem_rel - 1.0)
            )
            power = max(power + delta, 0.2 * self.spec.idle_power_watts)
        return power

    def steady_temperature(self, power_w: float) -> float:
        return self.ambient_c + self.resistance_c_per_w * power_w

    def advance(
        self,
        state: ThermalState,
        t: float,
        freq_mhz: float,
        load: float,
        mem_freq_mhz: float | None = None,
    ) -> ThermalState:
        """Evolve ``state`` to time ``t`` under constant (freq, load)."""
        dt = t - state.last_update
        if dt < 0:
            raise ValueError("thermal state cannot move backwards in time")
        if not self.enabled:
            state.last_update = t
            state.reasons = ThrottleReasons.NONE
            return state
        power = self.power_watts(freq_mhz, load, mem_freq_mhz)
        t_inf = self.steady_temperature(power)
        decay = math.exp(-dt / self.tau_s)
        state.temperature_c = t_inf + (state.temperature_c - t_inf) * decay
        state.last_update = t

        reasons = ThrottleReasons.NONE
        if state.temperature_c >= self.spec.slowdown_temp_c:
            reasons |= ThrottleReasons.SW_THERMAL
        if power >= self.power_limit_w:
            reasons |= ThrottleReasons.SW_POWER_CAP
        state.reasons = reasons
        return state

    def thermal_cap_mhz(self, state: ThermalState) -> float | None:
        """SM clock cap while thermally throttled, else ``None``."""
        if not self.enabled:
            return None
        over = state.temperature_c - self.spec.slowdown_temp_c
        if over < 0:
            return None
        # ~3 ladder steps of derating per degree over the slowdown point.
        derate = min(0.5, 0.02 * (1.0 + over))
        return self.spec.max_sm_frequency_mhz * (1.0 - derate)

    def sustainable_clock_mhz(
        self, limit_w: "float | np.ndarray", load: float = 1.0
    ) -> "float | np.ndarray":
        """Highest SM clock whose board power stays within ``limit_w``.

        The pure inversion of the ``f^2.4`` dynamic-power model, clipped to
        the maximum SM clock; independent of :attr:`enabled` and of the
        board's own :attr:`power_limit_w`, so the power-cap measurement
        axis can map any requested limit to the clock it enforces.
        Accepts an array of limits (vectorized for segment folding).
        """
        limit_w = np.asarray(limit_w, dtype=np.float64)
        idle, tdp = self.spec.idle_power_watts, self.spec.tdp_watts
        budget = np.maximum(0.0, (limit_w - idle) / max(load, 1e-9))
        f_rel = (budget / max(tdp - idle, 1e-9)) ** (1.0 / 2.4)
        capped = self.spec.max_sm_frequency_mhz * np.minimum(1.0, f_rel)
        return capped if capped.ndim else float(capped)

    def power_cap_mhz(self, freq_mhz: float, load: float) -> float | None:
        """Highest sustainable clock if ``freq_mhz`` exceeds the power limit."""
        if not self.enabled or self.power_watts(freq_mhz, load) < self.power_limit_w:
            return None
        return self.sustainable_clock_mhz(self.power_limit_w, load)
