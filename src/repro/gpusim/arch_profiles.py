"""Calibrated per-architecture switching-latency profiles.

Each profile encodes the *shape* of the paper's published results as
ground-truth mixture distributions (see DESIGN.md, "Calibration targets"):

* **A100 SXM-4** — tight unimodal pairs (~96 % single-cluster); best case
  4.4-6.0 ms; worst case 7-23 ms, elevated (~20-22 ms) when decreasing to
  target frequencies <= 1020 MHz (Table II worst max: 1125->795 MHz).
* **GH200** — best case mostly 5-6.7 ms; pathological *target* bands around
  1170/1260 MHz and 1875 MHz with discrete cluster levels reaching 477 ms
  (Table II worst max: 1095->1260 MHz); unstable *initial* frequencies near
  1410 and 1770 MHz that add a ~200 ms mode; up to five clusters per pair
  (~85 % single-cluster).
* **RTX Quadro 6000** — banded by target frequency: mid-band targets
  (1020-1500 MHz) sit on a tight ~136 ms plateau, targets near 930/990 MHz
  on a ~237 ms plateau (absolute max ~350 ms), band edges are fast
  (~15-25 ms), and the 1650->1560 MHz pair is near-instant (best case
  0.56 ms); ~70 % single-cluster and the most multimodal violins.

Pair-level structure (mode presence, weights, tail scale) comes from a
deterministic RNG keyed on the pair alone, so the banded heatmap pattern is
a stable property of the simulated hardware.  A second RNG keyed on the
device serial applies small unit-to-unit perturbations, reproducing the
manufacturing variability of paper Sec. VII-C.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.latency_model import ModeSpec, PairLatencyModel, pair_rng

__all__ = [
    "A100Profile",
    "GH200Profile",
    "MemoryLatencyProfile",
    "PowerCapLatencyProfile",
    "RtxQuadro6000Profile",
    "profile_for",
]

_MS = 1e-3


@dataclass(frozen=True)
class _UnitPerturbation:
    """Small multiplicative unit-to-unit deviations for one (unit, pair)."""

    base_factor: float
    tail_factor: float

    @classmethod
    def sample(
        cls,
        arch: str,
        unit_seed: int,
        init_mhz: float,
        target_mhz: float,
        base_rel: float,
        tail_rel: float,
        slow_pair_prob: float = 0.03,
    ) -> "_UnitPerturbation":
        rng = pair_rng(arch + "/unit", unit_seed, init_mhz, target_mhz)
        base = 1.0 + base_rel * float(rng.standard_normal())
        tail = 1.0 + tail_rel * float(rng.standard_normal())
        if rng.random() < slow_pair_prob:
            # A unit-specific slow pair: the source of the large worst-case
            # ranges visible in paper Fig. 8.
            tail *= 1.0 + float(rng.uniform(0.5, 1.3))
        return cls(
            base_factor=float(np.clip(base, 0.9, 1.1)),
            tail_factor=float(np.clip(tail, 0.5, 3.0)),
        )


class MemoryLatencyProfile:
    """Memory-domain transition latencies derived from an SM arch profile.

    Memory-clock changes retrain the DRAM interface, which is one to two
    orders of magnitude slower than an SM PLL relock; each architecture
    profile supplies the retraining median through
    ``memory_switch_median_s`` / ``memory_switch_sigma_log``.  Pair-level
    structure is seeded from a distinct namespace (``<arch>/memory``) so
    memory pairs can never alias an SM pair with numerically identical
    frequencies in the per-device model caches.
    """

    def __init__(self, base) -> None:
        self.base = base
        self.name = f"{base.name}/memory"
        self.bus_delay_median_s = base.bus_delay_median_s
        self.bus_delay_sigma_log = base.bus_delay_sigma_log
        # Unused in practice (the memory domain is always powered), kept
        # for the ArchLatencyProfile protocol.
        self.wakeup_median_s = base.wakeup_median_s
        self.wakeup_sigma_log = base.wakeup_sigma_log

    def pair_model(
        self, init_mhz: float, target_mhz: float, unit_seed: int
    ) -> PairLatencyModel:
        srng = pair_rng(self.name, 0, init_mhz, target_mhz)
        unit = _UnitPerturbation.sample(
            self.name, unit_seed, init_mhz, target_mhz,
            base_rel=0.02, tail_rel=0.12,
        )
        # Every arch profile must define its retraining parameters; a
        # missing attribute should fail loudly, not get a generic default.
        median = self.base.memory_switch_median_s
        sigma = self.base.memory_switch_sigma_log
        base = median * (1.0 + 0.15 * float(srng.uniform(-1.0, 1.0)))
        # Retraining cost grows with the relative clock distance.
        base *= 1.0 + 0.6 * abs(target_mhz - init_mhz) / max(init_mhz, target_mhz)
        base *= unit.base_factor
        tail_scale = 0.2 * median * (0.5 + float(srng.beta(2.0, 2.0)))
        tail_scale *= unit.tail_factor
        return PairLatencyModel(
            modes=(ModeSpec(median_s=base, sigma_log=sigma, weight=1.0),),
            tail_shape=2.0,
            tail_scale_s=tail_scale,
            outlier_prob=0.008,
            outlier_scale_s=0.05,
            outlier_floor_s=0.03,
        )


class PowerCapLatencyProfile:
    """Power-limit transition latencies derived from an SM arch profile.

    Setting a board power limit is a driver write to the power
    microcontroller followed by a firmware re-target of the sustainable
    clock — slower than an SM PLL relock (the controller integrates power
    over its sensing window before committing the new cap) but much faster
    than DRAM retraining.  Each architecture profile supplies the
    re-target median through ``power_cap_switch_median_s`` /
    ``power_cap_switch_sigma_log``.  Pair structure is seeded from a
    distinct namespace (``<arch>/powercap``) so power-limit pairs can
    never alias SM or memory pairs with numerically identical values in
    the per-device model caches.
    """

    def __init__(self, base) -> None:
        self.base = base
        self.name = f"{base.name}/powercap"
        self.bus_delay_median_s = base.bus_delay_median_s
        self.bus_delay_sigma_log = base.bus_delay_sigma_log
        # Unused in practice (the power domain is always powered), kept
        # for the ArchLatencyProfile protocol.
        self.wakeup_median_s = base.wakeup_median_s
        self.wakeup_sigma_log = base.wakeup_sigma_log

    def pair_model(
        self, init_w: float, target_w: float, unit_seed: int
    ) -> PairLatencyModel:
        srng = pair_rng(self.name, 0, init_w, target_w)
        unit = _UnitPerturbation.sample(
            self.name, unit_seed, init_w, target_w,
            base_rel=0.03, tail_rel=0.15,
        )
        median = self.base.power_cap_switch_median_s
        sigma = self.base.power_cap_switch_sigma_log
        base = median * (1.0 + 0.20 * float(srng.uniform(-1.0, 1.0)))
        # Tightening the cap (lowering the limit) is enforced promptly by
        # the controller; raising it waits for the sensing window to
        # confirm headroom before releasing the clock.
        if target_w > init_w:
            base *= 1.0 + 0.5 * float(srng.uniform(0.6, 1.0))
        # Larger relative limit distance -> larger clock re-target.
        base *= 1.0 + 0.4 * abs(target_w - init_w) / max(init_w, target_w)
        base *= unit.base_factor
        tail_scale = 0.25 * median * (0.5 + float(srng.beta(2.0, 2.0)))
        tail_scale *= unit.tail_factor
        return PairLatencyModel(
            modes=(ModeSpec(median_s=base, sigma_log=sigma, weight=1.0),),
            tail_shape=2.2,
            tail_scale_s=tail_scale,
            outlier_prob=0.008,
            outlier_scale_s=0.04,
            outlier_floor_s=0.02,
        )


class A100Profile:
    """Ampere A100 SXM-4 latency behaviour."""

    name = "A100 SXM-4"
    bus_delay_median_s = 2.2e-4
    bus_delay_sigma_log = 0.25
    wakeup_median_s = 0.12
    wakeup_sigma_log = 0.35
    #: HBM2 retraining: fast relative to GDDR
    memory_switch_median_s = 9e-3
    memory_switch_sigma_log = 0.10
    #: power-microcontroller re-target after a limit write
    power_cap_switch_median_s = 22e-3
    power_cap_switch_sigma_log = 0.14

    def pair_model(
        self, init_mhz: float, target_mhz: float, unit_seed: int
    ) -> PairLatencyModel:
        srng = pair_rng(self.name, 0, init_mhz, target_mhz)
        unit = _UnitPerturbation.sample(
            self.name, unit_seed, init_mhz, target_mhz,
            base_rel=0.010, tail_rel=0.10,
        )
        decreasing = target_mhz < init_mhz
        low_target = target_mhz <= 1020.0

        base = (4.35 if decreasing else 4.75) * _MS
        base *= 1.0 + 0.030 * float(srng.uniform(-1.0, 1.0))
        base *= unit.base_factor

        # Worst-case tail: decreasing to a low target is the slow corner of
        # the A100 heatmap (paper Fig. 3c / Table II).  The tail is *dense*
        # (gamma shape 3): latencies spread continuously from the base to
        # the worst case, which is why A100 pairs stay single-cluster under
        # Algorithm 3 (~96 %, Sec. VII-B) — sparse far tails would
        # fragment into spurious clusters.
        tail0 = (2.1 if (decreasing and low_target) else 1.45) * _MS
        tail_scale = tail0 * (0.5 + 0.9 * float(srng.beta(2.0, 2.0)))
        tail_scale *= unit.tail_factor

        modes = [ModeSpec(median_s=base, sigma_log=0.035, weight=1.0)]
        if srng.random() < 0.04:
            # The rare multi-cluster A100 pair (~4 % of pairs).
            modes.append(
                ModeSpec(
                    median_s=base + float(srng.uniform(5.0, 9.0)) * _MS,
                    sigma_log=0.05,
                    weight=0.12,
                )
            )
        return PairLatencyModel(
            modes=tuple(modes),
            tail_shape=3.0,
            tail_scale_s=tail_scale,
            outlier_prob=0.012,
            outlier_scale_s=0.045,
            outlier_floor_s=0.025,
        )


class GH200Profile:
    """Grace-Hopper GH200 latency behaviour."""

    name = "GH200"
    bus_delay_median_s = 1.2e-4  # NVLink-C2C attach: fastest command path
    bus_delay_sigma_log = 0.25
    wakeup_median_s = 0.10
    wakeup_sigma_log = 0.35
    memory_switch_median_s = 7e-3  # HBM3
    memory_switch_sigma_log = 0.10
    power_cap_switch_median_s = 16e-3
    power_cap_switch_sigma_log = 0.12

    #: target-frequency bands with discrete high-latency cluster levels
    SPECIAL_TARGET_BANDS: tuple[tuple[float, float, str], ...] = (
        (1155.0, 1250.0, "moderate"),  # the 1170 MHz column
        (1251.0, 1290.0, "strong"),    # the 1260/1275 MHz columns
        (1860.0, 1896.0, "strong"),    # the 1875 MHz column
    )
    #: initial-frequency bands that add a ~200 ms mode on many targets
    UNSTABLE_INIT_BANDS: tuple[tuple[float, float], ...] = (
        (1400.0, 1425.0),
        (1755.0, 1785.0),
    )
    #: menu of discrete cluster levels (seconds); strong special pairs draw
    #: 1-4 of these, producing the up-to-five-cluster pairs of Fig. 5
    CLUSTER_LEVEL_MENU: tuple[tuple[float, float], ...] = (
        (0.045, 0.075),
        (0.100, 0.160),
        (0.200, 0.310),
        (0.395, 0.480),
    )

    def _target_special(self, init_mhz: float, target_mhz: float) -> str | None:
        for lo, hi, kind in self.SPECIAL_TARGET_BANDS:
            if lo <= target_mhz <= hi:
                if kind == "moderate" and init_mhz > 1170.0:
                    return None  # the 1170 column is only slow from low inits
                return kind
        return None

    def _init_unstable(self, init_mhz: float) -> bool:
        return any(lo <= init_mhz <= hi for lo, hi in self.UNSTABLE_INIT_BANDS)

    def pair_model(
        self, init_mhz: float, target_mhz: float, unit_seed: int
    ) -> PairLatencyModel:
        srng = pair_rng(self.name, 0, init_mhz, target_mhz)
        unit = _UnitPerturbation.sample(
            self.name, unit_seed, init_mhz, target_mhz,
            base_rel=0.012, tail_rel=0.12,
        )

        base = 5.1 * _MS + (0.55 * _MS if init_mhz <= 1170.0 else 0.0)
        base *= 1.0 + 0.06 * float(srng.uniform(-1.0, 1.0))
        base *= unit.base_factor

        # Dense tail (see the A100 profile note on cluster structure).
        tail_scale = 1.5 * _MS * (0.5 + 1.0 * float(srng.beta(2.0, 2.0)))
        tail_scale *= unit.tail_factor

        modes = [ModeSpec(median_s=base, sigma_log=0.030, weight=1.0)]

        special = self._target_special(init_mhz, target_mhz)
        if special is not None:
            strong = special == "strong"
            n_levels = int(srng.integers(1, 5)) if strong else 1
            level_ids = srng.choice(
                len(self.CLUSTER_LEVEL_MENU),
                size=min(n_levels, len(self.CLUSTER_LEVEL_MENU)),
                replace=False,
            )
            for lid in np.sort(level_ids):
                lo, hi = self.CLUSTER_LEVEL_MENU[int(lid)]
                modes.append(
                    ModeSpec(
                        median_s=float(srng.uniform(lo, hi)),
                        sigma_log=0.04,
                        weight=float(srng.uniform(0.06, 0.18)),
                    )
                )
            if strong and srng.random() < 0.45:
                # Some special pairs have no fast mode at all: their best
                # case is already tens of ms (e.g. 705->1170 min = 62.7 ms).
                modes[0] = ModeSpec(
                    median_s=float(srng.uniform(0.045, 0.105)),
                    sigma_log=0.05,
                    weight=modes[0].weight,
                )
            if strong and srng.random() < 0.30:
                # The rare extreme mode behind the 477 ms Table II maximum.
                modes.append(
                    ModeSpec(
                        median_s=float(srng.uniform(0.40, 0.48)),
                        sigma_log=0.03,
                        weight=0.02,
                    )
                )

        if self._init_unstable(init_mhz) and srng.random() < 0.5:
            modes.append(
                ModeSpec(
                    median_s=float(srng.uniform(0.19, 0.215)),
                    sigma_log=0.035,
                    weight=0.35,
                )
            )

        return PairLatencyModel(
            modes=tuple(modes),
            tail_shape=2.8,
            tail_scale_s=tail_scale,
            outlier_prob=0.010,
            outlier_scale_s=0.08,
            outlier_floor_s=0.05,
        )


class RtxQuadro6000Profile:
    """Turing RTX Quadro 6000 latency behaviour (the most erratic device)."""

    name = "RTX Quadro 6000"
    bus_delay_median_s = 1.0e-4
    bus_delay_sigma_log = 0.35
    wakeup_median_s = 0.20
    wakeup_sigma_log = 0.40
    memory_switch_median_s = 55e-3  # GDDR6 link retraining is slow
    memory_switch_sigma_log = 0.18
    #: Turing's power controller re-targets on a coarser sensing window
    power_cap_switch_median_s = 45e-3
    power_cap_switch_sigma_log = 0.22

    def pair_model(
        self, init_mhz: float, target_mhz: float, unit_seed: int
    ) -> PairLatencyModel:
        srng = pair_rng(self.name, 0, init_mhz, target_mhz)
        unit = _UnitPerturbation.sample(
            self.name, unit_seed, init_mhz, target_mhz,
            base_rel=0.015, tail_rel=0.15,
        )
        t = target_mhz
        modes: list[ModeSpec]
        tail_shape, tail_scale = 1.4, 2.2 * _MS * (0.3 + float(srng.beta(2, 2)))

        fast_median = (15.0 + 6.0 * float(srng.random())) * _MS
        mid_median = (135.0 + 3.0 * float(srng.uniform(-1, 1))) * _MS
        slow_median = (237.0 + 2.5 * float(srng.uniform(-1, 1))) * _MS

        if t <= 870.0:
            # Low-edge targets: fast and fairly tight (14-27 ms maxima).
            modes = [ModeSpec(fast_median, 0.06, 1.0)]
        elif t <= 945.0:
            # The 930 MHz column alternates by *initial* frequency in the
            # paper's Fig. 3d: roughly half the rows sit on the ~237 ms
            # plateau (990, 1110, 1290, ...), the other half are fast
            # (750, 810, 1050, 1170, ...).  A pair-level coin reproduces
            # the alternation.
            if srng.random() < 0.5:
                modes = [ModeSpec(slow_median, 0.008, 0.85)]
                if srng.random() < 0.4:
                    modes.append(ModeSpec(fast_median, 0.06, 0.10))
            else:
                modes = [ModeSpec(fast_median, 0.06, 0.95)]
                if srng.random() < 0.3:
                    modes.append(ModeSpec(slow_median, 0.008, 0.05))
            tail_scale *= 0.4
        elif t <= 1015.0:
            # The 990 MHz column: uniformly on the ~237 ms plateau.
            modes = [ModeSpec(slow_median, 0.008, 0.80)]
            if srng.random() < 0.45:
                modes.append(ModeSpec(mid_median, 0.01, 0.10))
            if srng.random() < 0.35:
                modes.append(ModeSpec(fast_median, 0.06, 0.10))
            if srng.random() < 0.20:
                # The 350 ms extreme of Table II (930->990 MHz).
                modes.append(ModeSpec(float(srng.uniform(0.33, 0.355)), 0.01, 0.03))
            tail_scale *= 0.4
        elif t <= 1425.0:
            # Mid-band plateau: tight ~136 ms.
            modes = [ModeSpec(mid_median, 0.006, 0.85)]
            if srng.random() < 0.35:
                modes.append(ModeSpec(fast_median, 0.06, 0.10))
            if srng.random() < 0.20:
                modes.append(ModeSpec(slow_median, 0.008, 0.06))
            if srng.random() < 0.10:
                modes.append(
                    ModeSpec(float(srng.uniform(0.030, 0.070)), 0.05, 0.08)
                )
            tail_scale *= 0.3
        elif t <= 1510.0:
            # 1440/1470 MHz: plateau with wider spread (126-190 ms).
            modes = [ModeSpec(mid_median * float(srng.uniform(0.95, 1.35)), 0.05, 0.85)]
            if srng.random() < 0.4:
                modes.append(ModeSpec(fast_median, 0.07, 0.12))
            tail_scale *= 0.5
        elif t <= 1620.0:
            # 1560 MHz: mid plateau from afar, near-instant from 1650 MHz.
            if init_mhz >= 1620.0:
                modes = [ModeSpec(3.0 * _MS, 0.60, 1.0)]
                tail_scale = 2.0 * _MS
            else:
                modes = [ModeSpec(mid_median, 0.05, 0.7)]
                if srng.random() < 0.5:
                    modes.append(ModeSpec(fast_median, 0.3, 0.3))
                tail_scale *= 0.5
        else:
            # High-edge targets (>= 1650 MHz): fast, tail to ~39 ms.
            modes = [ModeSpec((17.0 + 4.0 * float(srng.random())) * _MS, 0.07, 1.0)]
            tail_scale *= 1.4

        modes[0] = ModeSpec(
            modes[0].median_s * unit.base_factor,
            modes[0].sigma_log,
            modes[0].weight,
        )
        return PairLatencyModel(
            modes=tuple(modes),
            tail_shape=tail_shape,
            tail_scale_s=tail_scale * unit.tail_factor,
            outlier_prob=0.020,
            outlier_scale_s=0.12,
            outlier_floor_s=0.08,
        )


_PROFILES = {
    "Turing": RtxQuadro6000Profile,
    "Ampere": A100Profile,
    "Hopper": GH200Profile,
}


def profile_for(architecture: str):
    """Latency profile instance for a :class:`~repro.gpusim.spec.GpuSpec` arch."""
    try:
        return _PROFILES[architecture]()
    except KeyError:
        raise KeyError(
            f"no latency profile for architecture {architecture!r}; "
            f"known: {sorted(_PROFILES)}"
        ) from None
