"""GPU hardware specifications (paper Table I).

A :class:`GpuSpec` carries everything the simulator and the NVML layer need:
the SM count, the supported SM clock ladder for the default memory clock,
the idle clock the device falls back to without load, and the device timer
granularity.  Since the core×memory extension it also carries the supported
*memory*-clock ladder: ``memory_frequency_mhz`` stays the reference (boot)
memory clock the paper's Table I reports, and ``memory_clocks_mhz`` lists
the lockable memory P-states (defaulting to just the reference clock).

The three concrete specs reproduce Table I of the paper:

=====================  ============  ==========  ==========
Model                  RTX Quadro    A100 SXM4   GH200
=====================  ============  ==========  ==========
Architecture           Turing        Ampere      Hopper
SM count               72            108         132
Memory clock [MHz]     7001          1215        2619
Max SM clock [MHz]     2100          1410        1980
Nominal SM clock       1440          1095        1980
Min SM clock [MHz]     300           210         345
SM clock steps         120           81          110
=====================  ============  ==========  ==========
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "GpuSpec",
    "RTX_QUADRO_6000",
    "A100_SXM4",
    "GH200",
    "GPU_MODELS",
    "lookup_spec",
]


@dataclass(frozen=True)
class GpuSpec:
    """Static description of a GPU model.

    Frequencies are in MHz to match NVML conventions; durations in seconds.
    """

    name: str
    architecture: str
    sm_count: int
    driver_version: str
    memory_frequency_mhz: float
    min_sm_frequency_mhz: float
    max_sm_frequency_mhz: float
    nominal_sm_frequency_mhz: float
    #: step count as reported in paper Table I (the generated ladder can
    #: differ by one entry: NVIDIA ladders are 15 MHz-stepped, and e.g. the
    #: RTX Quadro 6000's 300..2100 MHz span holds 121 steps while the paper
    #: reports 120)
    sm_frequency_steps: int
    idle_sm_frequency_mhz: float
    sm_frequency_step_mhz: float = 15.0
    timer_granularity_s: float = 1e-6
    # Thermal envelope
    tdp_watts: float = 300.0
    idle_power_watts: float = 45.0
    slowdown_temp_c: float = 86.0
    shutdown_temp_c: float = 95.0
    # Per-SM execution noise (fractional std-dev of per-iteration cycles)
    iteration_noise_rel: float = 0.002
    #: lockable memory clocks (P-states); empty means only the reference
    #: clock ``memory_frequency_mhz`` exists (the paper's fixed-memory setup)
    memory_clocks_mhz: tuple[float, ...] = ()
    #: settable board power limits in watts (``nvidia-smi -pl`` accepts a
    #: continuous range on real boards; campaigns sweep a discrete ladder
    #: of representative operating points).  Empty means only the TDP
    #: default exists and the power-cap measurement axis has nothing to
    #: sweep.
    power_limits_w: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.sm_count <= 0:
            raise ConfigError(f"{self.name}: sm_count must be positive")
        if not (
            self.min_sm_frequency_mhz
            <= self.nominal_sm_frequency_mhz
            <= self.max_sm_frequency_mhz
        ):
            raise ConfigError(f"{self.name}: inconsistent SM frequency range")
        if self.sm_frequency_steps < 2:
            raise ConfigError(f"{self.name}: need at least two frequency steps")
        if self.memory_frequency_mhz <= 0:
            raise ConfigError(f"{self.name}: memory clock must be positive")
        if any(f <= 0 for f in self.memory_clocks_mhz):
            raise ConfigError(f"{self.name}: memory ladder clocks must be positive")
        if any(w <= self.idle_power_watts for w in self.power_limits_w):
            # A limit at or below idle power inverts to a 0 MHz
            # sustainable clock — nothing could ever run under it (real
            # boards reject -pl values below their minimum for the same
            # reason).
            raise ConfigError(
                f"{self.name}: power limits must exceed the "
                f"{self.idle_power_watts:g} W idle power"
            )
        if any(w > self.tdp_watts for w in self.power_limits_w):
            raise ConfigError(
                f"{self.name}: power limits above the {self.tdp_watts:g} W "
                f"TDP are not settable"
            )

    @cached_property
    def supported_clocks_mhz(self) -> tuple[float, ...]:
        """The SM clock ladder, descending (NVML ordering).

        NVIDIA SM ladders step by 15 MHz; the ladder spans
        [min, max] inclusive, which reproduces every frequency appearing in
        the paper's heatmaps.  Cached: the DVFS layer consults the ladder
        on every locked-clocks request and ramp step.
        """
        ladder = np.arange(
            self.min_sm_frequency_mhz,
            self.max_sm_frequency_mhz + self.sm_frequency_step_mhz / 2,
            self.sm_frequency_step_mhz,
        )
        return tuple(float(f) for f in ladder[::-1])

    @cached_property
    def _clock_ladder_array(self) -> np.ndarray:
        return np.asarray(self.supported_clocks_mhz)

    @cached_property
    def _nearest_clock_memo(self) -> dict[float, float]:
        return {}

    def nearest_supported_clock(self, freq_mhz: float) -> float:
        """Snap ``freq_mhz`` to the closest ladder entry (memoized).

        The memo is bounded: ramp staircases query continuous random
        frequencies (near-zero hit rate), and the concrete specs are
        module-level singletons that live for the whole process.
        """
        memo = self._nearest_clock_memo
        nearest = memo.get(freq_mhz)
        if nearest is None:
            clocks = self._clock_ladder_array
            nearest = float(clocks[np.argmin(np.abs(clocks - freq_mhz))])
            if len(memo) >= 4096:
                memo.clear()
            memo[freq_mhz] = nearest
        return nearest

    def nearest_supported_clocks(self, freqs_mhz: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`nearest_supported_clock` for small batches.

        Same tie-breaking (first ladder entry at minimum distance), one
        argmin sweep instead of a Python call per frequency — used by the
        DVFS ramp scheduler.
        """
        clocks = self._clock_ladder_array
        freqs_mhz = np.asarray(freqs_mhz, dtype=np.float64)
        idx = np.abs(clocks[None, :] - freqs_mhz[:, None]).argmin(axis=1)
        return clocks[idx]

    def validate_clock(self, freq_mhz: float, tolerance_mhz: float = 0.5) -> float:
        """Return the ladder entry matching ``freq_mhz`` or raise.

        NVML rejects locked-clock requests outside the supported list; the
        simulated driver does the same so that methodology code cannot
        silently request impossible configurations.
        """
        nearest = self.nearest_supported_clock(freq_mhz)
        if abs(nearest - freq_mhz) > tolerance_mhz:
            raise ConfigError(
                f"{self.name}: {freq_mhz} MHz is not a supported SM clock "
                f"(nearest: {nearest} MHz)"
            )
        return nearest

    def frequency_subset(self, count: int) -> tuple[float, ...]:
        """An evenly spaced subset of the ladder, ascending.

        The paper evaluates "a specific subset of the full set of frequency
        pairs" per GPU; this helper picks ``count`` representative clocks.
        """
        if count < 2:
            raise ConfigError("subset needs at least two frequencies")
        clocks = np.asarray(self.supported_clocks_mhz)[::-1]  # ascending
        idx = np.linspace(0, len(clocks) - 1, count).round().astype(int)
        return tuple(float(c) for c in clocks[np.unique(idx)])

    # ------------------------------------------------------------------
    # memory-clock domain
    # ------------------------------------------------------------------
    @cached_property
    def supported_memory_clocks_mhz(self) -> tuple[float, ...]:
        """The memory clock ladder, descending (NVML ordering).

        Always contains the reference clock ``memory_frequency_mhz``; the
        other entries come from ``memory_clocks_mhz``.  Memory ladders are
        short, discrete P-state lists rather than 15 MHz staircases.
        """
        clocks = {float(self.memory_frequency_mhz)}
        clocks.update(float(f) for f in self.memory_clocks_mhz)
        return tuple(sorted(clocks, reverse=True))

    @cached_property
    def _memory_ladder_array(self) -> np.ndarray:
        return np.asarray(self.supported_memory_clocks_mhz)

    def nearest_supported_memory_clock(self, freq_mhz: float) -> float:
        """Snap ``freq_mhz`` to the closest memory-ladder entry."""
        clocks = self._memory_ladder_array
        return float(clocks[np.argmin(np.abs(clocks - freq_mhz))])

    def nearest_supported_memory_clocks(self, freqs_mhz: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`nearest_supported_memory_clock`."""
        clocks = self._memory_ladder_array
        freqs_mhz = np.asarray(freqs_mhz, dtype=np.float64)
        idx = np.abs(clocks[None, :] - freqs_mhz[:, None]).argmin(axis=1)
        return clocks[idx]

    def validate_memory_clock(
        self, freq_mhz: float, tolerance_mhz: float = 0.5
    ) -> float:
        """Return the memory-ladder entry matching ``freq_mhz`` or raise."""
        nearest = self.nearest_supported_memory_clock(freq_mhz)
        if abs(nearest - freq_mhz) > tolerance_mhz:
            raise ConfigError(
                f"{self.name}: {freq_mhz} MHz is not a supported memory clock "
                f"(nearest: {nearest} MHz)"
            )
        return nearest

    # ------------------------------------------------------------------
    # power-limit domain
    # ------------------------------------------------------------------
    @cached_property
    def supported_power_limits_w(self) -> tuple[float, ...]:
        """The settable power-limit ladder in watts, descending.

        Always contains the TDP (the boot/default limit); the remaining
        entries come from ``power_limits_w``.  Like memory P-states these
        are a short discrete list of operating points, not a staircase.
        """
        limits = {float(self.tdp_watts)}
        limits.update(float(w) for w in self.power_limits_w)
        return tuple(sorted(limits, reverse=True))

    @cached_property
    def _power_ladder_array(self) -> np.ndarray:
        return np.asarray(self.supported_power_limits_w)

    def nearest_supported_power_limit(self, limit_w: float) -> float:
        """Snap ``limit_w`` to the closest power-ladder entry."""
        limits = self._power_ladder_array
        return float(limits[np.argmin(np.abs(limits - limit_w))])

    def nearest_supported_power_limits(self, limits_w: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`nearest_supported_power_limit`."""
        limits = self._power_ladder_array
        limits_w = np.asarray(limits_w, dtype=np.float64)
        idx = np.abs(limits[None, :] - limits_w[:, None]).argmin(axis=1)
        return limits[idx]

    def validate_power_limit(
        self, limit_w: float, tolerance_w: float = 0.5
    ) -> float:
        """Return the power-ladder entry matching ``limit_w`` or raise."""
        nearest = self.nearest_supported_power_limit(limit_w)
        if abs(nearest - limit_w) > tolerance_w:
            raise ConfigError(
                f"{self.name}: {limit_w} W is not a supported power limit "
                f"(nearest: {nearest} W)"
            )
        return nearest


RTX_QUADRO_6000 = GpuSpec(
    name="RTX Quadro 6000",
    architecture="Turing",
    sm_count=72,
    driver_version="530.41.03",
    memory_frequency_mhz=7001.0,
    min_sm_frequency_mhz=300.0,
    max_sm_frequency_mhz=2100.0,
    nominal_sm_frequency_mhz=1440.0,
    sm_frequency_steps=120,
    idle_sm_frequency_mhz=300.0,
    tdp_watts=260.0,
    idle_power_watts=30.0,
    # GDDR6 exposes a real multi-entry memory ladder (nvidia-smi -q -d
    # SUPPORTED_CLOCKS on Turing Quadro parts).
    memory_clocks_mhz=(7001.0, 6251.0, 5001.0, 810.0, 405.0),
    # Representative -pl operating points within the board's settable
    # range; each entry below TDP caps the sustainable SM clock at a
    # distinct level, which is what the power-cap axis sweeps.
    power_limits_w=(260.0, 215.0, 175.0, 140.0),
)

A100_SXM4 = GpuSpec(
    name="A100 SXM-4",
    architecture="Ampere",
    sm_count=108,
    driver_version="550.54.15",
    memory_frequency_mhz=1215.0,
    min_sm_frequency_mhz=210.0,
    max_sm_frequency_mhz=1410.0,
    nominal_sm_frequency_mhz=1095.0,
    sm_frequency_steps=81,
    idle_sm_frequency_mhz=210.0,
    tdp_watts=400.0,
    idle_power_watts=55.0,
    # HBM2 boots locked at 1215 MHz; the lower entries model the reduced
    # P-states the 2-D core×memory campaigns sweep (paper Sec. VII names
    # the memory domain as the next measurement axis).
    memory_clocks_mhz=(1215.0, 810.0, 405.0),
    power_limits_w=(400.0, 330.0, 270.0, 220.0),
)

GH200 = GpuSpec(
    name="GH200",
    architecture="Hopper",
    sm_count=132,
    driver_version="545.23.08",
    memory_frequency_mhz=2619.0,
    min_sm_frequency_mhz=345.0,
    max_sm_frequency_mhz=1980.0,
    nominal_sm_frequency_mhz=1980.0,
    sm_frequency_steps=110,
    idle_sm_frequency_mhz=345.0,
    tdp_watts=700.0,
    idle_power_watts=75.0,
    memory_clocks_mhz=(2619.0, 1593.0, 810.0),
    power_limits_w=(700.0, 560.0, 450.0, 360.0),
)

GPU_MODELS: dict[str, GpuSpec] = {
    "rtx6000": RTX_QUADRO_6000,
    "rtx_quadro_6000": RTX_QUADRO_6000,
    "a100": A100_SXM4,
    "a100_sxm4": A100_SXM4,
    "gh200": GH200,
}


def lookup_spec(model: str) -> GpuSpec:
    """Resolve a user-facing model name to a :class:`GpuSpec`."""
    key = model.strip().lower().replace("-", "_").replace(" ", "_")
    try:
        return GPU_MODELS[key]
    except KeyError:
        raise ConfigError(
            f"unknown GPU model {model!r}; known: {sorted(set(GPU_MODELS))}"
        ) from None
