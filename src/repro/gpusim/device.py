"""The simulated GPU device.

Ties together the hardware clock (quantized ``%globaltimer`` domain), the
DVFS clock domain with its ground-truth latency model, the thermal/power
model, and the vectorized SM execution engine.

Execution model
---------------
Kernels launch asynchronously (the host keeps running) and are *finalized*
lazily: the per-iteration timestamps of a kernel can only be materialized
once every host action that might affect the SM frequency during its run is
known.  ``synchronize()`` — which the methodology always calls before
reading timestamps — finalizes all pending kernels and blocks the host
until the device drains.  This mirrors CUDA semantics: reading a device
buffer without synchronizing is an error here too.

Mid-kernel NVML traffic (frequency changes, throttle-reason polls) is
explicitly supported; it is the heart of the paper's phase two.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CudaError, SimulationError
from repro.gpusim.arch_profiles import (
    MemoryLatencyProfile,
    PowerCapLatencyProfile,
    profile_for,
)
from repro.gpusim.dvfs import (
    DvfsClockDomain,
    MemoryDomainSpec,
    PowerDomainSpec,
    TransitionRecord,
)
from repro.gpusim.energy import EnergyMeter
from repro.gpusim.latency_model import SwitchingLatencyModel
from repro.gpusim.sm import (
    DeviceTimestamps,
    KernelTimestamps,
    PendingIntegration,
    merge_cap_segments,
    merge_memory_segments,
    prepare_integration_from_boundaries,
    sample_iteration_cycles,
)
from repro.gpusim.spec import GpuSpec
from repro.gpusim.thermal import ThermalModel, ThermalState, ThrottleReasons
from repro.simtime.clock import HardwareClock, VirtualClock
from repro.trace import NULL_TRACER, Tracer

__all__ = ["KernelLaunchSpec", "KernelHandle", "GpuDevice"]

#: device-side delay between command submission and kernel start
_LAUNCH_QUEUE_DELAY_S = 3e-6
#: device-side epilogue after the last iteration retires
_KERNEL_EPILOGUE_S = 2e-6


@dataclass(frozen=True)
class KernelLaunchSpec:
    """Launch configuration of a microbenchmark kernel.

    ``sm_count`` limits how many SMs are simulated/recorded; ``None`` uses
    every SM of the device (the paper's tool records all cores; campaigns
    may subsample for speed without changing the methodology).
    """

    n_iterations: int
    cycles_per_iteration: float
    sm_count: int | None = None
    label: str = ""
    #: aggregate kernels model their total cycle cost with one draw per SM
    #: (CLT-matched to the per-iteration sum) and record no per-iteration
    #: timestamps — for filler/warm-load workloads nothing ever reads back
    aggregate: bool = False
    #: fraction of each iteration's cycle budget that is memory-bound; the
    #: kernel's iteration time responds to the memory clock through the
    #: roofline stall model (:func:`repro.gpusim.sm.memory_stall_factor`).
    #: Irrelevant while the memory clock sits at the spec reference.
    memory_intensity: float = 0.0

    def __post_init__(self) -> None:
        if self.n_iterations <= 0:
            raise CudaError(f"invalid iteration count {self.n_iterations}")
        if self.cycles_per_iteration <= 0:
            raise CudaError("cycles_per_iteration must be positive")
        if not 0.0 <= self.memory_intensity < 1.0:
            raise CudaError("memory_intensity must be in [0, 1)")


@dataclass
class KernelHandle:
    """Tracks one launched kernel through its lifecycle."""

    spec: KernelLaunchSpec
    t_submit: float
    seq: int
    t_start: float | None = None
    t_complete: float | None = None
    start_notified: bool = False
    #: deferred integration; the per-iteration boundaries materialize only
    #: when timestamps are actually read (filler kernels never are)
    deferred: PendingIntegration | None = field(default=None, repr=False)

    @property
    def finalized(self) -> bool:
        return self.t_complete is not None

    @property
    def timestamps(self) -> KernelTimestamps | None:
        """Per-iteration boundaries; materializes the deferred integration."""
        if self.deferred is None:
            return None
        return self.deferred.materialize()


class GpuDevice:
    """One simulated GPU bound to a machine's true timeline."""

    def __init__(
        self,
        spec: GpuSpec,
        clock: VirtualClock,
        rng: np.random.Generator,
        index: int = 0,
        unit_seed: int = 0,
        thermal: ThermalModel | None = None,
        profile=None,
        sm_start_stagger_s: float = 4e-6,
        idle_timeout_s: float = 0.050,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.spec = spec
        self.clock = clock
        self.rng = rng
        self.index = index
        self.unit_seed = unit_seed
        self.sm_start_stagger_s = sm_start_stagger_s
        self.tracer = tracer

        # The GPU timer domain: arbitrary power-on offset, ppm-scale drift,
        # ~1 us register refresh (paper footnote 1).
        self.gpu_clock = HardwareClock(
            clock,
            offset=float(rng.uniform(0.0, 1000.0)),
            drift=float(rng.normal(0.0, 2e-6)),
            granularity=spec.timer_granularity_s,
            name=f"gpu{index}-globaltimer",
        )

        self.profile = profile if profile is not None else profile_for(spec.architecture)
        self.latency_model = SwitchingLatencyModel(
            self.profile, unit_seed=unit_seed, rng=rng
        )
        self.dvfs = DvfsClockDomain(
            spec,
            self.latency_model,
            rng,
            idle_timeout_s=idle_timeout_s,
            start_time=clock.now,
        )
        # The memory clock domain: same state machine on the memory ladder,
        # always powered (memory holds its P-state without load).  It
        # shares the device RNG but draws from it only when a memory
        # transition is actually requested, so campaigns that never touch
        # the memory clock consume exactly the legacy draw sequence.
        self.mem_latency_model = SwitchingLatencyModel(
            MemoryLatencyProfile(self.profile), unit_seed=unit_seed, rng=rng
        )
        self.mem_dvfs = DvfsClockDomain(
            MemoryDomainSpec(spec),
            self.mem_latency_model,
            rng,
            idle_timeout_s=idle_timeout_s,
            start_time=clock.now,
            always_powered=True,
        )
        #: fast-path flag: no memory-clock request was ever issued, so the
        #: memory clock sits at the reference and cannot shape kernel
        #: timing, power, or thermals
        self._memory_static = True
        # The power-limit domain: the same state machine on the power-limit
        # ladder (watts stand in for MHz), always powered — limits persist
        # without load.  Its limit timeline maps onto SM clock caps through
        # the thermal model's sustainable-clock inversion.  It shares the
        # device RNG but draws only when a limit change is requested, so
        # campaigns that never touch the power limit consume exactly the
        # legacy draw sequence.
        self.power_latency_model = SwitchingLatencyModel(
            PowerCapLatencyProfile(self.profile), unit_seed=unit_seed, rng=rng
        )
        self.power_dvfs = DvfsClockDomain(
            PowerDomainSpec(spec),
            self.power_latency_model,
            rng,
            idle_timeout_s=idle_timeout_s,
            start_time=clock.now,
            always_powered=True,
        )
        #: fast-path flag: no power-limit request was ever issued, so the
        #: limit sits at the TDP default and cannot cap the SM clock
        self._power_static = True
        self.thermal = thermal if thermal is not None else ThermalModel(spec)
        self.thermal_state: ThermalState = self.thermal.initial_state(clock.now)
        # Thermal and power caps are tracked separately: a cool die must
        # not release a cap that exists because the locked clock exceeds
        # the board power budget.
        self._thermal_cap_mhz: float | None = None
        self._power_cap_mhz: float | None = None
        self._cap_applied_mhz: float | None = None

        self.energy = EnergyMeter(
            thermal=self.thermal,
            dvfs=self.dvfs,
            start_time=clock.now,
            mem_dvfs=self.mem_dvfs,
        )

        self._pending: list[KernelHandle] = []
        self._seq = 0
        self._busy_until = clock.now

    # ------------------------------------------------------------------
    # kernel lifecycle
    # ------------------------------------------------------------------
    def launch_kernel(self, spec: KernelLaunchSpec) -> KernelHandle:
        """Submit a kernel at the current host time (asynchronous)."""
        now = self.clock.now
        self._drain_completed(now)
        handle = KernelHandle(spec=spec, t_submit=now, seq=self._seq)
        self._seq += 1
        if not self._pending:
            # The start time is already determined (nothing queued ahead),
            # so the clock domain learns about the load immediately — a
            # mid-kernel DVFS request must see a busy device.
            handle.t_start = max(now + _LAUNCH_QUEUE_DELAY_S, self._busy_until)
            self.dvfs.notify_kernel_start(handle.t_start)
            handle.start_notified = True
        self._pending.append(handle)
        self.tracer.emit(
            now, "device", "kernel-launch",
            gpu=self.index, seq=handle.seq,
            n_iter=spec.n_iterations, label=spec.label,
        )
        return handle

    def synchronize(self) -> float:
        """Finalize all pending kernels; block the host until the device drains.

        Returns the true time at which the host resumes.
        """
        completion = self._finalize_pending()
        self.clock.advance_to(completion)
        return self.clock.now

    def _finalize_pending(self) -> float:
        now = self.clock.now
        for handle in self._pending:
            self._finalize(handle)
        self._pending.clear()
        return max(self._busy_until, now)

    def _finalize(self, handle: KernelHandle) -> None:
        if handle.finalized:
            return
        if handle.start_notified:
            assert handle.t_start is not None
            t_start = handle.t_start
        else:
            t_start = max(handle.t_submit + _LAUNCH_QUEUE_DELAY_S, self._busy_until)
            handle.t_start = t_start
            self.dvfs.notify_kernel_start(t_start)
        self._maybe_power_cap(t_start)

        n_sm = handle.spec.sm_count or self.spec.sm_count
        n_sm = min(n_sm, self.spec.sm_count)
        stagger = self.rng.uniform(0.0, self.sm_start_stagger_s, size=n_sm)
        starts = t_start + stagger
        # RNG draws and clock advance happen here (the scalar-exact part);
        # the full per-iteration inversion is deferred until the kernel's
        # timestamps are actually read.  The segments are compiled now —
        # events inserted later all lie at or after this completion time,
        # so the deferred inversion sees the exact segments the eager one
        # would have.
        tb, f_mhz = self._effective_segments(
            float(starts.min()), handle.spec.memory_intensity
        )
        if handle.spec.aggregate:
            completion = self._finalize_aggregate(handle, n_sm, starts, tb, f_mhz)
        else:
            cycles = sample_iteration_cycles(
                self.rng,
                n_sm,
                handle.spec.n_iterations,
                handle.spec.cycles_per_iteration,
                self.spec.iteration_noise_rel,
            )
            pending = prepare_integration_from_boundaries(
                tb, f_mhz, starts, cycles, consume=True
            )
            handle.deferred = pending
            completion = pending.completion_true + _KERNEL_EPILOGUE_S
        handle.t_complete = completion
        self.dvfs.notify_kernel_end(completion)
        self.energy.record_busy(t_start, completion)
        self._busy_until = completion
        self._advance_thermal(completion, load=1.0)
        self.tracer.emit(
            completion, "device", "kernel-complete",
            gpu=self.index, seq=handle.seq,
            duration_ms=round((completion - t_start) * 1e3, 3),
        )

    def _finalize_aggregate(
        self,
        handle: KernelHandle,
        n_sm: int,
        starts: np.ndarray,
        tb: np.ndarray,
        f_mhz: np.ndarray,
    ) -> float:
        """Completion time of an untimed (aggregate-fidelity) kernel.

        One normal draw per SM models the total cycle cost — the exact CLT
        image of the per-iteration sum the timed path draws — and the
        piecewise cycle integral is inverted only at the per-SM totals.
        """
        spec = handle.spec
        n = spec.n_iterations
        mean_total = n * spec.cycles_per_iteration
        sigma_total = (
            self.spec.iteration_noise_rel
            * spec.cycles_per_iteration
            * float(np.sqrt(n))
        )
        totals = self.rng.standard_normal(n_sm)
        totals *= sigma_total
        totals += mean_total
        np.maximum(totals, 0.01 * mean_total, out=totals)
        if n_sm == 1 and len(f_mhz) <= 2:
            # Scalar fast path for the common filler shape (one SM, at
            # most one frequency change ahead): a handful of float ops
            # instead of the array integration pipeline.
            t0 = float(starts[0])
            total = float(totals[0])
            f0 = float(f_mhz[0]) * 1e6
            if len(f_mhz) == 1 or t0 + total / f0 <= float(tb[1]):
                end = t0 + total / f0
            else:
                spent = (float(tb[1]) - t0) * f0
                end = float(tb[1]) + (total - spent) / (float(f_mhz[1]) * 1e6)
            return end + _KERNEL_EPILOGUE_S
        pending = prepare_integration_from_boundaries(
            tb, f_mhz, starts, totals[:, None]
        )
        return pending.completion_true + _KERNEL_EPILOGUE_S

    def _effective_segments(
        self, t0: float, memory_intensity: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """SM segments with the memory-clock stall model folded in.

        While the memory domain is untouched (``_memory_static``) or the
        kernel is pure compute, this *is* ``dvfs.compiled_segments`` — the
        legacy hot path, bit for bit.  Otherwise the SM and memory
        timelines merge into effective integration frequencies
        (:func:`repro.gpusim.sm.merge_memory_segments`).  An active
        power-limit timeline clips the SM segments from above first
        (:func:`repro.gpusim.sm.merge_cap_segments`): the cap shapes the
        clock itself, the memory stall then divides whatever clock runs.
        """
        tb, f_mhz = self.dvfs.compiled_segments(t0)
        if not self._power_static:
            cap_tb, cap_w = self.power_dvfs.compiled_segments(t0)
            if len(cap_w) > 1 or cap_w[0] != self.spec.tdp_watts:
                caps = np.asarray(
                    self.thermal.sustainable_clock_mhz(cap_w), dtype=np.float64
                )
                tb, f_mhz = merge_cap_segments(tb, f_mhz, cap_tb, caps)
        if self._memory_static or memory_intensity <= 0.0:
            return tb, f_mhz
        mem_tb, mem_f = self.mem_dvfs.compiled_segments(t0)
        if len(mem_f) == 1 and mem_f[0] == self.spec.memory_frequency_mhz:
            return tb, f_mhz
        return merge_memory_segments(
            tb, f_mhz, mem_tb, mem_f, memory_intensity,
            self.spec.memory_frequency_mhz,
        )

    def read_timestamps(self, handle: KernelHandle) -> DeviceTimestamps:
        """Read the kernel's iteration timestamp buffers (GPU-clock view).

        Requires prior synchronization, exactly like a ``cudaMemcpy`` of a
        device buffer.
        """
        if handle.finalized and handle.spec.aggregate:
            raise CudaError(
                "aggregate kernels record no per-iteration timestamps "
                f"(kernel seq={handle.seq} {handle.spec.label!r})"
            )
        if not handle.finalized or handle.timestamps is None:
            raise CudaError(
                "kernel results read before synchronization "
                f"(kernel seq={handle.seq} {handle.spec.label!r})"
            )
        return handle.timestamps.as_device_view(self.gpu_clock)

    # ------------------------------------------------------------------
    # management-plane operations (driven by the NVML layer)
    # ------------------------------------------------------------------
    def set_locked_clocks(self, freq_mhz: float) -> TransitionRecord | None:
        """Lock the SM clock at ``freq_mhz`` (NVML locked-clocks semantics)."""
        t = self.clock.now
        self._drain_completed(t)
        record = self.dvfs.request_locked_clocks(freq_mhz, t)
        self._maybe_power_cap(t)
        self.tracer.emit(
            t, "dvfs", "locked-clocks",
            gpu=self.index, target_mhz=freq_mhz,
            init_mhz=record.init_mhz if record else None,
            latency_ms=(
                round(record.ground_truth_latency_s * 1e3, 3)
                if record
                else None
            ),
        )
        return record

    def reset_locked_clocks(self) -> None:
        t = self.clock.now
        self._drain_completed(t)
        self.dvfs.reset_locked_clocks(t)

    def set_memory_locked_clocks(self, freq_mhz: float) -> TransitionRecord | None:
        """Lock the memory clock at ``freq_mhz`` (P-state retraining).

        Kernels whose deterministic completion bound precedes the request
        are finalized first (their timing cannot be affected); kernels
        still running see the retraining through their merged segment
        timeline, exactly like a mid-kernel SM transition.
        """
        t = self.clock.now
        self._drain_completed(t)
        record = self.mem_dvfs.request_locked_clocks(freq_mhz, t)
        self._memory_static = False
        self.tracer.emit(
            t, "dvfs", "memory-locked-clocks",
            gpu=self.index, target_mhz=freq_mhz,
            init_mhz=record.init_mhz if record else None,
            latency_ms=(
                round(record.ground_truth_latency_s * 1e3, 3)
                if record
                else None
            ),
        )
        return record

    def reset_memory_locked_clocks(self) -> TransitionRecord | None:
        """Return the memory clock to the spec reference."""
        return self.set_memory_locked_clocks(self.spec.memory_frequency_mhz)

    def set_power_limit(self, limit_w: float) -> TransitionRecord | None:
        """Set the board power limit (``nvmlDeviceSetPowerManagementLimit``).

        The new limit is enforced only after a sampled re-target latency
        (the power microcontroller integrates over its sensing window
        before committing the new sustainable clock); until then the old
        cap keeps shaping the SM clock — the phase-2 scenario of the
        power-cap measurement axis.
        """
        t = self.clock.now
        self._drain_completed(t)
        record = self.power_dvfs.request_locked_clocks(limit_w, t)
        self._power_static = False
        self.tracer.emit(
            t, "dvfs", "power-limit",
            gpu=self.index, target_w=limit_w,
            init_w=record.init_mhz if record else None,
            latency_ms=(
                round(record.ground_truth_latency_s * 1e3, 3)
                if record
                else None
            ),
        )
        return record

    def reset_power_limit(self) -> TransitionRecord | None:
        """Return the power limit to the TDP default."""
        return self.set_power_limit(self.spec.tdp_watts)

    def current_power_limit_w(self) -> float:
        """The requested (management-register) power limit in watts."""
        locked = self.power_dvfs.locked_mhz
        return float(locked) if locked is not None else float(self.spec.tdp_watts)

    def enforced_power_limit_w(self) -> float:
        """The limit the power controller currently enforces.

        Trails :meth:`current_power_limit_w` by the re-target latency (and
        steps through intermediate ladder points during adaptation).
        """
        if self._power_static:
            return float(self.spec.tdp_watts)
        return float(self.power_dvfs.effective_freq_at(self.clock.now))

    def _power_capped_mhz(self, t: float) -> float:
        """Sustainable SM clock under the limit enforced at ``t``."""
        return float(
            self.thermal.sustainable_clock_mhz(
                self.power_dvfs.effective_freq_at(t)
            )
        )

    def current_sm_clock_mhz(self) -> float:
        planned = self.dvfs.effective_freq_at(self.clock.now)
        if self._power_static:
            return planned
        return min(planned, self._power_capped_mhz(self.clock.now))

    def current_memory_clock_mhz(self) -> float:
        return self.mem_dvfs.effective_freq_at(self.clock.now)

    def throttle_reasons(self) -> ThrottleReasons:
        t = self.clock.now
        busy = self._busy_at(t)
        self._advance_thermal(t, load=1.0 if busy else 0.0)
        reasons = self.thermal_state.reasons
        if not busy:
            reasons |= ThrottleReasons.GPU_IDLE
        if self.dvfs.locked_mhz is not None:
            reasons |= ThrottleReasons.APPLICATIONS_CLOCKS_SETTING
            # The locked clock cannot be honoured within the power budget:
            # report the cap whether or not a kernel is running right now —
            # the setting itself is unservable.
            if (
                self._power_cap_mhz is not None
                and self._power_cap_mhz < self.dvfs.locked_mhz
            ):
                reasons |= ThrottleReasons.SW_POWER_CAP
            # A lowered power limit that cannot sustain the locked clock is
            # the same unservable-setting situation, reported through the
            # same NVML reason — the observable the power-cap measurement
            # axis settles on.
            if (
                not self._power_static
                and self._power_capped_mhz(t) < self.dvfs.locked_mhz
            ):
                reasons |= ThrottleReasons.SW_POWER_CAP
        return reasons

    def temperature_c(self) -> float:
        t = self.clock.now
        self._advance_thermal(t, load=1.0 if self._busy_at(t) else 0.0)
        return self.thermal_state.temperature_c

    def power_usage_w(self) -> float:
        t = self.clock.now
        load = 1.0 if self._busy_at(t) else 0.0
        mem_freq = None if self._memory_static else self.mem_dvfs.effective_freq_at(t)
        return self.thermal.power_watts(
            self.dvfs.effective_freq_at(t), load, mem_freq
        )

    def total_energy_j(self) -> float:
        """Board energy since device creation (NVML total-energy counter).

        With kernels still pending, integration stops at the last
        finalized work (their busy windows are not committed yet);
        otherwise it runs to the present, charging idle power for
        unloaded spans.
        """
        horizon = (
            min(self.clock.now, self._busy_until)
            if self._pending
            else self.clock.now
        )
        return self.energy.total_energy_j(horizon)

    def last_transition(self) -> TransitionRecord | None:
        return self.dvfs.last_transition()

    # ------------------------------------------------------------------
    # machine-checkpoint support
    # ------------------------------------------------------------------
    def snapshot_state(self) -> tuple:
        """Capture the device for :meth:`repro.machine.Machine.checkpoint`.

        Only legal at a quiescent point: pending (unfinalized) kernels hold
        mutable handles that a snapshot cannot protect, so campaign code
        checkpoints right after ``synchronize()``.
        """
        if self._pending:
            raise SimulationError(
                "cannot checkpoint a device with pending kernels "
                "(synchronize first)"
            )
        from dataclasses import replace

        return (
            self.rng.bit_generator.state,
            self.gpu_clock._last_read,
            self.dvfs.snapshot_state(),
            self.mem_dvfs.snapshot_state(),
            self._memory_static,
            self.power_dvfs.snapshot_state(),
            self._power_static,
            self._busy_until,
            self._seq,
            replace(self.thermal_state),
            self._thermal_cap_mhz,
            self._power_cap_mhz,
            self._cap_applied_mhz,
            self.energy.snapshot_state(),
        )

    def restore_state(self, state: tuple) -> None:
        from dataclasses import replace

        (
            rng_state,
            gpu_last_read,
            dvfs_state,
            mem_dvfs_state,
            memory_static,
            power_dvfs_state,
            power_static,
            busy_until,
            seq,
            thermal_state,
            thermal_cap,
            power_cap,
            cap_applied,
            energy_state,
        ) = state
        self.rng.bit_generator.state = rng_state
        self.gpu_clock._last_read = gpu_last_read
        self.dvfs.restore_state(dvfs_state)
        self.mem_dvfs.restore_state(mem_dvfs_state)
        self._memory_static = memory_static
        self.power_dvfs.restore_state(power_dvfs_state)
        self._power_static = power_static
        self._busy_until = busy_until
        self._seq = seq
        self.thermal_state = replace(thermal_state)
        self._thermal_cap_mhz = thermal_cap
        self._power_cap_mhz = power_cap
        self._cap_applied_mhz = cap_applied
        self.energy.restore_state(energy_state)
        self._pending.clear()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _busy_at(self, t: float) -> bool:
        return bool(self._pending) or t < self._busy_until

    def _drain_completed(self, t: float) -> None:
        """Finalize queued kernels that must already have completed by ``t``.

        A kernel whose deterministic completion bound lies before ``t``
        cannot be affected by events at or after ``t``, so finalizing it now
        is sound.  Kernels still running at ``t`` stay pending (their
        trajectory may still change — that is the phase-two scenario).
        """
        while self._pending:
            handle = self._pending[0]
            t_start = max(handle.t_submit + _LAUNCH_QUEUE_DELAY_S, self._busy_until)
            bound = self._completion_bound(handle, t_start)
            if bound >= t:
                break
            self._finalize(handle)
            self._pending.pop(0)

    def _completion_bound(self, handle: KernelHandle, t_start: float) -> float:
        """Conservative upper bound on the kernel's completion time."""
        n = handle.spec.n_iterations
        total_cycles = (
            handle.spec.cycles_per_iteration
            * n
            * (1.0 + 6.0 * self.spec.iteration_noise_rel / max(np.sqrt(n), 1.0))
        )
        # Pessimistic rate: the lowest frequency the trajectory can reach.
        f_min_mhz = self.spec.idle_sm_frequency_mhz
        if not self._power_static:
            # An active power cap can (in principle) push the clock below
            # idle; bound with the tightest ladder limit so early
            # finalization stays sound.
            f_min_mhz = min(
                f_min_mhz,
                self.thermal.sustainable_clock_mhz(
                    self.spec.supported_power_limits_w[-1]
                ),
            )
        f_min_hz = f_min_mhz * 1e6
        worst = t_start + total_cycles / f_min_hz + self.sm_start_stagger_s
        return worst + _KERNEL_EPILOGUE_S

    def _advance_thermal(self, t: float, load: float) -> None:
        if t < self.thermal_state.last_update:
            return
        t_from = self.thermal_state.last_update
        freq = self.dvfs.effective_freq_at(t_from)
        mem_freq = (
            None if self._memory_static else self.mem_dvfs.effective_freq_at(t_from)
        )
        self.thermal.advance(self.thermal_state, t, freq, load, mem_freq)
        self._update_thermal_cap(t)

    def _update_thermal_cap(self, t: float) -> None:
        if not self.thermal.enabled:
            return
        cap = self.thermal.thermal_cap_mhz(self.thermal_state)
        if cap is not None:
            self._thermal_cap_mhz = cap
        elif self._thermal_cap_mhz is not None:
            # Release with hysteresis: two degrees below slowdown.
            if self.thermal_state.temperature_c < self.spec.slowdown_temp_c - 2.0:
                self._thermal_cap_mhz = None
        self._sync_caps(t)

    def _maybe_power_cap(self, t: float) -> None:
        if not self.thermal.enabled:
            return
        locked = self.dvfs.locked_mhz
        if locked is None:
            self._power_cap_mhz = None
        else:
            cap = self.thermal.power_cap_mhz(locked, 1.0)
            self._power_cap_mhz = cap if (cap is not None and cap < locked) else None
        self._sync_caps(t)

    def _sync_caps(self, t: float) -> None:
        """Apply the tighter of the thermal and power caps to the clocks."""
        caps = [c for c in (self._thermal_cap_mhz, self._power_cap_mhz) if c]
        effective = min(caps) if caps else None
        if effective == self._cap_applied_mhz:
            return
        if effective is None:
            self.dvfs.release_cap(t)
        else:
            self.dvfs.apply_cap(t, effective)
        self._cap_applied_mhz = effective

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GpuDevice({self.spec.name!r}, index={self.index}, "
            f"sm={self.spec.sm_count}, now={self.clock.now:.6f})"
        )
