"""Structure-of-arrays evaluation state for pair-parallel simulation.

The pair-parallel tier (:mod:`repro.core.pairbatch`) steps N independent
pair machines in lockstep.  Each machine's *simulation* side — RNG draws,
clock advances, thermal/energy accumulation — is inherently sequential
per machine: the SFC64 stream interleaves cycle-noise, latency and
outlier draws in strict pass order, so stacking those across machines
would change draw order and break bit-identity.  What *can* stack is
everything downstream of the draws: the deferred per-iteration boundary
matrices, device-clock conversion, and the phase-3 detection/confirmation
sweep are pure row-wise array math over already-drawn values.

This module owns that stacked layout.  After every lockstep speculation
round the batch driver collects one :class:`SoaEvalEntry` per speculated
measurement pass across *all* live pairs and hands them to
:func:`evaluate_entries_grouped`, which

1. groups entries by their deferred ``(n_sm, n_iter)`` cycles shape —
   within one pair's block every pass shares ``window_iters``, so a
   pair's whole round lands in a single group; groups mix passes from
   different pairs whose windows happen to agree (the common case early
   in a campaign, where probe-derived windows coincide per facet);
2. converts each pass's true-time end boundaries through its *own*
   machine's GPU clock (per-machine offset/drift/quantization) into one
   shared ``(B, n_sm, n_iter)`` scratch matrix — conversion is
   elementwise, so per-row calls are bit-identical to any stacking;
3. evaluates the whole group in one sweep via
   :func:`repro.core.phase3.evaluate_switch_group_deferred`, which
   broadcasts each pass's own detection band and phase-1 target
   statistics down the stacked axis.

Determinism contract
--------------------
Every per-element float operation an entry experiences here is the same
operation, on the same operands, in the same order as the scalar
``materialize`` + ``evaluate_switch`` chain would perform for that pass
alone; grouping only changes *which loop* drives the arithmetic.  The
single cross-pass reduction that batches work — Welch confirmation of
candidate tails — uses :func:`repro.stats.intervals.difference_ci_rows`,
whose rows reproduce the scalar ``difference_ci`` bit for bit.  Groups
share one grow-only scratch registry, so they are evaluated strictly
sequentially (stack, evaluate, collect) — never interleaved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.phase3 import (
    SwitchEvaluation,
    block_scratch,
    evaluate_switch,
    evaluate_switch_block_deferred,
    evaluate_switch_group_deferred,
)

__all__ = ["SoaEvalEntry", "evaluate_entries_grouped"]


@dataclass
class SoaEvalEntry:
    """One deferred measurement pass awaiting cross-pair evaluation.

    ``key`` identifies the pass back to its runner — ``(pair_slot,
    pass_position)`` in the batch driver — and is opaque here.  ``bench``
    supplies the pass's own device clock and CUDA stub; ``target_stats``
    its pair's phase-1 statistics at the target frequency.
    """

    key: tuple
    bench: object
    raw: object
    target_stats: object


def evaluate_entries_grouped(entries, cfg) -> dict:
    """Evaluate deferred passes from many pairs in shape-grouped sweeps.

    Returns ``{entry.key: SwitchEvaluation}`` for every entry.  Groups
    are keyed on the deferred cycles shape and processed in first-seen
    order; singleton groups take the scalar ``evaluate_switch`` path
    (already proven bit-identical to the stacked path by the pass-block
    tests), larger groups the stacked one.
    """
    groups: dict[tuple[int, int], list[SoaEvalEntry]] = {}
    for entry in entries:
        shape = entry.raw.pending.handle.deferred.cycles_shape
        groups.setdefault(shape, []).append(entry)

    out: dict = {}
    for (n_sm, n_iter), members in groups.items():
        if len(members) == 1:
            entry = members[0]
            entry.raw.materialize(entry.bench.cuda)
            out[entry.key] = evaluate_switch(
                entry.raw, entry.target_stats, cfg
            )
            continue

        # Stack the group: per-entry clock conversion into shared scratch.
        ends = block_scratch("ends", (len(members), n_sm, n_iter))
        start0 = np.empty((len(members), n_sm))
        for b, entry in enumerate(members):
            gpu_clock = entry.bench.device.gpu_clock
            deferred = entry.raw.pending.handle.deferred
            gpu_clock.convert_array(deferred.ends_true(), out=ends[b])
            # Row-wise conversion of the first-iteration starts: identical
            # elementwise arithmetic to the single-pair whole-matrix call.
            start0[b] = gpu_clock.convert_array(deferred.sm_start_times)
        ts_list = [entry.raw.ts_acc for entry in members]
        first_stats = members[0].target_stats
        if all(e.target_stats is first_stats for e in members):
            # Single-pair (or single-stats) group: the uniform block
            # evaluator applies one shared detection band and one shared
            # confirmation reference — same per-element arithmetic as the
            # per-pass group evaluator, with less per-pass bookkeeping.
            evaluations = evaluate_switch_block_deferred(
                start0, ends, ts_list, first_stats, cfg
            )
        else:
            evaluations = evaluate_switch_group_deferred(
                start0,
                ends,
                ts_list,
                [entry.target_stats for entry in members],
                cfg,
            )
        for entry, evaluation in zip(members, evaluations):
            out[entry.key] = evaluation
    return out
