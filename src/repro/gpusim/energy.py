"""Energy accounting for the simulated device.

The paper's whole motivation is energy: DVFS runtimes trade switching
overhead against power savings, and "too often frequency change may lead
to most of the time spent on performing the change".  The energy meter
integrates the thermal model's power curve over the device's actual
frequency trajectory and load timeline, exposing the same counter the real
driver offers through ``nvmlDeviceGetTotalEnergyConsumption``.

Energy is integrated lazily: the meter walks busy intervals (recorded at
kernel finalization) and the frequency trajectory between its last update
and the query time, so queries are cheap and exact regardless of how much
simulated time passed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.gpusim.thermal import ThermalModel

__all__ = ["EnergyMeter"]


@dataclass
class _BusyInterval:
    t_start: float
    t_end: float


@dataclass
class EnergyMeter:
    """Integrates board power over time for one device.

    Parameters
    ----------
    thermal:
        Supplies the power model (works whether or not thermal simulation
        is enabled — power draw is always defined).
    dvfs:
        The clock domain whose effective frequency drives dynamic power.
    start_time:
        Epoch of the counter.
    """

    thermal: ThermalModel
    dvfs: "DvfsClockDomain"  # noqa: F821 - avoid import cycle
    start_time: float = 0.0
    #: memory clock domain; its transitions shift board power, so its
    #: events become integration boundaries too.  ``None`` (or a domain
    #: that never left its start event) integrates exactly as before.
    mem_dvfs: "DvfsClockDomain | None" = None  # noqa: F821
    _energy_j: float = 0.0
    _integrated_until: float = field(default=None)  # type: ignore[assignment]
    _busy: list[_BusyInterval] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self._integrated_until is None:
            self._integrated_until = self.start_time

    # ------------------------------------------------------------------
    def record_busy(self, t_start: float, t_end: float) -> None:
        """Register a kernel execution window (called at finalization)."""
        if t_end < t_start:
            raise SimulationError("busy interval ends before it starts")
        if self._busy and t_start < self._busy[-1].t_end - 1e-12:
            t_start = self._busy[-1].t_end
            if t_end <= t_start:
                return
        self._busy.append(_BusyInterval(t_start, t_end))

    def _load_at(self, t: float) -> float:
        # Busy intervals are appended in order; scan from the back since
        # integration advances monotonically.
        for interval in reversed(self._busy):
            if interval.t_start <= t < interval.t_end:
                return 1.0
            if interval.t_end <= t:
                break
        return 0.0

    def _mem_active(self) -> bool:
        """True when the memory domain has events that can shape power."""
        return self.mem_dvfs is not None and len(self.mem_dvfs._event_times) > 1

    def _boundaries(self, t0: float, t1: float) -> list[float]:
        points = {t0, t1}
        for interval in self._busy:
            if t0 < interval.t_start < t1:
                points.add(interval.t_start)
            if t0 < interval.t_end < t1:
                points.add(interval.t_end)
        trajectory = self.dvfs.trajectory(t0)
        for seg in trajectory.segments:
            if t0 < seg.t_start < t1:
                points.add(seg.t_start)
        if self._mem_active():
            for seg in self.mem_dvfs.trajectory(t0).segments:
                if t0 < seg.t_start < t1:
                    points.add(seg.t_start)
        return sorted(points)

    def integrate_to(self, t: float) -> float:
        """Advance the counter to time ``t``; returns total joules."""
        t0 = self._integrated_until
        if t < t0 - 1e-12:
            raise SimulationError("energy meter cannot run backwards")
        if t <= t0:
            return self._energy_j
        mem_active = self._mem_active()
        boundaries = self._boundaries(t0, t)
        for lo, hi in zip(boundaries, boundaries[1:]):
            mid = 0.5 * (lo + hi)
            freq = self.dvfs.effective_freq_at(mid)
            load = self._load_at(mid)
            mem_freq = (
                self.mem_dvfs.effective_freq_at(mid) if mem_active else None
            )
            self._energy_j += self.thermal.power_watts(freq, load, mem_freq) * (
                hi - lo
            )
        self._integrated_until = t
        return self._energy_j

    def total_energy_j(self, t: float) -> float:
        """NVML-style total energy consumption since the epoch."""
        return self.integrate_to(t)

    # ------------------------------------------------------------------
    # machine-checkpoint support
    # ------------------------------------------------------------------
    def snapshot_state(self) -> tuple:
        """Capture the meter for :meth:`repro.machine.Machine.checkpoint`.

        ``_busy`` is append-only and its intervals are never mutated after
        insertion, so the snapshot records only its length.
        """
        return (self._energy_j, self._integrated_until, len(self._busy))

    def restore_state(self, state: tuple) -> None:
        energy_j, integrated_until, n_busy = state
        self._energy_j = energy_j
        self._integrated_until = integrated_until
        del self._busy[n_busy:]

    def average_power_w(self, t: float) -> float:
        span = t - self.start_time
        if span <= 0:
            return 0.0
        return self.total_energy_j(t) / span
