"""Stochastic ground-truth model of DVFS switching latency.

The simulated GPU applies a frequency-change request only after a sampled
*switching latency*.  The sample is drawn from a per-(init, target) mixture
distribution defined by an architecture profile
(:mod:`repro.gpusim.arch_profiles`); the mixture structure is what produces
the paper's observations:

* a dominant mode whose left edge is the per-pair best case and whose
  additive right tail produces the worst-case spread,
* optional secondary modes ("clusters", paper Sec. VII-B and Fig. 5) at
  discrete higher levels, up to five per pair on GH200,
* a rare outlier process (driver management pauses, Sec. V-C) that the
  adaptive DBSCAN filtering must remove.

Pair-level structure (mode placement, weights, tail scale) is drawn from a
*deterministic* per-pair RNG seeded by (architecture, device serial, init,
target), so the heatmap patterns are stable across campaigns while each
individual measurement still varies.  The per-device serial component is
what creates the manufacturing variability analysed in paper Figs. 7-9.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from functools import cached_property
from typing import Protocol

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "ModeSpec",
    "PairLatencyModel",
    "LatencySample",
    "ArchLatencyProfile",
    "SwitchingLatencyModel",
    "pair_rng",
]


@dataclass(frozen=True)
class ModeSpec:
    """One mixture component: a lognormal mode of the latency distribution.

    ``median_s`` is the mode's median in seconds; ``sigma_log`` the lognormal
    shape parameter; ``weight`` the (unnormalized) mixture weight.
    """

    median_s: float
    sigma_log: float
    weight: float

    def __post_init__(self) -> None:
        if self.median_s <= 0 or self.sigma_log < 0 or self.weight < 0:
            raise ConfigError(f"invalid mode spec: {self}")


@dataclass(frozen=True)
class PairLatencyModel:
    """The full latency distribution for one (init, target) frequency pair.

    ``modes[0]`` is the primary mode; samples from it additionally receive a
    right tail drawn from ``Gamma(tail_shape, tail_scale_s)``, which controls
    the worst-case spread the paper reports as the most valuable quantity.
    """

    modes: tuple[ModeSpec, ...]
    tail_shape: float = 1.4
    tail_scale_s: float = 0.0
    outlier_prob: float = 0.0
    outlier_scale_s: float = 0.1
    outlier_floor_s: float = 0.05

    def __post_init__(self) -> None:
        if not self.modes:
            raise ConfigError("pair model needs at least one mode")
        if self.tail_shape <= 0:
            raise ConfigError("tail_shape must be positive")

    @property
    def weights(self) -> np.ndarray:
        w = np.asarray([m.weight for m in self.modes], dtype=np.float64)
        return w / w.sum()

    @cached_property
    def _cum_weights(self) -> np.ndarray:
        # cached_property writes straight into __dict__, which bypasses the
        # frozen-dataclass __setattr__ guard — the cache is per instance.
        return np.cumsum(self.weights)

    def sample(self, rng: np.random.Generator) -> "LatencySample":
        """Draw one switching latency.

        Mode selection inverts the cached cumulative weights with a single
        uniform draw — equivalent to (and much cheaper than) a categorical
        ``rng.choice`` per sample.
        """
        idx = min(
            int(np.searchsorted(self._cum_weights, rng.random(), side="right")),
            len(self.modes) - 1,
        )
        mode = self.modes[idx]
        latency = mode.median_s * float(
            np.exp(mode.sigma_log * rng.standard_normal())
        )
        if idx == 0 and self.tail_scale_s > 0.0:
            latency += float(rng.gamma(self.tail_shape, self.tail_scale_s))
        is_outlier = False
        if self.outlier_prob > 0.0 and rng.random() < self.outlier_prob:
            latency += self.outlier_floor_s + float(
                rng.exponential(self.outlier_scale_s)
            )
            is_outlier = True
        return LatencySample(
            total_s=latency, mode_index=idx, is_outlier=is_outlier
        )

    def support_median_s(self) -> float:
        """Median of the primary mode (useful for workload sizing)."""
        return self.modes[0].median_s

    def worst_mode_median_s(self) -> float:
        return max(m.median_s for m in self.modes)


@dataclass(frozen=True)
class LatencySample:
    """One ground-truth switching-latency draw.

    ``total_s`` covers the span from the driver receiving the request to the
    SM clock being stable at the target frequency.  ``mode_index`` and
    ``is_outlier`` label which mixture component produced the draw so that
    tests can score the methodology's cluster/outlier recovery against
    ground truth.
    """

    total_s: float
    mode_index: int
    is_outlier: bool

    def adaptation_s(self, rng: np.random.Generator, cap_s: float = 0.030) -> float:
        """Duration of the final adaptation ramp within ``total_s``.

        The paper (Sec. IV) notes that during the adaptation period the
        workload runtime "might correspond to any frequency value"; the
        simulator realizes the last 8-22 % of each transition as a short
        staircase of intermediate frequencies, capped at ``cap_s``.
        """
        frac = rng.uniform(0.08, 0.22)
        return float(min(self.total_s * frac, cap_s))


class ArchLatencyProfile(Protocol):
    """Architecture-specific latency behaviour (see arch_profiles)."""

    name: str
    # command transport: CPU -> GPU management processor
    bus_delay_median_s: float
    bus_delay_sigma_log: float
    # wake-up from idle clocks under first load
    wakeup_median_s: float
    wakeup_sigma_log: float

    def pair_model(
        self, init_mhz: float, target_mhz: float, unit_seed: int
    ) -> PairLatencyModel:  # pragma: no cover - protocol
        ...


def pair_rng(
    arch_name: str, unit_seed: int, init_mhz: float, target_mhz: float
) -> np.random.Generator:
    """Deterministic RNG for pair-level distribution structure.

    Seeded from the architecture, the device serial and the frequency pair,
    so the same simulated device always exposes the same per-pair latency
    distribution — a property the real hardware has and that the repetition
    logic of the methodology depends on.  Uses CRC32 rather than ``hash()``
    so the structure is stable across processes (``hash`` is salted by
    PYTHONHASHSEED).
    """
    entropy = [
        zlib.crc32(arch_name.encode("utf-8")),
        int(unit_seed) % (2**32),
        int(round(init_mhz * 16)) % (2**32),
        int(round(target_mhz * 16)) % (2**32),
    ]
    return np.random.default_rng(np.random.SeedSequence(entropy))


class SwitchingLatencyModel:
    """Samples switching latencies and transition shapes for one device.

    Parameters
    ----------
    profile:
        The architecture profile supplying per-pair distributions.
    unit_seed:
        Device-instance serial; distinct serials produce the unit-to-unit
        variation studied in paper Sec. VII-C.
    rng:
        Measurement-level generator (distinct draws per transition).
    """

    def __init__(
        self,
        profile: ArchLatencyProfile,
        unit_seed: int,
        rng: np.random.Generator,
    ) -> None:
        self.profile = profile
        self.unit_seed = unit_seed
        self.rng = rng
        self._pair_cache: dict[tuple[float, float], PairLatencyModel] = {}

    def pair_model(self, init_mhz: float, target_mhz: float) -> PairLatencyModel:
        key = (float(init_mhz), float(target_mhz))
        model = self._pair_cache.get(key)
        if model is None:
            model = self.profile.pair_model(init_mhz, target_mhz, self.unit_seed)
            self._pair_cache[key] = model
        return model

    def use_shared_cache(self, cache: dict) -> None:
        """Adopt an externally owned pair-model cache.

        Pair models are immutable and a pure deterministic function of
        (architecture profile, unit seed, pair), so replica machines of
        the same blueprint can share one cache — the execution engine's
        worker processes keep a per-(architecture, unit-seed) skeleton
        cache alive across jobs instead of re-deriving every pair model
        per replica.
        """
        cache.update(self._pair_cache)
        self._pair_cache = cache

    def sample_transition(
        self, init_mhz: float, target_mhz: float
    ) -> LatencySample:
        return self.pair_model(init_mhz, target_mhz).sample(self.rng)

    def sample_bus_delay(self) -> float:
        """One-way CPU-to-GPU command latency (part of the switching latency)."""
        return self.profile.bus_delay_median_s * float(
            np.exp(self.profile.bus_delay_sigma_log * self.rng.standard_normal())
        )

    def sample_wakeup(self) -> float:
        """Idle-to-locked-clock wake-up latency under first load."""
        return self.profile.wakeup_median_s * float(
            np.exp(self.profile.wakeup_sigma_log * self.rng.standard_normal())
        )
