"""DVFS clock-domain state machine.

The domain turns locked-clock requests into a planned frequency timeline by
sampling ground-truth switching latencies from the architecture's
:class:`~repro.gpusim.latency_model.SwitchingLatencyModel`.  Each request
produces a :class:`TransitionRecord` carrying the injected latency so that
experiments can compare what the methodology *measured* against what the
simulator *did* — the validation axis the paper's physical setup lacks.

Timeline semantics:

* A request issued at ``t`` takes effect at ``t + bus_delay + device_latency``;
  the last ~10-20 % of that span is realized as a staircase of intermediate
  frequencies (the *adaptation period* of paper Sec. IV, during which
  iteration times may correspond to any frequency).
* A request arriving while a previous transition is still pending supersedes
  it (the "undefined frequency" hazard the COUNTDOWN paper warns about).
* Without load the clocks fall to the idle frequency after ``idle_timeout``;
  the first kernel afterwards pays a *wake-up latency* before the locked
  clock is restored (paper Sec. V, "Wake-up latency").
* Thermal/power caps clip the planned frequency from above.

The same state machine drives both clock domains of a device: the SM
domain (constructed on the :class:`~repro.gpusim.spec.GpuSpec` itself) and
the memory domain (constructed on a :class:`MemoryDomainSpec` ladder
adapter with ``always_powered=True`` — memory clocks hold their P-state
regardless of load, so locked-memory-clock requests always transition
immediately and the domain neither idles nor wakes).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.gpusim.latency_model import LatencySample, SwitchingLatencyModel
from repro.gpusim.spec import GpuSpec
from repro.gpusim.trajectory import FrequencyTrajectory

__all__ = [
    "TransitionRecord",
    "DvfsClockDomain",
    "MemoryDomainSpec",
    "PowerDomainSpec",
]


class MemoryDomainSpec:
    """Ladder adapter exposing a spec's *memory* clocks to the state machine.

    :class:`DvfsClockDomain` consults its ``spec`` only for ladder lookups
    and the idle/nominal resume frequencies; this adapter maps those onto
    the memory-clock ladder.  Memory clocks have no idle drop, so both the
    idle and nominal attributes are the reference memory clock (the
    attribute names keep the GpuSpec spelling the domain expects).
    """

    def __init__(self, spec: GpuSpec) -> None:
        self.gpu_spec = spec
        self.name = f"{spec.name} memory"
        self.idle_sm_frequency_mhz = spec.memory_frequency_mhz
        self.nominal_sm_frequency_mhz = spec.memory_frequency_mhz

    def validate_clock(self, freq_mhz: float, tolerance_mhz: float = 0.5) -> float:
        return self.gpu_spec.validate_memory_clock(freq_mhz, tolerance_mhz)

    def nearest_supported_clock(self, freq_mhz: float) -> float:
        return self.gpu_spec.nearest_supported_memory_clock(freq_mhz)

    def nearest_supported_clocks(self, freqs_mhz: np.ndarray) -> np.ndarray:
        return self.gpu_spec.nearest_supported_memory_clocks(freqs_mhz)


class PowerDomainSpec:
    """Ladder adapter exposing a spec's *power limits* to the state machine.

    The power-limit "clock domain" runs the same request/supersede/record
    machinery over the board's settable power-limit ladder (watts stand in
    for MHz); the device maps the resulting limit timeline onto SM clock
    caps through the thermal model's sustainable-clock inversion.  Power
    limits persist regardless of load, so the idle and nominal attributes
    are both the TDP default (the attribute names keep the GpuSpec
    spelling the domain expects).
    """

    def __init__(self, spec: GpuSpec) -> None:
        self.gpu_spec = spec
        self.name = f"{spec.name} power-limit"
        self.idle_sm_frequency_mhz = spec.tdp_watts
        self.nominal_sm_frequency_mhz = spec.tdp_watts

    def validate_clock(self, limit_w: float, tolerance_mhz: float = 0.5) -> float:
        return self.gpu_spec.validate_power_limit(limit_w, tolerance_mhz)

    def nearest_supported_clock(self, limit_w: float) -> float:
        return self.gpu_spec.nearest_supported_power_limit(limit_w)

    def nearest_supported_clocks(self, limits_w: np.ndarray) -> np.ndarray:
        return self.gpu_spec.nearest_supported_power_limits(limits_w)


#: interior points of linspace(0, 1, n+2) for the handful of ramp step
#: counts the staircase can draw — rebuilt arrays dominated ramp cost
_RAMP_FRACTIONS: dict[int, np.ndarray] = {}


def _ramp_fractions(n_steps: int) -> np.ndarray:
    fracs = _RAMP_FRACTIONS.get(n_steps)
    if fracs is None:
        fracs = np.linspace(0, 1, n_steps + 2)[1:-1]
        fracs.setflags(write=False)
        _RAMP_FRACTIONS[n_steps] = fracs
    return fracs


@dataclass
class TransitionRecord:
    """Ground truth for one frequency-change request."""

    t_request: float
    init_mhz: float
    target_mhz: float
    bus_delay_s: float
    sample: LatencySample
    adaptation_s: float
    t_stable: float
    kind: str = "locked-clock"
    superseded: bool = False

    @property
    def ground_truth_latency_s(self) -> float:
        """Injected switching latency: request issue to stable target clock."""
        return self.t_stable - self.t_request


class DvfsClockDomain:
    """Frequency state machine for one GPU's SM clock domain."""

    def __init__(
        self,
        spec: "GpuSpec | MemoryDomainSpec",
        latency_model: SwitchingLatencyModel,
        rng: np.random.Generator,
        idle_timeout_s: float = 0.050,
        start_time: float = 0.0,
        always_powered: bool = False,
    ) -> None:
        self.spec = spec
        self.latency_model = latency_model
        self.rng = rng
        self.idle_timeout_s = idle_timeout_s
        self.always_powered = always_powered

        self.locked_mhz: float | None = None
        self.records: list[TransitionRecord] = []
        #: suffix of ``records`` that may still be pending (t_stable in the
        #: future).  Time only moves forward, so completed records can be
        #: dropped from this working set — scanning the full history on
        #: every request made supersede handling quadratic per campaign.
        self._maybe_pending: list[TransitionRecord] = []
        self._active_kernels = 0
        self._last_kernel_end: float | None = None
        self._ever_active = False
        if always_powered:
            # The domain behaves as permanently loaded: requests always
            # transition immediately and the clocks never drop to idle.
            # Kernel start/end notifications are never routed here.
            self._active_kernels = 1
            self._ever_active = True

        # Planned frequency events: sorted (time, freq_mhz).  The device
        # starts idle.
        self._event_times: list[float] = [start_time]
        self._event_freqs: list[float] = [spec.idle_sm_frequency_mhz]

        # Cap events: sorted (time, cap_mhz or +inf when released).
        self._cap_times: list[float] = [start_time]
        self._cap_values: list[float] = [float("inf")]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def planned_freq_at(self, t: float) -> float:
        """Planned SM frequency (before caps) at true time ``t``."""
        i = bisect.bisect_right(self._event_times, t) - 1
        if i < 0:
            raise SimulationError(f"time {t} precedes clock-domain start")
        return self._event_freqs[i]

    def cap_at(self, t: float) -> float:
        i = bisect.bisect_right(self._cap_times, t) - 1
        if i < 0:
            return float("inf")
        return self._cap_values[i]

    def effective_freq_at(self, t: float) -> float:
        return min(self.planned_freq_at(t), self.cap_at(t))

    @property
    def is_powered(self) -> bool:
        return self._active_kernels > 0

    def idle_since(self, t: float) -> bool:
        """True if the device has been unloaded long enough to drop clocks."""
        if self._active_kernels > 0:
            return False
        if not self._ever_active:
            return True
        assert self._last_kernel_end is not None
        return (t - self._last_kernel_end) > self.idle_timeout_s

    # ------------------------------------------------------------------
    # event plumbing
    # ------------------------------------------------------------------
    def _insert_event(self, t: float, freq_mhz: float) -> None:
        i = bisect.bisect_right(self._event_times, t)
        self._event_times.insert(i, t)
        self._event_freqs.insert(i, freq_mhz)

    def _drop_events_after(self, t: float) -> None:
        i = bisect.bisect_right(self._event_times, t)
        del self._event_times[i:]
        del self._event_freqs[i:]

    # ------------------------------------------------------------------
    # host-visible operations
    # ------------------------------------------------------------------
    def request_locked_clocks(self, target_mhz: float, t: float) -> TransitionRecord | None:
        """Handle an NVML locked-clocks request issued at true time ``t``.

        Returns the ground-truth :class:`TransitionRecord`, or ``None`` when
        the device is idle (the setting is stored but no physical transition
        happens until wake-up).
        """
        target_mhz = self.spec.validate_clock(target_mhz)
        self.locked_mhz = target_mhz

        if self.idle_since(t):
            return None

        init_mhz = self.effective_freq_at(t)
        # Supersede any still-pending transition: its future events vanish.
        for rec in self._maybe_pending:
            if not rec.superseded and rec.t_stable > t:
                rec.superseded = True
        self._maybe_pending.clear()
        self._drop_events_after(t)

        if abs(init_mhz - target_mhz) < 1e-9:
            # Same-frequency request: driver round trip, no transition.
            bus = self.latency_model.sample_bus_delay()
            rec = TransitionRecord(
                t_request=t,
                init_mhz=init_mhz,
                target_mhz=target_mhz,
                bus_delay_s=bus,
                sample=LatencySample(total_s=0.0, mode_index=0, is_outlier=False),
                adaptation_s=0.0,
                t_stable=t + bus,
            )
            self.records.append(rec)
            self._maybe_pending.append(rec)
            return rec

        init_supported = self.spec.nearest_supported_clock(init_mhz)
        bus = self.latency_model.sample_bus_delay()
        sample = self.latency_model.sample_transition(init_supported, target_mhz)
        adaptation = sample.adaptation_s(self.rng)
        t_stable = t + bus + sample.total_s
        self._schedule_ramp(init_mhz, target_mhz, t_stable, adaptation)

        rec = TransitionRecord(
            t_request=t,
            init_mhz=init_supported,
            target_mhz=target_mhz,
            bus_delay_s=bus,
            sample=sample,
            adaptation_s=adaptation,
            t_stable=t_stable,
        )
        self.records.append(rec)
        self._maybe_pending.append(rec)
        return rec

    def reset_locked_clocks(self, t: float) -> None:
        """Clear the locked-clock setting (autoboost to nominal under load)."""
        self.locked_mhz = None
        if not self.idle_since(t):
            self.request_locked_clocks(self.spec.nominal_sm_frequency_mhz, t)
            self.locked_mhz = None

    def _schedule_ramp(
        self,
        init_mhz: float,
        target_mhz: float,
        t_stable: float,
        adaptation_s: float,
    ) -> None:
        """Insert the adaptation staircase ending exactly at ``t_stable``."""
        n_steps = int(self.rng.integers(2, 6))
        if adaptation_s > 0.0 and n_steps > 0:
            fracs = np.sort(self.rng.uniform(0.15, 0.9, size=n_steps))
            times = t_stable - adaptation_s * (1.0 - _ramp_fractions(n_steps))
            freqs = self.spec.nearest_supported_clocks(
                init_mhz + (target_mhz - init_mhz) * fracs
            )
            for f, ts in zip(freqs, times):
                self._insert_event(float(ts), float(f))
        self._insert_event(t_stable, target_mhz)

    # ------------------------------------------------------------------
    # load notifications (from the device)
    # ------------------------------------------------------------------
    def notify_kernel_start(self, t: float) -> TransitionRecord | None:
        """A kernel starts executing at ``t``; wake the clocks if idle."""
        was_idle = self.idle_since(t)
        self._active_kernels += 1
        self._ever_active = True
        if not was_idle:
            return None

        if self._last_kernel_end is not None:
            drop_t = self._last_kernel_end + self.idle_timeout_s
            self._drop_events_after(drop_t)
            self._insert_event(drop_t, self.spec.idle_sm_frequency_mhz)

        resume_mhz = (
            self.locked_mhz
            if self.locked_mhz is not None
            else self.spec.nominal_sm_frequency_mhz
        )
        wake = self.latency_model.sample_wakeup()
        t_stable = t + wake
        adaptation = min(0.25 * wake, 0.03)
        self._schedule_ramp(
            self.spec.idle_sm_frequency_mhz, resume_mhz, t_stable, adaptation
        )
        rec = TransitionRecord(
            t_request=t,
            init_mhz=self.spec.idle_sm_frequency_mhz,
            target_mhz=resume_mhz,
            bus_delay_s=0.0,
            sample=LatencySample(total_s=wake, mode_index=0, is_outlier=False),
            adaptation_s=adaptation,
            t_stable=t_stable,
            kind="wakeup",
        )
        self.records.append(rec)
        self._maybe_pending.append(rec)
        return rec

    def notify_kernel_end(self, t: float) -> None:
        if self._active_kernels <= 0:
            raise SimulationError("kernel end without matching start")
        self._active_kernels -= 1
        if self._active_kernels == 0:
            self._last_kernel_end = t

    # ------------------------------------------------------------------
    # caps (thermal / power)
    # ------------------------------------------------------------------
    def apply_cap(self, t: float, cap_mhz: float) -> None:
        self._cap_times.append(t)
        self._cap_values.append(cap_mhz)

    def release_cap(self, t: float) -> None:
        self._cap_times.append(t)
        self._cap_values.append(float("inf"))

    # ------------------------------------------------------------------
    # machine-checkpoint support
    # ------------------------------------------------------------------
    def snapshot_state(self) -> tuple:
        """Capture the domain for :meth:`repro.machine.Machine.restore`.

        Event/cap timelines are copied outright (later requests may both
        append and drop suffix events).  ``records`` is append-only, but
        records still in ``_maybe_pending`` can have their ``superseded``
        flag flipped by a later request, so those flags are saved
        individually and restored on rollback.
        """
        return (
            list(self._event_times),
            list(self._event_freqs),
            list(self._cap_times),
            list(self._cap_values),
            len(self.records),
            list(self._maybe_pending),
            [rec.superseded for rec in self._maybe_pending],
            self.locked_mhz,
            self._active_kernels,
            self._last_kernel_end,
            self._ever_active,
        )

    def restore_state(self, state: tuple) -> None:
        (
            event_times,
            event_freqs,
            cap_times,
            cap_values,
            n_records,
            maybe_pending,
            pending_flags,
            locked_mhz,
            active_kernels,
            last_kernel_end,
            ever_active,
        ) = state
        self._event_times = list(event_times)
        self._event_freqs = list(event_freqs)
        self._cap_times = list(cap_times)
        self._cap_values = list(cap_values)
        del self.records[n_records:]
        self._maybe_pending = list(maybe_pending)
        for rec, flag in zip(self._maybe_pending, pending_flags):
            rec.superseded = flag
        self.locked_mhz = locked_mhz
        self._active_kernels = active_kernels
        self._last_kernel_end = last_kernel_end
        self._ever_active = ever_active

    # ------------------------------------------------------------------
    # trajectory compilation
    # ------------------------------------------------------------------
    def trajectory(self, t0: float) -> FrequencyTrajectory:
        """Effective frequency trajectory from ``t0`` onward (caps applied).

        Both event lists are kept sorted, so the boundaries after ``t0``
        are suffix slices found by bisection — scanning the full (ever
        growing) event history per kernel finalization made this quadratic
        over a campaign.
        """
        events_after = self._event_times[
            bisect.bisect_right(self._event_times, t0):
        ]
        caps_after = self._cap_times[bisect.bisect_right(self._cap_times, t0):]
        boundaries = sorted({*events_after, *caps_after})
        events: list[tuple[float, float]] = []
        f0 = min(self.planned_freq_at(t0), self.cap_at(t0))
        for t in boundaries:
            events.append((t, min(self.planned_freq_at(t), self.cap_at(t))))
        return FrequencyTrajectory.from_events(t0, f0, events)

    def compiled_segments(self, t0: float) -> tuple[np.ndarray, np.ndarray]:
        """Effective-frequency segments from ``t0`` as boundary arrays.

        Returns ``(tb, f_mhz)``: ``tb`` has one boundary per segment plus a
        trailing ``+inf``, ``f_mhz`` the per-segment frequency in MHz.  The
        segment set is canonical (adjacent equal frequencies merged), so it
        is exactly what ``trajectory(t0).iter_from(t0)`` yields — but built
        straight from the sorted event/cap timelines, without materializing
        :class:`~repro.gpusim.trajectory.FrequencyTrajectory` objects.
        This is the hot-path form the SM integrator consumes for every
        kernel finalization.
        """
        events_after = self._event_times[
            bisect.bisect_right(self._event_times, t0):
        ]
        caps_after = self._cap_times[bisect.bisect_right(self._cap_times, t0):]
        cur_f = min(self.planned_freq_at(t0), self.cap_at(t0))
        tb = [t0]
        fs = []
        for t in sorted({*events_after, *caps_after}):
            f = min(self.planned_freq_at(t), self.cap_at(t))
            if f == cur_f:
                continue
            tb.append(t)
            fs.append(cur_f)
            cur_f = f
        fs.append(cur_f)
        tb.append(float("inf"))
        return (
            np.asarray(tb, dtype=np.float64),
            np.asarray(fs, dtype=np.float64),
        )

    def last_transition(self) -> TransitionRecord | None:
        """Most recent locked-clock transition (ignoring wake-ups)."""
        for rec in reversed(self.records):
            if rec.kind == "locked-clock":
                return rec
        return None
