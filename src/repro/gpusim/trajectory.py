"""Piecewise-constant SM frequency trajectories.

The DVFS clock domain compiles every event affecting the SM clock — wake-up
ramps, locked-clock requests completing, adaptation steps, throttle caps —
into a :class:`FrequencyTrajectory`: an ordered list of contiguous
:class:`Segment` intervals with constant frequency.  The SM execution engine
then integrates iteration cycles over those segments.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.errors import SimulationError

__all__ = ["Segment", "FrequencyTrajectory"]


@dataclass(frozen=True)
class Segment:
    """A half-open interval ``[t_start, t_end)`` of constant SM frequency."""

    t_start: float
    t_end: float
    freq_mhz: float

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def freq_hz(self) -> float:
        return self.freq_mhz * 1e6


class FrequencyTrajectory:
    """An ordered, contiguous sequence of constant-frequency segments.

    The final segment may extend to ``+inf`` (the steady state after the
    last event), which is the common case for a kernel that keeps running
    after the clock stabilizes at the target frequency.
    """

    def __init__(self, segments: Iterable[Segment]) -> None:
        segs = list(segments)
        if not segs:
            raise SimulationError("trajectory needs at least one segment")
        for prev, cur in zip(segs, segs[1:]):
            if abs(prev.t_end - cur.t_start) > 1e-12:
                raise SimulationError(
                    f"trajectory gap: segment ends at {prev.t_end}, "
                    f"next starts at {cur.t_start}"
                )
            if cur.duration < 0:
                raise SimulationError("negative-duration segment")
        self.segments: list[Segment] = segs
        self._starts = [s.t_start for s in segs]

    # ------------------------------------------------------------------
    @classmethod
    def from_events(
        cls, t0: float, f0_mhz: float, events: Iterable[tuple[float, float]]
    ) -> "FrequencyTrajectory":
        """Build from a start state and a time-ordered ``(time, freq)`` list.

        Events at or before ``t0`` override the initial frequency; duplicate
        timestamps keep the last event.  The last segment is unbounded.
        """
        f = f0_mhz
        pending: list[tuple[float, float]] = []
        for t, freq in sorted(events, key=lambda e: e[0]):
            if t <= t0:
                f = freq
            else:
                pending.append((t, freq))

        segments: list[Segment] = []
        cur_t, cur_f = t0, f
        for t, freq in pending:
            if freq == cur_f:
                continue
            if t > cur_t:
                segments.append(Segment(cur_t, t, cur_f))
                cur_t = t
            cur_f = freq
        segments.append(Segment(cur_t, float("inf"), cur_f))

        # Same-timestamp event chains can leave adjacent equal-frequency
        # segments; merge them so freq_at/iter_from see canonical form.
        merged: list[Segment] = [segments[0]]
        for seg in segments[1:]:
            if seg.freq_mhz == merged[-1].freq_mhz:
                merged[-1] = Segment(
                    merged[-1].t_start, seg.t_end, seg.freq_mhz
                )
            else:
                merged.append(seg)
        return cls(merged)

    # ------------------------------------------------------------------
    @property
    def t_start(self) -> float:
        return self.segments[0].t_start

    @property
    def final_freq_mhz(self) -> float:
        return self.segments[-1].freq_mhz

    def freq_at(self, t: float) -> float:
        """Frequency in MHz at true time ``t``."""
        if t < self.t_start:
            raise SimulationError(f"time {t} precedes trajectory start")
        i = bisect_right(self._starts, t) - 1
        return self.segments[i].freq_mhz

    def freq_at_array(self, t: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`freq_at`."""
        t = np.asarray(t, dtype=np.float64)
        if t.size and t.min() < self.t_start:
            raise SimulationError("times precede trajectory start")
        idx = np.searchsorted(self._starts, t, side="right") - 1
        freqs = np.asarray([s.freq_mhz for s in self.segments])
        return freqs[idx]

    def iter_from(self, t: float) -> Iterator[Segment]:
        """Segments overlapping ``[t, inf)``, first one clipped to start at ``t``."""
        i = bisect_right(self._starts, t) - 1
        if i < 0:
            raise SimulationError(f"time {t} precedes trajectory start")
        first = self.segments[i]
        yield Segment(max(first.t_start, t), first.t_end, first.freq_mhz)
        yield from self.segments[i + 1 :]

    def switch_times(self) -> list[tuple[float, float]]:
        """``(time, new_freq)`` for every internal frequency change."""
        return [
            (s.t_start, s.freq_mhz)
            for prev, s in zip(self.segments, self.segments[1:])
            if prev.freq_mhz != s.freq_mhz
        ]

    def __len__(self) -> int:
        return len(self.segments)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = ", ".join(
            f"[{s.t_start:.6f},{s.t_end:.6f})@{s.freq_mhz:g}MHz"
            for s in self.segments[:4]
        )
        more = "" if len(self.segments) <= 4 else f", ... {len(self.segments)} total"
        return f"FrequencyTrajectory({parts}{more})"
