"""Simulated CUDA GPU substrate.

This package replaces the physical GPUs of the paper (RTX Quadro 6000,
A100-SXM4, GH200) with a virtual-time device model that preserves every
behaviour the measurement methodology interacts with:

* an SM array executing an iterative arithmetic microbenchmark whose
  per-iteration execution time is ``cycles / f(t)`` plus multiplicative
  noise, timestamped by a ~1 us-granularity device timer;
* a DVFS clock domain whose frequency-change requests complete after a
  stochastic *switching latency* drawn from per-architecture profiles
  calibrated to the paper's published results (the ground truth the
  methodology must recover);
* wake-up ramps from the idle clock, thermal and power throttling with
  NVML-style throttle reasons, and driver-noise outliers.
"""

from repro.gpusim.device import GpuDevice, KernelHandle, KernelLaunchSpec
from repro.gpusim.dvfs import DvfsClockDomain, MemoryDomainSpec, TransitionRecord
from repro.gpusim.latency_model import LatencySample, SwitchingLatencyModel
from repro.gpusim.spec import (
    A100_SXM4,
    GH200,
    GPU_MODELS,
    RTX_QUADRO_6000,
    GpuSpec,
    lookup_spec,
)
from repro.gpusim.thermal import ThermalModel, ThermalState, ThrottleReasons
from repro.gpusim.trajectory import FrequencyTrajectory, Segment

__all__ = [
    "GpuSpec",
    "GPU_MODELS",
    "A100_SXM4",
    "GH200",
    "RTX_QUADRO_6000",
    "lookup_spec",
    "FrequencyTrajectory",
    "Segment",
    "SwitchingLatencyModel",
    "LatencySample",
    "DvfsClockDomain",
    "MemoryDomainSpec",
    "TransitionRecord",
    "ThermalModel",
    "ThermalState",
    "ThrottleReasons",
    "GpuDevice",
    "KernelHandle",
    "KernelLaunchSpec",
]
