"""Vectorized SM iteration execution.

The microbenchmark kernel of the methodology is an iterative arithmetic
workload: iteration ``k`` on SM ``i`` consumes ``cycles[i, k]`` clock cycles
(mean ``C`` with small multiplicative noise), executed back-to-back at the
instantaneous SM frequency ``f(t)``.

Because ``f(t)`` is piecewise constant (:class:`FrequencyTrajectory`), the
cumulative-cycle function ``G(t) = ∫ f`` is piecewise linear and invertible,
so every iteration boundary can be computed in closed form::

    end[i, k]   = G⁻¹( G(start_i) + Σ_{j<=k} cycles[i, j] )
    start[i, k] = end[i, k-1]                      (back-to-back)

This is exact — iterations that straddle frequency changes are implicitly
split across segments by the piecewise inversion — and runs as three numpy
``searchsorted``/gather passes over the whole (SM × iteration) matrix with
no Python-level loops.  A scalar reference implementation is provided for
property-based equivalence testing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.gpusim.trajectory import FrequencyTrajectory

__all__ = [
    "KernelTimestamps",
    "integrate_iterations",
    "integrate_iterations_reference",
    "sample_iteration_cycles",
]


@dataclass
class KernelTimestamps:
    """Per-iteration boundaries of one kernel execution, in true time.

    Arrays are ``(n_sm, n_iterations)``.  Use
    :meth:`~KernelTimestamps.as_device_view` to obtain what the host
    actually observes: timestamps read from the quantized GPU timer.
    """

    starts_true: np.ndarray
    ends_true: np.ndarray
    #: True when ``starts_true[:, 1:]`` is exactly ``ends_true[:, :-1]``
    #: (back-to-back iterations, as produced by the integrators).  Lets the
    #: device view convert each boundary once instead of twice.
    back_to_back: bool = False

    def __post_init__(self) -> None:
        if self.starts_true.shape != self.ends_true.shape:
            raise SimulationError("start/end shape mismatch")

    @property
    def n_sm(self) -> int:
        return self.starts_true.shape[0]

    @property
    def n_iterations(self) -> int:
        return self.starts_true.shape[1]

    @property
    def completion_true(self) -> float:
        """True time when the last SM retires its last iteration."""
        return float(self.ends_true[:, -1].max()) if self.ends_true.size else 0.0

    def durations_true(self) -> np.ndarray:
        return self.ends_true - self.starts_true

    def as_device_view(self, gpu_clock) -> "DeviceTimestamps":
        """Convert to GPU-timer readings (offset, drift, 1 us quantization)."""
        ends = gpu_clock.convert_array(self.ends_true)
        if self.back_to_back and self.ends_true.shape[1] > 1:
            # Iteration k starts exactly when k-1 ends, and the conversion
            # is a pure function of the true timestamp — reuse the
            # converted ends instead of converting the same values again.
            starts = np.empty_like(ends)
            starts[:, 0] = gpu_clock.convert_array(self.starts_true[:, 0])
            starts[:, 1:] = ends[:, :-1]
        else:
            starts = gpu_clock.convert_array(self.starts_true)
        return DeviceTimestamps(starts=starts, ends=ends)


@dataclass
class DeviceTimestamps:
    """What the methodology sees: GPU-clock iteration timestamps."""

    starts: np.ndarray
    ends: np.ndarray

    @property
    def diffs(self) -> np.ndarray:
        """Per-iteration execution times as measured by the device timer."""
        return self.ends - self.starts

    @property
    def n_sm(self) -> int:
        return self.starts.shape[0]

    @property
    def n_iterations(self) -> int:
        return self.starts.shape[1]


def sample_iteration_cycles(
    rng: np.random.Generator,
    n_sm: int,
    n_iterations: int,
    cycles_per_iteration: float,
    noise_rel: float,
) -> np.ndarray:
    """Draw the per-iteration cycle-count matrix.

    Multiplicative Gaussian noise models pipeline/issue jitter; the floor at
    1 % of the mean keeps pathological draws physical.
    """
    if n_sm <= 0 or n_iterations <= 0:
        raise SimulationError("need at least one SM and one iteration")
    # In-place evaluation of cycles_per_iteration * (1 + noise_rel * z):
    # the draw matrix is the hottest allocation in the simulator, so the
    # scalings reuse it instead of materializing three temporaries.
    cycles = rng.standard_normal((n_sm, n_iterations))
    cycles *= noise_rel
    cycles += 1.0
    cycles *= cycles_per_iteration
    np.maximum(cycles, 0.01 * cycles_per_iteration, out=cycles)
    return cycles


def _compile_trajectory(
    trajectory: FrequencyTrajectory, t0: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Segment boundary times, frequencies (Hz) and cumulative cycles from t0."""
    segs = list(trajectory.iter_from(t0))
    tb = np.array([s.t_start for s in segs] + [segs[-1].t_end], dtype=np.float64)
    f_hz = np.array([s.freq_hz for s in segs], dtype=np.float64)
    if np.any(f_hz <= 0):
        raise SimulationError("non-positive frequency in trajectory")
    # Cumulative cycles at each boundary; the final (possibly infinite)
    # segment contributes an infinite capacity.
    spans = np.diff(tb)
    seg_cycles = np.where(np.isinf(spans), np.inf, spans * f_hz)
    g = np.concatenate([[0.0], np.cumsum(seg_cycles)])
    return tb, f_hz, g


def integrate_iterations(
    trajectory: FrequencyTrajectory,
    sm_start_times: np.ndarray,
    cycles: np.ndarray,
) -> KernelTimestamps:
    """Exact vectorized integration of iteration boundaries.

    Parameters
    ----------
    trajectory:
        Effective SM frequency over time; must cover every start time and
        extend (possibly to infinity) past the last iteration.
    sm_start_times:
        ``(n_sm,)`` true start time of iteration 0 on each SM (kernel start
        plus block-scheduling stagger).
    cycles:
        ``(n_sm, n_iterations)`` cycle cost of every iteration.
    """
    sm_start_times = np.asarray(sm_start_times, dtype=np.float64)
    cycles = np.asarray(cycles, dtype=np.float64)
    if cycles.ndim != 2 or sm_start_times.shape != (cycles.shape[0],):
        raise SimulationError("shape mismatch between start times and cycles")

    t0 = float(sm_start_times.min())
    tb, f_hz, g = _compile_trajectory(trajectory, t0)

    if len(f_hz) == 1:
        # Constant-frequency fast path (fillers, post-settle kernels):
        # the inversion is a single linear map, so the searchsorted/gather
        # passes degenerate — identical arithmetic with idx0 == j == 0.
        f0, tb0 = f_hz[0], tb[0]
        g_start = g[0] + (sm_start_times - tb0) * f0
        c_abs = np.cumsum(cycles, axis=1)
        c_abs += g_start[:, None]
        ends = c_abs
        ends -= g[0]
        ends /= f0
        ends += tb0
    else:
        # Cycle-integral value at each SM's start time.
        idx0 = np.searchsorted(tb, sm_start_times, side="right") - 1
        idx0 = np.minimum(idx0, len(f_hz) - 1)
        g_start = g[idx0] + (sm_start_times - tb[idx0]) * f_hz[idx0]

        # Absolute cumulative cycle targets for every iteration end.
        c_abs = np.cumsum(cycles, axis=1)
        c_abs += g_start[:, None]

        # Invert the piecewise-linear cycle integral (in place on the
        # cycle-target buffer; it has no further use).
        shape = c_abs.shape
        flat = c_abs.reshape(-1)
        j = np.searchsorted(g, flat, side="right") - 1
        j = np.minimum(j, len(f_hz) - 1)
        flat -= g[j]
        flat /= f_hz[j]
        flat += tb[j]
        ends = flat.reshape(shape)

    starts = np.empty_like(ends)
    starts[:, 0] = sm_start_times
    starts[:, 1:] = ends[:, :-1]
    return KernelTimestamps(starts_true=starts, ends_true=ends, back_to_back=True)


def integrate_iterations_reference(
    trajectory: FrequencyTrajectory,
    sm_start_times: np.ndarray,
    cycles: np.ndarray,
) -> KernelTimestamps:
    """Scalar reference implementation (one iteration at a time).

    Advances each iteration through trajectory segments by explicit cycle
    accounting.  Used by the property-based tests to validate
    :func:`integrate_iterations`; O(n_sm × n_iter × n_seg), so keep inputs
    small.
    """
    sm_start_times = np.asarray(sm_start_times, dtype=np.float64)
    cycles = np.asarray(cycles, dtype=np.float64)
    n_sm, n_iter = cycles.shape
    segs = list(trajectory.iter_from(float(sm_start_times.min())))
    starts = np.empty((n_sm, n_iter))
    ends = np.empty((n_sm, n_iter))
    for i in range(n_sm):
        t = float(sm_start_times[i])
        for k in range(n_iter):
            starts[i, k] = t
            remaining = float(cycles[i, k])
            while remaining > 0.0:
                seg = next(s for s in segs if s.t_end > t)
                f = seg.freq_hz
                capacity = (seg.t_end - t) * f
                if remaining <= capacity:
                    t += remaining / f
                    remaining = 0.0
                else:
                    remaining -= capacity
                    t = seg.t_end
            ends[i, k] = t
    return KernelTimestamps(starts_true=starts, ends_true=ends)
