"""Vectorized SM iteration execution.

The microbenchmark kernel of the methodology is an iterative arithmetic
workload: iteration ``k`` on SM ``i`` consumes ``cycles[i, k]`` clock cycles
(mean ``C`` with small multiplicative noise), executed back-to-back at the
instantaneous SM frequency ``f(t)``.

Because ``f(t)`` is piecewise constant (:class:`FrequencyTrajectory`), the
cumulative-cycle function ``G(t) = ∫ f`` is piecewise linear and invertible,
so every iteration boundary can be computed in closed form::

    end[i, k]   = G⁻¹( G(start_i) + Σ_{j<=k} cycles[i, j] )
    start[i, k] = end[i, k-1]                      (back-to-back)

This is exact — iterations that straddle frequency changes are implicitly
split across segments by the piecewise inversion — and runs as three numpy
``searchsorted``/gather passes over the whole (SM × iteration) matrix with
no Python-level loops.  A scalar reference implementation is provided for
property-based equivalence testing.

Integration is split in two stages so the hot campaign path can defer the
expensive part.  :func:`prepare_integration` consumes the RNG-dependent
inputs (cycle draws) immediately, compiles the trajectory, and computes
only the *last* iteration boundary per SM — enough for the kernel
completion time that drives the machine clock.  The full per-iteration
inversion and the device-view conversion happen lazily in
:meth:`PendingIntegration.materialize`, which kernels whose timestamps are
never read (filler workloads, rolled-back speculative passes) simply never
call.  The split is bit-exact: the deferred inversion applies the same
elementwise operation sequence to the same cumulative-cycle buffer, so the
materialized last column equals the eagerly computed completion boundary
float for float.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.gpusim.trajectory import FrequencyTrajectory

__all__ = [
    "KernelTimestamps",
    "PendingIntegration",
    "integrate_iterations",
    "integrate_iterations_reference",
    "memory_stall_factor",
    "merge_memory_segments",
    "prepare_integration",
    "prepare_integration_from_boundaries",
    "sample_iteration_cycles",
]


def memory_stall_factor(
    mem_freq_mhz: np.ndarray | float,
    mem_ref_mhz: float,
    memory_intensity: float,
) -> np.ndarray | float:
    """Cycle-cost multiplier of running at ``mem_freq_mhz`` vs the reference.

    A roofline-style decomposition: a fraction ``memory_intensity`` of each
    iteration's cycle budget covers memory traffic whose wall time scales
    inversely with the memory clock, the rest is pure compute.  The
    effective SM frequency the integrator should consume cycles at is then
    ``f_sm / stall`` with ``stall = (1 - β) + β * f_ref / f_mem``.  At the
    reference memory clock the factor is *exactly* 1.0 (explicitly pinned —
    ``(1-β)+β`` is not bit-exact in floats), preserving the legacy
    single-memory-clock timeline to the last bit.
    """
    mem_freq_mhz = np.asarray(mem_freq_mhz, dtype=np.float64)
    stall = (1.0 - memory_intensity) + memory_intensity * (
        mem_ref_mhz / mem_freq_mhz
    )
    return np.where(mem_freq_mhz == mem_ref_mhz, 1.0, stall)


def merge_memory_segments(
    tb: np.ndarray,
    f_mhz: np.ndarray,
    mem_tb: np.ndarray,
    mem_f_mhz: np.ndarray,
    memory_intensity: float,
    mem_ref_mhz: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Fold a memory-clock timeline into SM segments as effective frequencies.

    Inputs are two compiled segment timelines in the
    :meth:`~repro.gpusim.dvfs.DvfsClockDomain.compiled_segments` form
    (boundaries with a trailing ``+inf``, per-segment MHz).  The result is
    the union timeline whose per-segment frequency is the SM clock divided
    by the :func:`memory_stall_factor` of the concurrent memory clock —
    exactly what the piecewise cycle integrator needs for kernels whose
    iteration time responds to both domains.
    """
    t_all, i_sm, i_mem = _union_segment_indices(tb, f_mhz, mem_tb, mem_f_mhz)
    stall = memory_stall_factor(mem_f_mhz[i_mem], mem_ref_mhz, memory_intensity)
    return np.append(t_all, np.inf), f_mhz[i_sm] / stall


def merge_cap_segments(
    tb: np.ndarray,
    f_mhz: np.ndarray,
    cap_tb: np.ndarray,
    cap_mhz: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Clip SM segments from above by a piecewise-constant clock cap.

    Both inputs are compiled segment timelines (boundaries with a trailing
    ``+inf``, per-segment MHz).  The result is the union timeline whose
    per-segment frequency is ``min(f_sm, cap)`` — how a power-limit cap
    (the sustainable-clock image of the limit timeline) shapes the clock
    the integrator consumes cycles at.
    """
    t_all, i_sm, i_cap = _union_segment_indices(tb, f_mhz, cap_tb, cap_mhz)
    return np.append(t_all, np.inf), np.minimum(f_mhz[i_sm], cap_mhz[i_cap])


def _union_segment_indices(
    tb_a: np.ndarray,
    f_a: np.ndarray,
    tb_b: np.ndarray,
    f_b: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Union boundary timeline of two compiled segment sets, with the
    per-boundary segment index into each (the shared scaffolding of the
    merge functions above — boundary alignment lives in one place)."""
    t_all = np.union1d(tb_a[:-1], tb_b[:-1])
    i_a = np.clip(np.searchsorted(tb_a, t_all, side="right") - 1, 0, len(f_a) - 1)
    i_b = np.clip(np.searchsorted(tb_b, t_all, side="right") - 1, 0, len(f_b) - 1)
    return t_all, i_a, i_b


@dataclass
class KernelTimestamps:
    """Per-iteration boundaries of one kernel execution, in true time.

    Arrays are ``(n_sm, n_iterations)``.  Use
    :meth:`~KernelTimestamps.as_device_view` to obtain what the host
    actually observes: timestamps read from the quantized GPU timer.
    """

    starts_true: np.ndarray
    ends_true: np.ndarray
    #: True when ``starts_true[:, 1:]`` is exactly ``ends_true[:, :-1]``
    #: (back-to-back iterations, as produced by the integrators).  Lets the
    #: device view convert each boundary once instead of twice.
    back_to_back: bool = False

    def __post_init__(self) -> None:
        if self.starts_true.shape != self.ends_true.shape:
            raise SimulationError("start/end shape mismatch")

    @property
    def n_sm(self) -> int:
        return self.starts_true.shape[0]

    @property
    def n_iterations(self) -> int:
        return self.starts_true.shape[1]

    @property
    def completion_true(self) -> float:
        """True time when the last SM retires its last iteration."""
        return float(self.ends_true[:, -1].max()) if self.ends_true.size else 0.0

    def durations_true(self) -> np.ndarray:
        return self.ends_true - self.starts_true

    def as_device_view(self, gpu_clock) -> "DeviceTimestamps":
        """Convert to GPU-timer readings (offset, drift, 1 us quantization)."""
        ends = gpu_clock.convert_array(self.ends_true)
        if self.back_to_back and self.ends_true.shape[1] > 1:
            # Iteration k starts exactly when k-1 ends, and the conversion
            # is a pure function of the true timestamp — reuse the
            # converted ends instead of converting the same values again.
            starts = np.empty_like(ends)
            starts[:, 0] = gpu_clock.convert_array(self.starts_true[:, 0])
            starts[:, 1:] = ends[:, :-1]
        else:
            starts = gpu_clock.convert_array(self.starts_true)
        return DeviceTimestamps(starts=starts, ends=ends)


@dataclass
class DeviceTimestamps:
    """What the methodology sees: GPU-clock iteration timestamps."""

    starts: np.ndarray
    ends: np.ndarray

    @property
    def diffs(self) -> np.ndarray:
        """Per-iteration execution times as measured by the device timer."""
        return self.ends - self.starts

    @property
    def n_sm(self) -> int:
        return self.starts.shape[0]

    @property
    def n_iterations(self) -> int:
        return self.starts.shape[1]


def sample_iteration_cycles(
    rng: np.random.Generator,
    n_sm: int,
    n_iterations: int,
    cycles_per_iteration: float,
    noise_rel: float,
) -> np.ndarray:
    """Draw the per-iteration cycle-count matrix.

    Multiplicative Gaussian noise models pipeline/issue jitter; the floor at
    1 % of the mean keeps pathological draws physical.
    """
    if n_sm <= 0 or n_iterations <= 0:
        raise SimulationError("need at least one SM and one iteration")
    # In-place evaluation of cycles_per_iteration + (noise * cycles) * z:
    # the draw matrix is the hottest allocation in the simulator, so the
    # scalings reuse it instead of materializing temporaries, and the two
    # scalar factors are folded into one multiply.
    cycles = rng.standard_normal((n_sm, n_iterations))
    cycles *= noise_rel * cycles_per_iteration
    cycles += cycles_per_iteration
    np.maximum(cycles, 0.01 * cycles_per_iteration, out=cycles)
    return cycles


def _compile_trajectory(
    trajectory: FrequencyTrajectory, t0: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Segment boundary times, frequencies (Hz) and cumulative cycles from t0."""
    segs = list(trajectory.iter_from(t0))
    tb = np.array([s.t_start for s in segs] + [segs[-1].t_end], dtype=np.float64)
    f_hz = np.array([s.freq_hz for s in segs], dtype=np.float64)
    if np.any(f_hz <= 0):
        raise SimulationError("non-positive frequency in trajectory")
    # Cumulative cycles at each boundary; the final (possibly infinite)
    # segment contributes an infinite capacity.
    spans = np.diff(tb)
    seg_cycles = np.where(np.isinf(spans), np.inf, spans * f_hz)
    g = np.concatenate([[0.0], np.cumsum(seg_cycles)])
    return tb, f_hz, g


@dataclass
class PendingIntegration:
    """Deferred iteration-boundary integration for one kernel.

    Holds the compiled trajectory (boundary times ``tb``, segment
    frequencies ``f_hz``, cumulative cycles ``g``), the per-SM start times
    and cycle-integral offsets, and the cumulative cycle matrix.  The last
    iteration boundary of every SM — all the device needs for the
    completion time — is computed eagerly by :func:`prepare_integration`;
    the full matrix inversion runs only on :meth:`materialize`, which is
    idempotent (the result is cached, the cumulative buffer consumed).
    """

    tb: np.ndarray
    f_hz: np.ndarray
    g: np.ndarray
    sm_start_times: np.ndarray
    g_start: np.ndarray
    cycles_cum: np.ndarray | None
    last_ends_true: np.ndarray
    _ends: np.ndarray | None = field(default=None, repr=False)
    _result: KernelTimestamps | None = field(default=None, repr=False)

    @property
    def completion_true(self) -> float:
        """True time when the last SM retires its last iteration."""
        return float(self.last_ends_true.max())

    @property
    def cycles_shape(self) -> tuple[int, int]:
        """``(n_sm, n_iterations)`` of the pending kernel."""
        buf = self.cycles_cum if self.cycles_cum is not None else self._ends
        assert buf is not None
        return buf.shape

    def _invert(
        self, c_abs: np.ndarray, rows_sorted: bool = False
    ) -> np.ndarray:
        """Map absolute cycle targets to true times (in place on c_abs).

        The per-segment map ``(c - g_j) / f_j + tb_j`` is folded into the
        affine form ``c * (1/f_j) + (tb_j - g_j / f_j)`` — two gathers and
        two element passes instead of three of each.

        ``rows_sorted=True`` asserts every row of a 2-D input is
        nondecreasing (cumulative cycle rows always are): the segment of
        each element is then found by bisecting the row against the
        segment boundaries — ``O(n_seg log n)`` lookups per row instead of
        ``O(n log n_seg)`` — and each contiguous run maps through the same
        scalar multiply+add the gathered path applies elementwise, so the
        results are bit-identical.
        """
        n_seg = len(self.f_hz)
        inv_f = 1.0 / self.f_hz
        shift = self.tb[:n_seg] - self.g[:n_seg] * inv_f
        if n_seg == 1:
            # Constant-frequency fast path (fillers, post-settle kernels):
            # the inversion is a single linear map, so the searchsorted/
            # gather passes degenerate.
            c_abs *= inv_f[0]
            c_abs += shift[0]
            return c_abs
        if rows_sorted and c_abs.ndim == 2:
            # An element belongs to segment s when it reaches g[s] but not
            # g[s+1] (``side="right"`` semantics of the gathered path:
            # boundary-valued elements and elements past the last boundary
            # land in the later/last segment, zero-capacity segments get
            # empty runs).
            for row in c_abs:
                bounds = np.searchsorted(row, self.g[1:n_seg], side="left")
                prev = 0
                for s in range(n_seg):
                    hi = int(bounds[s]) if s < n_seg - 1 else row.size
                    if hi > prev:
                        seg = row[prev:hi]
                        seg *= inv_f[s]
                        seg += shift[s]
                        prev = hi
            return c_abs
        shape = c_abs.shape
        flat = c_abs.reshape(-1)
        j = np.searchsorted(self.g, flat, side="right") - 1
        j = np.minimum(j, n_seg - 1)
        flat *= inv_f[j]
        flat += shift[j]
        return flat.reshape(shape)

    def ends_true(self) -> np.ndarray:
        """All iteration-end boundaries (full inversion, cached).

        The pass-block pipeline consumes ends directly — with back-to-back
        iterations every start except the first per SM *is* the previous
        end, so a separate starts matrix never needs building there.
        """
        if self._ends is not None:
            return self._ends
        assert self.cycles_cum is not None, "pending buffers already consumed"
        c_abs = self.cycles_cum
        self.cycles_cum = None  # consumed in place below
        c_abs += self.g_start[:, None]
        # Cumulative cycle rows are nondecreasing (cycle draws are floored
        # strictly above zero), so the row-bisecting inversion applies.
        self._ends = self._invert(c_abs, rows_sorted=True)
        return self._ends

    def materialize(self) -> KernelTimestamps:
        """Run the full inversion and build the per-iteration boundaries."""
        if self._result is not None:
            return self._result
        ends = self.ends_true()
        starts = np.empty_like(ends)
        starts[:, 0] = self.sm_start_times
        starts[:, 1:] = ends[:, :-1]
        self._result = KernelTimestamps(
            starts_true=starts, ends_true=ends, back_to_back=True
        )
        return self._result


def prepare_integration(
    trajectory: FrequencyTrajectory,
    sm_start_times: np.ndarray,
    cycles: np.ndarray,
) -> PendingIntegration:
    """Stage one of the exact integration: compile, cumsum, last boundary.

    Parameters
    ----------
    trajectory:
        Effective SM frequency over time; must cover every start time and
        extend (possibly to infinity) past the last iteration.
    sm_start_times:
        ``(n_sm,)`` true start time of iteration 0 on each SM (kernel start
        plus block-scheduling stagger).
    cycles:
        ``(n_sm, n_iterations)`` cycle cost of every iteration.
    """
    sm_start_times = np.asarray(sm_start_times, dtype=np.float64)
    cycles = np.asarray(cycles, dtype=np.float64)
    if cycles.ndim != 2 or sm_start_times.shape != (cycles.shape[0],):
        raise SimulationError("shape mismatch between start times and cycles")

    t0 = float(sm_start_times.min())
    tb, f_hz, g = _compile_trajectory(trajectory, t0)
    return _prepare_from_compiled(tb, f_hz, g, sm_start_times, cycles)


def prepare_integration_from_boundaries(
    tb: np.ndarray,
    f_mhz: np.ndarray,
    sm_start_times: np.ndarray,
    cycles: np.ndarray,
    consume: bool = False,
) -> PendingIntegration:
    """Boundary-array twin of :func:`prepare_integration`.

    Consumes the segment form :meth:`DvfsClockDomain.compiled_segments`
    produces (boundary times with trailing ``inf``, per-segment MHz) —
    the hot path skips :class:`FrequencyTrajectory` object churn entirely.
    The MHz→Hz scaling and the cumulative-cycle construction apply the
    exact operations :func:`_compile_trajectory` applies, so both entries
    produce identical floats for identical segments.  ``consume=True``
    cumulates in place into the caller's ``cycles`` buffer (the device
    passes freshly drawn matrices it never rereads).
    """
    f_hz = f_mhz * 1e6
    if np.any(f_hz <= 0):
        raise SimulationError("non-positive frequency in trajectory")
    spans = np.diff(tb)
    seg_cycles = np.where(np.isinf(spans), np.inf, spans * f_hz)
    g = np.concatenate([[0.0], np.cumsum(seg_cycles)])
    return _prepare_from_compiled(
        tb, f_hz, g, sm_start_times, cycles, consume=consume
    )


def _prepare_from_compiled(
    tb: np.ndarray,
    f_hz: np.ndarray,
    g: np.ndarray,
    sm_start_times: np.ndarray,
    cycles: np.ndarray,
    consume: bool = False,
) -> PendingIntegration:
    sm_start_times = np.asarray(sm_start_times, dtype=np.float64)
    cycles = np.asarray(cycles, dtype=np.float64)
    if cycles.ndim != 2 or sm_start_times.shape != (cycles.shape[0],):
        raise SimulationError("shape mismatch between start times and cycles")
    if len(f_hz) == 1:
        g_start = g[0] + (sm_start_times - tb[0]) * f_hz[0]
    else:
        # Cycle-integral value at each SM's start time.
        idx0 = np.searchsorted(tb, sm_start_times, side="right") - 1
        idx0 = np.minimum(idx0, len(f_hz) - 1)
        g_start = g[idx0] + (sm_start_times - tb[idx0]) * f_hz[idx0]

    cycles_cum = np.cumsum(cycles, axis=1, out=cycles if consume else None)

    pending = PendingIntegration(
        tb=tb,
        f_hz=f_hz,
        g=g,
        sm_start_times=sm_start_times,
        g_start=g_start,
        cycles_cum=cycles_cum,
        last_ends_true=np.empty(0),
    )
    # The last boundary per SM: the same (cum + g_start) then invert
    # elementwise sequence the materialized path applies to every column,
    # restricted to the final one — bit-identical to ends[:, -1].
    pending.last_ends_true = pending._invert(
        cycles_cum[:, -1] + g_start
    )
    return pending


def integrate_iterations(
    trajectory: FrequencyTrajectory,
    sm_start_times: np.ndarray,
    cycles: np.ndarray,
) -> KernelTimestamps:
    """Exact vectorized integration of iteration boundaries.

    One-shot convenience over :func:`prepare_integration` +
    :meth:`PendingIntegration.materialize` (see module docs).
    """
    return prepare_integration(trajectory, sm_start_times, cycles).materialize()


def integrate_iterations_reference(
    trajectory: FrequencyTrajectory,
    sm_start_times: np.ndarray,
    cycles: np.ndarray,
) -> KernelTimestamps:
    """Scalar reference implementation (one iteration at a time).

    Advances each iteration through trajectory segments by explicit cycle
    accounting.  Used by the property-based tests to validate
    :func:`integrate_iterations`; O(n_sm × n_iter × n_seg), so keep inputs
    small.
    """
    sm_start_times = np.asarray(sm_start_times, dtype=np.float64)
    cycles = np.asarray(cycles, dtype=np.float64)
    n_sm, n_iter = cycles.shape
    segs = list(trajectory.iter_from(float(sm_start_times.min())))
    starts = np.empty((n_sm, n_iter))
    ends = np.empty((n_sm, n_iter))
    for i in range(n_sm):
        t = float(sm_start_times[i])
        for k in range(n_iter):
            starts[i, k] = t
            remaining = float(cycles[i, k])
            while remaining > 0.0:
                seg = next(s for s in segs if s.t_end > t)
                f = seg.freq_hz
                capacity = (seg.t_end - t) * f
                if remaining <= capacity:
                    t += remaining / f
                    remaining = 0.0
                else:
                    remaining -= capacity
                    t = seg.t_end
            ends[i, k] = t
    return KernelTimestamps(starts_true=starts, ends_true=ends)
