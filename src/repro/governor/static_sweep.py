"""Static frequency tuning sweep (paper Sec. III context).

The works the paper builds on (hipBone/Stream on MI100 and A100, the
DGX-A100 study) found that "operating at approximately 75 % of the maximum
frequency represents an optimal balance between significant energy savings
and minimal performance penalties".  This module sweeps static SM
frequencies over a phased application and locates the energy-optimal and
EDP-optimal points — the baseline dynamic tuning must beat, and the origin
of the governor's memory-phase frequency targets.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.errors import ConfigError
from repro.governor.app_model import PhasedApplication
from repro.governor.policies import StaticGovernor
from repro.governor.simulate import GovernorRunResult, simulate_governor

__all__ = ["StaticPoint", "StaticSweepResult", "static_frequency_sweep"]


@dataclass(frozen=True)
class StaticPoint:
    """Outcome of running the whole application at one fixed clock."""

    freq_mhz: float
    freq_ratio: float        # relative to the device maximum
    time_s: float
    energy_j: float
    runtime_penalty: float   # vs. the max-clock run
    energy_savings: float    # vs. the max-clock run

    @property
    def edp(self) -> float:
        """Energy-delay product."""
        return self.energy_j * self.time_s


@dataclass
class StaticSweepResult:
    """All sweep points plus the optima."""

    points: list[StaticPoint]

    def best_energy(self, max_penalty: float | None = None) -> StaticPoint:
        """Lowest-energy point, optionally capped on runtime extension.

        ``max_penalty`` implements the paper's "no runtime extension"
        constraint regime: e.g. 0.05 allows a 5 % slowdown.
        """
        candidates = self.points
        if max_penalty is not None:
            candidates = [
                p for p in self.points if p.runtime_penalty <= max_penalty
            ]
            if not candidates:
                raise ConfigError(
                    f"no static point meets the {max_penalty:.0%} "
                    "runtime-penalty cap"
                )
        return min(candidates, key=lambda p: p.energy_j)

    def best_edp(self) -> StaticPoint:
        return min(self.points, key=lambda p: p.edp)

    def point_at_ratio(self, ratio: float) -> StaticPoint:
        return min(self.points, key=lambda p: abs(p.freq_ratio - ratio))


def static_frequency_sweep(
    app: PhasedApplication,
    ratios: tuple[float, ...] = (0.5, 0.6, 0.7, 0.75, 0.8, 0.9, 1.0),
) -> StaticSweepResult:
    """Run the application at each static clock ratio."""
    if not ratios:
        raise ConfigError("sweep needs at least one frequency ratio")
    f_max = app.spec.max_sm_frequency_mhz
    baseline: GovernorRunResult | None = None
    points: list[StaticPoint] = []
    for ratio in sorted(ratios, reverse=True):
        freq = app.spec.nearest_supported_clock(f_max * ratio)
        # Static tuning applies the clock before the application starts
        # (paper Sec. III: "applies a configuration at the beginning of an
        # application execution"), so the run begins on it.
        run = simulate_governor(app, StaticGovernor(freq), start_freq_mhz=freq)
        if baseline is None:
            baseline = run
        points.append(
            StaticPoint(
                freq_mhz=freq,
                freq_ratio=freq / f_max,
                time_s=run.total_time_s,
                energy_j=run.total_energy_j,
                runtime_penalty=run.runtime_penalty_vs(baseline),
                energy_savings=run.energy_savings_vs(baseline),
            )
        )
    return StaticSweepResult(points=points)
