"""Synthetic phased GPU application model.

Complex applications alternate between differently-bounded regions
(compute, memory, IO — paper Sec. III), each with its own energy-optimal
SM frequency: memory-bound phases lose little performance at reduced
clocks, compute-bound phases want the full clock.  Phase durations span
the COUNTDOWN-style range around the 500 us boundary classification up to
seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.gpusim.spec import GpuSpec

__all__ = ["ApplicationPhase", "PhasedApplication", "make_phased_application"]


@dataclass(frozen=True)
class ApplicationPhase:
    """One region of an application's execution.

    ``work_s`` is the region's duration when executed at its optimal
    frequency; ``sensitivity`` in [0, 1] scales how strongly the runtime
    stretches when running below ``optimal_freq_mhz`` (1 = perfectly
    compute-bound, 0 = fully memory-bound).
    """

    work_s: float
    optimal_freq_mhz: float
    sensitivity: float
    kind: str = "compute"

    def duration_at(self, freq_mhz: float) -> float:
        """Execution time of the phase at a fixed SM frequency."""
        if freq_mhz <= 0:
            raise ConfigError("frequency must be positive")
        if freq_mhz >= self.optimal_freq_mhz:
            return self.work_s
        slowdown = self.optimal_freq_mhz / freq_mhz
        return self.work_s * (1.0 + self.sensitivity * (slowdown - 1.0))


@dataclass(frozen=True)
class PhasedApplication:
    """A sequence of phases plus the GPU it targets."""

    phases: tuple[ApplicationPhase, ...]
    spec: GpuSpec

    @property
    def total_work_s(self) -> float:
        return sum(p.work_s for p in self.phases)

    def kinds(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for p in self.phases:
            counts[p.kind] = counts.get(p.kind, 0) + 1
        return counts


def make_phased_application(
    spec: GpuSpec,
    n_phases: int = 60,
    seed: int = 0,
    min_phase_s: float = 5e-3,
    max_phase_s: float = 2.0,
    memory_fraction: float = 0.45,
    memory_optimal_ratio: float = 0.70,
) -> PhasedApplication:
    """Generate a synthetic application.

    Memory-bound phases prefer ~70 % of the maximum clock — the static
    sweet spot reported for A100/MI100 in the studies the paper cites
    (Sec. III); compute-bound phases prefer the maximum clock.  Durations
    are log-uniform between the bounds, covering both "too short to be
    worth a switch" and comfortably-long regions.
    """
    if n_phases < 1:
        raise ConfigError("need at least one phase")
    rng = np.random.default_rng(seed)
    f_max = spec.max_sm_frequency_mhz
    f_mem = spec.nearest_supported_clock(f_max * memory_optimal_ratio)

    phases = []
    for _ in range(n_phases):
        duration = float(
            np.exp(rng.uniform(np.log(min_phase_s), np.log(max_phase_s)))
        )
        if rng.random() < memory_fraction:
            phases.append(
                ApplicationPhase(
                    work_s=duration,
                    optimal_freq_mhz=f_mem,
                    sensitivity=float(rng.uniform(0.05, 0.3)),
                    kind="memory",
                )
            )
        else:
            phases.append(
                ApplicationPhase(
                    work_s=duration,
                    optimal_freq_mhz=f_max,
                    sensitivity=float(rng.uniform(0.7, 1.0)),
                    kind="compute",
                )
            )
    return PhasedApplication(phases=tuple(phases), spec=spec)
