"""DVFS governor policies over a measured switching-latency table."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.results import CampaignResult
from repro.errors import ConfigError
from repro.governor.app_model import ApplicationPhase

__all__ = [
    "LatencyTable",
    "GovernorDecision",
    "NaiveGovernor",
    "LatencyAwareGovernor",
    "OracleGovernor",
    "StaticGovernor",
]


@dataclass
class LatencyTable:
    """Per-pair switching latencies as a governor consumes them.

    Built from a campaign (worst case by default — the paper argues the
    worst case is "the most valuable information" for runtime design) or
    from an explicit dict for tests.
    """

    frequencies_mhz: tuple[float, ...]
    latency_s: dict[tuple[float, float], float]
    default_s: float

    @classmethod
    def from_campaign(
        cls, result: CampaignResult, statistic: str = "max"
    ) -> "LatencyTable":
        table: dict[tuple[float, float], float] = {}
        for p in result.iter_measured():
            v = p.latencies_s(without_outliers=True)
            if v.size == 0:
                continue
            lat = float({"max": v.max(), "mean": v.mean(), "min": v.min()}[statistic])
            # Governor cost models are keyed by SM pair; when a core×memory
            # campaign measured the pair at several memory clocks, keep the
            # conservative (largest) per-pair cost instead of last-wins.
            table[p.key] = max(lat, table.get(p.key, lat))
        if not table:
            raise ConfigError("campaign has no measured pairs")
        return cls(
            frequencies_mhz=tuple(float(f) for f in result.frequencies),
            latency_s=table,
            default_s=float(np.median(list(table.values()))),
        )

    def lookup(self, init_mhz: float, target_mhz: float) -> float:
        if init_mhz == target_mhz:
            return 0.0
        return self.latency_s.get((init_mhz, target_mhz), self.default_s)


@dataclass(frozen=True)
class GovernorDecision:
    """What the governor chose at a phase boundary."""

    target_mhz: float
    switched: bool
    predicted_latency_s: float
    rationale: str


class NaiveGovernor:
    """Always switch to the phase-optimal frequency (latency-oblivious)."""

    name = "naive"

    def __init__(self, table: LatencyTable) -> None:
        self.table = table

    def decide(
        self, phase: ApplicationPhase, current_mhz: float
    ) -> GovernorDecision:
        target = self._nearest(phase.optimal_freq_mhz)
        if target == current_mhz:
            return GovernorDecision(current_mhz, False, 0.0, "already-there")
        return GovernorDecision(
            target_mhz=target,
            switched=True,
            predicted_latency_s=self.table.lookup(current_mhz, target),
            rationale="chase-optimal",
        )

    def _nearest(self, freq_mhz: float) -> float:
        freqs = np.asarray(self.table.frequencies_mhz)
        return float(freqs[np.argmin(np.abs(freqs - freq_mhz))])


class StaticGovernor:
    """Never switch: static tuning at a fixed frequency (paper Sec. III)."""

    name = "static"

    def __init__(self, freq_mhz: float) -> None:
        self.freq_mhz = freq_mhz

    def decide(
        self, phase: ApplicationPhase, current_mhz: float
    ) -> GovernorDecision:
        return GovernorDecision(self.freq_mhz, False, 0.0, "static")


class OracleGovernor:
    """Reference line: knows every phase's true duration in advance.

    Greedily minimizes the per-phase *energy-delay product*, accounting
    exactly for the stale span (the measured switching latency spent at
    the old clock) — the decision a clairvoyant latency-aware runtime
    would make.  Heuristic governors with the same latency table should
    approach but not beat its aggregate EDP.
    """

    name = "oracle"

    def __init__(self, table: LatencyTable) -> None:
        self.table = table

    def decide(
        self, phase: ApplicationPhase, current_mhz: float
    ) -> GovernorDecision:
        best_target, best_cost = current_mhz, self._phase_edp(
            phase, current_mhz, current_mhz, 0.0
        )
        for f in self.table.frequencies_mhz:
            if f == current_mhz:
                continue
            latency = self.table.lookup(current_mhz, float(f))
            cost = self._phase_edp(phase, current_mhz, float(f), latency)
            if cost < best_cost - 1e-12:
                best_target, best_cost = float(f), cost
        if best_target == current_mhz:
            return GovernorDecision(current_mhz, False, 0.0, "oracle-stay")
        return GovernorDecision(
            best_target,
            True,
            self.table.lookup(current_mhz, best_target),
            "oracle-switch",
        )

    def _phase_edp(
        self,
        phase: ApplicationPhase,
        current_mhz: float,
        target_mhz: float,
        latency_s: float,
    ) -> float:
        """Exact per-phase energy x duration for one candidate target.

        The power proxy includes the board's static floor (~15 % of TDP);
        without it a convex f^2.4 dynamic term makes EDP monotonically
        favour the lowest clock, which no real board does.
        """
        f_max = max(self.table.frequencies_mhz)

        def power(f: float) -> float:
            return 0.15 + 0.85 * (f / f_max) ** 2.4

        stale = min(latency_s, phase.duration_at(current_mhz))
        done = stale / phase.duration_at(current_mhz)
        rest = max(0.0, 1.0 - done) * phase.duration_at(target_mhz)
        energy = stale * power(current_mhz) + rest * power(target_mhz)
        return energy * (stale + rest)


class LatencyAwareGovernor:
    """Switch only when the measured latency table says it pays off.

    Two rules from the paper's conclusions:

    * **better timing** — skip a transition when the phase is shorter than
      ``min_residency_factor`` times the predicted switching latency (the
      change would complete after the phase already ended);
    * **avoid expensive pairs** — when the direct transition is
      pathologically slow, consider neighbouring target frequencies whose
      transition is cheap and whose frequency is close enough to keep most
      of the benefit.
    """

    name = "latency-aware"

    def __init__(
        self,
        table: LatencyTable,
        min_residency_factor: float = 3.0,
        detour_tolerance_mhz: float = 120.0,
    ) -> None:
        if min_residency_factor <= 0:
            raise ConfigError("min_residency_factor must be positive")
        self.table = table
        self.min_residency_factor = min_residency_factor
        self.detour_tolerance_mhz = detour_tolerance_mhz

    def decide(
        self, phase: ApplicationPhase, current_mhz: float
    ) -> GovernorDecision:
        freqs = np.asarray(self.table.frequencies_mhz)
        ideal = float(freqs[np.argmin(np.abs(freqs - phase.optimal_freq_mhz))])
        if ideal == current_mhz:
            return GovernorDecision(current_mhz, False, 0.0, "already-there")

        # Candidate targets near the ideal frequency, ranked by predicted
        # transition cost.
        candidates = [
            float(f)
            for f in freqs
            if abs(f - ideal) <= self.detour_tolerance_mhz and f != current_mhz
        ] or [ideal]
        best = min(
            candidates, key=lambda f: self.table.lookup(current_mhz, f)
        )
        latency = self.table.lookup(current_mhz, best)

        if phase.work_s < self.min_residency_factor * latency:
            return GovernorDecision(
                current_mhz, False, latency, "phase-too-short"
            )
        rationale = "chase-optimal" if best == ideal else "avoid-expensive-pair"
        return GovernorDecision(best, True, latency, rationale)
