"""Latency-aware DVFS governor — the paper's motivating use case (Sec. VIII).

"This knowledge can help in the development of energy efficiency runtime
systems in two ways.  Firstly, the frequency changes can be performed with
better timing.  Secondly, the runtime system may avoid some frequency
transitions, which show overhead higher than other frequency pairs."

This package simulates a phase-changing GPU application and compares DVFS
policies: a naive governor that always chases the phase-optimal frequency,
against a latency-aware governor that consults a measured switching-latency
table to (a) skip transitions whose overhead would eat the phase, and
(b) reroute around pathological frequency pairs.
"""

from repro.governor.app_model import ApplicationPhase, PhasedApplication, make_phased_application
from repro.governor.policies import (
    GovernorDecision,
    LatencyAwareGovernor,
    LatencyTable,
    NaiveGovernor,
    OracleGovernor,
    StaticGovernor,
)
from repro.governor.simulate import GovernorRunResult, simulate_governor
from repro.governor.static_sweep import (
    StaticPoint,
    StaticSweepResult,
    static_frequency_sweep,
)

__all__ = [
    "ApplicationPhase",
    "PhasedApplication",
    "make_phased_application",
    "LatencyTable",
    "GovernorDecision",
    "NaiveGovernor",
    "LatencyAwareGovernor",
    "OracleGovernor",
    "StaticGovernor",
    "simulate_governor",
    "GovernorRunResult",
    "StaticPoint",
    "StaticSweepResult",
    "static_frequency_sweep",
]
