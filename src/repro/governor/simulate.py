"""Energy/runtime simulation of a governor over a phased application.

The model exposes the failure mode from the paper's introduction: "too
often frequency change may lead to most of the time spent on performing
the change".  A switch requested at a phase boundary completes only after
the measured switching latency; until then the device keeps running at the
old clock.  When the latency outlives the phase, the *next* phase starts
on the stale frequency and inherits the pending transition — the
"undefined state" hazard that COUNTDOWN documents for sub-500 us regions
and that grows by orders of magnitude on GPUs.

Work accounting integrates each phase's progress piecewise over the actual
frequency timeline: progress rate at frequency ``f`` is
``1 / phase.duration_at(f)`` of the phase per second; energy accrues at
the device power-model rate for the active frequency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.governor.app_model import PhasedApplication
from repro.gpusim.thermal import ThermalModel

__all__ = ["PhaseOutcome", "GovernorRunResult", "simulate_governor"]


@dataclass(frozen=True)
class PhaseOutcome:
    """Accounting for one executed phase."""

    requested_mhz: float
    duration_s: float
    energy_j: float
    switched: bool
    switch_latency_s: float
    stale_time_s: float  # time spent below/above the requested frequency
    rationale: str


@dataclass
class GovernorRunResult:
    """Aggregate outcome of one governor run."""

    governor_name: str
    outcomes: list[PhaseOutcome] = field(default_factory=list)

    @property
    def total_time_s(self) -> float:
        return sum(o.duration_s for o in self.outcomes)

    @property
    def total_energy_j(self) -> float:
        return sum(o.energy_j for o in self.outcomes)

    @property
    def n_switches(self) -> int:
        return sum(1 for o in self.outcomes if o.switched)

    @property
    def switch_overhead_s(self) -> float:
        return sum(o.switch_latency_s for o in self.outcomes if o.switched)

    @property
    def stale_time_s(self) -> float:
        """Total time executed at a frequency other than the requested one."""
        return sum(o.stale_time_s for o in self.outcomes)

    @property
    def avg_power_w(self) -> float:
        t = self.total_time_s
        return self.total_energy_j / t if t else 0.0

    def energy_savings_vs(self, baseline: "GovernorRunResult") -> float:
        """Fractional energy saved relative to a baseline run."""
        if baseline.total_energy_j == 0:
            raise ConfigError("baseline consumed no energy")
        return 1.0 - self.total_energy_j / baseline.total_energy_j

    def runtime_penalty_vs(self, baseline: "GovernorRunResult") -> float:
        """Fractional runtime extension relative to a baseline run."""
        if baseline.total_time_s == 0:
            raise ConfigError("baseline took no time")
        return self.total_time_s / baseline.total_time_s - 1.0


def simulate_governor(
    app: PhasedApplication,
    governor,
    start_freq_mhz: float | None = None,
) -> GovernorRunResult:
    """Run ``governor`` over ``app``; returns the accounting."""
    thermal = ThermalModel(app.spec, enabled=True)
    actual_mhz = (
        start_freq_mhz
        if start_freq_mhz is not None
        else app.spec.max_sm_frequency_mhz
    )
    requested_mhz = actual_mhz
    t = 0.0
    pending: tuple[float, float] | None = None  # (completion time, freq)
    result = GovernorRunResult(governor_name=getattr(governor, "name", "?"))

    for phase in app.phases:
        decision = governor.decide(phase, requested_mhz)
        switched = decision.switched and decision.target_mhz != requested_mhz
        latency = decision.predicted_latency_s if switched else 0.0
        if switched:
            # A new request supersedes any still-pending transition.
            requested_mhz = decision.target_mhz
            pending = (t + latency, decision.target_mhz)

        remaining = 1.0  # fraction of the phase's work left
        phase_t0 = t
        energy = 0.0
        stale = 0.0
        while remaining > 1e-12:
            f = actual_mhz
            rate = 1.0 / phase.duration_at(f)
            t_finish = remaining / rate
            if pending is not None and pending[0] > t:
                dt = min(t_finish, pending[0] - t)
            else:
                if pending is not None:
                    actual_mhz = pending[1]
                    pending = None
                    continue
                dt = t_finish
            energy += thermal.power_watts(f, 1.0) * dt
            if f != requested_mhz:
                stale += dt
            remaining -= rate * dt
            t += dt
            if pending is not None and t >= pending[0] - 1e-15:
                actual_mhz = pending[1]
                pending = None

        result.outcomes.append(
            PhaseOutcome(
                requested_mhz=requested_mhz,
                duration_s=t - phase_t0,
                energy_j=energy,
                switched=switched,
                switch_latency_s=latency,
                stale_time_s=stale,
                rationale=decision.rationale,
            )
        )
    return result
