"""The FTaLaT measurement procedure (paper Sec. IV).

Two phases:

1. Per-frequency characterization: the artificial workload runs at each
   frequency; the mean iteration time and its confidence interval are
   computed.  Pairs whose difference CI includes zero are skipped (or the
   workload grows).
2. Transition measurement: the workload loops at the initial frequency;
   the frequency change is issued and timestamped; the first iteration
   whose execution time falls inside the *confidence interval* of the
   target mean marks the candidate transition end.  One hundred further
   iterations are taken; if their mean is statistically indistinguishable
   from the target's phase-1 mean, the transition latency is
   ``t_e - t_s``, otherwise the measurement is discarded (the core was
   merely adapting through the target's neighbourhood).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MeasurementError
from repro.ftalat.cpusim import CpuCore
from repro.stats.descriptive import SampleStats, summarize
from repro.stats.intervals import difference_ci

__all__ = [
    "FtalatConfig",
    "FtalatResult",
    "CpuTransitionMeasurement",
    "characterize_cpu_frequency",
    "measure_cpu_transition",
    "run_ftalat",
]


@dataclass(frozen=True)
class FtalatConfig:
    """Workload and statistics knobs of the CPU methodology."""

    cycles_per_iteration: float = 12_000.0  # ~5 us at 2.5 GHz
    warmup_iterations: int = 2_000
    #: kept moderate on purpose: the CI detection band scales with
    #: 1/sqrt(n), and an over-characterized target starves detection (the
    #: effect paper Sec. V-A generalizes to accelerators)
    characterize_iterations: int = 1_500
    delay_iterations: int = 200
    window_iterations: int = 3_000
    confirm_iterations: int = 100  # FTaLaT's "additional hundred"
    confidence: float = 0.95
    band_stderr_multiplier: float = 2.0
    max_attempts: int = 20
    repeats: int = 15


@dataclass(frozen=True)
class CpuTransitionMeasurement:
    """One accepted CPU transition latency."""

    init_mhz: float
    target_mhz: float
    latency_s: float
    ts: float
    te: float
    attempts: int
    ground_truth_s: float


def characterize_cpu_frequency(
    core: CpuCore, freq_mhz: float, cfg: FtalatConfig
) -> SampleStats:
    """Phase-1 statistics of the iteration time at one frequency."""
    core.set_frequency(freq_mhz)
    core.run_iterations(cfg.warmup_iterations, cfg.cycles_per_iteration)
    starts, ends = core.run_iterations(
        cfg.characterize_iterations, cfg.cycles_per_iteration
    )
    return summarize(ends - starts)


def measure_cpu_transition(
    core: CpuCore,
    init_mhz: float,
    target_mhz: float,
    init_stats: SampleStats,
    target_stats: SampleStats,
    cfg: FtalatConfig,
) -> CpuTransitionMeasurement:
    """One phase-2 measurement, retried until the confirmation accepts."""
    # FTaLaT's detection band: the confidence interval of the target mean
    # (mean +/- 2 standard errors) — workable on a CPU where n is small.
    half = cfg.band_stderr_multiplier * target_stats.stderr
    lo, hi = target_stats.mean - half, target_stats.mean + half

    for attempt in range(1, cfg.max_attempts + 1):
        core.set_frequency(init_mhz)
        core.run_iterations(cfg.warmup_iterations, cfg.cycles_per_iteration)
        core.run_iterations(cfg.delay_iterations, cfg.cycles_per_iteration)

        ts = core.host.clock_gettime()
        ground_truth = core.set_frequency(target_mhz)

        starts, ends = core.run_iterations(
            cfg.window_iterations, cfg.cycles_per_iteration
        )
        diffs = ends - starts
        in_band = (diffs >= lo) & (diffs <= hi)
        if not in_band.any():
            continue
        first = int(np.argmax(in_band))
        te = float(ends[first])

        # Confirmation: one hundred further iterations must match the
        # target mean (difference CI including zero).
        c_starts, c_ends = core.run_iterations(
            cfg.confirm_iterations, cfg.cycles_per_iteration
        )
        confirm = summarize(c_ends - c_starts)
        lb, hb = difference_ci(confirm, target_stats, cfg.confidence)
        if lb < 0.0 < hb:
            return CpuTransitionMeasurement(
                init_mhz=init_mhz,
                target_mhz=target_mhz,
                latency_s=te - ts,
                ts=ts,
                te=te,
                attempts=attempt,
                ground_truth_s=ground_truth,
            )
    raise MeasurementError(
        f"CPU transition {init_mhz:g}->{target_mhz:g} MHz: no accepted "
        f"measurement in {cfg.max_attempts} attempts"
    )


@dataclass
class FtalatResult:
    """All measurements of one CPU campaign."""

    frequencies_mhz: tuple[float, ...]
    characterizations: dict[float, SampleStats]
    measurements: dict[tuple[float, float], list[CpuTransitionMeasurement]] = field(
        default_factory=dict
    )
    skipped_pairs: list[tuple[float, float]] = field(default_factory=list)

    def latencies_s(self, init_mhz: float, target_mhz: float) -> np.ndarray:
        return np.asarray(
            [m.latency_s for m in self.measurements[(init_mhz, target_mhz)]]
        )

    def all_latencies_s(self) -> np.ndarray:
        chunks = [
            [m.latency_s for m in ms] for ms in self.measurements.values()
        ]
        return np.concatenate([np.asarray(c) for c in chunks if c])


def run_ftalat(
    core: CpuCore,
    frequencies: tuple[float, ...],
    cfg: FtalatConfig | None = None,
) -> FtalatResult:
    """Full CPU campaign over all ordered frequency pairs."""
    cfg = cfg or FtalatConfig()
    chars = {
        float(f): characterize_cpu_frequency(core, f, cfg) for f in frequencies
    }
    result = FtalatResult(
        frequencies_mhz=tuple(float(f) for f in frequencies),
        characterizations=chars,
    )
    for init in frequencies:
        for target in frequencies:
            if init == target:
                continue
            a, b = chars[float(init)], chars[float(target)]
            lb, hb = difference_ci(a, b, cfg.confidence)
            if lb < 0.0 < hb:
                result.skipped_pairs.append((float(init), float(target)))
                continue
            pair_measurements = []
            for _ in range(cfg.repeats):
                try:
                    pair_measurements.append(
                        measure_cpu_transition(core, init, target, a, b, cfg)
                    )
                except MeasurementError:
                    continue
            if not pair_measurements:
                result.skipped_pairs.append((float(init), float(target)))
                continue
            result.measurements[(float(init), float(target))] = pair_measurements
    return result
