"""FTaLaT: the CPU frequency transition latency baseline (paper Sec. IV).

Reproduces the CPU-side methodology the paper adapts (Mazouz et al.,
implemented in the FTaLaT tool): an iterative compute-bound workload on a
single core, per-frequency characterization with confidence intervals, and
transition detection via the confidence-interval criterion — which is
sound on a CPU because a single core produces few enough samples that the
interval stays wider than the timer resolution.

Used for the paper's headline comparison: "CPUs complete the frequency
transitions in microseconds, or units of milliseconds at most, while GPUs
require ... tens to hundreds of milliseconds."
"""

from repro.ftalat.cpusim import CpuCore, CpuSpec, CpuTransitionModel
from repro.ftalat.ftalat import (
    CpuTransitionMeasurement,
    FtalatConfig,
    FtalatResult,
    characterize_cpu_frequency,
    measure_cpu_transition,
    run_ftalat,
)

__all__ = [
    "CpuSpec",
    "CpuCore",
    "CpuTransitionModel",
    "FtalatConfig",
    "FtalatResult",
    "CpuTransitionMeasurement",
    "characterize_cpu_frequency",
    "measure_cpu_transition",
    "run_ftalat",
]
