"""Simulated CPU core with microsecond-scale DVFS transitions.

The CPU differs from the accelerator in exactly the ways the paper builds
its argument on:

* the frequency-change request originates and lands on the *same* device,
  so there is no bus traversal and no separate timer domain,
* transitions complete in tens of microseconds (Intel/AMD measurements in
  the papers the authors cite: Skylake-SP, Alder Lake, Zen 2), not tens of
  milliseconds,
* the workload runs on one core, so sample counts stay small and the
  confidence-interval detection criterion remains usable.

The iteration engine reuses the exact piecewise-trajectory integration of
the GPU SM engine with a single "SM".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.gpusim.sm import integrate_iterations, sample_iteration_cycles
from repro.gpusim.trajectory import FrequencyTrajectory
from repro.simtime.clock import VirtualClock
from repro.simtime.host import HostCpu

__all__ = ["CpuSpec", "CpuTransitionModel", "CpuCore"]


@dataclass(frozen=True)
class CpuSpec:
    """A simplified server-CPU core description."""

    name: str = "SimXeon 6330"
    min_frequency_mhz: float = 1000.0
    max_frequency_mhz: float = 3100.0
    step_mhz: float = 100.0
    iteration_noise_rel: float = 0.004
    #: rdtsc ticks at the base clock: sub-nanosecond resolution.  This is
    #: what keeps FTaLaT's confidence-interval criterion usable on CPUs —
    #: a coarser timer would starve it exactly as paper Sec. V-A describes
    #: for the 1 us GPU timer (covered by an ablation benchmark).
    timer_granularity_s: float = 4e-10

    @property
    def supported_clocks_mhz(self) -> tuple[float, ...]:
        ladder = np.arange(
            self.min_frequency_mhz,
            self.max_frequency_mhz + self.step_mhz / 2,
            self.step_mhz,
        )
        return tuple(float(f) for f in ladder)

    def validate(self, freq_mhz: float) -> float:
        clocks = np.asarray(self.supported_clocks_mhz)
        nearest = float(clocks[np.argmin(np.abs(clocks - freq_mhz))])
        if abs(nearest - freq_mhz) > 0.5:
            raise ConfigError(
                f"{freq_mhz} MHz is not a supported CPU frequency"
            )
        return nearest


@dataclass(frozen=True)
class CpuTransitionModel:
    """Stochastic CPU transition latency: lognormal tens of microseconds.

    Matches the order of magnitude of published Intel/AMD measurements
    (roughly 20-500 us depending on generation and direction); a small
    per-100 MHz term models multi-step voltage ramps.
    """

    base_median_s: float = 42e-6
    sigma_log: float = 0.35
    per_step_s: float = 1.2e-6
    outlier_prob: float = 0.01
    outlier_scale_s: float = 400e-6

    def sample(
        self, rng: np.random.Generator, init_mhz: float, target_mhz: float
    ) -> float:
        steps = abs(target_mhz - init_mhz) / 100.0
        latency = (self.base_median_s + self.per_step_s * steps) * float(
            np.exp(self.sigma_log * rng.standard_normal())
        )
        if rng.random() < self.outlier_prob:
            latency += float(rng.exponential(self.outlier_scale_s))
        return latency


class CpuCore:
    """One core executing the FTaLaT workload on the shared timeline."""

    def __init__(
        self,
        host: HostCpu,
        spec: CpuSpec | None = None,
        transition_model: CpuTransitionModel | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.host = host
        self.clock: VirtualClock = host.clock
        self.spec = spec or CpuSpec()
        self.transition_model = transition_model or CpuTransitionModel()
        self.rng = rng if rng is not None else np.random.default_rng(0xF7A1A7)
        self._freq_events: list[tuple[float, float]] = [
            (self.clock.now, self.spec.min_frequency_mhz)
        ]
        self.last_transition_latency_s: float | None = None

    # ------------------------------------------------------------------
    @property
    def current_frequency_mhz(self) -> float:
        now = self.clock.now
        freq = self._freq_events[0][1]
        for t, f in self._freq_events:
            if t <= now:
                freq = f
            else:
                break
        return freq

    def set_frequency(self, freq_mhz: float) -> float:
        """Request a frequency (sysfs/MSR write); returns injected latency.

        The write itself costs ~2 us of core time; the transition completes
        after the sampled latency, during which the workload keeps running
        at the previous frequency (plus a short ramp).
        """
        freq_mhz = self.spec.validate(freq_mhz)
        self.host.busy(2e-6)
        t = self.clock.now
        init = self.current_frequency_mhz
        self._freq_events = [(ts, f) for ts, f in self._freq_events if ts <= t]
        if abs(init - freq_mhz) < 1e-9:
            self.last_transition_latency_s = 0.0
            return 0.0
        latency = self.transition_model.sample(self.rng, init, freq_mhz)
        # Short adaptation step midway through the transition.
        mid_f = self.spec.validate(
            self.spec.min_frequency_mhz
            + self.spec.step_mhz
            * round(
                ((init + freq_mhz) / 2 - self.spec.min_frequency_mhz)
                / self.spec.step_mhz
            )
        )
        self._freq_events.append((t + 0.7 * latency, mid_f))
        self._freq_events.append((t + latency, freq_mhz))
        self.last_transition_latency_s = latency
        return latency

    # ------------------------------------------------------------------
    def run_iterations(
        self, n: int, cycles_per_iteration: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Execute ``n`` workload iterations now; returns (starts, ends).

        Timestamps come from the core's own timer (``clock_gettime`` after
        every iteration, as FTaLaT does); the virtual clock advances to the
        end of the last iteration.
        """
        if n <= 0:
            raise ConfigError("need at least one iteration")
        t0 = self.clock.now
        trajectory = FrequencyTrajectory.from_events(
            t0, self._freq_events[0][1], self._freq_events
        )
        cycles = sample_iteration_cycles(
            self.rng, 1, n, cycles_per_iteration, self.spec.iteration_noise_rel
        )
        ts = integrate_iterations(trajectory, np.asarray([t0]), cycles)
        self.clock.advance_to(float(ts.ends_true[0, -1]))
        g = self.spec.timer_granularity_s
        starts = np.floor(ts.starts_true[0] / g) * g
        ends = np.floor(ts.ends_true[0] / g) * g
        return starts, ends
