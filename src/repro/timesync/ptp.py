"""Two-way (IEEE 1588 / PTP) offset estimation between host and GPU clocks.

The exchange per round::

    t1 = CPU clock at request send
    t2 = GPU clock at request arrival      (after uplink delay d_up)
    t3 = GPU clock at response send
    t4 = CPU clock at response arrival     (after downlink delay d_down)

    offset = ((t2 - t1) + (t3 - t4)) / 2
    delay  = ((t4 - t1) - (t3 - t2)) / 2

The classic estimator is exact when ``d_up == d_down``; path asymmetry
biases the offset by ``(d_up - d_down)/2``.  PCIe register reads are nearly
symmetric, so after taking the minimum-delay round over several exchanges
the residual error is bounded by jitter plus GPU timer quantization — a few
microseconds, negligible against millisecond-scale switching latencies.

The result converts CPU timestamps into the accelerator timebase exactly as
Algorithm 2 line 6 does: ``t_acc = t_cpu - cpu_sync + acc_sync``.

Draw-order contract
-------------------
The handshake consumes the host RNG in one fixed, batched order per call —
uplink jitter ``(rounds, 2)``, spike uniforms ``(rounds, 2)``, spike
magnitudes ``(rounds, 2)``, turnaround uniforms ``(rounds,)`` — rather than
round by round.  Spike magnitudes are always drawn and applied only where
the spike uniform fires, so the number of draws is a pure function of
``rounds``.  This is the canonical entry in the campaign's RNG draw-order
ledger (see DESIGN.md): every measurement path, scalar or pass-block
batched, performs exactly this sequence, which is what keeps the batched
campaign bit-identical to the scalar reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.gpusim.device import GpuDevice
from repro.simtime.host import HostCpu

__all__ = ["PtpLink", "SyncResult", "synchronize_timers"]


@dataclass(frozen=True)
class PtpLink:
    """Transport model for the synchronization handshake.

    ``asymmetry_s`` shifts the uplink/downlink split: the uplink takes
    ``base + asymmetry`` and the downlink ``base - asymmetry`` on average,
    producing the classic un-detectable PTP bias.
    """

    base_delay_s: float = 1.5e-6
    jitter_scale_s: float = 0.4e-6
    asymmetry_s: float = 0.0
    spike_prob: float = 0.01
    spike_scale_s: float = 30e-6

    def sample_delay(self, rng: np.random.Generator, direction: str) -> float:
        """One transport delay (kept for API stability and unit tests).

        The handshake itself uses :meth:`sample_delays` — a different,
        batched draw order — so calling this does *not* reproduce the
        draws :func:`synchronize_timers` makes.
        """
        sign = 1.0 if direction == "up" else -1.0
        delay = (
            self.base_delay_s
            + sign * self.asymmetry_s
            + float(rng.exponential(self.jitter_scale_s))
        )
        if rng.random() < self.spike_prob:
            delay += float(rng.exponential(self.spike_scale_s))
        return max(delay, 1e-9)

    def sample_delays(
        self, rng: np.random.Generator, rounds: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched uplink/downlink delays for ``rounds`` exchanges.

        Returns ``(up, down)`` arrays of shape ``(rounds,)``.  The draw
        order is fixed (jitter, spike uniforms, spike magnitudes — each
        ``(rounds, 2)`` with up in column 0) so the stream consumption is
        independent of which rounds spike.
        """
        jitter = rng.exponential(self.jitter_scale_s, size=(rounds, 2))
        spike_u = rng.random((rounds, 2))
        spikes = rng.exponential(self.spike_scale_s, size=(rounds, 2))
        delays = jitter
        delays += self.base_delay_s
        delays[:, 0] += self.asymmetry_s
        delays[:, 1] -= self.asymmetry_s
        delays += np.where(spike_u < self.spike_prob, spikes, 0.0)
        np.maximum(delays, 1e-9, out=delays)
        return delays[:, 0], delays[:, 1]


@dataclass(frozen=True)
class SyncResult:
    """Matched (cpu_sync, acc_sync) reference pair plus quality metadata."""

    cpu_sync: float
    acc_sync: float
    offset: float
    path_delay: float
    rounds: int
    delay_spread: float

    def cpu_to_acc(self, t_cpu: float) -> float:
        """Convert a CPU timestamp into the accelerator timebase."""
        return t_cpu - self.cpu_sync + self.acc_sync

    def acc_to_cpu(self, t_acc: float) -> float:
        return t_acc - self.acc_sync + self.cpu_sync


def synchronize_timers(
    host: HostCpu,
    device: GpuDevice,
    rounds: int = 16,
    link: PtpLink | None = None,
) -> SyncResult:
    """Run ``rounds`` two-way exchanges; keep the minimum-delay round.

    The minimum-delay filter discards rounds inflated by transport spikes
    (the standard PTP servo trick), leaving the offset estimate limited by
    quantization and intrinsic jitter.
    """
    if rounds < 1:
        raise SimulationError("need at least one sync round")
    link = link or PtpLink()
    rng = host.rng

    # All transport draws for the handshake happen up front in the fixed
    # batched order (see the module docstring), then the whole exchange is
    # evaluated as array math: the true-time grid is the running sum of
    # the per-leg durations, and the hardware-timer views are vectorized
    # conversions of that grid.  The machine clock commits once at the end.
    up, down = link.sample_delays(rng, rounds)
    turnaround = rng.uniform(0.2e-6, 0.6e-6, size=rounds)

    t0 = host.clock.now
    grid = np.empty(3 * rounds + 1)
    grid[0] = 0.0
    legs = grid[1:].reshape(rounds, 3)
    legs[:, 0] = up
    legs[:, 1] = turnaround
    legs[:, 2] = down
    np.cumsum(grid, out=grid)
    grid += t0

    # One conversion sweep per clock domain over the whole grid; the
    # per-round views below are slices of the converted buffers.
    t_host = host.os_clock.convert_array(grid)
    t_gpu = device.gpu_clock.convert_array(grid)
    t1 = t_host[0::3][:-1]
    t2 = t_gpu[1::3]
    t3 = t_gpu[2::3]
    t4 = t_host[3::3]

    offsets = ((t2 - t1) + (t3 - t4)) / 2.0
    delays = ((t4 - t1) - (t3 - t2)) / 2.0
    # Minimum-delay filtering; argmin keeps the first minimum, matching
    # the strict-less comparison of the original round-by-round loop.
    best = int(np.argmin(delays))

    host.clock.advance_to(float(grid[-1]))
    # The grid bypassed HardwareClock.read() (pure conversions instead);
    # one real read per clock re-arms the monotonic guard and _last_read
    # bookkeeping for later callers, and asserts consistency once per
    # handshake.  No time passes and no draws are consumed.
    host.os_clock.read()
    device.gpu_clock.read()
    return SyncResult(
        cpu_sync=float(t1[best]),
        acc_sync=float(t1[best] + offsets[best]),
        offset=float(offsets[best]),
        path_delay=float(delays[best]),
        rounds=rounds,
        delay_spread=float(np.ptp(delays)),
    )
