"""Two-way (IEEE 1588 / PTP) offset estimation between host and GPU clocks.

The exchange per round::

    t1 = CPU clock at request send
    t2 = GPU clock at request arrival      (after uplink delay d_up)
    t3 = GPU clock at response send
    t4 = CPU clock at response arrival     (after downlink delay d_down)

    offset = ((t2 - t1) + (t3 - t4)) / 2
    delay  = ((t4 - t1) - (t3 - t2)) / 2

The classic estimator is exact when ``d_up == d_down``; path asymmetry
biases the offset by ``(d_up - d_down)/2``.  PCIe register reads are nearly
symmetric, so after taking the minimum-delay round over several exchanges
the residual error is bounded by jitter plus GPU timer quantization — a few
microseconds, negligible against millisecond-scale switching latencies.

The result converts CPU timestamps into the accelerator timebase exactly as
Algorithm 2 line 6 does: ``t_acc = t_cpu - cpu_sync + acc_sync``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.gpusim.device import GpuDevice
from repro.simtime.host import HostCpu

__all__ = ["PtpLink", "SyncResult", "synchronize_timers"]


@dataclass(frozen=True)
class PtpLink:
    """Transport model for the synchronization handshake.

    ``asymmetry_s`` shifts the uplink/downlink split: the uplink takes
    ``base + asymmetry`` and the downlink ``base - asymmetry`` on average,
    producing the classic un-detectable PTP bias.
    """

    base_delay_s: float = 1.5e-6
    jitter_scale_s: float = 0.4e-6
    asymmetry_s: float = 0.0
    spike_prob: float = 0.01
    spike_scale_s: float = 30e-6

    def sample_delay(self, rng: np.random.Generator, direction: str) -> float:
        sign = 1.0 if direction == "up" else -1.0
        delay = (
            self.base_delay_s
            + sign * self.asymmetry_s
            + float(rng.exponential(self.jitter_scale_s))
        )
        if rng.random() < self.spike_prob:
            delay += float(rng.exponential(self.spike_scale_s))
        return max(delay, 1e-9)


@dataclass(frozen=True)
class SyncResult:
    """Matched (cpu_sync, acc_sync) reference pair plus quality metadata."""

    cpu_sync: float
    acc_sync: float
    offset: float
    path_delay: float
    rounds: int
    delay_spread: float

    def cpu_to_acc(self, t_cpu: float) -> float:
        """Convert a CPU timestamp into the accelerator timebase."""
        return t_cpu - self.cpu_sync + self.acc_sync

    def acc_to_cpu(self, t_acc: float) -> float:
        return t_acc - self.acc_sync + self.cpu_sync


def synchronize_timers(
    host: HostCpu,
    device: GpuDevice,
    rounds: int = 16,
    link: PtpLink | None = None,
) -> SyncResult:
    """Run ``rounds`` two-way exchanges; keep the minimum-delay round.

    The minimum-delay filter discards rounds inflated by transport spikes
    (the standard PTP servo trick), leaving the offset estimate limited by
    quantization and intrinsic jitter.
    """
    if rounds < 1:
        raise SimulationError("need at least one sync round")
    link = link or PtpLink()
    rng = host.rng

    # The handshake is a pure alternation of clock conversions and local
    # time advances; tracking true time in a local accumulator (committed
    # to the machine clock once at the end) keeps the per-round cost at
    # the random draws themselves.  The advance sequence — and therefore
    # every timestamp and every draw — is identical to stepping the shared
    # clock through ``host.busy`` on each leg.
    os_convert = host.os_clock.convert
    gpu_convert = device.gpu_clock.convert
    sample_delay = link.sample_delay
    uniform = rng.uniform
    t = host.clock.now

    best: tuple[float, float, float] | None = None  # (delay, offset, t1)
    delays = []
    for _ in range(rounds):
        t1 = os_convert(t)
        t += sample_delay(rng, "up")
        t2 = gpu_convert(t)
        # Device-side turnaround (firmware handling the probe).
        t += float(uniform(0.2e-6, 0.6e-6))
        t3 = gpu_convert(t)
        t += sample_delay(rng, "down")
        t4 = os_convert(t)

        offset = ((t2 - t1) + (t3 - t4)) / 2.0
        delay = ((t4 - t1) - (t3 - t2)) / 2.0
        delays.append(delay)
        if best is None or delay < best[0]:
            best = (delay, offset, t1)

    host.clock.advance_to(t)
    # The loop bypassed HardwareClock.read() (pure conversions instead);
    # one real read per clock re-arms the monotonic guard and _last_read
    # bookkeeping for later callers, and asserts consistency once per
    # handshake.  No time passes and no draws are consumed.
    host.os_clock.read()
    device.gpu_clock.read()
    assert best is not None
    delay, offset, t1 = best
    return SyncResult(
        cpu_sync=t1,
        acc_sync=t1 + offset,
        offset=offset,
        path_delay=delay,
        rounds=rounds,
        delay_spread=float(np.ptp(delays)),
    )
