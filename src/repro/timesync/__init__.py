"""CPU <-> accelerator timer synchronization (IEEE 1588 style).

Paper Sec. V-B: "the CPU and ACC timers are first synchronized using the
IEEE 1588 standard.  This synchronization ensures that we can accurately
determine the ACC timestamp of the frequency change command."
"""

from repro.timesync.ptp import PtpLink, SyncResult, synchronize_timers

__all__ = ["PtpLink", "SyncResult", "synchronize_timers"]
