"""``latest-bench``: command-line interface mirroring the LATEST tool.

Paper Sec. VI: "This benchmark application accepts one mandatory argument -
a comma-separated list of the benchmarked frequencies", plus optional
device index, relative-standard-error threshold, and minimum/maximum
measurement counts.  The simulated-environment extras (GPU model, seed,
recorded-SM count) are grouped separately.
"""

from __future__ import annotations

import argparse
import shlex
import sys

from repro.analysis.heatmap import heatmaps_by_memory
from repro.analysis.render import (
    render_facet_grid,
    render_heatmap,
    render_table2,
)
from repro.analysis.summary import summarize_campaign
from repro.core.campaign import run_campaign
from repro.core.config import LatestConfig
from repro.errors import CampaignInterrupted, JournalModeError, ReproError
from repro.machine import make_machine

__all__ = ["build_parser", "engine_mode_command", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="latest-bench",
        description=(
            "Measure GPU SM frequency switching latency on a simulated "
            "CUDA device (reproduction of the LATEST methodology)."
        ),
    )
    parser.add_argument(
        "frequencies",
        nargs="?",
        default=None,
        help="comma-separated swept-axis values to benchmark: SM clocks "
        "in MHz by default (e.g. 705,1095,1410), memory clocks with "
        "--axis memory, power limits in W with --axis power (where "
        "--power-limits may supply them instead)",
    )
    parser.add_argument(
        "--axis",
        choices=("sm", "memory", "power"),
        default="sm",
        help="actuator to sweep: 'sm' (the paper's setup, default), "
        "'memory' (memory-clock pair switching latency at a locked SM "
        "clock) or 'power' (board power-limit switching latency at a "
        "locked SM clock)",
    )
    parser.add_argument(
        "--power-limits",
        default=None,
        metavar="LIST",
        help="comma-separated board power limits in W to sweep (each must "
        "be on the device's settable ladder); alternative to the "
        "positional list with --axis power",
    )
    parser.add_argument(
        "--locked-sm",
        default=None,
        metavar="MHZ[,MHZ...]",
        help="SM clock a memory- or power-axis campaign locks for its "
        "whole duration (default: the device's maximum SM frequency); a "
        "comma-separated list runs the full pair grid once per locked SM "
        "clock (facet sweep — the transpose of the core×memory grid)",
    )
    parser.add_argument(
        "--kernel-memory-intensity",
        type=float,
        default=None,
        metavar="BETA",
        help="memory-bound fraction of the benchmark kernel in [0, 1); "
        "default: the swept axis's own default (0.30 for --axis sm, "
        "0.70 for --axis memory)",
    )
    parser.add_argument(
        "--device", type=int, default=0, help="GPU index (default 0)"
    )
    parser.add_argument(
        "--rse",
        type=float,
        default=0.05,
        help="relative standard error stop threshold (default 0.05)",
    )
    parser.add_argument(
        "--min-measurements",
        type=int,
        default=25,
        help="measurements collected before RSE checks start",
    )
    parser.add_argument(
        "--max-measurements",
        type=int,
        default=200,
        help="hard per-pair measurement cap",
    )
    parser.add_argument(
        "--memory-frequencies",
        default=None,
        metavar="LIST",
        help="comma-separated memory clocks in MHz to sweep the SM pair "
        "grid over (core×memory campaign; each clock must be on the "
        "device's supported memory ladder); omit for the classic "
        "fixed-memory campaign",
    )
    parser.add_argument(
        "--output-dir",
        default=None,
        help="directory for the per-pair CSV files",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="measure frequency pairs across N worker processes via the "
        "execution engine (results are bit-identical for any N, including "
        "N=1); omit for the classic strictly-serial single-timeline loop "
        "(default 1 process either way)",
    )
    parser.add_argument(
        "--pass-block",
        type=int,
        default=25,
        metavar="B",
        help="upper bound on the batched pass-block size of the per-pair "
        "measurement loop (results are bit-identical for every value); "
        "0 forces the scalar reference loop (default 25)",
    )
    parser.add_argument(
        "--pair-batch",
        type=int,
        default=None,
        metavar="N",
        help="advance up to N frequency pairs in lockstep through one "
        "structure-of-arrays evaluation sweep per round (results are "
        "bit-identical for every N); runs through the execution engine, "
        "so --workers defaults to 1 when this is given; requires the "
        "pass-block pipeline (--pass-block > 0)",
    )
    parser.add_argument(
        "--calibration-cache",
        default=None,
        metavar="DIR",
        help="persistent per-facet calibration cache: phase-1 and probe "
        "results are stored in DIR keyed by a content fingerprint of "
        "everything that can affect them (config, blueprint, facet, "
        "seed), so a repeated campaign replays its calibrations without "
        "re-measuring — results stay bit-identical to a cold run; runs "
        "through the execution engine, so --workers defaults to 1 when "
        "this is given",
    )
    fault = parser.add_argument_group("fault tolerance")
    fault.add_argument(
        "--journal",
        default=None,
        metavar="DIR",
        help="record every completed pair to a durable journal in DIR as "
        "it lands; SIGINT/SIGTERM then stop the campaign gracefully "
        "(drain in-flight pairs, flush) instead of losing it, and an "
        "engine-mode run (--workers) can be continued with --resume",
    )
    fault.add_argument(
        "--resume",
        action="store_true",
        help="continue the interrupted campaign journaled in --journal "
        "DIR: the journal's config/seed fingerprint is validated, "
        "finished pairs are merged as recorded, and only the rest are "
        "measured — the final results (CSV bytes included) are "
        "bit-identical to an uninterrupted run; requires --workers",
    )
    fault.add_argument(
        "--max-job-retries",
        type=int,
        default=2,
        metavar="N",
        help="worker-level retries per measurement unit before its pairs "
        "are quarantined as recorded skips (default 2)",
    )
    fault.add_argument(
        "--job-timeout-factor",
        type=float,
        default=None,
        metavar="F",
        help="per-unit wall-clock deadline = floor + F x expected virtual "
        "cost (probe cost model); a unit that blows it is treated as hung "
        "and retried on a rebuilt pool (default: no deadlines)",
    )
    fault.add_argument(
        "--inject-faults",
        default=None,
        metavar="SPEC",
        help="deterministic fault injection for testing the recovery "
        "paths: semicolon-separated kind@index[*fires][:param] actions, "
        "kinds kill/hang/raise/corrupt/interrupt (see repro.exec.faults)",
    )
    parser.add_argument(
        "--profile",
        default=None,
        metavar="OUT.pstats",
        help="profile the campaign under cProfile and write the stats to "
        "this path (inspect with python -m pstats or snakeviz); a "
        "per-stage breakdown (phase1/probe/batch-step/peel-off/stream) is "
        "printed to stderr",
    )
    sim = parser.add_argument_group("simulated environment")
    sim.add_argument(
        "--gpu-model",
        default="A100",
        help="A100 | GH200 | RTX6000 (default A100)",
    )
    sim.add_argument(
        "--n-gpus", type=int, default=1, help="GPUs on the simulated node"
    )
    sim.add_argument("--seed", type=int, default=0, help="simulation seed")
    sim.add_argument(
        "--sm-count",
        type=int,
        default=None,
        help="SMs recorded by the benchmark kernel (default: all)",
    )
    sim.add_argument(
        "--hostname", default="simnode01", help="simulated hostname"
    )
    parser.add_argument(
        "--heatmaps",
        action="store_true",
        help="print min/max latency heatmaps after the campaign",
    )
    parser.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write a full markdown campaign report to PATH",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-pair progress"
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="live single-line progress on stderr, driven by the campaign "
        "event stream: pairs done against the grid total, with "
        "measured/replayed/skipped/retried counts as events land",
    )
    parser.add_argument(
        "--stream-csv",
        default=None,
        metavar="DIR",
        help="write each pair's CSV to DIR the moment its result lands on "
        "the campaign event stream (instead of after the campaign); the "
        "final files are byte-identical to the --output-dir batch writer, "
        "and an interrupted campaign keeps every pair CSV written so far",
    )
    return parser


def engine_mode_command(argv: list[str], journal_dir: str) -> str:
    """The engine-mode re-run command for an unresumable serial journal.

    A serial-mode journal cannot be resumed (the serial loop shares one
    timeline), so the campaign must be re-run through the execution
    engine to become resumable: drop ``--resume``, keep any explicit
    ``--workers`` (default 1 otherwise), and point ``--journal`` at a
    fresh directory — a fresh open refuses the existing serial journal.
    """
    tokens: list[str] = []
    have_workers = False
    it = iter(argv)
    for tok in it:
        if tok == "--resume":
            continue
        if tok == "--journal":
            next(it, None)
            continue
        if tok.startswith("--journal="):
            continue
        if tok == "--workers" or tok.startswith("--workers="):
            have_workers = True
        tokens.append(tok)
    if not have_workers:
        tokens += ["--workers", "1"]
    tokens += ["--journal", f"{journal_dir}-engine"]
    return "latest-bench " + " ".join(shlex.quote(tok) for tok in tokens)


def parse_frequencies(
    text: str, minimum: int = 2, label: str = "frequency"
) -> tuple[float, ...]:
    """Parse and validate a comma-separated frequency list.

    Rejects non-numeric tokens, non-positive clocks (``nearest_clock``
    would otherwise snap them silently) and duplicates (which produce
    degenerate ``f->f`` self-pairs) with a clear :class:`SystemExit`.
    """
    try:
        freqs = tuple(float(tok) for tok in text.split(",") if tok.strip())
    except ValueError:
        raise SystemExit(f"invalid {label} list: {text!r}")
    if len(freqs) < minimum:
        raise SystemExit(f"need at least {minimum} {label} value(s): {text!r}")
    if any(f <= 0 for f in freqs):
        raise SystemExit(f"{label} values must be positive: {text!r}")
    if len(set(freqs)) != len(freqs):
        raise SystemExit(f"duplicate {label} values: {text!r}")
    return freqs


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    axis = {"sm": "sm_core", "memory": "memory", "power": "power"}[args.axis]
    if args.power_limits is not None and axis != "power":
        raise SystemExit("--power-limits only applies to --axis power")
    if axis == "power":
        if args.power_limits is not None and args.frequencies is not None:
            raise SystemExit(
                "give the power-limit ladder once: either positionally or "
                "via --power-limits, not both"
            )
        source = args.power_limits or args.frequencies
        if source is None:
            raise SystemExit(
                "the power axis needs a power-limit ladder (positional or "
                "--power-limits), e.g. 400,330,270"
            )
        freqs = parse_frequencies(source, label="power limit")
    else:
        if args.frequencies is None:
            raise SystemExit("a comma-separated frequency list is required")
        freqs = parse_frequencies(
            args.frequencies,
            label="memory frequency" if axis == "memory" else "frequency",
        )
    if axis != "sm_core" and args.memory_frequencies is not None:
        raise SystemExit(
            "--memory-frequencies (core×memory grid facets) only applies "
            "to --axis sm; other axes sweep their own values through "
            "the positional list"
        )
    if args.locked_sm is not None and axis == "sm_core":
        raise SystemExit("--locked-sm only applies to --axis memory/power")
    locked_sm: "float | tuple[float, ...] | None" = None
    if args.locked_sm is not None:
        plan = parse_frequencies(args.locked_sm, minimum=1, label="locked-SM")
        locked_sm = plan[0] if len(plan) == 1 else plan
    mem_freqs = (
        parse_frequencies(
            args.memory_frequencies, minimum=1, label="memory frequency"
        )
        if args.memory_frequencies is not None
        else None
    )

    if args.pair_batch is not None:
        if args.pass_block <= 0:
            raise SystemExit(
                "--pair-batch needs the pass-block pipeline (--pass-block > 0)"
            )
        if args.workers is None:
            # The SoA tier lives in the execution engine; route there.
            args.workers = 1
    if args.resume:
        if args.journal is None:
            raise SystemExit("--resume needs --journal DIR")
        if args.workers is None:
            # Resume is engine-only (the serial loop shares one timeline);
            # route through the engine at its bit-identical default.
            args.workers = 1
    if args.calibration_cache is not None and args.workers is None:
        # The calibration cache is engine-only for the same reason
        # resume is: the serial loop cannot skip calibration
        # bit-identically on one shared timeline.
        args.workers = 1

    machine = make_machine(
        args.gpu_model,
        n_gpus=args.n_gpus,
        seed=args.seed,
        hostname=args.hostname,
    )
    try:
        config = LatestConfig(
            frequencies=freqs,
            axis=axis,
            locked_sm_mhz=locked_sm,
            kernel_memory_intensity=args.kernel_memory_intensity,
            memory_frequencies=mem_freqs,
            device_index=args.device,
            rse_threshold=args.rse,
            min_measurements=args.min_measurements,
            max_measurements=args.max_measurements,
            record_sm_count=args.sm_count,
            output_dir=args.output_dir,
            pass_block_size=args.pass_block if args.pass_block > 0 else None,
            pair_batch_size=args.pair_batch,
            max_job_retries=args.max_job_retries,
            job_timeout_factor=args.job_timeout_factor,
            inject_faults=args.inject_faults,
            calibration_cache=args.calibration_cache,
        )
    except ReproError as exc:
        raise SystemExit(f"error: {exc}")
    sinks = []
    if args.progress:
        from repro.core.stream import ProgressSink

        sinks.append(ProgressSink())
    if args.stream_csv:
        from repro.core.csvio import CsvStreamSink

        sinks.append(CsvStreamSink(args.stream_csv))
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        result = run_campaign(
            machine,
            config,
            workers=args.workers,
            journal=args.journal,
            resume=args.resume,
            sinks=tuple(sinks),
        )
    except JournalModeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        if args.resume:
            hint = engine_mode_command(
                list(argv) if argv is not None else sys.argv[1:],
                args.journal,
            )
            print(
                f"the journal at {args.journal} was recorded by a "
                f"{exc.recorded_mode!r}-mode run; {exc.recorded_mode} "
                "journals cannot be resumed (one shared timeline). "
                "Re-run the campaign through the execution engine so "
                "future interruptions are resumable:",
                file=sys.stderr,
            )
            print(f"  {hint}", file=sys.stderr)
        return 1
    except CampaignInterrupted as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        if exc.journal_dir is not None and args.workers is not None:
            print(
                f"resume with: --journal {exc.journal_dir} --resume",
                file=sys.stderr,
            )
        return 130
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if profiler is not None:
            profiler.disable()
            profiler.dump_stats(args.profile)
            print(f"profile written to {args.profile}", file=sys.stderr)
            from repro.core.calibcache import last_run_stats
            from repro.profiling import render_stage_breakdown

            print(
                render_stage_breakdown(
                    args.profile, cache_stats=last_run_stats()
                ),
                file=sys.stderr,
            )

    if args.calibration_cache is not None:
        from repro.core.calibcache import last_run_stats

        cache_stats = last_run_stats()
        if cache_stats is not None:
            # Deliberately not gated on --quiet: harnesses (the CI cache
            # smoke test among them) grep this line off stderr.
            print(
                f"calibration cache: {cache_stats['hits']} hit(s), "
                f"{cache_stats['misses']} miss(es), "
                f"{cache_stats['installs']} installed",
                file=sys.stderr,
            )

    if not args.quiet:
        from repro.core.axis import axis_by_name

        unit = axis_by_name(result.axis).unit
        if result.locked_sm_mhz is not None:
            print(
                f"{result.axis}-axis campaign: {result.swept_label} pairs "
                f"at locked SM {result.locked_sm_mhz:g} MHz"
            )
        elif result.locked_sm_frequencies is not None:
            clocks = ", ".join(f"{f:g}" for f in result.locked_sm_frequencies)
            print(
                f"{result.axis}-axis campaign: {result.swept_label} pairs "
                f"once per locked SM clock ({clocks} MHz)"
            )
        for pair in result.pairs.values():
            if pair.memory_mhz is not None:
                facet = f" @ mem {pair.memory_mhz:7g} MHz"
            elif pair.locked_sm_mhz is not None:
                facet = f" @ SM {pair.locked_sm_mhz:7g} MHz"
            else:
                facet = ""
            if pair.skipped:
                print(
                    f"{pair.init_mhz:7g} -> {pair.target_mhz:7g} {unit}{facet}: "
                    f"skipped ({pair.skip_reason})"
                )
                continue
            stats = pair.stats(without_outliers=True)
            print(
                f"{pair.init_mhz:7g} -> {pair.target_mhz:7g} {unit}{facet}: "
                f"n={pair.n_measurements:4d}  "
                f"min={stats.minimum * 1e3:8.3f} ms  "
                f"mean={stats.mean * 1e3:8.3f} ms  "
                f"max={stats.maximum * 1e3:8.3f} ms  "
                f"clusters={pair.n_clusters}"
            )

    print()
    print(render_table2([summarize_campaign(result)]))
    if args.heatmaps:
        for stat in ("min", "max"):
            grids = heatmaps_by_memory(result, stat)
            if len(grids) == 1:
                print()
                print(render_heatmap(next(iter(grids.values()))))
                continue
            # Faceted campaign: all facets side by side.
            print()
            print(
                f"{result.gpu_name} — {stat} switching latencies [ms] "
                f"(one panel per {result.facet_kind})"
            )
            print(render_facet_grid(grids))
    if args.report:
        from repro.analysis.report import write_campaign_report

        path = write_campaign_report(result, args.report)
        print(f"\nreport written to {path}")
    if args.output_dir:
        print(f"\nCSV files written to {args.output_dir}")
    if args.stream_csv:
        print(f"\nstreamed CSV files written to {args.stream_csv}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
