"""The thread ↔ event-loop bridge for campaign event streams.

The execution side of the service emits typed :mod:`repro.core.stream`
events from whatever thread is doing the work — ``prepare``/``finish``
run in an executor thread, per-shard results are emitted from the event
loop.  :class:`QueueBridgeSink` is the :class:`~repro.core.stream.
CampaignSink` that carries those events onto the loop: every
``on_event`` marshals through ``loop.call_soon_threadsafe`` (safe from
both loop and non-loop threads, FIFO per caller), where the
:class:`EventBroadcast` appends to the campaign's history and fans out
to every subscriber's :class:`asyncio.Queue`.

Subscribers may attach at any time: :meth:`EventBroadcast.subscribe`
preloads the new queue with the full history, so a late ``events``
client still sees the stream from ``CampaignStarted`` — in original
order, because history append and fan-out happen in one loop callback.
A closed stream is signalled by a ``None`` sentinel (events are never
``None``); :meth:`EventBroadcast.aiter` hides the sentinel behind an
async iterator.

The bridge never feeds back into measurement: publishing draws no RNG
and advances no virtual clock, so attaching zero or many subscribers
cannot change campaign results (the stream contract of
:mod:`repro.core.stream`).
"""

from __future__ import annotations

import asyncio

from repro.core.stream import CampaignEvent, CampaignSink

__all__ = ["EventBroadcast", "QueueBridgeSink"]


class EventBroadcast:
    """One campaign's event history plus its live subscriber queues."""

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        self.history: list[CampaignEvent] = []
        self._queues: list[asyncio.Queue] = []
        self.closed = False
        #: the stream ended without ``CampaignFinished`` (cancel/crash)
        self.interrupted = False

    # -- producer side (any thread) ------------------------------------
    def publish(self, event: CampaignEvent) -> None:
        """Thread-safe: deliver one event on the loop, in call order."""
        self._loop.call_soon_threadsafe(self._deliver, event)

    def close(self, interrupted: bool = False) -> None:
        """Thread-safe: end the stream (sends the ``None`` sentinel)."""
        self._loop.call_soon_threadsafe(self._close, interrupted)

    def _deliver(self, event: CampaignEvent) -> None:
        if self.closed:  # late event after close: drop, stream is over
            return
        self.history.append(event)
        for queue in self._queues:
            queue.put_nowait(event)

    def _close(self, interrupted: bool) -> None:
        if self.closed:
            return
        self.closed = True
        self.interrupted = interrupted
        for queue in self._queues:
            queue.put_nowait(None)
        self._queues.clear()

    # -- consumer side (loop thread) -----------------------------------
    def subscribe(self) -> asyncio.Queue:
        """New subscriber queue, preloaded with the full history.

        Must be called on the loop thread (the service API layer).  The
        queue yields every event in emission order and then the ``None``
        end-of-stream sentinel.
        """
        queue: asyncio.Queue = asyncio.Queue()
        for event in self.history:
            queue.put_nowait(event)
        if self.closed:
            queue.put_nowait(None)
        else:
            self._queues.append(queue)
        return queue

    async def aiter(self):
        """Async-iterate the stream; ends when the campaign does."""
        queue = self.subscribe()
        while True:
            event = await queue.get()
            if event is None:
                return
            yield event


class QueueBridgeSink(CampaignSink):
    """The :class:`~repro.core.stream.CampaignSink` feeding a broadcast.

    Attach it to a campaign's :class:`~repro.core.stream.
    StreamDispatcher` next to the result accumulator and the journal;
    it republishes every event onto the loop and flags the broadcast
    when the stream is interrupted.
    """

    def __init__(self, broadcast: EventBroadcast) -> None:
        self.broadcast = broadcast

    def on_event(self, event: CampaignEvent) -> None:
        """Republish the event onto the campaign's broadcast."""
        self.broadcast.publish(event)

    def on_interrupt(self) -> None:
        """End the broadcast flagged interrupted (no ``CampaignFinished``)."""
        self.broadcast.close(interrupted=True)
