"""The ``repro`` console entry point: campaign service operations.

Subcommands (one service verb each — see ``docs/cli.md`` for the full
flag reference and ``docs/service.md`` for semantics):

``repro serve``
    Run the campaign service on a unix socket until SIGINT/SIGTERM,
    then drain gracefully.  With ``--journal-root``, in-flight
    campaigns found under the root are resumed before the socket opens.
``repro submit``
    Submit one campaign over the socket; prints its id.  With
    ``--wait``, follows the event stream and exits when the campaign
    ends (exit code 3 if it failed or was cancelled).
``repro status``
    Print one campaign's status (or all of them) as JSON.
``repro events``
    Stream a campaign's wire events to stdout, one JSON line each.
``repro cancel``
    Cancel a campaign; prints whether it was cancelled.

The measurement flags of ``repro submit`` mirror ``latest-bench``
(same names, same semantics); the service always executes through the
engine tier, so results are bit-identical to ``latest-bench
--workers 1`` with the same parameters.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys

from repro.cli import parse_frequencies
from repro.errors import ReproError
from repro.service.client import SocketClient
from repro.service.requests import CampaignRequest
from repro.service.server import ServiceServer
from repro.service.service import CampaignService

__all__ = ["build_parser", "main"]

_DEFAULT_SOCKET = "repro-service.sock"


def _add_socket(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--socket",
        default=_DEFAULT_SOCKET,
        metavar="PATH",
        help=f"service unix-socket path (default {_DEFAULT_SOCKET})",
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (docs/cli.md is checked against it)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Campaign-as-a-service front end for the LATEST "
        "reproduction: run a fair-share campaign service and drive it.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser(
        "serve",
        help="run the campaign service until SIGINT/SIGTERM",
    )
    _add_socket(serve)
    serve.add_argument(
        "--fleet",
        type=int,
        default=2,
        metavar="N",
        help="worker-fleet slots shared by all campaigns (default 2)",
    )
    serve.add_argument(
        "--journal-root",
        default=None,
        metavar="DIR",
        help="directory holding one durable journal per campaign; "
        "in-flight campaigns found here are resumed at startup",
    )
    serve.add_argument(
        "--calibration-cache",
        default=None,
        metavar="DIR",
        help="calibration cache directory shared across all tenants",
    )
    serve.add_argument(
        "--shard-pairs",
        type=int,
        default=4,
        metavar="N",
        help="pair jobs per fair-share scheduler shard (default 4); "
        "results are identical for every value",
    )

    submit = sub.add_parser(
        "submit", help="submit one campaign to a running service"
    )
    _add_socket(submit)
    submit.add_argument(
        "frequencies",
        help="comma-separated swept-axis values (SM MHz by default, "
        "memory MHz with --axis memory, W with --axis power)",
    )
    submit.add_argument(
        "--axis",
        choices=("sm", "memory", "power"),
        default="sm",
        help="actuator to sweep (default sm)",
    )
    submit.add_argument(
        "--locked-sm",
        default=None,
        metavar="MHZ[,MHZ...]",
        help="locked SM clock(s) for memory/power-axis campaigns",
    )
    submit.add_argument(
        "--memory-frequencies",
        default=None,
        metavar="LIST",
        help="memory clocks for a core×memory grid (--axis sm only)",
    )
    submit.add_argument(
        "--tenant",
        default="default",
        help="fair-share tenant queue (default 'default')",
    )
    submit.add_argument(
        "--weight",
        type=float,
        default=1.0,
        help="tenant fair-share weight (default 1.0)",
    )
    submit.add_argument(
        "--gpu-model",
        default="A100",
        help="A100 | GH200 | RTX6000 (default A100)",
    )
    submit.add_argument(
        "--n-gpus", type=int, default=1, help="GPUs on the simulated node"
    )
    submit.add_argument(
        "--seed", type=int, default=0, help="simulation seed"
    )
    submit.add_argument(
        "--hostname", default="simnode01", help="simulated hostname"
    )
    submit.add_argument(
        "--device", type=int, default=0, help="GPU index (default 0)"
    )
    submit.add_argument(
        "--sm-count",
        type=int,
        default=None,
        help="SMs recorded by the benchmark kernel (default: all)",
    )
    submit.add_argument(
        "--rse",
        type=float,
        default=0.05,
        help="relative standard error stop threshold (default 0.05)",
    )
    submit.add_argument(
        "--min-measurements",
        type=int,
        default=25,
        help="measurements collected before RSE checks start",
    )
    submit.add_argument(
        "--max-measurements",
        type=int,
        default=200,
        help="hard per-pair measurement cap",
    )
    submit.add_argument(
        "--output-dir",
        default=None,
        help="directory the service writes the campaign's CSVs to",
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="follow the event stream and exit when the campaign ends",
    )

    status = sub.add_parser("status", help="print campaign status as JSON")
    _add_socket(status)
    status.add_argument(
        "campaign_id",
        nargs="?",
        default=None,
        help="campaign id (omit for all campaigns)",
    )

    events = sub.add_parser(
        "events", help="stream a campaign's events as JSON lines"
    )
    _add_socket(events)
    events.add_argument("campaign_id", help="campaign id")

    cancel = sub.add_parser("cancel", help="cancel a campaign")
    _add_socket(cancel)
    cancel.add_argument("campaign_id", help="campaign id")

    return parser


def _request_from_args(args: argparse.Namespace) -> CampaignRequest:
    """Mirror the latest-bench axis/frequency mapping into a request."""
    axis = {"sm": "sm_core", "memory": "memory", "power": "power"}[args.axis]
    label = {
        "sm_core": "frequency",
        "memory": "memory frequency",
        "power": "power limit",
    }[axis]
    freqs = parse_frequencies(args.frequencies, label=label)
    if args.locked_sm is not None and axis == "sm_core":
        raise SystemExit("--locked-sm only applies to --axis memory/power")
    if args.memory_frequencies is not None and axis != "sm_core":
        raise SystemExit("--memory-frequencies only applies to --axis sm")
    config: dict = {"frequencies": list(freqs), "axis": axis}
    if args.locked_sm is not None:
        plan = parse_frequencies(args.locked_sm, minimum=1, label="locked-SM")
        config["locked_sm_mhz"] = plan[0] if len(plan) == 1 else list(plan)
    if args.memory_frequencies is not None:
        config["memory_frequencies"] = list(
            parse_frequencies(
                args.memory_frequencies, minimum=1, label="memory frequency"
            )
        )
    config["device_index"] = args.device
    config["rse_threshold"] = args.rse
    config["min_measurements"] = args.min_measurements
    config["max_measurements"] = args.max_measurements
    if args.sm_count is not None:
        config["record_sm_count"] = args.sm_count
    if args.output_dir is not None:
        config["output_dir"] = args.output_dir
    return CampaignRequest(
        tenant=args.tenant,
        weight=args.weight,
        gpu_model=args.gpu_model,
        n_gpus=args.n_gpus,
        seed=args.seed,
        hostname=args.hostname,
        config=config,
    )


async def _serve(args: argparse.Namespace) -> int:
    service = CampaignService(
        fleet_size=args.fleet,
        journal_root=args.journal_root,
        calibration_cache=args.calibration_cache,
        shard_pairs=args.shard_pairs,
    )
    resumed = await service.start()
    for campaign_id in resumed:
        print(f"resuming {campaign_id}", file=sys.stderr)
    server = ServiceServer(service, args.socket)
    await server.start()
    print(f"repro service listening on {args.socket}", file=sys.stderr)
    stop = asyncio.Event()
    loop = asyncio.get_event_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(sig, stop.set)
    await stop.wait()
    print("draining campaigns...", file=sys.stderr)
    await server.close()
    await service.stop(drain=True)
    return 0


async def _submit(args: argparse.Namespace) -> int:
    client = SocketClient(args.socket)
    campaign_id = await client.submit(_request_from_args(args))
    print(campaign_id)
    if not args.wait:
        return 0
    finished = False
    async for event in client.events(campaign_id):
        print(json.dumps(event))
        if event.get("type") == "campaign_finished":
            finished = True
    return 0 if finished else 3


async def _status(args: argparse.Namespace) -> int:
    client = SocketClient(args.socket)
    print(json.dumps(await client.status(args.campaign_id), indent=2))
    return 0


async def _events(args: argparse.Namespace) -> int:
    client = SocketClient(args.socket)
    async for event in client.events(args.campaign_id):
        print(json.dumps(event))
    return 0


async def _cancel(args: argparse.Namespace) -> int:
    client = SocketClient(args.socket)
    cancelled = await client.cancel(args.campaign_id)
    print("cancelled" if cancelled else "already finished")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    """Entry point of the ``repro`` console script."""
    args = build_parser().parse_args(argv)
    handler = {
        "serve": _serve,
        "submit": _submit,
        "status": _status,
        "events": _events,
        "cancel": _cancel,
    }[args.command]
    try:
        return asyncio.run(handler(args))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ConnectionRefusedError, FileNotFoundError):
        print(
            f"error: no service listening on {args.socket} "
            "(start one with: repro serve)",
            file=sys.stderr,
        )
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
