"""JSON-lines unix-socket server for :class:`CampaignService`.

Protocol: the client sends exactly one JSON object per connection and
reads JSON-object lines back.

Operations (``op`` field):

``ping``
    Liveness probe → ``{"ok": true, "pong": true}``.
``submit``
    ``{"op": "submit", "request": {...CampaignRequest fields...}}`` →
    ``{"ok": true, "campaign_id": "c0001"}``.
``status``
    Optional ``campaign_id`` → one or a list of status payloads
    (:meth:`~repro.service.service.CampaignStatus.to_wire`).
``events``
    Required ``campaign_id`` → an acknowledgement line, then one
    ``{"event": {...}}`` line per campaign event (history first, live
    after), then ``{"done": true, "interrupted": <bool>}``.
``cancel``
    Required ``campaign_id`` → ``{"ok": true, "cancelled": <bool>}``.

Any failure returns ``{"ok": false, "error": "<message>"}`` and closes
the connection.  Events cross the wire as flat JSON (``event_to_wire``)
— the typed in-process stream stays on the Python side; wire clients
get the scalar payload every dashboard needs.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

from repro.core.stream import (
    CampaignEvent,
    CampaignFinished,
    CampaignStarted,
    FacetPrepared,
    PairMeasured,
    PairRetried,
    PairSkipped,
)
from repro.errors import ReproError
from repro.service.requests import CampaignRequest
from repro.service.service import CampaignService

__all__ = ["ServiceServer", "event_to_wire"]


def event_to_wire(event: CampaignEvent) -> dict:
    """Flatten one typed stream event into a JSON-serializable dict."""
    if isinstance(event, CampaignStarted):
        return {
            "type": "campaign_started",
            "gpu_name": event.gpu_name,
            "hostname": event.hostname,
            "axis": event.axis,
            "n_pairs": event.n_pairs,
            "n_facets": len(event.facet_plan),
            "mode": event.mode,
            "resumed": event.resumed,
        }
    if isinstance(event, FacetPrepared):
        return {
            "type": "facet_prepared",
            "facet_index": event.facet_index,
            "facet": event.facet,
            "prepared": event.prepared,
            "cache_hit": event.cache_hit,
        }
    if isinstance(event, PairMeasured):
        pair = event.pair
        return {
            "type": "pair_measured",
            "index": event.index,
            "init_mhz": pair.init_mhz,
            "target_mhz": pair.target_mhz,
            "skipped": pair.skipped,
            "skip_reason": pair.skip_reason,
            "n_measurements": pair.n_measurements,
            "elapsed_virtual_s": event.elapsed_virtual_s,
            "replayed": event.replayed,
        }
    if isinstance(event, PairSkipped):
        return {
            "type": "pair_skipped",
            "index": event.index,
            "init_mhz": event.pair.init_mhz,
            "target_mhz": event.pair.target_mhz,
            "skip_reason": event.pair.skip_reason,
        }
    if isinstance(event, PairRetried):
        return {
            "type": "pair_retried",
            "indices": list(event.indices),
            "attempt": event.attempt,
            "cause": event.cause,
        }
    if isinstance(event, CampaignFinished):
        return {
            "type": "campaign_finished",
            "wall_virtual_s": event.wall_virtual_s,
            "locked_sm_mhz": event.locked_sm_mhz,
        }
    return {"type": type(event).__name__}  # forward compatibility


class ServiceServer:
    """Serve one :class:`CampaignService` on a unix socket."""

    def __init__(self, service: CampaignService, socket_path: str | Path) -> None:
        self.service = service
        self.socket_path = Path(socket_path)
        self._server: "asyncio.AbstractServer | None" = None

    async def start(self) -> None:
        """Bind the socket (replacing a stale one) and begin serving."""
        if self.socket_path.exists():
            self.socket_path.unlink()
        self._server = await asyncio.start_unix_server(
            self._handle, path=str(self.socket_path)
        )

    async def close(self) -> None:
        """Stop accepting connections and remove the socket file."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.socket_path.exists():
            self.socket_path.unlink()

    # ------------------------------------------------------------------
    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            line = await reader.readline()
            if not line:
                return
            try:
                message = json.loads(line)
                await self._dispatch(message, writer)
            except (ReproError, ValueError, KeyError, TypeError) as exc:
                await self._send(
                    writer, {"ok": False, "error": str(exc) or repr(exc)}
                )
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-stream; nothing to clean up
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _send(self, writer: asyncio.StreamWriter, payload: dict) -> None:
        writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()

    async def _dispatch(self, message: dict, writer) -> None:
        op = message.get("op")
        if op == "ping":
            await self._send(writer, {"ok": True, "pong": True})
        elif op == "submit":
            request = CampaignRequest.from_json(
                json.dumps(message["request"])
            )
            campaign_id = await self.service.submit(request)
            await self._send(
                writer, {"ok": True, "campaign_id": campaign_id}
            )
        elif op == "status":
            campaign_id = message.get("campaign_id")
            status = self.service.status(campaign_id)
            payload = (
                [s.to_wire() for s in status]
                if isinstance(status, list)
                else status.to_wire()
            )
            await self._send(writer, {"ok": True, "status": payload})
        elif op == "events":
            campaign_id = message["campaign_id"]
            stream = self.service.events(campaign_id)  # validates the id
            await self._send(
                writer, {"ok": True, "campaign_id": campaign_id}
            )
            async for event in stream:
                await self._send(writer, {"event": event_to_wire(event)})
            broadcast = self.service._get(campaign_id).broadcast
            await self._send(
                writer,
                {"done": True, "interrupted": broadcast.interrupted},
            )
        elif op == "cancel":
            cancelled = await self.service.cancel(message["campaign_id"])
            await self._send(
                writer, {"ok": True, "cancelled": cancelled}
            )
        else:
            await self._send(
                writer, {"ok": False, "error": f"unknown op {op!r}"}
            )
