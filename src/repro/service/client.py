"""Thin clients for the campaign service.

Two transports behind one four-verb surface (submit / status / events /
cancel):

:class:`ServiceClient`
    In-process: wraps a :class:`~repro.service.service.CampaignService`
    directly (same event loop).  ``events`` yields the *typed*
    :mod:`repro.core.stream` objects, and ``result`` returns the real
    :class:`~repro.core.results.CampaignResult` — this is the embedding
    API (tests, notebooks, a governor driving campaigns).
:class:`SocketClient`
    Remote: speaks the JSON-lines protocol of
    :mod:`repro.service.server` over a unix socket, one connection per
    call.  ``events`` yields the flat wire dicts
    (:func:`~repro.service.server.event_to_wire`); statuses arrive as
    wire dicts too.  This is what the ``repro`` CLI uses.

Both raise :class:`~repro.errors.ServiceUnavailable` on refused
operations (draining service, unknown campaign id, server-side error).
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

from repro.errors import ServiceUnavailable
from repro.service.requests import CampaignRequest
from repro.service.service import CampaignService

__all__ = ["ServiceClient", "SocketClient"]


class ServiceClient:
    """In-process client: direct calls into a running service."""

    def __init__(self, service: CampaignService) -> None:
        self.service = service

    async def submit(self, request: CampaignRequest) -> str:
        """Submit one campaign; returns its id."""
        return await self.service.submit(request)

    async def status(self, campaign_id: "str | None" = None):
        """One or all campaign statuses (typed ``CampaignStatus``)."""
        return self.service.status(campaign_id)

    def events(self, campaign_id: str):
        """Async iterator of typed stream events (history included)."""
        return self.service.events(campaign_id)

    async def result(self, campaign_id: str):
        """Wait for completion; returns the ``CampaignResult``."""
        return await self.service.result(campaign_id)

    async def cancel(self, campaign_id: str) -> bool:
        """Cancel; ``True`` if the campaign ended cancelled."""
        return await self.service.cancel(campaign_id)


class SocketClient:
    """Unix-socket client speaking the JSON-lines service protocol."""

    def __init__(self, socket_path: str | Path) -> None:
        self.socket_path = str(socket_path)

    # ------------------------------------------------------------------
    async def _call(self, message: dict) -> dict:
        """One request → one response line (non-streaming ops)."""
        reader, writer = await asyncio.open_unix_connection(
            self.socket_path
        )
        try:
            writer.write(json.dumps(message).encode() + b"\n")
            await writer.drain()
            line = await reader.readline()
        finally:
            writer.close()
            await writer.wait_closed()
        if not line:
            raise ServiceUnavailable("service closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            raise ServiceUnavailable(
                response.get("error", "service error")
            )
        return response

    # ------------------------------------------------------------------
    async def ping(self) -> bool:
        """Liveness probe."""
        return bool((await self._call({"op": "ping"})).get("pong"))

    async def submit(self, request: CampaignRequest) -> str:
        """Submit one campaign; returns its id."""
        response = await self._call(
            {"op": "submit", "request": json.loads(request.to_json())}
        )
        return response["campaign_id"]

    async def status(self, campaign_id: "str | None" = None):
        """Status wire dict(s) — one campaign's, or every campaign's."""
        message: dict = {"op": "status"}
        if campaign_id is not None:
            message["campaign_id"] = campaign_id
        return (await self._call(message))["status"]

    async def events(self, campaign_id: str):
        """Async-iterate wire event dicts until the campaign ends."""
        reader, writer = await asyncio.open_unix_connection(
            self.socket_path
        )
        try:
            writer.write(
                json.dumps(
                    {"op": "events", "campaign_id": campaign_id}
                ).encode()
                + b"\n"
            )
            await writer.drain()
            ack = json.loads(await reader.readline() or b"{}")
            if not ack.get("ok"):
                raise ServiceUnavailable(
                    ack.get("error", "service error")
                )
            while True:
                line = await reader.readline()
                if not line:
                    return
                payload = json.loads(line)
                if payload.get("done"):
                    return
                yield payload["event"]
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def cancel(self, campaign_id: str) -> bool:
        """Cancel; ``True`` if the campaign ended cancelled."""
        response = await self._call(
            {"op": "cancel", "campaign_id": campaign_id}
        )
        return bool(response.get("cancelled"))
